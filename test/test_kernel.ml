module Clock = Rgpdos_util.Clock
module Syscall = Rgpdos_kernel.Syscall
module Lsm = Rgpdos_kernel.Lsm
module Ipc = Rgpdos_kernel.Ipc
module Resource = Rgpdos_kernel.Resource
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* syscall policies                                                   *)

let test_policy_fpd_reader () =
  let p = Syscall.Policy.fpd_reader_policy in
  check_bool "read_pd ok" true (Syscall.Policy.allows p Syscall.Sys_read_pd);
  check_bool "return ok" true (Syscall.Policy.allows p Syscall.Sys_return_value);
  check_bool "file_write blocked" false
    (Syscall.Policy.allows p Syscall.Sys_file_write);
  check_bool "net_send blocked" false (Syscall.Policy.allows p Syscall.Sys_net_send);
  check_bool "spawn blocked" false (Syscall.Policy.allows p Syscall.Sys_spawn)

let test_policy_check_message () =
  match Syscall.Policy.check Syscall.Policy.fpd_reader_policy Syscall.Sys_net_send with
  | Error msg -> check_bool "mentions seccomp" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "net_send must be denied"

let test_policy_allow_all () =
  List.iter
    (fun sc ->
      check_bool (Syscall.to_string sc) true
        (Syscall.Policy.allows Syscall.Policy.allow_all sc))
    Syscall.all

let test_builtin_policy_no_net () =
  let p = Syscall.Policy.builtin_policy in
  check_bool "file_write ok for builtins" true
    (Syscall.Policy.allows p Syscall.Sys_file_write);
  check_bool "net still blocked" false (Syscall.Policy.allows p Syscall.Sys_net_send)

(* ------------------------------------------------------------------ *)
(* LSM                                                                *)

let test_lsm_deny_by_default () =
  let lsm = Lsm.create () in
  check_bool "denied" false (Lsm.check lsm ~actor:"anyone" ~klass:"dbfs" ~op:"read");
  check_int "denial logged" 1 (Lsm.denial_count lsm)

let test_lsm_allow_rules_and_wildcards () =
  let lsm = Lsm.create () in
  Lsm.allow lsm ~actor:"ded" ~klass:"dbfs" ~op:"*";
  Lsm.allow lsm ~actor:"ps" ~klass:"dbfs" ~op:"read";
  check_bool "ded write" true (Lsm.check lsm ~actor:"ded" ~klass:"dbfs" ~op:"write");
  check_bool "ded erase" true (Lsm.check lsm ~actor:"ded" ~klass:"dbfs" ~op:"erase");
  check_bool "ps read" true (Lsm.check lsm ~actor:"ps" ~klass:"dbfs" ~op:"read");
  check_bool "ps write denied" false
    (Lsm.check lsm ~actor:"ps" ~klass:"dbfs" ~op:"write");
  check_bool "app denied" false
    (Lsm.check lsm ~actor:"app" ~klass:"dbfs" ~op:"read")

let test_lsm_deny_overrides_allow () =
  let lsm = Lsm.create () in
  Lsm.allow lsm ~actor:"*" ~klass:"dbfs" ~op:"read";
  Lsm.deny lsm ~actor:"evil" ~klass:"dbfs" ~op:"*";
  check_bool "good actor passes" true
    (Lsm.check lsm ~actor:"good" ~klass:"dbfs" ~op:"read");
  check_bool "deny wins" false (Lsm.check lsm ~actor:"evil" ~klass:"dbfs" ~op:"read")

let test_lsm_denial_log_contents () =
  let lsm = Lsm.create () in
  ignore (Lsm.check lsm ~actor:"mallory" ~klass:"dbfs" ~op:"read");
  match Lsm.denials lsm with
  | [ ("mallory", "dbfs", "read") ] -> ()
  | _ -> Alcotest.fail "denial log mismatch"

(* ------------------------------------------------------------------ *)
(* IPC                                                                *)

let test_ipc_fifo () =
  let clock = Clock.create () in
  let ch = Ipc.create ~clock ~name:"test" () in
  check_bool "send1" true (Result.is_ok (Ipc.send ch 1));
  check_bool "send2" true (Result.is_ok (Ipc.send ch 2));
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Ipc.recv ch);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Ipc.recv ch);
  Alcotest.(check (option int)) "empty" None (Ipc.recv ch)

let test_ipc_capacity_backpressure () =
  let clock = Clock.create () in
  let ch = Ipc.create ~clock ~capacity:2 ~name:"small" () in
  ignore (Ipc.send ch "a");
  ignore (Ipc.send ch "b");
  check_bool "full" true (Result.is_error (Ipc.send ch "c"));
  ignore (Ipc.recv ch);
  check_bool "drained" true (Result.is_ok (Ipc.send ch "c"))

let test_ipc_charges_time () =
  let clock = Clock.create () in
  let ch = Ipc.create ~clock ~latency:500 ~name:"timed" () in
  ignore (Ipc.send ch ());
  check_int "send cost" 500 (Clock.now clock);
  ignore (Ipc.recv ch);
  check_int "recv cost" 1000 (Clock.now clock);
  check_int "sent counter" 1 (Ipc.total_sent ch)

(* ------------------------------------------------------------------ *)
(* resources                                                          *)

let test_resource_claims_and_limits () =
  let r = Resource.create ~cpu_millis:4000 ~mem_pages:1000 in
  let p1 = Result.get_ok (Resource.claim r ~owner:"a" ~cpu_millis:3000 ~mem_pages:500) in
  check_int "free cpu" 1000 (Resource.free_cpu r);
  check_bool "over-claim rejected" true
    (Result.is_error (Resource.claim r ~owner:"b" ~cpu_millis:2000 ~mem_pages:100));
  Resource.release r p1;
  check_int "released" 4000 (Resource.free_cpu r);
  check_bool "invariant" true (Resource.invariant_ok r)

let test_resource_dynamic_resize () =
  let r = Resource.create ~cpu_millis:4000 ~mem_pages:1000 in
  let p = Result.get_ok (Resource.claim r ~owner:"k" ~cpu_millis:1000 ~mem_pages:100) in
  (* grow *)
  check_bool "grow" true (Result.is_ok (Resource.resize r p ~cpu_millis:3500 ~mem_pages:800));
  check_int "grown" 3500 (Resource.cpu_millis p);
  (* grow beyond total *)
  check_bool "grow too far" true
    (Result.is_error (Resource.resize r p ~cpu_millis:4500 ~mem_pages:800));
  (* shrink *)
  check_bool "shrink" true (Result.is_ok (Resource.resize r p ~cpu_millis:500 ~mem_pages:50));
  check_int "free after shrink" 3500 (Resource.free_cpu r);
  check_bool "invariant" true (Resource.invariant_ok r)

let test_resource_resize_after_release_fails () =
  let r = Resource.create ~cpu_millis:1000 ~mem_pages:100 in
  let p = Result.get_ok (Resource.claim r ~owner:"k" ~cpu_millis:100 ~mem_pages:10) in
  Resource.release r p;
  check_bool "resize dead partition" true
    (Result.is_error (Resource.resize r p ~cpu_millis:50 ~mem_pages:5))

(* ------------------------------------------------------------------ *)
(* scheduler / purpose-kernel placement                               *)

let make_kernels () =
  let r = Resource.create ~cpu_millis:8000 ~mem_pages:10000 in
  let claim owner cpu =
    Result.get_ok (Resource.claim r ~owner ~cpu_millis:cpu ~mem_pages:100)
  in
  let general =
    Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
      ~partition:(claim "general" 4000) ~policy:Syscall.Policy.allow_all ()
  in
  let rgpd =
    Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
      ~partition:(claim "rgpdos" 2000) ~policy:Syscall.Policy.builtin_policy ()
  in
  let io =
    Subkernel.make ~id:"io-pd" ~kind:(Subkernel.Io_driver "nvme0")
      ~partition:(claim "io-pd" 1000) ~policy:Syscall.Policy.allow_all ()
  in
  (general, rgpd, io)

let test_pd_jobs_never_on_general_kernel () =
  let general, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd; io ] in
  for i = 0 to 9 do
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "pd%d" i;
           data_class = Scheduler.Pd;
           work = 1_000_000;
         })
  done;
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  check_int "general did no PD work" 0 (List.assoc "general" busy);
  check_bool "rgpd did work" true (List.assoc "rgpdos" busy > 0)

let test_npd_jobs_only_on_general () =
  let general, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd; io ] in
  for i = 0 to 4 do
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "npd%d" i;
           data_class = Scheduler.Npd;
           work = 1_000_000;
         })
  done;
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  check_bool "general busy" true (List.assoc "general" busy > 0);
  check_int "rgpd idle" 0 (List.assoc "rgpdos" busy);
  check_int "io idle" 0 (List.assoc "io-pd" busy)

let test_no_eligible_kernel () =
  let _, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ rgpd; io ] in
  check_bool "npd with no general kernel" true
    (Result.is_error
       (Scheduler.submit sched
          { Scheduler.job_id = "j"; data_class = Scheduler.Npd; work = 1 }))

let test_io_jobs_routed_to_driver_kernel () =
  let general, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd; io ] in
  check_bool "io job accepted" true
    (Result.is_ok
       (Scheduler.submit sched
          { Scheduler.job_id = "io1"; data_class = Scheduler.Io "nvme0"; work = 500_000 }));
  check_bool "unknown device refused" true
    (Result.is_error
       (Scheduler.submit sched
          { Scheduler.job_id = "io2"; data_class = Scheduler.Io "sda"; work = 1 }));
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  check_bool "driver kernel did the work" true (List.assoc "io-pd" busy > 0);
  check_int "others idle" 0 (List.assoc "general" busy + List.assoc "rgpdos" busy)

let test_pd_never_on_io_driver () =
  (* application PD jobs go to the rgpdOS kernel, not the IO drivers *)
  let _, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ rgpd; io ] in
  for i = 0 to 5 do
    ignore
      (Scheduler.submit sched
         { Scheduler.job_id = string_of_int i; data_class = Scheduler.Pd;
           work = 500_000 })
  done;
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  check_int "io driver untouched by app PD jobs" 0 (List.assoc "io-pd" busy);
  check_bool "rgpd did all of it" true (List.assoc "rgpdos" busy > 0)

let test_all_jobs_complete_and_clock_advances () =
  let general, rgpd, io = make_kernels () in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd; io ] in
  for i = 0 to 19 do
    let data_class = if i mod 2 = 0 then Scheduler.Pd else Scheduler.Npd in
    ignore
      (Scheduler.submit sched
         { Scheduler.job_id = string_of_int i; data_class; work = 500_000 })
  done;
  Scheduler.run_until_idle sched ();
  check_int "all complete" 20 (List.length (Scheduler.completed sched));
  check_bool "time advanced" true (Clock.now clock > 0)

let test_bigger_partition_finishes_faster () =
  (* same work, one kernel with 4x the cpu share: its busy (wall) time is
     smaller *)
  let r = Resource.create ~cpu_millis:8000 ~mem_pages:1000 in
  let claim owner cpu =
    Result.get_ok (Resource.claim r ~owner ~cpu_millis:cpu ~mem_pages:10)
  in
  let big =
    Subkernel.make ~id:"big" ~kind:Subkernel.Rgpd ~partition:(claim "big" 4000)
      ~policy:Syscall.Policy.allow_all ()
  in
  let small =
    Subkernel.make ~id:"small" ~kind:Subkernel.General_purpose
      ~partition:(claim "small" 1000) ~policy:Syscall.Policy.allow_all ()
  in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ big; small ] in
  ignore
    (Scheduler.submit sched
       { Scheduler.job_id = "pd"; data_class = Scheduler.Pd; work = 4_000_000 });
  ignore
    (Scheduler.submit sched
       { Scheduler.job_id = "npd"; data_class = Scheduler.Npd; work = 4_000_000 });
  Scheduler.run_until_idle sched ();
  let busy = Scheduler.kernel_busy_time sched in
  check_bool "4x share => ~4x less wall time" true
    (List.assoc "big" busy * 3 < List.assoc "small" busy)

let prop_scheduler_conserves_work =
  (* every submitted job completes, and each kernel's wall time equals the
     cpu work it ran scaled by its share *)
  QCheck.Test.make ~name:"scheduler conserves work" ~count:60
    QCheck.(pair (int_range 1 30) (int_range 1 30))
    (fun (n_pd, n_npd) ->
      let r = Resource.create ~cpu_millis:8000 ~mem_pages:1000 in
      let claim owner cpu =
        Result.get_ok (Resource.claim r ~owner ~cpu_millis:cpu ~mem_pages:10)
      in
      let general =
        Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
          ~partition:(claim "general" 2000) ~policy:Syscall.Policy.allow_all ()
      in
      let rgpd =
        Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
          ~partition:(claim "rgpdos" 4000) ~policy:Syscall.Policy.allow_all ()
      in
      let clock = Clock.create () in
      let sched = Scheduler.create ~clock ~kernels:[ general; rgpd ] in
      let work = 1_000_000 in
      for i = 0 to n_pd - 1 do
        ignore
          (Scheduler.submit sched
             { Scheduler.job_id = Printf.sprintf "p%d" i;
               data_class = Scheduler.Pd; work })
      done;
      for i = 0 to n_npd - 1 do
        ignore
          (Scheduler.submit sched
             { Scheduler.job_id = Printf.sprintf "n%d" i;
               data_class = Scheduler.Npd; work })
      done;
      Scheduler.run_until_idle sched ();
      let busy = Scheduler.kernel_busy_time sched in
      List.length (Scheduler.completed sched) = n_pd + n_npd
      (* rgpd at 4000 mcpu: wall = work/4 per job; general at 2000: work/2 *)
      && List.assoc "rgpdos" busy = n_pd * work * 1000 / 4000
      && List.assoc "general" busy = n_npd * work * 1000 / 2000)

let test_subkernel_pd_handling () =
  let general, rgpd, io = make_kernels () in
  check_bool "general no pd" false (Subkernel.handles_pd general);
  check_bool "rgpd pd" true (Subkernel.handles_pd rgpd);
  check_bool "io pd" true (Subkernel.handles_pd io)

let () =
  Alcotest.run "kernel"
    [
      ( "syscall",
        [
          Alcotest.test_case "fpd reader policy" `Quick test_policy_fpd_reader;
          Alcotest.test_case "check message" `Quick test_policy_check_message;
          Alcotest.test_case "allow all" `Quick test_policy_allow_all;
          Alcotest.test_case "builtin policy" `Quick test_builtin_policy_no_net;
        ] );
      ( "lsm",
        [
          Alcotest.test_case "deny by default" `Quick test_lsm_deny_by_default;
          Alcotest.test_case "allow rules + wildcards" `Quick
            test_lsm_allow_rules_and_wildcards;
          Alcotest.test_case "deny overrides allow" `Quick test_lsm_deny_overrides_allow;
          Alcotest.test_case "denial log" `Quick test_lsm_denial_log_contents;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "fifo" `Quick test_ipc_fifo;
          Alcotest.test_case "capacity backpressure" `Quick test_ipc_capacity_backpressure;
          Alcotest.test_case "charges time" `Quick test_ipc_charges_time;
        ] );
      ( "resources",
        [
          Alcotest.test_case "claims and limits" `Quick test_resource_claims_and_limits;
          Alcotest.test_case "dynamic resize" `Quick test_resource_dynamic_resize;
          Alcotest.test_case "resize after release" `Quick
            test_resource_resize_after_release_fails;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "PD never on general kernel" `Quick
            test_pd_jobs_never_on_general_kernel;
          Alcotest.test_case "NPD only on general" `Quick test_npd_jobs_only_on_general;
          Alcotest.test_case "no eligible kernel" `Quick test_no_eligible_kernel;
          Alcotest.test_case "IO jobs routed to driver" `Quick
            test_io_jobs_routed_to_driver_kernel;
          Alcotest.test_case "PD never on IO driver" `Quick test_pd_never_on_io_driver;
          Alcotest.test_case "all jobs complete" `Quick
            test_all_jobs_complete_and_clock_advances;
          Alcotest.test_case "partition share scales speed" `Quick
            test_bigger_partition_finishes_faster;
          Alcotest.test_case "subkernel pd handling" `Quick test_subkernel_pd_handling;
          QCheck_alcotest.to_alcotest prop_scheduler_conserves_work;
        ] );
    ]
