module M = Rgpdos_membrane.Membrane
module Clock = Rgpdos_util.Clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let mk ?(consents = [ ("p1", M.All); ("p2", M.Denied); ("p3", M.View "v_ano") ])
    ?ttl ?(sensitivity = M.Low) () =
  M.make ~pd_id:"pd-0" ~type_name:"user" ~subject_id:"sub-1" ~origin:M.Subject
    ~consents ~created_at:0 ?ttl ~sensitivity ()

let scope_testable =
  Alcotest.testable M.pp_consent_scope (fun a b -> a = b)

let granted = function M.Granted s -> Some s | M.Refused _ -> None

let test_decide_all () =
  let m = mk () in
  match M.decide m ~purpose:"p1" ~now:0 with
  | M.Granted M.All -> ()
  | _ -> Alcotest.fail "expected Granted All"

let test_decide_denied () =
  let m = mk () in
  check_bool "denied" false (M.allows m ~purpose:"p2" ~now:0)

let test_decide_view () =
  let m = mk () in
  Alcotest.(check (option scope_testable))
    "view scope" (Some (M.View "v_ano"))
    (granted (M.decide m ~purpose:"p3" ~now:0))

let test_decide_unknown_purpose_fails_closed () =
  let m = mk () in
  check_bool "deny by default" false (M.allows m ~purpose:"never-declared" ~now:0)

let test_ttl_expiry () =
  let m = mk ~ttl:Clock.year () in
  check_bool "fresh" true (M.allows m ~purpose:"p1" ~now:0);
  check_bool "just before expiry" true
    (M.allows m ~purpose:"p1" ~now:(Clock.year - 1));
  check_bool "at expiry" false (M.allows m ~purpose:"p1" ~now:Clock.year);
  check_bool "expired flag" true (M.expired m ~now:Clock.year);
  check_bool "no ttl never expires" false (M.expired (mk ()) ~now:max_int)

let test_duplicate_purposes_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Membrane.make: duplicate purpose in consents") (fun () ->
      ignore (mk ~consents:[ ("p", M.All); ("p", M.Denied) ] ()))

let test_set_consent_and_version () =
  let m = mk () in
  check_int "version 0" 0 m.M.version;
  let m1 = M.set_consent m ~purpose:"p2" M.All in
  check_bool "p2 now allowed" true (M.allows m1 ~purpose:"p2" ~now:0);
  check_int "version bumped" 1 m1.M.version;
  let m2 = M.set_consent m1 ~purpose:"brand-new" (M.View "v_ano") in
  check_bool "new purpose added" true (M.allows m2 ~purpose:"brand-new" ~now:0);
  check_int "consents grew" 4 (List.length m2.M.consents)

let test_withdraw () =
  let m = mk () in
  let m1 = M.withdraw m ~purpose:"p1" in
  check_bool "withdrawn" false (M.allows m1 ~purpose:"p1" ~now:0);
  (* withdrawing an unknown purpose records an explicit denial *)
  let m2 = M.withdraw m ~purpose:"unknown" in
  check_bool "unknown recorded as denied" true
    (List.assoc "unknown" m2.M.consents = M.Denied)

let test_withdraw_all () =
  let m = M.withdraw_all (mk ()) in
  List.iter
    (fun (p, _) -> check_bool p false (M.allows m ~purpose:p ~now:0))
    m.M.consents

let test_restriction_art18 () =
  let m = mk () in
  let r = M.set_restricted m true in
  (* every purpose refused while restricted, even previously granted ones *)
  List.iter
    (fun (p, _) -> check_bool p false (M.allows r ~purpose:p ~now:0))
    r.M.consents;
  check_int "version bumped" 1 r.M.version;
  (* consents intact underneath: lifting restores the previous decisions *)
  let back = M.set_restricted r false in
  check_bool "p1 restored" true (M.allows back ~purpose:"p1" ~now:0);
  check_bool "p2 still denied" false (M.allows back ~purpose:"p2" ~now:0);
  (* restriction survives the codec *)
  match M.decode (M.encode r) with
  | Ok r' -> check_bool "restricted roundtrips" true r'.M.restricted
  | Error e -> Alcotest.fail e

let test_copy_inherits_and_lineage () =
  let m = mk () in
  let c = M.copy_for m ~new_pd_id:"pd-42" in
  check_string "new id" "pd-42" c.M.pd_id;
  check_string "lineage preserved" "pd-0" (M.lineage_root c);
  check_string "original lineage is self" "pd-0" (M.lineage_root m);
  check_bool "restrictions inherited" false (M.allows c ~purpose:"p2" ~now:0);
  let cc = M.copy_for c ~new_pd_id:"pd-43" in
  check_string "lineage stable across copies" "pd-0" (M.lineage_root cc)

let test_encode_decode_roundtrip () =
  let m =
    M.make ~pd_id:"pd-9" ~type_name:"patient" ~subject_id:"sub-7"
      ~origin:(M.Third_party "hospital-B")
      ~consents:[ ("care", M.All); ("ads", M.Denied); ("stats", M.View "anon") ]
      ~created_at:12345 ~ttl:(2 * Clock.year) ~sensitivity:M.High
      ~collection:[ ("web_form", "patient.html"); ("third_party", "fetch.py") ]
      ()
  in
  match M.decode (M.encode m) with
  | Ok m' -> check_bool "roundtrip" true (M.equal m m')
  | Error e -> Alcotest.fail e

let test_decode_garbage () =
  check_bool "garbage" true (Result.is_error (M.decode "not a membrane"));
  check_bool "truncated" true
    (Result.is_error
       (M.decode (String.sub (M.encode (mk ())) 0 10)))

let prop_roundtrip =
  let gen =
    QCheck.Gen.(
      let scope =
        oneof
          [ return M.All; return M.Denied;
            map (fun s -> M.View s) (string_size ~gen:(char_range 'a' 'z') (1 -- 6)) ]
      in
      let purpose i = "purpose" ^ string_of_int i in
      map
        (fun (scopes, ttl, created) ->
          M.make ~pd_id:"pd-p" ~type_name:"t" ~subject_id:"s" ~origin:M.Sysadmin
            ~consents:(List.mapi (fun i s -> (purpose i, s)) scopes)
            ~created_at:created
            ?ttl:(if ttl = 0 then None else Some ttl)
            ())
        (triple (list_size (0 -- 8) scope) (0 -- 1000000) (0 -- 1000000)))
  in
  QCheck.Test.make ~name:"membrane codec roundtrip" ~count:200 (QCheck.make gen)
    (fun m ->
      match M.decode (M.encode m) with Ok m' -> M.equal m m' | Error _ -> false)

let prop_withdraw_monotone =
  (* withdrawing can only shrink what is allowed *)
  QCheck.Test.make ~name:"withdraw monotone" ~count:100
    QCheck.(pair (int_range 0 2) (int_range 0 2))
    (fun (i, j) ->
      let m = mk () in
      let p_with = "p" ^ string_of_int (i + 1) in
      let p_test = "p" ^ string_of_int (j + 1) in
      let m' = M.withdraw m ~purpose:p_with in
      (not (M.allows m' ~purpose:p_with ~now:0))
      && ((not (M.allows m' ~purpose:p_test ~now:0))
         || M.allows m ~purpose:p_test ~now:0))

let () =
  Alcotest.run "membrane"
    [
      ( "decide",
        [
          Alcotest.test_case "all" `Quick test_decide_all;
          Alcotest.test_case "denied" `Quick test_decide_denied;
          Alcotest.test_case "view" `Quick test_decide_view;
          Alcotest.test_case "unknown fails closed" `Quick
            test_decide_unknown_purpose_fails_closed;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "duplicate purposes rejected" `Quick
            test_duplicate_purposes_rejected;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "set_consent and version" `Quick test_set_consent_and_version;
          Alcotest.test_case "withdraw" `Quick test_withdraw;
          Alcotest.test_case "withdraw_all" `Quick test_withdraw_all;
          Alcotest.test_case "copy inherits, lineage stable" `Quick
            test_copy_inherits_and_lineage;
          Alcotest.test_case "art. 18 restriction" `Quick test_restriction_art18;
          QCheck_alcotest.to_alcotest prop_withdraw_monotone;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "garbage" `Quick test_decode_garbage;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
