(* The machine-readable benchmark artifact: the tiny JSON layer it is
   built on, the report builder/validator, and the committed
   BENCH_hotpath.json itself. *)

module Json = Rgpdos_util.Json
module BR = Rgpdos_workload.Bench_report
module E = Rgpdos_workload.Experiments

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json                                                               *)

let sample =
  Json.Obj
    [
      ("s", Json.Str "a \"quoted\" line\nwith\ttabs and \\slashes");
      ("n", Json.Num 42.0);
      ("f", Json.Num 1.5);
      ("yes", Json.Bool true);
      ("no", Json.Bool false);
      ("nothing", Json.Null);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List
          [ Json.Num 1.0; Json.Str "two"; Json.Obj [ ("k", Json.Num 3.0) ] ] );
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.of_string (Json.to_string ~indent sample) with
      | Ok v ->
          check_bool
            (Printf.sprintf "roundtrip indent=%d" indent)
            true (v = sample)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ 0; 2; 4 ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "%S rejected" s)
        true
        (Result.is_error (Json.of_string s)))
    [ ""; "{"; "[1,]"; "tru"; "{\"a\" 1}"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  (match Json.member "n" sample with
  | Some v -> check_bool "num" true (Json.to_float v = Some 42.0)
  | None -> Alcotest.fail "member n missing");
  check_bool "missing member" true (Json.member "absent" sample = None);
  check_bool "member of non-obj" true (Json.member "x" (Json.Num 1.0) = None)

(* ------------------------------------------------------------------ *)
(* Bench_report                                                       *)

let hotpath_micro =
  [
    { BR.name = "core/sha256/1KiB"; ns_per_op = 11000.0; r2 = 0.97 };
    { BR.name = "core/chacha20/1KiB"; ns_per_op = 8300.0; r2 = 0.96 };
    { BR.name = "core/audit/append"; ns_per_op = 2200.0; r2 = 0.93 };
  ]

let fake_e1 : E.e1_result =
  {
    e1_subjects = 10;
    e1_stage_ns = [ ("load_membrane", 500); ("load_data", 400) ];
    e1_total_ns = 1000;
    e1_device = [ ("merged_runs", 2); ("reads", 20); ("vec_reads", 2) ];
  }

let fake_e4 : E.e4_row list =
  [ { e4_records_per_subject = 1; e4_sim_us = 18.2; e4_export_complete = true } ]

let test_report_valid_and_parses_back () =
  let report =
    BR.make ~quick:true ~micro:hotpath_micro ~e1:(fake_e1, 12.5)
      ~e4:(fake_e4, 3.25) ()
  in
  (match BR.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* what the file holds must parse back to an equally valid report *)
  match Json.of_string (Json.to_string report) with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok parsed -> (
      check_bool "identical after roundtrip" true (parsed = report);
      match BR.validate parsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "parsed report invalid: %s" e)

let test_report_rejects_bad_shapes () =
  check_bool "empty object" true (Result.is_error (BR.validate (Json.Obj [])));
  check_bool "wrong schema id" true
    (Result.is_error
       (BR.validate
          (Json.Obj [ ("schema", Json.Str "something-else/9") ])));
  (* dropping a required hot-path row must fail validation *)
  let missing_chacha =
    BR.make ~quick:false
      ~micro:(List.filter (fun r -> r.BR.name <> "core/chacha20/1KiB") hotpath_micro)
      ()
  in
  check_bool "missing hot-path row" true
    (Result.is_error (BR.validate missing_chacha));
  let zero_ns =
    BR.make ~quick:false
      ~micro:({ BR.name = "core/sha256/1KiB"; ns_per_op = 0.0; r2 = 1.0 }
              :: List.tl hotpath_micro)
      ()
  in
  check_bool "non-positive ns_per_op" true (Result.is_error (BR.validate zero_ns))

(* ------------------------------------------------------------------ *)
(* the committed artifact                                             *)

(* `dune runtest` runs from the test dir (the dep is staged one level up);
   `dune exec test/test_bench.exe` runs from the project root *)
let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_hotpath.json"; "BENCH_hotpath.json" ]

let test_committed_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_hotpath.json missing (regenerate: dune exec bench/main.exe -- \
         --quick micro e1 e4 --json BENCH_hotpath.json)"
  | Some artifact ->
      let ic = open_in_bin artifact in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" artifact e
      | Ok v ->
          (match BR.validate v with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" artifact e);
          check_string "schema id" BR.schema_id
            (Option.get (Option.bind (Json.member "schema" v) Json.to_str));
          (* the sections named in the regeneration command are present *)
          check_bool "has e1 section" true (Json.member "e1" v <> None);
          check_bool "has e4 section" true (Json.member "e4" v <> None))

let () =
  Alcotest.run "bench-report"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "report",
        [
          Alcotest.test_case "valid and parses back" `Quick
            test_report_valid_and_parses_back;
          Alcotest.test_case "rejects bad shapes" `Quick
            test_report_rejects_bad_shapes;
          Alcotest.test_case "committed artifact" `Quick test_committed_artifact;
        ] );
    ]
