module Clock = Rgpdos_util.Clock
module Block_device = Rgpdos_block.Block_device
module M = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Dbfs = Rgpdos_dbfs.Dbfs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ded = "ded" (* the actor used in tests *)

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dbfs error: %s" (Dbfs.error_to_string e)

let small_config =
  {
    Block_device.block_size = 512;
    block_count = 2048;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

let make_dbfs () =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:small_config ~clock () in
  (Dbfs.format dev ~journal_blocks:64, dev, clock)

(* the paper's Listing-1 user type *)
let user_schema () =
  match
    Schema.make ~name:"user"
      ~fields:
        [
          { Schema.fname = "name"; ftype = Value.TString; required = true };
          { Schema.fname = "pwd"; ftype = Value.TString; required = true };
          { Schema.fname = "year_of_birthdate"; ftype = Value.TInt; required = true };
        ]
      ~views:
        [
          { Schema.vname = "v_name"; vfields = [ "name" ] };
          { Schema.vname = "v_ano"; vfields = [ "year_of_birthdate" ] };
        ]
      ~default_consents:
        [ ("purpose1", M.All); ("purpose2", M.Denied); ("purpose3", M.View "v_ano") ]
      ~collection:[ ("web_form", "user_form.html"); ("third_party", "fetch_data.py") ]
      ~default_ttl:Clock.year ~default_sensitivity:M.High ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let user_record name year : Record.t =
  [
    ("name", Value.VString name);
    ("pwd", Value.VString ("hash-of-" ^ name));
    ("year_of_birthdate", Value.VInt year);
  ]

let default_membrane schema ~subject ~pd_id =
  M.make ~pd_id ~type_name:schema.Schema.name ~subject_id:subject
    ~origin:schema.Schema.default_origin
    ~consents:schema.Schema.default_consents ~created_at:0
    ?ttl:schema.Schema.default_ttl
    ~sensitivity:schema.Schema.default_sensitivity
    ~collection:schema.Schema.collection ()

let insert_user t ~subject name year =
  let schema = ok (Dbfs.schema t ~actor:ded "user") in
  ok
    (Dbfs.insert t ~actor:ded ~subject ~type_name:"user"
       ~record:(user_record name year)
       ~membrane_of:(fun ~pd_id -> default_membrane schema ~subject ~pd_id))

let setup () =
  let t, dev, clock = make_dbfs () in
  ok (Dbfs.create_type t ~actor:ded (user_schema ()));
  (t, dev, clock)

(* ------------------------------------------------------------------ *)
(* schema module                                                      *)

let test_schema_validation_rules () =
  let field name = { Schema.fname = name; ftype = Value.TString; required = true } in
  check_bool "empty name" true
    (Result.is_error (Schema.make ~name:"" ~fields:[ field "a" ] ()));
  check_bool "no fields" true (Result.is_error (Schema.make ~name:"t" ~fields:[] ()));
  check_bool "dup fields" true
    (Result.is_error (Schema.make ~name:"t" ~fields:[ field "a"; field "a" ] ()));
  check_bool "view unknown field" true
    (Result.is_error
       (Schema.make ~name:"t" ~fields:[ field "a" ]
          ~views:[ { Schema.vname = "v"; vfields = [ "nope" ] } ]
          ()));
  check_bool "consent unknown view" true
    (Result.is_error
       (Schema.make ~name:"t" ~fields:[ field "a" ]
          ~default_consents:[ ("p", M.View "missing") ]
          ()))

let test_schema_view_fields () =
  let s = user_schema () in
  Alcotest.(check (list string))
    "all" [ "name"; "pwd"; "year_of_birthdate" ] (Schema.view_fields s M.All);
  Alcotest.(check (list string)) "denied" [] (Schema.view_fields s M.Denied);
  Alcotest.(check (list string))
    "view" [ "year_of_birthdate" ]
    (Schema.view_fields s (M.View "v_ano"));
  Alcotest.(check (list string))
    "unknown view fails closed" [] (Schema.view_fields s (M.View "bogus"))

let test_schema_validate_record () =
  let s = user_schema () in
  check_bool "valid" true (Schema.validate_record s (user_record "a" 1990) = Ok ());
  check_bool "unknown field" true
    (Result.is_error (Schema.validate_record s [ ("zzz", Value.VInt 1) ]));
  check_bool "type mismatch" true
    (Result.is_error
       (Schema.validate_record s
          [ ("name", Value.VInt 3); ("pwd", Value.VString "x");
            ("year_of_birthdate", Value.VInt 1) ]));
  check_bool "missing required" true
    (Result.is_error (Schema.validate_record s [ ("name", Value.VString "x") ]));
  check_bool "duplicate field" true
    (Result.is_error
       (Schema.validate_record s
          (user_record "a" 1 @ [ ("name", Value.VString "again") ])))

let test_schema_codec_roundtrip () =
  let s = user_schema () in
  match Schema.decode (Schema.encode s) with
  | Ok s' -> check_bool "roundtrip" true (s = s')
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* record module                                                      *)

let test_record_project_redact () =
  let r = user_record "Chiraz" 1990 in
  Alcotest.(check int) "project" 1 (List.length (Record.project r [ "name" ]));
  let red = Record.redact r ~visible:[ "name" ] in
  check_bool "pwd redacted" true
    (Record.get red "pwd" = Some (Value.VString "<redacted>"));
  check_bool "name kept" true (Record.get red "name" = Some (Value.VString "Chiraz"))

let test_record_codec_roundtrip () =
  let r =
    [ ("s", Value.VString "x\"y\\z"); ("i", Value.VInt (-42));
      ("b", Value.VBool true); ("f", Value.VFloat 3.25) ]
  in
  match Record.decode (Record.encode r) with
  | Ok r' -> check_bool "roundtrip" true (Record.equal r r')
  | Error e -> Alcotest.fail e

let test_record_export_json_shape () =
  let out = Record.to_export ~type_name:"user" ~pd_id:"pd-1" (user_record "A" 2000) in
  check_bool "has type key" true
    (String.length out > 0 && out.[0] = '{'
    && contains_sub out "\"type\": \"user\"")

(* ------------------------------------------------------------------ *)
(* query predicates                                                   *)

module Query = Rgpdos_dbfs.Query

let test_query_atoms () =
  let r = user_record "Chiraz" 1990 in
  check_bool "eq string" true (Query.eval (Query.Eq ("name", Value.VString "Chiraz")) r);
  check_bool "eq mismatch" false (Query.eval (Query.Eq ("name", Value.VString "X")) r);
  check_bool "lt int" true
    (Query.eval (Query.Lt ("year_of_birthdate", Value.VInt 2000)) r);
  check_bool "gt int" true
    (Query.eval (Query.Gt ("year_of_birthdate", Value.VInt 1980)) r);
  check_bool "contains" true (Query.eval (Query.Contains ("name", "hir")) r);
  check_bool "contains miss" false (Query.eval (Query.Contains ("name", "zzz")) r);
  check_bool "true" true (Query.eval Query.True r)

let test_query_fails_closed () =
  let r = user_record "A" 1990 in
  (* missing field *)
  check_bool "missing field" false (Query.eval (Query.Eq ("ghost", Value.VInt 1)) r);
  (* type mismatch: comparing a string field numerically *)
  check_bool "type mismatch lt" false (Query.eval (Query.Lt ("name", Value.VInt 0)) r);
  check_bool "contains on int" false
    (Query.eval (Query.Contains ("year_of_birthdate", "19")) r)

let test_query_connectives () =
  let r = user_record "Chiraz" 1990 in
  let young = Query.Gt ("year_of_birthdate", Value.VInt 1985) in
  let named = Query.Eq ("name", Value.VString "Chiraz") in
  check_bool "and" true (Query.eval (Query.And (young, named)) r);
  check_bool "or" true
    (Query.eval (Query.Or (Query.Eq ("name", Value.VString "X"), young)) r);
  check_bool "not" false (Query.eval (Query.Not named) r);
  check_bool "de morgan-ish" true
    (Query.eval (Query.Not (Query.And (Query.Not young, Query.Not named))) r)

let test_query_fields () =
  let p =
    Query.And
      ( Query.Or (Query.Eq ("a", Value.VInt 1), Query.Contains ("b", "x")),
        Query.Not (Query.Lt ("a", Value.VInt 5)) )
  in
  Alcotest.(check (list string)) "fields" [ "a"; "b" ] (Query.fields p)

let prop_query_not_involution =
  QCheck.Test.make ~name:"not (not p) = p on eval" ~count:100
    QCheck.(pair (int_range 1900 2050) (int_range 1900 2050))
    (fun (y, bound) ->
      let r = user_record "q" y in
      let p = Query.Lt ("year_of_birthdate", Value.VInt bound) in
      Query.eval (Query.Not (Query.Not p)) r = Query.eval p r)

(* ------------------------------------------------------------------ *)
(* dbfs core                                                          *)

let test_dbfs_create_type_and_list () =
  let t, _, _ = setup () in
  Alcotest.(check (list string)) "types" [ "user" ] (ok (Dbfs.list_types t ~actor:ded));
  check_bool "duplicate rejected" true
    (Result.is_error (Dbfs.create_type t ~actor:ded (user_schema ())))

let test_dbfs_insert_get () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"sub-1" "Chiraz" 1990 in
  let r = ok (Dbfs.get_record t ~actor:ded pd) in
  check_bool "name" true (Record.get r "name" = Some (Value.VString "Chiraz"));
  let m = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_string "membrane wraps pd" pd m.M.pd_id;
  check_string "membrane subject" "sub-1" m.M.subject_id;
  check_bool "default consent applied" true (M.allows m ~purpose:"purpose1" ~now:0)

let test_dbfs_insert_unknown_type () =
  let t, _, _ = setup () in
  check_bool "unknown type" true
    (Result.is_error
       (Dbfs.insert t ~actor:ded ~subject:"s" ~type_name:"ghost"
          ~record:[ ("a", Value.VInt 1) ]
          ~membrane_of:(fun ~pd_id ->
            M.make ~pd_id ~type_name:"ghost" ~subject_id:"s" ~origin:M.Subject
              ~consents:[] ~created_at:0 ())))

let test_dbfs_insert_invalid_record () =
  let t, _, _ = setup () in
  check_bool "invalid record" true
    (Result.is_error
       (Dbfs.insert t ~actor:ded ~subject:"s" ~type_name:"user"
          ~record:[ ("name", Value.VInt 5) ]
          ~membrane_of:(fun ~pd_id ->
            M.make ~pd_id ~type_name:"user" ~subject_id:"s" ~origin:M.Subject
              ~consents:[] ~created_at:0 ())))

let test_dbfs_membrane_invariant_enforced () =
  let t, _, _ = setup () in
  (* membrane wrapping the wrong pd_id is rejected *)
  let bad =
    Dbfs.insert t ~actor:ded ~subject:"s" ~type_name:"user"
      ~record:(user_record "x" 1980)
      ~membrane_of:(fun ~pd_id:_ ->
        M.make ~pd_id:"pd-99999999" ~type_name:"user" ~subject_id:"s"
          ~origin:M.Subject ~consents:[] ~created_at:0 ())
  in
  check_bool "wrong pd_id rejected" true (Result.is_error bad);
  (* wrong subject *)
  let bad2 =
    Dbfs.insert t ~actor:ded ~subject:"s" ~type_name:"user"
      ~record:(user_record "x" 1980)
      ~membrane_of:(fun ~pd_id ->
        M.make ~pd_id ~type_name:"user" ~subject_id:"someone-else"
          ~origin:M.Subject ~consents:[] ~created_at:0 ())
  in
  check_bool "wrong subject rejected" true (Result.is_error bad2)

let test_dbfs_update_record () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"sub-1" "Old" 1970 in
  ok (Dbfs.update_record t ~actor:ded pd (user_record "New" 1971));
  let r = ok (Dbfs.get_record t ~actor:ded pd) in
  check_bool "updated" true (Record.get r "name" = Some (Value.VString "New"))

let test_dbfs_update_zeroes_old_blocks () =
  let t, dev, _ = setup () in
  let unique = "UNIQUE-OLD-VALUE-XYZZY" in
  let pd = insert_user t ~subject:"sub-1" unique 1970 in
  check_bool "initially on device" true (Block_device.scan dev unique <> []);
  ok (Dbfs.update_record t ~actor:ded pd (user_record "replacement" 1971));
  check_int "no stale copy anywhere (incl. journal)" 0
    (List.length (Block_device.scan dev unique))

let test_dbfs_update_membrane_and_mismatch () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"sub-1" "A" 1990 in
  let m = ok (Dbfs.get_membrane t ~actor:ded pd) in
  ok (Dbfs.update_membrane t ~actor:ded pd (M.withdraw m ~purpose:"purpose1"));
  let m' = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_bool "consent withdrawn persists" false (M.allows m' ~purpose:"purpose1" ~now:0);
  check_bool "mismatched membrane rejected" true
    (Result.is_error
       (Dbfs.update_membrane t ~actor:ded pd { m with M.pd_id = "pd-0other" }))

let test_dbfs_copy_consistency () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"sub-1" "Orig" 1990 in
  let copy = ok (Dbfs.copy_pd t ~actor:ded pd) in
  check_bool "distinct ids" true (pd <> copy);
  let mc = ok (Dbfs.get_membrane t ~actor:ded copy) in
  check_string "lineage" pd (M.lineage_root mc);
  (* consent change propagated to all copies via lineage *)
  let n =
    ok
      (Dbfs.update_membranes_by_lineage t ~actor:ded ~lineage:pd (fun m ->
           M.withdraw m ~purpose:"purpose1"))
  in
  check_int "both updated" 2 n;
  let m1 = ok (Dbfs.get_membrane t ~actor:ded pd) in
  let m2 = ok (Dbfs.get_membrane t ~actor:ded copy) in
  check_bool "original updated" false (M.allows m1 ~purpose:"purpose1" ~now:0);
  check_bool "copy updated" false (M.allows m2 ~purpose:"purpose1" ~now:0)

let test_dbfs_delete_leaves_no_trace () =
  let t, dev, _ = setup () in
  let unique = "DELETED-SUBJECT-SECRET-99" in
  let pd = insert_user t ~subject:"sub-1" unique 1990 in
  ok (Dbfs.delete t ~actor:ded pd);
  check_bool "entry gone" true (Result.is_error (Dbfs.get_record t ~actor:ded pd));
  check_int "zero forensic hits" 0 (List.length (Block_device.scan dev unique));
  Alcotest.(check (list string))
    "subject tree emptied" [] (ok (Dbfs.pds_of_subject t ~actor:ded "sub-1"))

let test_dbfs_erase_with () =
  let t, dev, _ = setup () in
  let unique = "RIGHT-TO-BE-FORGOTTEN-42" in
  let pd = insert_user t ~subject:"sub-1" unique 1990 in
  ok (Dbfs.erase_with t ~actor:ded pd ~seal:(fun _ -> "SEALED-ENVELOPE-BYTES"));
  (match Dbfs.get_record t ~actor:ded pd with
  | Error (Dbfs.Erased _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dbfs.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Erased");
  check_string "sealed payload retrievable" "SEALED-ENVELOPE-BYTES"
    (ok (Dbfs.erased_payload t ~actor:ded pd));
  check_int "plaintext gone from device" 0 (List.length (Block_device.scan dev unique));
  check_bool "double erase fails" true
    (Result.is_error (Dbfs.erase_with t ~actor:ded pd ~seal:(fun _ -> "x")))

let test_dbfs_queries () =
  let t, _, _ = setup () in
  let p1 = insert_user t ~subject:"alice" "Alice" 1980 in
  let p2 = insert_user t ~subject:"bob" "Bob" 1985 in
  let p3 = insert_user t ~subject:"alice" "Alice2" 1981 in
  Alcotest.(check (list string)) "list_pds order" [ p1; p2; p3 ]
    (ok (Dbfs.list_pds t ~actor:ded "user"));
  Alcotest.(check (list string)) "alice pds" [ p1; p3 ]
    (ok (Dbfs.pds_of_subject t ~actor:ded "alice"));
  Alcotest.(check (list string)) "subjects" [ "alice"; "bob" ]
    (ok (Dbfs.subjects t ~actor:ded));
  check_int "pd_count" 3 (Dbfs.pd_count t);
  let tn, subj, erased = ok (Dbfs.entry_info t ~actor:ded p2) in
  check_string "info type" "user" tn;
  check_string "info subject" "bob" subj;
  check_bool "not erased" false erased

let test_dbfs_export_subject () =
  let t, _, _ = setup () in
  let _ = insert_user t ~subject:"alice" "Alice" 1980 in
  let _ = insert_user t ~subject:"alice" "Alice2" 1981 in
  let json = ok (Dbfs.export_subject t ~actor:ded "alice") in
  check_bool "array" true (json.[0] = '[');
  check_bool "contains name key" true (contains_sub json "\"name\": \"Alice\"");
  check_bool "contains second record" true (contains_sub json "Alice2")

let test_dbfs_sensitive_region_separation () =
  let t, _, _ = setup () in
  (* user schema defaults to High sensitivity: fsck verifies placement *)
  let _ = insert_user t ~subject:"s" "X" 1990 in
  match Dbfs.fsck t with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "fsck: %s" (String.concat "; " ps)

let test_dbfs_access_hook () =
  let t, _, _ = setup () in
  Dbfs.set_access_hook t (fun ~actor ~op:_ -> actor = "ded");
  check_bool "ded passes" true (Result.is_ok (Dbfs.list_types t ~actor:"ded"));
  (match Dbfs.list_types t ~actor:"rogue-app" with
  | Error (Dbfs.Access_denied _) -> ()
  | _ -> Alcotest.fail "expected denial");
  check_bool "rogue write denied" true
    (Result.is_error
       (Dbfs.insert t ~actor:"rogue-app" ~subject:"s" ~type_name:"user"
          ~record:(user_record "x" 1990)
          ~membrane_of:(fun ~pd_id ->
            M.make ~pd_id ~type_name:"user" ~subject_id:"s" ~origin:M.Subject
              ~consents:[] ~created_at:0 ())));
  check_int "denials counted" 2
    (Rgpdos_util.Stats.Counter.get (Dbfs.stats t) "denials")

let test_dbfs_journal_holds_no_pd () =
  let t, dev, _ = setup () in
  let unique = "JOURNAL-MUST-NOT-SEE-THIS" in
  let _ = insert_user t ~subject:"s" unique 1990 in
  (* metadata-only journaling: every on-device copy of the PD must live in
     the data region; the journal ring (blocks 1..64) and metadata region
     (65..192) must hold none *)
  let data_start = 1 + 64 + 128 in
  let hits = Block_device.scan dev unique in
  check_bool "PD present in data region" true (hits <> []);
  check_int "no PD outside data region" 0
    (List.length (List.filter (fun (b, _) -> b < data_start) hits))

let test_dbfs_persistence_roundtrip () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"alice" "Alice" 1980 in
  Dbfs.checkpoint t;
  let t2 = match Dbfs.crash_and_remount t with Ok x -> x | Error e -> Alcotest.fail e in
  let r = ok (Dbfs.get_record t2 ~actor:ded pd) in
  check_bool "record survives" true (Record.get r "name" = Some (Value.VString "Alice"));
  let m = ok (Dbfs.get_membrane t2 ~actor:ded pd) in
  check_string "membrane survives" pd m.M.pd_id

let test_dbfs_crash_recovery_replays () =
  let t, _, _ = setup () in
  let pd1 = insert_user t ~subject:"a" "One" 1980 in
  Dbfs.checkpoint t;
  (* post-checkpoint ops live only in the metadata journal *)
  let pd2 = insert_user t ~subject:"b" "Two" 1981 in
  ok (Dbfs.delete t ~actor:ded pd1);
  let t2 = match Dbfs.crash_and_remount t with Ok x -> x | Error e -> Alcotest.fail e in
  check_bool "replayed insert" true (Result.is_ok (Dbfs.get_record t2 ~actor:ded pd2));
  check_bool "replayed delete" true (Result.is_error (Dbfs.get_record t2 ~actor:ded pd1));
  (match Dbfs.fsck t2 with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "fsck after recovery: %s" (String.concat "; " ps));
  (* new inserts after recovery must not collide with replayed ids *)
  let pd3 = insert_user t2 ~subject:"c" "Three" 1982 in
  check_bool "fresh id" true (pd3 <> pd2 && pd3 <> pd1)

let test_dbfs_fsck_detects_corruption () =
  let t, dev, _ = setup () in
  let pd = insert_user t ~subject:"s" "Victim" 1990 in
  (* clobber the membrane blocks behind DBFS's back *)
  let m = ok (Dbfs.get_membrane t ~actor:ded pd) in
  ignore m;
  (* find membrane bytes by scanning for the membrane magic *)
  let hits = Block_device.scan dev "MBR1" in
  check_bool "found membrane block" true (hits <> []);
  List.iter (fun (b, _) -> Block_device.write dev b "garbage") hits;
  match Dbfs.fsck t with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fsck should detect clobbered membrane"

let prop_insert_then_get =
  QCheck.Test.make ~name:"insert/get roundtrip for arbitrary records" ~count:40
    QCheck.(
      pair
        (string_gen_of_size Gen.(1 -- 30) Gen.printable)
        (int_range 1850 2026))
    (fun (name, year) ->
      let t, _, _ = make_dbfs () in
      (match Dbfs.create_type t ~actor:ded (user_schema ()) with
      | Ok () -> ()
      | Error e -> failwith (Dbfs.error_to_string e));
      let schema =
        match Dbfs.schema t ~actor:ded "user" with
        | Ok s -> s
        | Error e -> failwith (Dbfs.error_to_string e)
      in
      let record = user_record name year in
      match
        Dbfs.insert t ~actor:ded ~subject:"s" ~type_name:"user" ~record
          ~membrane_of:(fun ~pd_id -> default_membrane schema ~subject:"s" ~pd_id)
      with
      | Error _ -> false
      | Ok pd -> (
          match Dbfs.get_record t ~actor:ded pd with
          | Ok r -> Record.equal r record
          | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* crash-consistency property: a random op script, interrupted by
   crash+remount at an arbitrary point, must agree with a pure model and
   pass fsck. *)

type script_op =
  | S_insert of string * string * int
  | S_update of int * string * int (* victim index, new name/year *)
  | S_delete of int
  | S_erase of int
  | S_checkpoint
  | S_crash

let script_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun s n y -> S_insert (s, n, y))
             (string_size ~gen:(char_range 'a' 'f') (return 3))
             (string_size ~gen:(char_range 'A' 'Z') (return 6))
             (1900 -- 2020));
        (3, map3 (fun i n y -> S_update (i, n, y)) (0 -- 30)
             (string_size ~gen:(char_range 'a' 'z') (return 5))
             (1900 -- 2020));
        (2, map (fun i -> S_delete i) (0 -- 30));
        (2, map (fun i -> S_erase i) (0 -- 30));
        (1, return S_checkpoint);
        (1, return S_crash);
      ])

let pp_script_op = function
  | S_insert (s, n, y) -> Printf.sprintf "insert(%s,%s,%d)" s n y
  | S_update (i, n, y) -> Printf.sprintf "update(%d,%s,%d)" i n y
  | S_delete i -> Printf.sprintf "delete(%d)" i
  | S_erase i -> Printf.sprintf "erase(%d)" i
  | S_checkpoint -> "checkpoint"
  | S_crash -> "crash"

let prop_crash_consistency =
  QCheck.Test.make ~name:"random script + crashes agrees with model" ~count:60
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_script_op ops))
       QCheck.Gen.(list_size (1 -- 25) script_op_gen))
    (fun ops ->
      let t = ref (let t, _, _ = setup () in t) in
      (* model: pd_id -> (record, erased) for entries that must survive *)
      let model : (string, Record.t * bool) Hashtbl.t = Hashtbl.create 16 in
      let inserted = ref [] in
      let nth_pd i =
        match !inserted with
        | [] -> None
        | l -> Some (List.nth l (i mod List.length l))
      in
      let schema = ok (Dbfs.schema !t ~actor:ded "user") in
      List.iter
        (fun op ->
          match op with
          | S_insert (subject, name, year) -> (
              let record = user_record name year in
              match
                Dbfs.insert !t ~actor:ded ~subject ~type_name:"user" ~record
                  ~membrane_of:(fun ~pd_id -> default_membrane schema ~subject ~pd_id)
              with
              | Ok pd_id ->
                  inserted := !inserted @ [ pd_id ];
                  Hashtbl.replace model pd_id (record, false)
              | Error Dbfs.No_space -> ()
              | Error e -> failwith (Dbfs.error_to_string e))
          | S_update (i, name, year) -> (
              match nth_pd i with
              | None -> ()
              | Some pd_id -> (
                  let record = user_record name year in
                  match Dbfs.update_record !t ~actor:ded pd_id record with
                  | Ok () -> Hashtbl.replace model pd_id (record, false)
                  | Error (Dbfs.Erased _ | Dbfs.Unknown_pd _ | Dbfs.No_space) -> ()
                  | Error e -> failwith (Dbfs.error_to_string e)))
          | S_delete i -> (
              match nth_pd i with
              | None -> ()
              | Some pd_id -> (
                  match Dbfs.delete !t ~actor:ded pd_id with
                  | Ok () -> Hashtbl.remove model pd_id
                  | Error (Dbfs.Unknown_pd _) -> ()
                  | Error e -> failwith (Dbfs.error_to_string e)))
          | S_erase i -> (
              match nth_pd i with
              | None -> ()
              | Some pd_id -> (
                  match Dbfs.erase_with !t ~actor:ded pd_id ~seal:(fun _ -> "SEALED") with
                  | Ok () ->
                      let record, _ = Hashtbl.find model pd_id in
                      Hashtbl.replace model pd_id (record, true)
                  | Error (Dbfs.Erased _ | Dbfs.Unknown_pd _ | Dbfs.No_space) -> ()
                  | Error e -> failwith (Dbfs.error_to_string e)))
          | S_checkpoint -> Dbfs.checkpoint !t
          | S_crash -> t := Result.get_ok (Dbfs.crash_and_remount !t))
        ops;
      (* final crash: everything must be recoverable from the device *)
      let recovered = Result.get_ok (Dbfs.crash_and_remount !t) in
      let agrees =
        Hashtbl.fold
          (fun pd_id (record, erased) acc ->
            acc
            &&
            match Dbfs.get_record recovered ~actor:ded pd_id with
            | Ok r -> (not erased) && Record.equal r record
            | Error (Dbfs.Erased _) -> erased
            | Error _ -> false)
          model true
      in
      agrees
      && Dbfs.fsck recovered = Ok ()
      && Dbfs.pd_count recovered = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* decoded membrane/record read cache                                 *)

let counter t name = Rgpdos_util.Stats.Counter.get (Dbfs.stats t) name

let test_cache_hits_on_repeated_access () =
  let t, dev, _ = setup () in
  let pd = insert_user t ~subject:"alice" "Alice" 1990 in
  (* insert populates write-through, so reads hit immediately *)
  check_int "no hits yet" 0 (counter t "cache_hits");
  let m1 = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_int "membrane read hits" 1 (counter t "cache_hits");
  let r1 = ok (Dbfs.get_record t ~actor:ded pd) in
  check_int "record read hits" 2 (counter t "cache_hits");
  check_int "no misses" 0 (counter t "cache_misses");
  check_string "cached record agrees" "Alice"
    (match List.assoc "name" r1 with Value.VString s -> s | _ -> "?");
  (* a fresh mount starts cold: first read misses, second hits, and the
     hit charges the identical simulated device cost as the miss *)
  let clock = Block_device.clock dev in
  let t2 = Result.get_ok (Dbfs.crash_and_remount t) in
  let before_miss = Clock.now clock in
  let m_miss = ok (Dbfs.get_membrane t2 ~actor:ded pd) in
  let miss_cost = Clock.now clock - before_miss in
  check_int "cold after remount" 1 (counter t2 "cache_misses");
  let before_hit = Clock.now clock in
  let m_hit = ok (Dbfs.get_membrane t2 ~actor:ded pd) in
  let hit_cost = Clock.now clock - before_hit in
  check_int "warm on repeat" 1 (counter t2 "cache_hits");
  check_int "hit charges the miss's simulated cost" miss_cost hit_cost;
  check_bool "all three reads agree" true (m1 = m_miss && m_miss = m_hit)

let test_cache_invalidated_by_consent_flip () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"bob" "Bob" 1985 in
  let m = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_bool "purpose1 granted initially" true
    (List.assoc "purpose1" m.M.consents = M.All);
  let hits_before = counter t "cache_hits" in
  let flipped = M.set_consent m ~purpose:"purpose1" M.Denied in
  ok (Dbfs.update_membrane t ~actor:ded pd flipped);
  (* the update invalidated the cached copy: the next read misses and
     must observe the new consent, never the stale cached membrane *)
  let m' = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_int "read after update is a miss" 1 (counter t "cache_misses");
  check_int "no stale hit served" hits_before (counter t "cache_hits");
  check_bool "flip visible" true (List.assoc "purpose1" m'.M.consents = M.Denied);
  (* and the repopulated cache serves the new value *)
  let m'' = ok (Dbfs.get_membrane t ~actor:ded pd) in
  check_int "subsequent read hits" (hits_before + 1) (counter t "cache_hits");
  check_bool "cached value is the new one" true
    (List.assoc "purpose1" m''.M.consents = M.Denied)

let test_cache_invalidated_by_update_record () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"carol" "Carol" 1970 in
  ignore (ok (Dbfs.get_record t ~actor:ded pd));
  ok (Dbfs.update_record t ~actor:ded pd (user_record "Caroline" 1970));
  let r = ok (Dbfs.get_record t ~actor:ded pd) in
  check_string "update visible, not the cached record" "Caroline"
    (match List.assoc "name" r with Value.VString s -> s | _ -> "?")

let test_cache_invalidated_by_erasure () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"dave" "Dave" 1965 in
  (* warm both caches *)
  ignore (ok (Dbfs.get_record t ~actor:ded pd));
  ignore (ok (Dbfs.get_membrane t ~actor:ded pd));
  ok (Dbfs.erase_with t ~actor:ded pd ~seal:(fun _ -> "SEALED"));
  (* the cached plaintext record must be gone, not served *)
  (match Dbfs.get_record t ~actor:ded pd with
  | Error (Dbfs.Erased _) -> ()
  | Ok _ -> Alcotest.fail "erased record served from cache"
  | Error e -> Alcotest.failf "unexpected: %s" (Dbfs.error_to_string e));
  (* the membrane survives erasure but was invalidated: re-read misses *)
  let misses_before = counter t "cache_misses" in
  ignore (ok (Dbfs.get_membrane t ~actor:ded pd));
  check_int "membrane re-read is a miss" (misses_before + 1)
    (counter t "cache_misses")

let test_cache_invalidated_by_delete () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"erin" "Erin" 2000 in
  ignore (ok (Dbfs.get_record t ~actor:ded pd));
  ok (Dbfs.delete t ~actor:ded pd);
  match Dbfs.get_record t ~actor:ded pd with
  | Error (Dbfs.Unknown_pd _) -> ()
  | Ok _ -> Alcotest.fail "deleted record served from cache"
  | Error e -> Alcotest.failf "unexpected: %s" (Dbfs.error_to_string e)

let test_cache_invalidated_by_ttl_sweep () =
  let t, _, _ = setup () in
  let pd = insert_user t ~subject:"frank" "Frank" 1955 in
  ignore (ok (Dbfs.get_record t ~actor:ded pd));
  ignore (ok (Dbfs.get_membrane t ~actor:ded pd));
  (* default user ttl is one year; sweep well past expiry *)
  let audit = Rgpdos_audit.Audit_log.create () in
  let report =
    Rgpdos_gdpr.Ttl_sweeper.sweep ~dbfs:t ~audit ~now:(2 * Clock.year)
      ~mode:Rgpdos_gdpr.Ttl_sweeper.Physical_delete ()
  in
  check_int "swept" 1 report.Rgpdos_gdpr.Ttl_sweeper.removed;
  match Dbfs.get_record t ~actor:ded pd with
  | Error (Dbfs.Unknown_pd _) -> ()
  | Ok _ -> Alcotest.fail "expired record served from cache"
  | Error e -> Alcotest.failf "unexpected: %s" (Dbfs.error_to_string e)

let () =
  Alcotest.run "dbfs"
    [
      ( "schema",
        [
          Alcotest.test_case "validation rules" `Quick test_schema_validation_rules;
          Alcotest.test_case "view fields" `Quick test_schema_view_fields;
          Alcotest.test_case "validate record" `Quick test_schema_validate_record;
          Alcotest.test_case "codec roundtrip" `Quick test_schema_codec_roundtrip;
        ] );
      ( "record",
        [
          Alcotest.test_case "project/redact" `Quick test_record_project_redact;
          Alcotest.test_case "codec roundtrip" `Quick test_record_codec_roundtrip;
          Alcotest.test_case "export json shape" `Quick test_record_export_json_shape;
        ] );
      ( "query",
        [
          Alcotest.test_case "atoms" `Quick test_query_atoms;
          Alcotest.test_case "fails closed" `Quick test_query_fails_closed;
          Alcotest.test_case "connectives" `Quick test_query_connectives;
          Alcotest.test_case "fields" `Quick test_query_fields;
          QCheck_alcotest.to_alcotest prop_query_not_involution;
        ] );
      ( "dbfs",
        [
          Alcotest.test_case "create type, list" `Quick test_dbfs_create_type_and_list;
          Alcotest.test_case "insert/get" `Quick test_dbfs_insert_get;
          Alcotest.test_case "insert unknown type" `Quick test_dbfs_insert_unknown_type;
          Alcotest.test_case "insert invalid record" `Quick test_dbfs_insert_invalid_record;
          Alcotest.test_case "membrane invariant" `Quick test_dbfs_membrane_invariant_enforced;
          Alcotest.test_case "update record" `Quick test_dbfs_update_record;
          Alcotest.test_case "update zeroes old blocks" `Quick test_dbfs_update_zeroes_old_blocks;
          Alcotest.test_case "update membrane + mismatch" `Quick test_dbfs_update_membrane_and_mismatch;
          Alcotest.test_case "copy consistency via lineage" `Quick test_dbfs_copy_consistency;
          Alcotest.test_case "delete leaves no trace" `Quick test_dbfs_delete_leaves_no_trace;
          Alcotest.test_case "crypto-erase workflow" `Quick test_dbfs_erase_with;
          Alcotest.test_case "queries" `Quick test_dbfs_queries;
          Alcotest.test_case "export subject" `Quick test_dbfs_export_subject;
          Alcotest.test_case "sensitive region separation" `Quick test_dbfs_sensitive_region_separation;
          Alcotest.test_case "access hook" `Quick test_dbfs_access_hook;
          Alcotest.test_case "journal holds no PD" `Quick test_dbfs_journal_holds_no_pd;
          Alcotest.test_case "persistence roundtrip" `Quick test_dbfs_persistence_roundtrip;
          Alcotest.test_case "crash recovery replays" `Quick test_dbfs_crash_recovery_replays;
          Alcotest.test_case "fsck detects corruption" `Quick test_dbfs_fsck_detects_corruption;
          QCheck_alcotest.to_alcotest prop_insert_then_get;
          QCheck_alcotest.to_alcotest prop_crash_consistency;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits on repeated access" `Quick
            test_cache_hits_on_repeated_access;
          Alcotest.test_case "consent flip invalidates" `Quick
            test_cache_invalidated_by_consent_flip;
          Alcotest.test_case "update record invalidates" `Quick
            test_cache_invalidated_by_update_record;
          Alcotest.test_case "erasure invalidates" `Quick
            test_cache_invalidated_by_erasure;
          Alcotest.test_case "delete invalidates" `Quick
            test_cache_invalidated_by_delete;
          Alcotest.test_case "ttl sweep invalidates" `Quick
            test_cache_invalidated_by_ttl_sweep;
        ] );
    ]
