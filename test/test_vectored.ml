(* Vectored block IO, the extent allocator, the batched DBFS loads, and
   the BENCH_vectored_io.json artifact machinery (regression gate
   included). *)

module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Json = Rgpdos_util.Json
module Block_device = Rgpdos_block.Block_device
module M = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Dbfs = Rgpdos_dbfs.Dbfs
module E = Rgpdos_workload.Experiments
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ded = "ded"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dbfs error: %s" (Dbfs.error_to_string e)

let counter dev name = Stats.Counter.get (Block_device.stats dev) name

(* ------------------------------------------------------------------ *)
(* block device: vectored requests                                    *)

let vec_config vectored =
  {
    Block_device.block_size = 16;
    block_count = 64;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 1;
    vectored;
    async = false;
    queue_depth = 8;
  }

let make_dev vectored =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:(vec_config vectored) ~clock () in
  (dev, clock)

let test_read_vec_merges_runs () =
  let dev, clock = make_dev true in
  List.iter (fun i -> Block_device.write dev i (Printf.sprintf "b%d" i))
    [ 3; 4; 5; 9 ];
  Block_device.reset_stats dev;
  let t0 = Clock.now clock in
  let got = Block_device.read_vec dev [ 5; 3; 4; 9; 3 ] in
  (* two runs ([3..5] and [9]), four distinct blocks of 16 bytes *)
  check_int "cost = 2 seeks + 64 bytes" ((2 * 10) + 64) (Clock.now clock - t0);
  check_int "vec_reads" 1 (counter dev "vec_reads");
  check_int "merged_runs" 2 (counter dev "merged_runs");
  check_int "reads stay per-block" 4 (counter dev "reads");
  check_int "bytes_read" 64 (counter dev "bytes_read");
  Alcotest.(check (list int)) "ascending distinct indices" [ 3; 4; 5; 9 ]
    (List.map fst got);
  List.iter
    (fun (i, data) ->
      check_bool
        (Printf.sprintf "block %d contents" i)
        true
        (String.length data = 16
        && String.sub data 0 2 = Printf.sprintf "b%d" i))
    got

let test_scalar_config_charges_per_block () =
  let dev, clock = make_dev false in
  let t0 = Clock.now clock in
  ignore (Block_device.read_vec dev [ 3; 4; 5; 9 ]);
  (* vectored=false: one seek per block even for contiguous indices *)
  check_int "cost = 4 seeks + 64 bytes" ((4 * 10) + 64) (Clock.now clock - t0);
  check_int "merged_runs = one per block" 4 (counter dev "merged_runs")

let test_charge_read_vec_matches_read_vec () =
  let dev, clock = make_dev true in
  let indices = [ 7; 8; 9; 20; 22 ] in
  let t0 = Clock.now clock in
  ignore (Block_device.read_vec dev indices);
  let read_cost = Clock.now clock - t0 in
  let stats_after_read = Stats.Counter.to_list (Block_device.stats dev) in
  Block_device.reset_stats dev;
  let t1 = Clock.now clock in
  Block_device.charge_read_vec dev indices;
  check_int "charge-only cost identical" read_cost (Clock.now clock - t1);
  (* cache hits must be indistinguishable in the device accounting too *)
  check_bool "charge-only statistics identical" true
    (Stats.Counter.to_list (Block_device.stats dev) = stats_after_read)

let test_write_vec_last_wins_and_merges () =
  let dev, clock = make_dev true in
  let t0 = Clock.now clock in
  Block_device.write_vec dev [ (7, "first"); (8, "bee"); (7, "second") ];
  (* distinct {7,8}: one run, two blocks *)
  check_int "cost = 1 seek + 32 bytes" (20 + 32) (Clock.now clock - t0);
  check_int "vec_writes" 1 (counter dev "vec_writes");
  check_int "writes stay per-block" 2 (counter dev "writes");
  check_bool "later duplicate wins" true
    (String.sub (Block_device.read dev 7) 0 6 = "second");
  let t1 = Clock.now clock in
  Block_device.write_vec dev [];
  ignore (Block_device.read_vec dev []);
  check_int "empty requests are free" 0 (Clock.now clock - t1)

(* ------------------------------------------------------------------ *)
(* DBFS: extent allocator, zones, zeroing                             *)

(* journal 16 + meta 128: data [145, 512), membranes [145, 236),
   ordinary records [236, 443), High records [443, 512) — a 69-block
   High zone, small enough to fill in a handful of inserts *)
let small_config =
  {
    Block_device.block_size = 512;
    block_count = 512;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

let high_schema () =
  match
    Schema.make ~name:"user"
      ~fields:
        [
          { Schema.fname = "name"; ftype = Value.TString; required = true };
          { Schema.fname = "pwd"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", M.All) ]
      ~default_ttl:Clock.year ~default_sensitivity:M.High ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let low_schema () =
  match
    Schema.make ~name:"note"
      ~fields:[ { Schema.fname = "text"; ftype = Value.TString; required = true } ]
      ~default_consents:[ ("service", M.All) ]
      ~default_ttl:Clock.year ~default_sensitivity:M.Low ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let default_membrane schema ~subject ~pd_id =
  M.make ~pd_id ~type_name:schema.Schema.name ~subject_id:subject
    ~origin:schema.Schema.default_origin
    ~consents:schema.Schema.default_consents ~created_at:0
    ?ttl:schema.Schema.default_ttl
    ~sensitivity:schema.Schema.default_sensitivity
    ~collection:schema.Schema.collection ()

let setup () =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:small_config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:16 in
  ok (Dbfs.create_type t ~actor:ded (high_schema ()));
  ok (Dbfs.create_type t ~actor:ded (low_schema ()));
  (t, dev, clock)

let insert t ~type_name ~subject record =
  let schema = ok (Dbfs.schema t ~actor:ded type_name) in
  ok
    (Dbfs.insert t ~actor:ded ~subject ~type_name ~record
       ~membrane_of:(fun ~pd_id -> default_membrane schema ~subject ~pd_id))

let insert_user t ~subject ~pwd = insert t ~type_name:"user" ~subject
    [ ("name", Value.VString subject); ("pwd", Value.VString pwd) ]

let test_zone_placement () =
  let t, _, _ = setup () in
  let l = Dbfs.layout t in
  check_bool "zones ordered" true
    (l.Dbfs.l_data_start < l.Dbfs.l_rec_start
    && l.Dbfs.l_rec_start < l.Dbfs.l_high_start
    && l.Dbfs.l_high_start < l.Dbfs.l_block_count);
  let high_pd = insert_user t ~subject:"alice" ~pwd:"pw" in
  let low_pd =
    insert t ~type_name:"note" ~subject:"alice"
      [ ("text", Value.VString "memo") ]
  in
  let hrec, hmem = ok (Dbfs.entry_blocks t ~actor:ded high_pd) in
  let lrec, lmem = ok (Dbfs.entry_blocks t ~actor:ded low_pd) in
  check_bool "High record blocks in the High zone" true
    (hrec <> [] && List.for_all (fun b -> b >= l.Dbfs.l_high_start) hrec);
  check_bool "ordinary record blocks below the High zone" true
    (lrec <> []
    && List.for_all
         (fun b -> b >= l.Dbfs.l_rec_start && b < l.Dbfs.l_high_start)
         lrec);
  List.iter
    (fun mem ->
      check_bool "membrane blocks in the membrane zone" true
        (mem <> []
        && List.for_all
             (fun b -> b >= l.Dbfs.l_data_start && b < l.Dbfs.l_rec_start)
             mem))
    [ hmem; lmem ]

let contiguous = function
  | [] -> true
  | b0 :: rest ->
      fst
        (List.fold_left (fun (okc, prev) b -> (okc && b = prev + 1, b)) (true, b0)
           rest)

let test_extent_is_contiguous () =
  let t, _, _ = setup () in
  (* ~1200-byte payload: three 512-byte blocks *)
  let pd = insert_user t ~subject:"bob" ~pwd:(String.make 1200 'x') in
  let rec_blocks, _ = ok (Dbfs.entry_blocks t ~actor:ded pd) in
  check_bool "multi-block record" true (List.length rec_blocks >= 3);
  check_bool "extent-allocated (contiguous ascending)" true
    (contiguous (List.sort compare rec_blocks))

let test_device_full_rolls_back () =
  let t, dev, _ = setup () in
  ignore (insert_user t ~subject:"carol" ~pwd:"pw");
  let used_before = Block_device.used_blocks dev in
  (* the High zone is 69 blocks (~35 KiB): this cannot fit *)
  (match
     Dbfs.insert t ~actor:ded ~subject:"dave" ~type_name:"user"
       ~record:
         [ ("name", Value.VString "dave");
           ("pwd", Value.VString (String.make 40_000 'z')) ]
       ~membrane_of:(fun ~pd_id ->
         default_membrane (high_schema ()) ~subject:"dave" ~pd_id)
   with
  | Error Dbfs.No_space -> ()
  | Error e -> Alcotest.failf "expected No_space, got %s" (Dbfs.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized insert should fail");
  check_int "no blocks leaked by the failed insert" used_before
    (Block_device.used_blocks dev);
  (match Dbfs.fsck t with
  | Ok () -> ()
  | Error es -> Alcotest.failf "fsck after rollback: %s" (String.concat "; " es));
  (* the freed extent is reusable *)
  ignore (insert_user t ~subject:"erin" ~pwd:"pw")

let test_fragmentation_fallback_roundtrips () =
  let t, _, _ = setup () in
  (* fill the 69-block High zone with 23 three-block records ... *)
  let pds =
    List.init 23 (fun i ->
        insert_user t
          ~subject:(Printf.sprintf "s%02d" i)
          ~pwd:(String.make 1200 (Char.chr (Char.code 'a' + (i mod 26)))))
  in
  (* ... then free every other one: only 3-block holes remain *)
  List.iteri
    (fun i pd -> if i mod 2 = 0 then ok (Dbfs.delete t ~actor:ded pd))
    pds;
  (* a 6-block record cannot get an extent; the scattered fallback must
     still store and round-trip it *)
  let payload = String.make 2700 'q' in
  let pd = insert_user t ~subject:"frag" ~pwd:payload in
  let rec_blocks, _ = ok (Dbfs.entry_blocks t ~actor:ded pd) in
  check_bool "allocation fell back to scattered blocks" true
    (List.length rec_blocks >= 6
    && not (contiguous (List.sort compare rec_blocks)));
  (match List.assoc_opt "pwd" (ok (Dbfs.get_record t ~actor:ded pd)) with
  | Some (Value.VString s) -> check_bool "payload round-trips" true (s = payload)
  | _ -> Alcotest.fail "pwd field missing after scattered store");
  match Dbfs.fsck t with
  | Ok () -> ()
  | Error es -> Alcotest.failf "fsck: %s" (String.concat "; " es)

let test_delete_and_erase_zero_old_blocks () =
  let t, dev, _ = setup () in
  let secret_a = "FORENSIC-MARKER-AAAA" in
  let secret_b = "FORENSIC-MARKER-BBBB" in
  let pd_a = insert_user t ~subject:"ann" ~pwd:secret_a in
  let pd_b = insert_user t ~subject:"ben" ~pwd:secret_b in
  check_bool "secrets reach the medium" true
    (Block_device.scan dev secret_a <> []
    && Block_device.scan dev secret_b <> []);
  ok (Dbfs.delete t ~actor:ded pd_a);
  ok (Dbfs.erase_with t ~actor:ded pd_b ~seal:(fun _ -> "sealed-envelope"));
  check_bool "deleted PD zeroed on the device" true
    (Block_device.scan dev secret_a = []);
  check_bool "erased PD plaintext zeroed on the device" true
    (Block_device.scan dev secret_b = [])

(* ------------------------------------------------------------------ *)
(* batched loads                                                      *)

let test_batch_matches_scalar_api () =
  let t, _, _ = setup () in
  let pds =
    List.init 6 (fun i -> insert_user t ~subject:(Printf.sprintf "u%d" i) ~pwd:"pw")
  in
  let ms = ok (Dbfs.get_membranes t ~actor:ded pds) in
  Alcotest.(check (list string)) "membranes in input order" pds (List.map fst ms);
  List.iter
    (fun (pd, m) ->
      check_bool "batch membrane = scalar membrane" true
        (m = ok (Dbfs.get_membrane t ~actor:ded pd)))
    ms;
  let rs = ok (Dbfs.get_records t ~actor:ded pds) in
  Alcotest.(check (list string)) "records in input order" pds (List.map fst rs);
  List.iter
    (fun (pd, r) ->
      check_bool "batch record = scalar record" true
        (r = Some (ok (Dbfs.get_record t ~actor:ded pd))))
    rs;
  check_bool "unknown pd fails the whole batch" true
    (Result.is_error (Dbfs.get_membranes t ~actor:ded (pds @ [ "pd-bogus" ])));
  ok (Dbfs.erase_with t ~actor:ded (List.hd pds) ~seal:(fun _ -> "sealed"));
  match ok (Dbfs.get_records t ~actor:ded pds) with
  | (_, None) :: rest ->
      check_bool "live entries still load" true
        (List.for_all (fun (_, r) -> r <> None) rest)
  | _ -> Alcotest.fail "erased pd must yield None"

let test_batch_cache_cost_transparency () =
  let t, _, clock = setup () in
  let pds =
    List.init 8 (fun i -> insert_user t ~subject:(Printf.sprintf "w%d" i) ~pwd:"pw")
  in
  let cost f =
    let t0 = Clock.now clock in
    ignore (ok (f ()));
    Clock.now clock - t0
  in
  let cold = cost (fun () -> Dbfs.get_membranes t ~actor:ded pds) in
  let warm = cost (fun () -> Dbfs.get_membranes t ~actor:ded pds) in
  check_bool "batch charges device time" true (cold > 0);
  check_int "warm batch costs exactly the cold cost" cold warm;
  let cold_r = cost (fun () -> Dbfs.get_records t ~actor:ded pds) in
  let warm_r = cost (fun () -> Dbfs.get_records t ~actor:ded pds) in
  check_int "records: warm = cold" cold_r warm_r

(* ------------------------------------------------------------------ *)
(* determinism                                                        *)

let test_e1_deterministic () =
  let r1 = E.e1_ded_stages ~subjects:60 () in
  let r2 = E.e1_ded_stages ~subjects:60 () in
  check_bool "stage_ns byte-identical" true (r1.E.e1_stage_ns = r2.E.e1_stage_ns);
  check_int "total identical" r1.E.e1_total_ns r2.E.e1_total_ns;
  check_bool "device counters identical" true (r1.E.e1_device = r2.E.e1_device)

(* ------------------------------------------------------------------ *)
(* vectored artifact + regression gate                                *)

let fake_result ~subjects ~load_ns : E.e1_result =
  {
    e1_subjects = subjects;
    e1_stage_ns =
      [
        ("ded_type2req", 1000);
        ("ded_load_membrane", load_ns);
        ("ded_load_data", load_ns);
        ("ded_execute", 100_000);
      ];
    e1_total_ns = 101_000 + (2 * load_ns);
    e1_device = [ ("merged_runs", 2); ("reads", 200); ("vec_reads", 2) ];
  }

let test_make_vectored_validates () =
  let scalar = fake_result ~subjects:100 ~load_ns:1_000_000 in
  let vectored = fake_result ~subjects:100 ~load_ns:400_000 in
  let report =
    BR.make_vectored ~scalar ~scalar_wall_ms:1.0 ~vectored ~vectored_wall_ms:1.0 ()
  in
  (match BR.validate_vectored report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "60%%-reduction report invalid: %s" e);
  (match Json.of_string (Json.to_string report) with
  | Ok parsed -> (
      (* float rendering may round, so compare by re-validating *)
      match BR.validate_vectored parsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "parsed report invalid: %s" e)
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e);
  (* a 20% reduction is below the 30% acceptance bar *)
  let shallow = fake_result ~subjects:100 ~load_ns:800_000 in
  check_bool "below-bar reduction rejected" true
    (Result.is_error
       (BR.validate_vectored
          (BR.make_vectored ~scalar ~scalar_wall_ms:1.0 ~vectored:shallow
             ~vectored_wall_ms:1.0 ())))

let test_compare_gate () =
  let old = fake_result ~subjects:100 ~load_ns:1_000_000 in
  let old_report = BR.make ~quick:true ~micro:[] ~e1:(old, 1.0) () in
  (* unchanged / improved: passes *)
  (match BR.compare_e1 ~old_report old with
  | Ok n -> check_bool "all stages checked" true (n >= 4)
  | Error ls -> Alcotest.failf "clean run flagged: %s" (String.concat "; " ls));
  (* a big load-stage regression trips the gate *)
  (match BR.compare_e1 ~old_report (fake_result ~subjects:100 ~load_ns:2_000_000) with
  | Ok _ -> Alcotest.fail "2x load-stage regression not caught"
  | Error lines ->
      check_bool "names the stage" true
        (List.exists
           (fun l ->
             let has s sub =
               let sl = String.length sub in
               let rec go i =
                 i + sl <= String.length s
                 && (String.sub s i sl = sub || go (i + 1))
               in
               go 0
             in
             has l "ded_load_membrane")
           lines));
  (* growth on a sub-epsilon fixed-cost stage does not trip it *)
  let tiny_growth =
    {
      old with
      E.e1_stage_ns =
        List.map
          (fun (s, ns) -> if s = "ded_type2req" then (s, ns + 2_000) else (s, ns))
          old.E.e1_stage_ns;
    }
  in
  match BR.compare_e1 ~old_report tiny_growth with
  | Ok _ -> ()
  | Error ls ->
      Alcotest.failf "epsilon should absorb +20 ns/subject on a 10 ns stage: %s"
        (String.concat "; " ls)

let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_vectored_io.json"; "BENCH_vectored_io.json" ]

let test_committed_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_vectored_io.json missing (regenerate: dune exec bench/main.exe \
         -- vecio --vec-json BENCH_vectored_io.json)"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" path e
      | Ok v -> (
          match BR.validate_vectored v with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" path e))

let () =
  Alcotest.run "vectored-io"
    [
      ( "block-vec",
        [
          Alcotest.test_case "read_vec merges runs" `Quick
            test_read_vec_merges_runs;
          Alcotest.test_case "scalar config charges per block" `Quick
            test_scalar_config_charges_per_block;
          Alcotest.test_case "charge_read_vec parity" `Quick
            test_charge_read_vec_matches_read_vec;
          Alcotest.test_case "write_vec dedup + merge" `Quick
            test_write_vec_last_wins_and_merges;
        ] );
      ( "extent",
        [
          Alcotest.test_case "zone placement" `Quick test_zone_placement;
          Alcotest.test_case "extent is contiguous" `Quick
            test_extent_is_contiguous;
          Alcotest.test_case "device full rolls back" `Quick
            test_device_full_rolls_back;
          Alcotest.test_case "fragmentation fallback round-trips" `Quick
            test_fragmentation_fallback_roundtrips;
          Alcotest.test_case "delete/erase zero old blocks" `Quick
            test_delete_and_erase_zero_old_blocks;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batch matches scalar API" `Quick
            test_batch_matches_scalar_api;
          Alcotest.test_case "cache cost transparency" `Quick
            test_batch_cache_cost_transparency;
        ] );
      ( "determinism",
        [ Alcotest.test_case "E1 runs byte-identical" `Quick test_e1_deterministic ] );
      ( "report",
        [
          Alcotest.test_case "make_vectored validates" `Quick
            test_make_vectored_validates;
          Alcotest.test_case "compare gate" `Quick test_compare_gate;
          Alcotest.test_case "committed artifact" `Quick test_committed_artifact;
        ] );
    ]
