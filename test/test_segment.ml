(* Log-structured segments, group commit and backpressure.

   The load-bearing properties of the segment PR:

   - group commit is a pure batching layer: for ANY op script, flushing
     the journal in windows of 4 or 64 leaves the device byte-identical
     to per-op flushing (window 1) — same journal bytes (the audit
     chain replay reads), same payload extents, same index pages;
   - a crash with records still buffered in the group-commit window
     loses only those records: the restored image mounts, replays and
     repairs clean;
   - erase → compact → remount leaves no plaintext residue of the
     erased records anywhere on the raw image, even though compaction
     relocates their (live) neighbours;
   - backpressure stalls are deterministic simulated-clock charges:
     identical runs agree on the stall count and the final clock. *)

module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Fnv = Rgpdos_util.Fnv
module Block_device = Rgpdos_block.Block_device
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Membrane = Rgpdos_membrane.Membrane
module BR = Rgpdos_workload.Bench_report

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let actor = "ded"

let schema () =
  match
    Schema.make ~name:"reading"
      ~fields:
        [
          { Schema.fname = "payload"; ftype = Value.TString; required = true };
          { Schema.fname = "bucket"; ftype = Value.TInt; required = true };
        ]
      ~default_consents:[ ("service", Membrane.All) ]
      ~collection:[ ("sensor", "test") ]
      ~default_ttl:(20 * Clock.year)
      ~indexed_fields:[ "bucket" ] ()
  with
  | Ok s -> s
  | Error e -> failwith e

let make_store ?(block_size = 512) ?(block_count = 4_096) ?seg_blocks
    ?(window = 1) () =
  let clock = Clock.create () in
  let config =
    { Block_device.default_config with block_size; block_count }
  in
  let dev = Block_device.create ~config ~clock () in
  let t = Dbfs.format ~segmented:true ?seg_blocks dev ~journal_blocks:256 in
  if window > 1 then Dbfs.set_group_commit t window;
  let s = schema () in
  (match Dbfs.create_type t ~actor s with
  | Ok () -> ()
  | Error e -> failwith (Dbfs.error_to_string e));
  (dev, clock, t, s)

(* Membranes are stamped with a FIXED created_at: the windows advance the
   simulated clock differently (that is the point of batching), and the
   byte-identity property must not be polluted by wall-time. *)
let insert_subject ?sensitivity t (s : Schema.t) i =
  let subject = Printf.sprintf "sub-%03d" i in
  let sensitivity =
    Option.value sensitivity ~default:s.Schema.default_sensitivity
  in
  Dbfs.insert t ~actor ~subject ~type_name:"reading"
    ~record:
      [
        ("payload", Value.VString (Printf.sprintf "KEEP-%03d-v000" i));
        ("bucket", Value.VInt (i mod 7));
      ]
    ~membrane_of:(fun ~pd_id ->
      Membrane.make ~pd_id ~type_name:"reading" ~subject_id:subject
        ~origin:s.Schema.default_origin ~consents:s.Schema.default_consents
        ~created_at:0 ?ttl:s.Schema.default_ttl ~sensitivity
        ~collection:s.Schema.collection ())

(* ------------------------------------------------------------------ *)
(* group commit: byte-identical on-disk state across windows           *)

type op = Insert of int | Update of int | Erase of int | Delete of int

(* Apply a script on a fresh segmented store with the given group-commit
   window; invalid ops (update of a never-inserted subject, ...) are
   skipped by the same deterministic rule on every side.  Returns the
   raw device image after an explicit final flush + checkpoint. *)
let run_script ~window ops =
  let pool = 8 in
  let dev, _clock, t, s = make_store ~window () in
  let pds = Array.make pool None in
  let erased = Array.make pool false in
  let version = Array.make pool 0 in
  List.iter
    (fun op ->
      match op with
      | Insert i when pds.(i) = None -> (
          match insert_subject t s i with
          | Ok pd -> pds.(i) <- Some pd
          | Error e -> failwith (Dbfs.error_to_string e))
      | Update i -> (
          match pds.(i) with
          | Some pd when not erased.(i) ->
              version.(i) <- version.(i) + 1;
              let r =
                [
                  ( "payload",
                    Value.VString
                      (Printf.sprintf "KEEP-%03d-v%03d" i version.(i)) );
                  ("bucket", Value.VInt (i mod 7));
                ]
              in
              (match Dbfs.update_record t ~actor pd r with
              | Ok () -> ()
              | Error e -> failwith (Dbfs.error_to_string e))
          | _ -> ())
      | Erase i -> (
          match pds.(i) with
          | Some pd when not erased.(i) ->
              erased.(i) <- true;
              (match
                 Dbfs.erase_with t ~actor pd ~seal:(fun r ->
                     "SEALED:" ^ Fnv.hash64_hex (Record.encode r))
               with
              | Ok () -> ()
              | Error e -> failwith (Dbfs.error_to_string e))
          | _ -> ())
      | Delete i -> (
          match pds.(i) with
          | Some pd ->
              pds.(i) <- None;
              erased.(i) <- false;
              (match Dbfs.delete t ~actor pd with
              | Ok () -> ()
              | Error e -> failwith (Dbfs.error_to_string e))
          | _ -> ())
      | Insert _ -> ())
    ops;
  Dbfs.flush_journal t;
  Dbfs.checkpoint t;
  (Block_device.snapshot dev, Dbfs.stats t)

let op_gen =
  QCheck.Gen.(
    pair (int_range 0 3) (int_range 0 7) >|= fun (k, i) ->
    match k with
    | 0 -> Insert i
    | 1 -> Update i
    | 2 -> Erase i
    | _ -> Delete i)

let op_print = function
  | Insert i -> Printf.sprintf "Insert %d" i
  | Update i -> Printf.sprintf "Update %d" i
  | Erase i -> Printf.sprintf "Erase %d" i
  | Delete i -> Printf.sprintf "Delete %d" i

let prop_group_commit_byte_identical =
  QCheck.Test.make
    ~name:"windows 1/4/64 leave byte-identical images for any script"
    ~count:25
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map op_print ops))
       QCheck.Gen.(list_size (5 -- 40) op_gen))
    (fun ops ->
      let base, _ = run_script ~window:1 ops in
      List.for_all
        (fun w ->
          let img, st = run_script ~window:w ops in
          (* batching must actually have happened when ops did *)
          let batches = Stats.Counter.get st "committed_batches" in
          let batched = Stats.Counter.get st "batched_ops" in
          img = base && batched >= batches)
        [ 4; 64 ])

(* window 1 is the exact old path: no batch accounting at all *)
let test_window_one_no_batches () =
  let _, st = run_script ~window:1 [ Insert 0; Update 0; Update 1; Erase 0 ] in
  check_int "no committed_batches at window 1" 0
    (Stats.Counter.get st "committed_batches");
  check_int "no batched_ops at window 1" 0 (Stats.Counter.get st "batched_ops")

(* ------------------------------------------------------------------ *)
(* crash with records still buffered in the window                     *)

let test_crash_between_batches_replays_cleanly () =
  let dev, _clock, t, s = make_store ~window:8 () in
  (* three full subjects reach the device in committed batches *)
  let durable =
    List.map
      (fun i ->
        match insert_subject t s i with
        | Ok pd -> pd
        | Error e -> failwith (Dbfs.error_to_string e))
      [ 0; 1; 2 ]
  in
  Dbfs.flush_journal t;
  let batches = Stats.Counter.get (Dbfs.stats t) "committed_batches" in
  check_bool "flush committed at least one batch" true (batches > 0);
  (* more records enter the window but never flush: the crash image is
     taken with them buffered *)
  (match insert_subject t s 3 with Ok _ -> () | Error e -> failwith
    (Dbfs.error_to_string e));
  (match insert_subject t s 4 with Ok _ -> () | Error e -> failwith
    (Dbfs.error_to_string e));
  let image = Block_device.snapshot dev in
  (* restore into a fresh device: the unflushed tail is simply absent *)
  let clock' = Clock.create () in
  let dev' =
    Block_device.create
      ~config:
        { Block_device.default_config with block_size = 512;
          block_count = 4_096 }
      ~clock:clock' ()
  in
  Block_device.restore dev' image;
  match Dbfs.mount dev' with
  | Error e -> Alcotest.fail ("mount after crash failed: " ^ e)
  | Ok t' ->
      let rep = Dbfs.fsck_repair t' in
      check_bool "fsck clean after crash mid-window" true rep.Dbfs.rr_clean;
      check_int "no quarantine" 0 (List.length rep.Dbfs.rr_quarantined);
      List.iter
        (fun pd ->
          check_bool "durable record survives" true
            (Result.is_ok (Dbfs.get_record t' ~actor pd)))
        durable

(* ------------------------------------------------------------------ *)
(* erase -> compact -> remount -> zero residue                         *)

let test_erase_compact_remount_no_residue () =
  let dev, _clock, t, s = make_store () in
  let pds =
    List.map
      (fun i ->
        let subject = Printf.sprintf "sub-%03d" i in
        let doomed = i mod 3 = 0 in
        let tag = if doomed then "GONE" else "KEEP" in
        match
          Dbfs.insert t ~actor ~subject ~type_name:"reading"
            ~record:
              [
                ( "payload",
                  Value.VString (Printf.sprintf "%s-%03d-PAYLOAD" tag i) );
                ("bucket", Value.VInt (i mod 7));
              ]
            ~membrane_of:(fun ~pd_id ->
              Membrane.make ~pd_id ~type_name:"reading" ~subject_id:subject
                ~origin:s.Schema.default_origin
                ~consents:s.Schema.default_consents ~created_at:0
                ?ttl:s.Schema.default_ttl
                ~sensitivity:s.Schema.default_sensitivity
                ~collection:s.Schema.collection ())
        with
        | Ok pd -> (i, pd, doomed)
        | Error e -> failwith (Dbfs.error_to_string e))
      (List.init 120 Fun.id)
  in
  (* churn the keepers so compaction has relocation work around the
     erased extents *)
  List.iter
    (fun (i, pd, doomed) ->
      if not doomed then
        match
          Dbfs.update_record t ~actor pd
            [
              ("payload", Value.VString (Printf.sprintf "KEEP-%03d-v001" i));
              ("bucket", Value.VInt (i mod 7));
            ]
        with
        | Ok () -> ()
        | Error e -> failwith (Dbfs.error_to_string e))
    pds;
  List.iter
    (fun (_, pd, doomed) ->
      if doomed then
        match
          Dbfs.erase_with t ~actor pd ~seal:(fun r ->
              "SEALED:" ^ Fnv.hash64_hex (Record.encode r))
        with
        | Ok () -> ()
        | Error e -> failwith (Dbfs.error_to_string e))
    pds;
  ignore (Dbfs.compact t ~max_victims:64 ~liveness_pct:75.0);
  Dbfs.flush_journal t;
  Dbfs.checkpoint t;
  check_int "no GONE residue on the live image" 0
    (List.length (Block_device.scan dev "GONE-"));
  (* remount the raw image and look again with fresh eyes *)
  let clock' = Clock.create () in
  let dev' =
    Block_device.create
      ~config:
        { Block_device.default_config with block_size = 512;
          block_count = 4_096 }
      ~clock:clock' ()
  in
  Block_device.restore dev' (Block_device.snapshot dev);
  (match Dbfs.mount dev' with
  | Error e -> Alcotest.fail ("remount failed: " ^ e)
  | Ok t' ->
      let rep = Dbfs.fsck_repair t' in
      check_bool "fsck clean after compaction" true rep.Dbfs.rr_clean);
  check_int "no GONE residue after remount" 0
    (List.length (Block_device.scan dev' "GONE-"));
  (* keepers were relocated, not lost *)
  check_bool "keeper survives compaction" true
    (List.for_all
       (fun (_, pd, doomed) ->
         doomed || Result.is_ok (Dbfs.get_record t ~actor pd))
       pds)

(* ------------------------------------------------------------------ *)
(* backpressure: deterministic stalls                                  *)

(* Giant segments on a small device, churn split across the ordinary
   and the high-sensitivity record zones: each zone's OPEN segment
   accumulates dead versions the compactor cannot touch (only sealed
   segments are victims), so the combined dirty backlog genuinely
   crosses the backpressure threshold and the stall path runs. *)
let backpressure_run () =
  let dev, clock, t, s =
    make_store ~block_count:2_048 ~seg_blocks:240 ()
  in
  let insert sens i =
    match insert_subject ~sensitivity:sens t s i with
    | Ok pd -> pd
    | Error e -> failwith (Dbfs.error_to_string e)
  in
  let churn pd rounds =
    for v = 1 to rounds do
      match
        Dbfs.update_record t ~actor pd
          [
            ("payload", Value.VString (Printf.sprintf "KEEP-000-v%03d" v));
            ("bucket", Value.VInt 0);
          ]
      with
      | Ok () -> ()
      | Error e -> failwith (Dbfs.error_to_string e)
    done
  in
  let low = insert Membrane.Low 0 in
  let high = insert Membrane.High 1 in
  churn low 230;
  churn high 100;
  let st = Dbfs.stats t in
  ( Stats.Counter.get st "backpressure_stalls",
    Stats.Counter.get st "backpressure_stall_ns",
    Clock.now clock,
    Block_device.snapshot dev )

let test_backpressure_deterministic () =
  let stalls_a, ns_a, clock_a, img_a = backpressure_run () in
  let stalls_b, ns_b, clock_b, img_b = backpressure_run () in
  check_bool "churn actually crossed the backpressure threshold" true
    (stalls_a > 0);
  check_int "stall count deterministic" stalls_a stalls_b;
  check_int "stall time deterministic" ns_a ns_b;
  check_int "simulated clock deterministic" clock_a clock_b;
  check_bool "device image deterministic" true (img_a = img_b)

(* ------------------------------------------------------------------ *)
(* the committed benchmark artifact                                    *)

let test_committed_artifact_validates () =
  let path =
    if Sys.file_exists "BENCH_segment_io.json" then "BENCH_segment_io.json"
    else "../BENCH_segment_io.json"
  in
  match BR.read_file path with
  | None -> Alcotest.fail "read BENCH_segment_io.json failed"
  | Some report -> (
      (match BR.validate_segment report with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("committed artifact invalid: " ^ e));
      match BR.segment_ingest_of report with
      | None -> Alcotest.fail "no segmented ingest figure in artifact"
      | Some mb_s ->
          check_bool "positive sustained ingest" true (mb_s > 0.0))

let () =
  Alcotest.run "segments"
    [
      ( "group-commit",
        [
          QCheck_alcotest.to_alcotest prop_group_commit_byte_identical;
          Alcotest.test_case "window 1 is the exact old path" `Quick
            test_window_one_no_batches;
          Alcotest.test_case "crash mid-window replays clean" `Quick
            test_crash_between_batches_replays_cleanly;
        ] );
      ( "compaction",
        [
          Alcotest.test_case "erase+compact+remount: zero residue" `Quick
            test_erase_compact_remount_no_residue;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "stalls are deterministic" `Quick
            test_backpressure_deterministic;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "committed BENCH_segment_io.json validates"
            `Quick test_committed_artifact_validates;
        ] );
    ]
