module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Block_device = Rgpdos_block.Block_device
module Jfs = Rgpdos_journalfs.Journalfs

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let small_config =
  {
    Block_device.block_size = 512;
    block_count = 1024;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

let make_dev ?(config = small_config) () =
  let clock = Clock.create () in
  (Block_device.create ~config ~clock (), clock)

let ok_or_fail = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected fs error: %s" (Jfs.error_to_string e)

let mount_or_fail dev =
  match Jfs.mount dev with Ok fs -> fs | Error e -> Alcotest.failf "mount: %s" e

(* ------------------------------------------------------------------ *)
(* Block device                                                       *)

let test_dev_read_unwritten_zeros () =
  let dev, _ = make_dev () in
  check_string "zeros" (String.make 512 '\000') (Block_device.read dev 5)

let test_dev_write_read_roundtrip () =
  let dev, _ = make_dev () in
  Block_device.write dev 3 "hello";
  let b = Block_device.read dev 3 in
  check_string "padded roundtrip" ("hello" ^ String.make 507 '\000') b

let test_dev_out_of_range () =
  let dev, _ = make_dev () in
  Alcotest.check_raises "read oob" (Block_device.Out_of_range 5000) (fun () ->
      ignore (Block_device.read dev 5000));
  Alcotest.check_raises "negative" (Block_device.Out_of_range (-1)) (fun () ->
      Block_device.write dev (-1) "x")

let test_dev_oversized_write () =
  let dev, _ = make_dev () in
  Alcotest.check_raises "too big"
    (Invalid_argument "Block_device.write: data larger than block") (fun () ->
      Block_device.write dev 0 (String.make 513 'x'))

let test_dev_charges_time () =
  let dev, clock = make_dev () in
  let t0 = Clock.now clock in
  Block_device.write dev 0 "data";
  check_bool "time advanced" true (Clock.now clock > t0);
  let t1 = Clock.now clock in
  ignore (Block_device.read dev 0);
  check_bool "read cheaper than write" true (Clock.now clock - t1 < t1 - t0)

let test_dev_stats () =
  let dev, _ = make_dev () in
  Block_device.write dev 0 "a";
  Block_device.write dev 1 "b";
  ignore (Block_device.read dev 0);
  let s = Block_device.stats dev in
  check_int "writes" 2 (Rgpdos_util.Stats.Counter.get s "writes");
  check_int "reads" 1 (Rgpdos_util.Stats.Counter.get s "reads");
  Block_device.reset_stats dev;
  check_int "reset" 0 (Rgpdos_util.Stats.Counter.get s "writes")

let test_dev_trim_and_used () =
  let dev, _ = make_dev () in
  check_int "initially empty" 0 (Block_device.used_blocks dev);
  Block_device.write dev 0 "a";
  Block_device.write dev 1 "b";
  check_int "two used" 2 (Block_device.used_blocks dev);
  Block_device.trim dev 0;
  check_int "one after trim" 1 (Block_device.used_blocks dev);
  check_string "trimmed reads zero" (String.make 512 '\000') (Block_device.read dev 0)

let test_dev_fault_injection () =
  let dev, _ = make_dev () in
  Block_device.write dev 7 "x";
  Block_device.inject_fault dev 7;
  Alcotest.check_raises "faulted" (Block_device.Faulted 7) (fun () ->
      ignore (Block_device.read dev 7));
  Block_device.clear_fault dev 7;
  check_bool "readable again" true (String.length (Block_device.read dev 7) = 512)

let test_dev_snapshot_restore () =
  let dev, _ = make_dev () in
  Block_device.write dev 2 "before";
  let snap = Block_device.snapshot dev in
  Block_device.write dev 2 "after!";
  Block_device.restore dev snap;
  check_string "restored" ("before" ^ String.make 506 '\000') (Block_device.read dev 2)

let test_dev_scan_within_block () =
  let dev, _ = make_dev () in
  Block_device.write dev 4 "xxNEEDLExx";
  (match Block_device.scan dev "NEEDLE" with
  | [ (4, 2) ] -> ()
  | hits -> Alcotest.failf "unexpected hits: %d" (List.length hits));
  check_int "no match" 0 (List.length (Block_device.scan dev "ABSENT"))

let test_dev_scan_across_boundary () =
  let dev, _ = make_dev () in
  (* place "SPLIT" straddling blocks 0 and 1 *)
  Block_device.write dev 0 (String.make 509 'a' ^ "SPL");
  Block_device.write dev 1 ("IT" ^ String.make 100 'b');
  match Block_device.scan dev "SPLIT" with
  | [ (0, 509) ] -> ()
  | hits ->
      Alcotest.failf "expected boundary hit, got %s"
        (String.concat ","
           (List.map (fun (b, o) -> Printf.sprintf "(%d,%d)" b o) hits))

(* ------------------------------------------------------------------ *)
(* Journalfs: basic namespace                                         *)

let make_fs () =
  let dev, clock = make_dev () in
  (Jfs.format dev ~journal_blocks:32, dev, clock)

let test_fs_create_write_read () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/hello.txt" "hello world");
  check_string "read back" "hello world" (ok_or_fail (Jfs.read_file fs "/hello.txt"))

let test_fs_multiblock_file () =
  let fs, _, _ = make_fs () in
  let data = String.init 2000 (fun i -> Char.chr (i mod 256)) in
  ok_or_fail (Jfs.write_file fs "/big" data);
  check_string "multiblock roundtrip" data (ok_or_fail (Jfs.read_file fs "/big"))

let test_fs_empty_file () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.create fs "/empty");
  check_string "empty" "" (ok_or_fail (Jfs.read_file fs "/empty"))

let test_fs_overwrite () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/f" "first version, quite long");
  ok_or_fail (Jfs.write_file fs "/f" "second");
  check_string "overwritten" "second" (ok_or_fail (Jfs.read_file fs "/f"))

let test_fs_append () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.append_file fs "/log" "line1\n");
  ok_or_fail (Jfs.append_file fs "/log" "line2\n");
  check_string "appended" "line1\nline2\n" (ok_or_fail (Jfs.read_file fs "/log"))

let test_fs_directories () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/a");
  ok_or_fail (Jfs.mkdir fs "/a/b");
  ok_or_fail (Jfs.write_file fs "/a/b/deep.txt" "nested");
  check_string "nested read" "nested" (ok_or_fail (Jfs.read_file fs "/a/b/deep.txt"));
  Alcotest.(check (list string)) "listing" [ "b" ] (ok_or_fail (Jfs.list_dir fs "/a"))

let test_fs_errors () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/d");
  ok_or_fail (Jfs.write_file fs "/f" "x");
  check_bool "read missing" true (Result.is_error (Jfs.read_file fs "/missing"));
  check_bool "mkdir exists" true (Result.is_error (Jfs.mkdir fs "/d"));
  check_bool "create over file" true (Result.is_error (Jfs.create fs "/f"));
  check_bool "read dir" true (Result.is_error (Jfs.read_file fs "/d"));
  check_bool "write dir" true (Result.is_error (Jfs.write_file fs "/d" "x"));
  check_bool "listdir on file" true (Result.is_error (Jfs.list_dir fs "/f"));
  check_bool "relative path" true (Result.is_error (Jfs.create fs "no-slash"));
  check_bool "dotdot rejected" true (Result.is_error (Jfs.read_file fs "/../etc"))

let test_fs_delete () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/f" "data");
  ok_or_fail (Jfs.delete fs "/f");
  check_bool "gone" false (Jfs.exists fs "/f");
  check_bool "delete again fails" true (Result.is_error (Jfs.delete fs "/f"))

let test_fs_delete_nonempty_dir () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/d");
  ok_or_fail (Jfs.write_file fs "/d/f" "x");
  check_bool "refuses" true (Result.is_error (Jfs.delete fs "/d"));
  ok_or_fail (Jfs.delete fs "/d/f");
  ok_or_fail (Jfs.delete fs "/d");
  check_bool "dir gone" false (Jfs.exists fs "/d")

let test_fs_rename () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/dir");
  ok_or_fail (Jfs.write_file fs "/old" "content");
  ok_or_fail (Jfs.rename fs "/old" "/dir/new");
  check_bool "old gone" false (Jfs.exists fs "/old");
  check_string "moved" "content" (ok_or_fail (Jfs.read_file fs "/dir/new"))

let test_fs_rename_into_own_subtree_refused () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/a");
  ok_or_fail (Jfs.mkdir fs "/a/b");
  check_bool "dir into itself" true (Result.is_error (Jfs.rename fs "/a" "/a/c"));
  check_bool "dir into grandchild" true
    (Result.is_error (Jfs.rename fs "/a" "/a/b/c"));
  (* legitimate renames still work *)
  ok_or_fail (Jfs.mkdir fs "/other");
  ok_or_fail (Jfs.rename fs "/a/b" "/other/b");
  check_bool "moved out" true (Jfs.exists fs "/other/b");
  (match Jfs.fsck fs with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "fsck: %s" (String.concat "; " ps))

let test_fs_stat () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/f" "12345");
  let st = ok_or_fail (Jfs.stat fs "/f") in
  check_int "size" 5 st.Jfs.size;
  check_bool "not dir" false st.Jfs.is_dir;
  ok_or_fail (Jfs.mkdir fs "/d");
  check_bool "dir" true (ok_or_fail (Jfs.stat fs "/d")).Jfs.is_dir

let test_fs_no_space () =
  let dev, _ = make_dev () in
  let fs = Jfs.format dev ~journal_blocks:900 in
  (* tiny data region left: 1024 - 1 - 900 - 64 = 59 blocks *)
  let big = String.make (100 * 512) 'x' in
  match Jfs.write_file fs "/big" big with
  | Error Jfs.No_space -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Jfs.error_to_string e)
  | Ok () -> Alcotest.fail "expected No_space"

let test_fs_fsck_clean () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.mkdir fs "/a");
  ok_or_fail (Jfs.write_file fs "/a/f" (String.make 1500 'y'));
  ok_or_fail (Jfs.delete fs "/a/f");
  ok_or_fail (Jfs.write_file fs "/g" "z");
  match Jfs.fsck fs with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "fsck: %s" (String.concat "; " ps)

(* ------------------------------------------------------------------ *)
(* Journalfs: durability                                              *)

let test_fs_mount_after_checkpoint () =
  let fs, dev, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/persist" "durable data");
  Jfs.checkpoint fs;
  let fs2 = mount_or_fail dev in
  check_string "after remount" "durable data" (ok_or_fail (Jfs.read_file fs2 "/persist"))

let test_fs_crash_recovery_replays_journal () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/a" "alpha");
  Jfs.checkpoint fs;
  (* ops after the checkpoint live only in the journal *)
  ok_or_fail (Jfs.write_file fs "/b" "beta");
  ok_or_fail (Jfs.mkdir fs "/dir");
  ok_or_fail (Jfs.write_file fs "/dir/c" "gamma");
  ok_or_fail (Jfs.delete fs "/a");
  let fs2 = match Jfs.crash_and_remount fs with Ok f -> f | Error e -> Alcotest.fail e in
  check_string "journaled write" "beta" (ok_or_fail (Jfs.read_file fs2 "/b"));
  check_string "journaled nested write" "gamma" (ok_or_fail (Jfs.read_file fs2 "/dir/c"));
  check_bool "journaled delete" false (Jfs.exists fs2 "/a");
  (match Jfs.fsck fs2 with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "fsck after recovery: %s" (String.concat "; " ps))

let test_fs_recovery_idempotent () =
  let fs, _, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/x" "one");
  ok_or_fail (Jfs.write_file fs "/x" "two");
  let fs2 = Result.get_ok (Jfs.crash_and_remount fs) in
  let fs3 = Result.get_ok (Jfs.crash_and_remount fs2) in
  check_string "double recovery" "two" (ok_or_fail (Jfs.read_file fs3 "/x"))

let test_fs_journal_auto_checkpoint_on_wrap () =
  let dev, _ = make_dev () in
  let fs = Jfs.format dev ~journal_blocks:4 in
  (* 4 * 512 = 2 KiB journal; push far more data through it *)
  for i = 0 to 19 do
    ok_or_fail (Jfs.write_file fs (Printf.sprintf "/f%d" i) (String.make 300 'd'))
  done;
  for i = 0 to 19 do
    check_string "still readable" (String.make 300 'd')
      (ok_or_fail (Jfs.read_file fs (Printf.sprintf "/f%d" i)))
  done;
  let fs2 = Result.get_ok (Jfs.crash_and_remount fs) in
  check_string "recovered after wraps" (String.make 300 'd')
    (ok_or_fail (Jfs.read_file fs2 "/f19"))

(* ------------------------------------------------------------------ *)
(* Journalfs: the GDPR-relevant leak behaviour (experiment E3's core)  *)

let secret = "SSN:123-45-6789-SECRET"

let test_fs_delete_leaks_in_free_blocks () =
  let fs, dev, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/pd" secret);
  ok_or_fail (Jfs.delete fs "/pd");
  (* plain delete: data still on the medium *)
  check_bool "forensic scan finds deleted PD" true
    (List.length (Block_device.scan dev secret) > 0)

let test_fs_secure_delete_still_leaks_via_journal () =
  let fs, dev, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/pd" secret);
  ok_or_fail (Jfs.delete ~secure:true fs "/pd");
  (* secure delete zeroes the data blocks, but the journaled copy of the
     original write remains: this is the paper's §1 violation channel. *)
  let hits = Block_device.scan dev secret in
  check_bool "journal still holds PD after secure delete" true
    (List.length hits > 0)

let test_fs_scrub_journal_removes_leak () =
  let fs, dev, _ = make_fs () in
  ok_or_fail (Jfs.write_file fs "/pd" secret);
  ok_or_fail (Jfs.delete ~secure:true fs "/pd");
  Jfs.checkpoint fs;
  Jfs.scrub_journal fs;
  check_int "no PD left anywhere" 0 (List.length (Block_device.scan dev secret))

let test_fs_journal_stats () =
  let fs, _, _ = make_fs () in
  let live0, _ = Jfs.journal_stats fs in
  check_int "fresh journal empty" 0 live0;
  ok_or_fail (Jfs.write_file fs "/f" "x");
  let live1, blocks1 = Jfs.journal_stats fs in
  check_bool "records accumulate" true (live1 > 0 && blocks1 > 0);
  Jfs.checkpoint fs;
  let live2, _ = Jfs.journal_stats fs in
  check_int "checkpoint drains" 0 live2

(* ------------------------------------------------------------------ *)
(* property tests                                                     *)

let arb_fs_script =
  (* scripts of (name, content) writes followed by random deletes *)
  QCheck.(
    list_of_size Gen.(1 -- 15)
      (pair (string_gen_of_size Gen.(1 -- 8) Gen.(char_range 'a' 'z'))
         (string_of_size Gen.(0 -- 600))))

let prop_write_read_consistency =
  QCheck.Test.make ~name:"last write wins after arbitrary script" ~count:60
    arb_fs_script (fun script ->
      let dev, _ = make_dev () in
      let fs = Jfs.format dev ~journal_blocks:64 in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (name, content) ->
          match Jfs.write_file fs ("/" ^ name) content with
          | Ok () -> Hashtbl.replace model name content
          | Error Jfs.No_space -> ()
          | Error e -> failwith (Jfs.error_to_string e))
        script;
      Hashtbl.fold
        (fun name content acc ->
          acc && Jfs.read_file fs ("/" ^ name) = Ok content)
        model true)

let prop_recovery_preserves_files =
  QCheck.Test.make ~name:"crash+remount preserves all files" ~count:40
    arb_fs_script (fun script ->
      let dev, _ = make_dev () in
      let fs = Jfs.format dev ~journal_blocks:64 in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (name, content) ->
          match Jfs.write_file fs ("/" ^ name) content with
          | Ok () -> Hashtbl.replace model name content
          | Error _ -> ())
        script;
      match Jfs.crash_and_remount fs with
      | Error _ -> false
      | Ok fs2 ->
          Hashtbl.fold
            (fun name content acc ->
              acc && Jfs.read_file fs2 ("/" ^ name) = Ok content)
            model true)

let () =
  Alcotest.run "fs"
    [
      ( "block-device",
        [
          Alcotest.test_case "unwritten reads zeros" `Quick test_dev_read_unwritten_zeros;
          Alcotest.test_case "write/read roundtrip" `Quick test_dev_write_read_roundtrip;
          Alcotest.test_case "out of range" `Quick test_dev_out_of_range;
          Alcotest.test_case "oversized write" `Quick test_dev_oversized_write;
          Alcotest.test_case "charges simulated time" `Quick test_dev_charges_time;
          Alcotest.test_case "stats counters" `Quick test_dev_stats;
          Alcotest.test_case "trim and used_blocks" `Quick test_dev_trim_and_used;
          Alcotest.test_case "fault injection" `Quick test_dev_fault_injection;
          Alcotest.test_case "snapshot/restore" `Quick test_dev_snapshot_restore;
          Alcotest.test_case "scan within block" `Quick test_dev_scan_within_block;
          Alcotest.test_case "scan across boundary" `Quick test_dev_scan_across_boundary;
        ] );
      ( "journalfs-namespace",
        [
          Alcotest.test_case "create/write/read" `Quick test_fs_create_write_read;
          Alcotest.test_case "multiblock file" `Quick test_fs_multiblock_file;
          Alcotest.test_case "empty file" `Quick test_fs_empty_file;
          Alcotest.test_case "overwrite" `Quick test_fs_overwrite;
          Alcotest.test_case "append" `Quick test_fs_append;
          Alcotest.test_case "directories" `Quick test_fs_directories;
          Alcotest.test_case "errors" `Quick test_fs_errors;
          Alcotest.test_case "delete" `Quick test_fs_delete;
          Alcotest.test_case "delete nonempty dir" `Quick test_fs_delete_nonempty_dir;
          Alcotest.test_case "rename" `Quick test_fs_rename;
          Alcotest.test_case "rename cycle refused" `Quick
            test_fs_rename_into_own_subtree_refused;
          Alcotest.test_case "stat" `Quick test_fs_stat;
          Alcotest.test_case "no space" `Quick test_fs_no_space;
          Alcotest.test_case "fsck clean" `Quick test_fs_fsck_clean;
        ] );
      ( "journalfs-durability",
        [
          Alcotest.test_case "mount after checkpoint" `Quick test_fs_mount_after_checkpoint;
          Alcotest.test_case "crash recovery replays journal" `Quick
            test_fs_crash_recovery_replays_journal;
          Alcotest.test_case "recovery idempotent" `Quick test_fs_recovery_idempotent;
          Alcotest.test_case "journal wrap auto-checkpoints" `Quick
            test_fs_journal_auto_checkpoint_on_wrap;
          QCheck_alcotest.to_alcotest prop_write_read_consistency;
          QCheck_alcotest.to_alcotest prop_recovery_preserves_files;
        ] );
      ( "journalfs-gdpr-leak",
        [
          Alcotest.test_case "plain delete leaks in free blocks" `Quick
            test_fs_delete_leaks_in_free_blocks;
          Alcotest.test_case "secure delete still leaks via journal" `Quick
            test_fs_secure_delete_still_leaks_via_journal;
          Alcotest.test_case "scrub removes the leak" `Quick
            test_fs_scrub_journal_removes_leak;
          Alcotest.test_case "journal stats" `Quick test_fs_journal_stats;
        ] );
    ]
