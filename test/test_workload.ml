module Prng = Rgpdos_util.Prng
module Population = Rgpdos_workload.Population
module Gdprbench = Rgpdos_workload.Gdprbench
module Runner = Rgpdos_workload.Runner
module Userdb = Rgpdos_baseline.Userdb
module Penalties = Rgpdos_penalties.Penalties

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* population                                                         *)

let test_population_deterministic () =
  let g1 = Prng.create ~seed:3L () in
  let g2 = Prng.create ~seed:3L () in
  let p1 = Population.generate g1 ~n:20 in
  let p2 = Population.generate g2 ~n:20 in
  check_bool "same population" true (p1 = p2)

let test_population_shape () =
  let g = Prng.create ~seed:4L () in
  let pop = Population.generate g ~n:200 in
  check_int "size" 200 (List.length pop);
  let ids = List.map (fun p -> p.Population.subject_id) pop in
  check_int "unique ids" 200 (List.length (List.sort_uniq compare ids));
  List.iter
    (fun p ->
      check_bool "service always granted" true
        (List.assoc "service" p.Population.consent_profile
        = Rgpdos_membrane.Membrane.All);
      check_bool "birth year range" true
        (p.Population.year_of_birth >= 1940 && p.Population.year_of_birth <= 2007))
    pop;
  (* consent skew: marketing denied for most *)
  let marketing_ok =
    List.length
      (List.filter
         (fun p ->
           List.assoc "marketing" p.Population.consent_profile
           <> Rgpdos_membrane.Membrane.Denied)
         pop)
  in
  check_bool "marketing minority" true (marketing_ok < 100)

let test_type_declaration_parses () =
  match Rgpdos_lang.Parser.parse Population.type_declaration with
  | Ok decls -> check_int "one type + three purposes" 4 (List.length decls)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* op generation                                                      *)

let test_mix_weights_sum_to_one () =
  List.iter
    (fun role ->
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 (Gdprbench.mix role) in
      Alcotest.(check (float 1e-9)) (Gdprbench.role_to_string role) 1.0 total)
    Gdprbench.all_roles

let test_generate_respects_mix () =
  let g = Prng.create ~seed:5L () in
  let pop = Population.generate g ~n:50 in
  let ops = Gdprbench.generate g ~role:Gdprbench.Processor ~population:pop ~n:2000 in
  check_int "count" 2000 (List.length ops);
  let count kind =
    List.length (List.filter (fun op -> Gdprbench.op_kind op = kind) ops)
  in
  (* processor mix: 70% purpose_query, 25% subject_read, 5% insert *)
  check_bool "purpose_query dominates" true (count "purpose_query" > 1200);
  check_bool "some reads" true (count "subject_read" > 300);
  check_bool "no erases in processor mix" true (count "erase" = 0)

let test_generate_fresh_subjects_for_inserts () =
  let g = Prng.create ~seed:6L () in
  let pop = Population.generate g ~n:10 in
  let ops = Gdprbench.generate g ~role:Gdprbench.Controller ~population:pop ~n:200 in
  let inserted =
    List.filter_map
      (function Gdprbench.Op_insert p -> Some p.Population.subject_id | _ -> None)
      ops
  in
  check_bool "some inserts" true (inserted <> []);
  check_int "no id collisions" (List.length inserted)
    (List.length (List.sort_uniq compare inserted));
  List.iter
    (fun id ->
      check_bool "fresh vs population" false
        (List.exists (fun p -> p.Population.subject_id = id) pop))
    inserted

(* ------------------------------------------------------------------ *)
(* runner: all three backends execute all roles                       *)

let smoke_run backend_of =
  let g = Prng.create ~seed:7L () in
  let pop = Population.generate g ~n:40 in
  let backend = backend_of pop in
  List.iter
    (fun role ->
      let ops = Gdprbench.generate g ~role ~population:pop ~n:60 in
      let result = Runner.run backend ops in
      check_int
        (Runner.backend_name backend ^ "/" ^ Gdprbench.role_to_string role ^ " errors")
        0 result.Runner.errors;
      check_bool "simulated time advanced" true (result.Runner.total_simulated_ns > 0))
    Gdprbench.all_roles

let test_runner_machine_backend () =
  smoke_run (fun pop -> Runner.machine_backend ~seed:11L ~population:pop)

let test_runner_db_gdpr_backend () =
  smoke_run (fun pop ->
      Runner.baseline_backend ~seed:11L ~mode:Userdb.Gdpr ~population:pop)

let test_runner_db_vanilla_backend () =
  smoke_run (fun pop ->
      Runner.baseline_backend ~seed:11L ~mode:Userdb.Vanilla ~population:pop)

let test_runner_unsupported_counted () =
  let g = Prng.create ~seed:8L () in
  let pop = Population.generate g ~n:10 in
  let backend = Runner.baseline_backend ~seed:1L ~mode:Userdb.Gdpr ~population:pop in
  let result = Runner.run backend [ Gdprbench.Op_verify_audit ] in
  check_int "audit verification unsupported on baseline" 1 result.Runner.unsupported

(* ------------------------------------------------------------------ *)
(* penalties dataset (Figure 1)                                       *)

let test_fig1_totals_grow_yearly () =
  match Penalties.totals_by_year () with
  | [ (2018, t18); (2019, t19); (2020, t20); (2021, t21) ] ->
      check_bool "2018 < 2019" true (t18 < t19);
      check_bool "2019 < 2020" true (t19 < t20);
      check_bool "2020 < 2021" true (t20 < t21);
      (* the paper: "topping 1.2 billion euros in 2021" *)
      check_bool "2021 tops 1.1B" true (t21 > 1_100_000_000);
      check_bool "2021 around 1.2B" true (t21 < 1_400_000_000)
  | other -> Alcotest.failf "unexpected years: %d" (List.length other)

let test_fig1_top_sectors () =
  let top = Penalties.top_sectors () in
  check_int "five sectors" 5 (List.length top);
  (* descending *)
  let amounts = List.map snd top in
  check_bool "sorted desc" true (List.sort (fun a b -> compare b a) amounts = amounts);
  check_bool "retail among top (Amazon 2021)" true
    (List.mem_assoc "retail" top)

let test_fig1_render () =
  let out = Penalties.render_figure1 () in
  check_bool "mentions both panels" true
    (String.length out > 100
    && String.sub out 0 8 = "Figure 1")

let test_dataset_sane () =
  List.iter
    (fun f ->
      check_bool "year range" true (f.Penalties.year >= 2018 && f.Penalties.year <= 2021);
      check_bool "positive amount" true (f.Penalties.amount_eur > 0))
    Penalties.dataset;
  check_bool "has the CNIL doctors fine from the intro" true
    (List.exists
       (fun f -> f.Penalties.amount_eur = 9_000 && f.Penalties.sector = "health")
       (Penalties.fines_in 2020))

let () =
  Alcotest.run "workload"
    [
      ( "population",
        [
          Alcotest.test_case "deterministic" `Quick test_population_deterministic;
          Alcotest.test_case "shape" `Quick test_population_shape;
          Alcotest.test_case "declaration parses" `Quick test_type_declaration_parses;
        ] );
      ( "gdprbench",
        [
          Alcotest.test_case "mix weights" `Quick test_mix_weights_sum_to_one;
          Alcotest.test_case "respects mix" `Quick test_generate_respects_mix;
          Alcotest.test_case "fresh insert subjects" `Quick
            test_generate_fresh_subjects_for_inserts;
        ] );
      ( "runner",
        [
          Alcotest.test_case "machine backend all roles" `Slow test_runner_machine_backend;
          Alcotest.test_case "db-gdpr backend all roles" `Quick test_runner_db_gdpr_backend;
          Alcotest.test_case "db-vanilla backend all roles" `Quick
            test_runner_db_vanilla_backend;
          Alcotest.test_case "unsupported counted" `Quick test_runner_unsupported_counted;
        ] );
      ( "penalties",
        [
          Alcotest.test_case "fig1 totals grow" `Quick test_fig1_totals_grow_yearly;
          Alcotest.test_case "fig1 top sectors" `Quick test_fig1_top_sectors;
          Alcotest.test_case "fig1 render" `Quick test_fig1_render;
          Alcotest.test_case "dataset sane" `Quick test_dataset_sane;
        ] );
    ]
