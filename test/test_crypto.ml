open Rgpdos_crypto
module Prng = Rgpdos_util.Prng
module Hex = Rgpdos_util.Hex

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let bn = Bignum.of_string

let bignum_testable =
  Alcotest.testable Bignum.pp Bignum.equal

(* ------------------------------------------------------------------ *)
(* Bignum: known-value tests                                          *)

let test_bn_of_to_int () =
  List.iter
    (fun i ->
      Alcotest.(check (option int))
        (string_of_int i) (Some i)
        (Bignum.to_int_opt (Bignum.of_int i)))
    [ 0; 1; -1; 42; -42; max_int / 2; min_int / 2; 1 lsl 40 ]

let test_bn_string_roundtrip_known () =
  List.iter
    (fun s -> check_string s s (Bignum.to_string (bn s)))
    [
      "0"; "1"; "-1"; "123456789";
      "340282366920938463463374607431768211456" (* 2^128 *);
      "-99999999999999999999999999999999999999";
    ]

let test_bn_add_sub_known () =
  let a = bn "123456789012345678901234567890" in
  let b = bn "987654321098765432109876543210" in
  check_string "a+b" "1111111110111111111011111111100"
    (Bignum.to_string (Bignum.add a b));
  check_string "b-a" "864197532086419753208641975320"
    (Bignum.to_string (Bignum.sub b a));
  Alcotest.check bignum_testable "a-a" Bignum.zero (Bignum.sub a a)

let test_bn_mul_known () =
  let a = bn "12345678901234567890" in
  let b = bn "98765432109876543210" in
  check_string "a*b" "1219326311370217952237463801111263526900"
    (Bignum.to_string (Bignum.mul a b));
  check_string "sign" "-121932631137021795223746380111126352690"
    (Bignum.to_string (Bignum.mul (Bignum.neg a) (bn "9876543210987654321")))

let test_bn_divmod_known () =
  let a = bn "1000000000000000000000000000000" in
  let b = bn "7" in
  let q, r = Bignum.divmod a b in
  check_string "q" "142857142857142857142857142857" (Bignum.to_string q);
  check_string "r" "1" (Bignum.to_string r);
  (* truncation semantics for negative dividend *)
  let q, r = Bignum.divmod (bn "-7") (bn "2") in
  check_string "neg q" "-3" (Bignum.to_string q);
  check_string "neg r" "-1" (Bignum.to_string r)

let test_bn_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod Bignum.one Bignum.zero))

let test_bn_erem_nonnegative () =
  let r = Bignum.erem (bn "-7") (bn "3") in
  check_string "erem" "2" (Bignum.to_string r)

let test_bn_shifts () =
  let a = bn "12345678901234567890" in
  Alcotest.check bignum_testable "shift roundtrip" a
    (Bignum.shift_right (Bignum.shift_left a 100) 100);
  check_string "1 << 80" "1208925819614629174706176"
    (Bignum.to_string (Bignum.shift_left Bignum.one 80));
  Alcotest.check bignum_testable "shift_right to zero" Bignum.zero
    (Bignum.shift_right a 100)

let test_bn_num_bits_testbit () =
  Alcotest.(check int) "bits of 0" 0 (Bignum.num_bits Bignum.zero);
  Alcotest.(check int) "bits of 1" 1 (Bignum.num_bits Bignum.one);
  Alcotest.(check int) "bits of 2^100" 101
    (Bignum.num_bits (Bignum.shift_left Bignum.one 100));
  check_bool "bit 100 set" true
    (Bignum.testbit (Bignum.shift_left Bignum.one 100) 100);
  check_bool "bit 99 clear" false
    (Bignum.testbit (Bignum.shift_left Bignum.one 100) 99)

let test_bn_gcd_known () =
  check_string "gcd" "6" (Bignum.to_string (Bignum.gcd (bn "48") (bn "18")));
  check_string "gcd big" "12"
    (Bignum.to_string (Bignum.gcd (bn "123456789012") (bn "987654321024")))

let test_bn_mod_inv_known () =
  (match Bignum.mod_inv (bn "3") (bn "11") with
  | Some inv -> check_string "3^-1 mod 11" "4" (Bignum.to_string inv)
  | None -> Alcotest.fail "inverse should exist");
  check_bool "no inverse when not coprime" true
    (Bignum.mod_inv (bn "6") (bn "9") = None)

let test_bn_mod_pow_known () =
  check_string "2^10 mod 1000" "24"
    (Bignum.to_string (Bignum.mod_pow (bn "2") (bn "10") (bn "1000")));
  (* Fermat: a^(p-1) = 1 mod p *)
  let p = bn "1000000007" in
  check_string "fermat" "1"
    (Bignum.to_string (Bignum.mod_pow (bn "123456") (Bignum.sub p Bignum.one) p))

let test_bn_bytes_roundtrip () =
  let a = bn "1311768467463790320" (* 0x123456789abcdef0 *) in
  check_string "to_bytes_be" "\x12\x34\x56\x78\x9a\xbc\xde\xf0"
    (Bignum.to_bytes_be a);
  Alcotest.check bignum_testable "roundtrip" a
    (Bignum.of_bytes_be (Bignum.to_bytes_be a));
  check_string "padded" "\x00\x00\x01" (Bignum.to_bytes_be ~len:3 Bignum.one)

let test_bn_primality_known () =
  let g = Prng.create ~seed:11L () in
  List.iter
    (fun (s, expected) ->
      check_bool s expected (Bignum.is_probable_prime g (bn s)))
    [
      ("2", true); ("3", true); ("4", false); ("17", true); ("561", false)
      (* Carmichael *); ("7919", true); ("1000000007", true);
      ("1000000008", false);
      ("170141183460469231731687303715884105727", true) (* 2^127-1 *);
      ("170141183460469231731687303715884105725", false);
    ]

let test_bn_generate_prime () =
  let g = Prng.create ~seed:21L () in
  let p = Bignum.generate_prime g ~bits:64 in
  Alcotest.(check int) "exact width" 64 (Bignum.num_bits p);
  check_bool "probably prime" true (Bignum.is_probable_prime g p);
  check_bool "odd" true (Bignum.testbit p 0)

(* ------------------------------------------------------------------ *)
(* Bignum: properties                                                 *)

let small_bn_gen =
  QCheck.Gen.map
    (fun (s, neg) ->
      let v = Bignum.of_bytes_be s in
      if neg then Bignum.neg v else v)
    QCheck.Gen.(pair (string_size ~gen:char (0 -- 24)) bool)

let arb_bn =
  QCheck.make ~print:Bignum.to_string small_bn_gen

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:300 (QCheck.pair arb_bn arb_bn)
    (fun (a, b) -> Bignum.equal (Bignum.add a b) (Bignum.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative" ~count:300
    (QCheck.triple arb_bn arb_bn arb_bn) (fun (a, b, c) ->
      Bignum.equal
        (Bignum.add a (Bignum.add b c))
        (Bignum.add (Bignum.add a b) c))

let prop_sub_inverse =
  QCheck.Test.make ~name:"a+b-b = a" ~count:300 (QCheck.pair arb_bn arb_bn)
    (fun (a, b) -> Bignum.equal a (Bignum.sub (Bignum.add a b) b))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    (QCheck.triple arb_bn arb_bn arb_bn) (fun (a, b, c) ->
      Bignum.equal
        (Bignum.mul a (Bignum.add b c))
        (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, |r| < |b|" ~count:300
    (QCheck.pair arb_bn arb_bn) (fun (a, b) ->
      QCheck.assume (not (Bignum.is_zero b));
      let q, r = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) r)
      && Bignum.compare (Bignum.abs r) (Bignum.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:300 arb_bn (fun a ->
      Bignum.equal a (Bignum.of_string (Bignum.to_string a)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 arb_bn (fun a ->
      let a = Bignum.abs a in
      Bignum.equal a (Bignum.of_bytes_be (Bignum.to_bytes_be a)))

let prop_mod_pow_agrees_small =
  QCheck.Test.make ~name:"mod_pow agrees with naive" ~count:100
    QCheck.(triple (int_range 0 50) (int_range 0 12) (int_range 1 50))
    (fun (b, e, m) ->
      let naive =
        let rec go acc k = if k = 0 then acc else go (acc * b mod m) (k - 1) in
        go (1 mod m) e
      in
      Bignum.to_int_opt
        (Bignum.mod_pow (Bignum.of_int b) (Bignum.of_int e) (Bignum.of_int m))
      = Some naive)

(* ------------------------------------------------------------------ *)
(* SHA-256: NIST vectors                                              *)

let test_sha256_nist_vectors () =
  List.iter
    (fun (input, expected) -> check_string input expected (Sha256.hexdigest input))
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "The quick brown fox jumps over the lazy dog",
        "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
    ]

let test_sha256_million_a () =
  (* NIST long-message vector *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed ctx chunk
  done;
  check_string "1M x 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Rgpdos_util.Hex.encode (Sha256.finalize ctx))

let test_sha256_streaming_equals_oneshot () =
  let msg = "hello, streaming world; block boundaries matter 0123456789" in
  let ctx = Sha256.init () in
  String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) msg;
  check_string "streaming = oneshot" (Sha256.digest msg) (Sha256.finalize ctx)

(* padding edge cases: lengths around the 64-byte block boundary and the
   55/56-byte cutoff where the length field spills into an extra block.
   Expected digests computed independently (python3 hashlib). *)
let test_sha256_boundary_lengths () =
  List.iter
    (fun (n, expected) ->
      check_string
        (Printf.sprintf "'a' x %d" n)
        expected
        (Sha256.hexdigest (String.make n 'a')))
    [
      (55, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
      (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
      (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6");
      (63, "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34");
      (64, "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
      (65, "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0");
      (127, "c57e9278af78fa3cab38667bef4ce29d783787a2f731d4e12200270f0c32320a");
      (128, "6836cf13bac400e9105071cd6af47084dfacad4e5e302c94bfed24e013afb73e");
      (129, "c12cb024a2e5551cca0e08fce8f1c5e314555cc3fef6329ee994a3db752166ae");
    ]

let test_sha256_nist_four_block () =
  check_string "896-bit x2 NIST vector"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.hexdigest
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

(* feed sizes chosen to straddle the internal 64-byte block buffer in
   every way: partial fill, exact fill, fill + spill *)
let test_sha256_streaming_chunk_sizes () =
  let msg =
    String.init 1000 (fun i -> Char.chr (((i * 131) + 17) land 0xff))
  in
  let expected = Sha256.digest msg in
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < String.length msg do
        let n = min chunk (String.length msg - !pos) in
        Sha256.feed ctx (String.sub msg !pos n);
        pos := !pos + n
      done;
      check_string
        (Printf.sprintf "chunk=%d" chunk)
        expected (Sha256.finalize ctx))
    [ 1; 7; 63; 64; 65; 127; 128; 129; 999 ]

let test_sha256_streaming_large () =
  (* > 1 MiB through the streaming interface, against an independently
     computed digest (python3 hashlib over the same byte pattern) *)
  let total = 1_500_000 in
  let chunk = 997 in
  let gen off len =
    String.init len (fun i ->
        let j = off + i in
        ((j * 31) + 7) land 0xff |> Char.chr)
  in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  while !pos < total do
    let n = min chunk (total - !pos) in
    Sha256.feed ctx (gen !pos n);
    pos := !pos + n
  done;
  check_string "1.5 MB streamed"
    "8fded0cd134ddf5d8af9fc42f62df1ae422dcad39d2042d2608464a54ef5a0d6"
    (Rgpdos_util.Hex.encode (Sha256.finalize ctx))

let prop_sha256_deterministic_and_sized =
  QCheck.Test.make ~name:"sha256 32 bytes, deterministic" ~count:200
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      let d = Sha256.digest s in
      String.length d = 32 && String.equal d (Sha256.digest s))

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 1 and 2 *)
  let key1 = String.make 20 '\x0b' in
  check_string "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Sha256.hmac ~key:key1 "Hi There"));
  check_string "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_precomputed_key () =
  (* hmac_with over a precomputed key must agree with one-shot hmac for
     every key-length regime: short, block-sized, and > 64 bytes (which
     forces the hash-the-key-first path).  RFC 4231 test case 6 pins the
     long-key case to a published value. *)
  let msg = "The quick brown fox jumps over the lazy dog" in
  List.iter
    (fun key ->
      let hk = Sha256.hmac_key key in
      check_string
        (Printf.sprintf "key len %d" (String.length key))
        (Hex.encode (Sha256.hmac ~key msg))
        (Hex.encode (Sha256.hmac_with hk msg));
      (* the precomputed key is reusable across messages *)
      check_string "reuse"
        (Hex.encode (Sha256.hmac ~key "second message"))
        (Hex.encode (Sha256.hmac_with hk "second message")))
    [ ""; "k"; String.make 20 '\x0b'; String.make 64 'x'; String.make 131 'z' ];
  let key131 = String.make 131 '\xaa' in
  check_string "rfc4231 tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hex.encode
       (Sha256.hmac_with (Sha256.hmac_key key131)
          "Test Using Larger Than Block-Size Key - Hash Key First"))

(* ------------------------------------------------------------------ *)
(* ChaCha20: RFC 8439 vector                                          *)

let test_chacha20_rfc8439 () =
  let key = Hex.decode_exn
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hex.decode_exn "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only \
     one tip for the future, sunscreen would be it."
  in
  let expected =
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
  in
  check_string "rfc8439 ciphertext" expected
    (Hex.encode (Chacha20.encrypt ~key ~nonce ~counter:1 plaintext))

let test_chacha20_keystream_rfc8439 () =
  (* RFC 8439 A.1 test vector #1: all-zero key and nonce, counter 0 *)
  check_string "A.1 #1 keystream"
    "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
     da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
    (Hex.encode
       (Chacha20.keystream ~key:(String.make 32 '\000')
          ~nonce:(String.make 12 '\000') 64));
  (* RFC 8439 §2.3.2 block function vector: counter 1 *)
  let key = Hex.decode_exn
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = Hex.decode_exn "000000090000004a00000000" in
  check_string "2.3.2 block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
     d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Hex.encode (Chacha20.keystream ~key ~nonce ~counter:1 64))

let test_chacha20_partial_blocks () =
  let key = String.make 32 'K' and nonce = String.make 12 'N' in
  let full = Chacha20.keystream ~key ~nonce 256 in
  (* a shorter request is an exact prefix: the generator must not
     round partial final blocks up or down *)
  List.iter
    (fun n ->
      Alcotest.(check int) "exact length" n
        (String.length (Chacha20.keystream ~key ~nonce n));
      check_string
        (Printf.sprintf "prefix %d" n)
        (String.sub full 0 n)
        (Chacha20.keystream ~key ~nonce n))
    [ 0; 1; 63; 64; 65; 127; 128; 130; 255 ];
  (* encrypt = plaintext XOR keystream, including on a partial block *)
  let msg = String.init 130 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let expected =
    String.init 130 (fun i ->
        Char.chr (Char.code msg.[i] lxor Char.code full.[i]))
  in
  check_string "xor identity" expected (Chacha20.encrypt ~key ~nonce msg)

let test_chacha20_involution () =
  let g = Prng.create ~seed:3L () in
  let key = Prng.bytes g 32 and nonce = Prng.bytes g 12 in
  let msg = Prng.bytes g 500 in
  check_string "decrypt . encrypt = id" msg
    (Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce msg))

let test_chacha20_bad_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Chacha20.encrypt ~key:"short" ~nonce:(String.make 12 'x') "m"))

let prop_chacha20_involution =
  QCheck.Test.make ~name:"chacha20 involution" ~count:100
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun msg ->
      let key = String.make 32 'k' and nonce = String.make 12 'n' in
      Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce msg) = msg)

(* ------------------------------------------------------------------ *)
(* RSA                                                                *)

let shared_keypair =
  lazy (Rsa.generate ~bits:256 (Prng.create ~seed:1234L ()))

let test_rsa_roundtrip () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:5L () in
  List.iter
    (fun msg ->
      match Rsa.decrypt kp.Rsa.private_ (Rsa.encrypt g kp.Rsa.public msg) with
      | Ok m -> check_string "roundtrip" msg m
      | Error e -> Alcotest.fail e)
    [ ""; "x"; "hello rsa"; String.make 10 '\x00' ]

let test_rsa_randomized_padding () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:6L () in
  let c1 = Rsa.encrypt g kp.Rsa.public "same message" in
  let c2 = Rsa.encrypt g kp.Rsa.public "same message" in
  check_bool "ciphertexts differ" true (not (String.equal c1 c2))

let test_rsa_wrong_key_fails () =
  let kp = Lazy.force shared_keypair in
  let other = Rsa.generate ~bits:256 (Prng.create ~seed:999L ()) in
  let g = Prng.create ~seed:7L () in
  let c = Rsa.encrypt g kp.Rsa.public "secret" in
  (match Rsa.decrypt other.Rsa.private_ c with
  | Ok m -> check_bool "wrong key must not yield plaintext" false (m = "secret")
  | Error _ -> ());
  check_bool "fingerprints differ" true
    (Rsa.fingerprint kp.Rsa.public <> Rsa.fingerprint other.Rsa.public)

let test_rsa_payload_limit () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:8L () in
  let maxp = Rsa.max_payload kp.Rsa.public in
  check_bool "max payload positive" true (maxp > 0);
  (* at the limit: fine *)
  ignore (Rsa.encrypt g kp.Rsa.public (String.make maxp 'a'));
  Alcotest.check_raises "over the limit"
    (Invalid_argument "Rsa.encrypt: payload too long for modulus") (fun () ->
      ignore (Rsa.encrypt g kp.Rsa.public (String.make (maxp + 1) 'a')))

(* ------------------------------------------------------------------ *)
(* Envelope                                                           *)

let test_envelope_seal_open () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:9L () in
  let payload = "name=Chiraz;ssn=1234567890123;diagnosis=confidential" in
  let env = Envelope.seal g kp.Rsa.public payload in
  (match Envelope.open_ kp.Rsa.private_ env with
  | Ok m -> check_string "opens" payload m
  | Error e -> Alcotest.fail e);
  check_bool "ciphertext hides payload" true
    (env.Envelope.ciphertext <> payload)

let test_envelope_large_payload () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:10L () in
  let payload = Prng.bytes g 10_000 in
  let env = Envelope.seal g kp.Rsa.public payload in
  match Envelope.open_ kp.Rsa.private_ env with
  | Ok m -> check_string "10k payload" payload m
  | Error e -> Alcotest.fail e

let test_envelope_tamper_detected () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:11L () in
  let env = Envelope.seal g kp.Rsa.public "tamper me" in
  let flipped =
    let b = Bytes.of_string env.Envelope.ciphertext in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
    Bytes.to_string b
  in
  check_bool "tamper detected" true
    (Result.is_error
       (Envelope.open_ kp.Rsa.private_ { env with Envelope.ciphertext = flipped }))

let test_envelope_encode_decode () =
  let kp = Lazy.force shared_keypair in
  let g = Prng.create ~seed:12L () in
  let env = Envelope.seal g kp.Rsa.public "persist me" in
  let encoded = Envelope.encode env in
  check_bool "is_envelope" true (Envelope.is_envelope encoded);
  check_bool "plain string is not" false (Envelope.is_envelope "plain data");
  match Envelope.decode encoded with
  | Error e -> Alcotest.fail e
  | Ok env' -> (
      match Envelope.open_ kp.Rsa.private_ env' with
      | Ok m -> check_string "decoded still opens" "persist me" m
      | Error e -> Alcotest.fail e)

let test_envelope_decode_garbage () =
  check_bool "garbage rejected" true (Result.is_error (Envelope.decode "junk"));
  check_bool "truncated rejected" true
    (Result.is_error (Envelope.decode "RGPDENV1000000ff"))

let prop_envelope_roundtrip =
  QCheck.Test.make ~name:"envelope roundtrip" ~count:25
    QCheck.(string_of_size Gen.(0 -- 500))
    (fun payload ->
      let kp = Lazy.force shared_keypair in
      let g = Prng.create ~seed:77L () in
      let env = Envelope.seal g kp.Rsa.public payload in
      match Envelope.open_ kp.Rsa.private_ env with
      | Ok m -> String.equal m payload
      | Error _ -> false)

let () =
  Alcotest.run "crypto"
    [
      ( "bignum",
        [
          Alcotest.test_case "of/to int" `Quick test_bn_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_bn_string_roundtrip_known;
          Alcotest.test_case "add/sub known" `Quick test_bn_add_sub_known;
          Alcotest.test_case "mul known" `Quick test_bn_mul_known;
          Alcotest.test_case "divmod known" `Quick test_bn_divmod_known;
          Alcotest.test_case "div by zero" `Quick test_bn_div_by_zero;
          Alcotest.test_case "erem nonneg" `Quick test_bn_erem_nonnegative;
          Alcotest.test_case "shifts" `Quick test_bn_shifts;
          Alcotest.test_case "num_bits/testbit" `Quick test_bn_num_bits_testbit;
          Alcotest.test_case "gcd" `Quick test_bn_gcd_known;
          Alcotest.test_case "mod_inv" `Quick test_bn_mod_inv_known;
          Alcotest.test_case "mod_pow" `Quick test_bn_mod_pow_known;
          Alcotest.test_case "bytes roundtrip" `Quick test_bn_bytes_roundtrip;
          Alcotest.test_case "primality known" `Quick test_bn_primality_known;
          Alcotest.test_case "generate_prime" `Quick test_bn_generate_prime;
          QCheck_alcotest.to_alcotest prop_add_commutative;
          QCheck_alcotest.to_alcotest prop_add_assoc;
          QCheck_alcotest.to_alcotest prop_sub_inverse;
          QCheck_alcotest.to_alcotest prop_mul_distributes;
          QCheck_alcotest.to_alcotest prop_divmod_identity;
          QCheck_alcotest.to_alcotest prop_string_roundtrip;
          QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
          QCheck_alcotest.to_alcotest prop_mod_pow_agrees_small;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_nist_vectors;
          Alcotest.test_case "NIST four-block" `Quick test_sha256_nist_four_block;
          Alcotest.test_case "boundary lengths" `Quick test_sha256_boundary_lengths;
          Alcotest.test_case "million a" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming" `Quick test_sha256_streaming_equals_oneshot;
          Alcotest.test_case "streaming chunk sizes" `Quick
            test_sha256_streaming_chunk_sizes;
          Alcotest.test_case "streaming >1MiB" `Quick test_sha256_streaming_large;
          Alcotest.test_case "hmac rfc4231" `Quick test_hmac_rfc4231;
          Alcotest.test_case "hmac precomputed key" `Quick test_hmac_precomputed_key;
          QCheck_alcotest.to_alcotest prop_sha256_deterministic_and_sized;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "rfc8439 vector" `Quick test_chacha20_rfc8439;
          Alcotest.test_case "rfc8439 keystream" `Quick
            test_chacha20_keystream_rfc8439;
          Alcotest.test_case "partial blocks" `Quick test_chacha20_partial_blocks;
          Alcotest.test_case "involution" `Quick test_chacha20_involution;
          Alcotest.test_case "bad sizes" `Quick test_chacha20_bad_sizes;
          QCheck_alcotest.to_alcotest prop_chacha20_involution;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "roundtrip" `Quick test_rsa_roundtrip;
          Alcotest.test_case "randomized padding" `Quick test_rsa_randomized_padding;
          Alcotest.test_case "wrong key fails" `Quick test_rsa_wrong_key_fails;
          Alcotest.test_case "payload limit" `Quick test_rsa_payload_limit;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "seal/open" `Quick test_envelope_seal_open;
          Alcotest.test_case "large payload" `Quick test_envelope_large_payload;
          Alcotest.test_case "tamper detected" `Quick test_envelope_tamper_detected;
          Alcotest.test_case "encode/decode" `Quick test_envelope_encode_decode;
          Alcotest.test_case "decode garbage" `Quick test_envelope_decode_garbage;
          QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
        ] );
    ]
