(* Rights-under-load tests: the scheduler's deadline lane (FIFO
   submission-order pin, EDF overtaking, preemption / deadline-miss
   counters, the policy-invariance qcheck property), the DED's
   shard-wave cooperative yield, Sla_bench determinism across domain
   counts, and the committed BENCH_rights_sla.json artifact. *)

module Clock = Rgpdos_util.Clock
module Pool = Rgpdos_util.Pool
module Json = Rgpdos_util.Json
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Resource = Rgpdos_kernel.Resource
module Syscall = Rgpdos_kernel.Syscall
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Machine = Rgpdos.Machine
module SLA = Rgpdos_workload.Sla_bench
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ok = function Ok v -> v | Error e -> Alcotest.fail e
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* scheduler: deadline lane                                           *)

let make_kernels () =
  let r = Resource.create ~cpu_millis:8000 ~mem_pages:10000 in
  let claim owner cpu =
    Result.get_ok (Resource.claim r ~owner ~cpu_millis:cpu ~mem_pages:100)
  in
  let general =
    Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
      ~partition:(claim "general" 4000) ~policy:Syscall.Policy.allow_all ()
  in
  let rgpd =
    Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
      ~partition:(claim "rgpdos" 2000) ~policy:Syscall.Policy.builtin_policy ()
  in
  (general, rgpd)

let make_sched () =
  let general, rgpd = make_kernels () in
  let clock = Clock.create () in
  (Scheduler.create ~clock ~kernels:[ general; rgpd ], clock)

let pd_job id work = { Scheduler.job_id = id; data_class = Scheduler.Pd; work }

(* Satellite regression pin: under FIFO, same-class jobs are served
   strictly in submission order even when every job spans several
   quanta — the head job holds its core slot until completion and an
   unfinished job resumes ahead of the waiting tail.  The pre-EDF
   implementation got this only incidentally from Queue.transfer
   ordering. *)
let test_fifo_submission_order () =
  let sched, _ = make_sched () in
  let ids = List.init 6 (fun i -> Printf.sprintf "j%d" i) in
  List.iter
    (fun id -> ignore (ok (Scheduler.submit sched (pd_job id 2_500_000))))
    ids;
  Scheduler.run_until_idle sched ();
  check_bool "completion order = submission order" true
    (Scheduler.completed sched = ids)

let test_counters_zero_defaults () =
  let sched, _ = make_sched () in
  let cs = Scheduler.counters sched in
  List.iter
    (fun name -> check_int name 0 (List.assoc name cs))
    Scheduler.counter_names

let test_max_queue_depth_high_water () =
  let sched, _ = make_sched () in
  for i = 0 to 4 do
    ignore (ok (Scheduler.submit sched (pd_job (string_of_int i) 1_000_000)))
  done;
  Scheduler.run_until_idle sched ();
  (* the high-water mark survives the drain *)
  check_int "depth sampled at submit" 5
    (List.assoc "max_queue_depth" (Scheduler.counters sched))

(* A rights job submitted behind started batch work overtakes it under
   EDF (counting a preemption and meeting its deadline) but waits its
   turn under FIFO (no preemption, deadline missed). *)
let run_overtake policy =
  let sched, clock = make_sched () in
  Scheduler.set_policy sched policy;
  List.iter
    (fun id -> ignore (ok (Scheduler.submit sched (pd_job id 5_000_000))))
    [ "b1"; "b2"; "b3" ];
  (* let b1 start (two 1 ms quanta) before the rights request arrives *)
  Scheduler.run_round sched 1_000_000;
  Scheduler.run_round sched 1_000_000;
  let deadline = Clock.now clock + 1_600_000 in
  ignore (ok (Scheduler.submit sched ~deadline (pd_job "r" 1_000_000)));
  Scheduler.run_until_idle sched ();
  (sched, Scheduler.completed sched)

let test_edf_rights_overtake_batch () =
  let fifo, fifo_done = run_overtake Scheduler.Fifo in
  let edf, edf_done = run_overtake Scheduler.Edf in
  let pos order id =
    let rec go i = function
      | [] -> Alcotest.failf "%s not completed" id
      | x :: _ when x = id -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  check_int "FIFO serves the right last" 3 (pos fifo_done "r");
  check_int "EDF serves the right first" 0 (pos edf_done "r");
  let c sched name = List.assoc name (Scheduler.counters sched) in
  check_int "FIFO never preempts" 0 (c fifo "preemptions");
  check_bool "EDF preempted the batch head" true (c edf "preemptions" > 0);
  check_int "FIFO missed the deadline" 1 (c fifo "deadline_misses");
  check_int "EDF met the deadline" 0 (c edf "deadline_misses");
  check_int "rights_jobs counted (fifo)" 1 (c fifo "rights_jobs");
  check_int "rights_jobs counted (edf)" 1 (c edf "rights_jobs")

let test_deadline_miss_counter () =
  let sched, _ = make_sched () in
  (* unmeetable: the deadline is in the past by the time the slice ends *)
  ignore (ok (Scheduler.submit sched ~deadline:1 (pd_job "late" 2_000_000)));
  (* comfortably meetable *)
  ignore
    (ok (Scheduler.submit sched ~deadline:1_000_000_000 (pd_job "fine" 1_000)));
  Scheduler.run_until_idle sched ();
  check_int "one miss" 1
    (List.assoc "deadline_misses" (Scheduler.counters sched));
  check_int "both were rights jobs" 2
    (List.assoc "rights_jobs" (Scheduler.counters sched))

(* The policy-invariance property (qcheck-pinned, promised by the mli):
   switching FIFO to EDF changes ordering and latency only — the
   completed-job set and every kernel's aggregate busy time are
   identical, because slices and per-core rates do not depend on the
   policy. *)
let prop_edf_preserves_outcomes_and_busy =
  let gen =
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (triple (int_range 1 30) bool (option (int_range 0 40))))
  in
  QCheck.Test.make ~count:100
    ~name:"EDF = FIFO on completed set and kernel busy time" gen (fun jobs ->
      let run policy =
        let sched, _ = make_sched () in
        Scheduler.set_policy sched policy;
        List.iteri
          (fun i (w, is_pd, dl) ->
            let job =
              {
                Scheduler.job_id = string_of_int i;
                data_class = (if is_pd then Scheduler.Pd else Scheduler.Npd);
                work = w * 137_000;
              }
            in
            let deadline = Option.map (fun d -> d * 1_000_000) dl in
            ignore (ok (Scheduler.submit sched ?deadline job)))
          jobs;
        Scheduler.run_until_idle sched ();
        ( List.sort compare (Scheduler.completed sched),
          Scheduler.kernel_busy_time sched )
      in
      let fifo_done, fifo_busy = run Scheduler.Fifo in
      let edf_done, edf_busy = run Scheduler.Edf in
      fifo_done = edf_done && fifo_busy = edf_busy)

(* ------------------------------------------------------------------ *)
(* DED: shard-wave cooperative yield                                  *)

let declarations =
  {|
type user {
  fields {
    name: string,
    year_of_birthdate: int
  };
  view v_ano { year_of_birthdate };
  consent { purpose3: v_ano };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}

purpose purpose3 {
  description: "count users born after 1990";
  reads: user.v_ano;
  legal_basis: consent;
}
|}

let count_young_impl _ctx inputs =
  let n =
    List.length
      (List.filter
         (fun (i : Processing.pd_input) ->
           match Record.get i.record "year_of_birthdate" with
           | Some (Value.VInt y) -> y > 1990
           | _ -> false)
         inputs)
  in
  Ok (Processing.value_output (Value.VInt n))

let boot_counting_machine ~subjects =
  let m = Machine.boot ~seed:99L () in
  ignore (ok (Machine.load_declarations m declarations));
  for i = 0 to subjects - 1 do
    let consents =
      if i mod 3 = 0 then Some [ ("purpose3", Rgpdos_membrane.Membrane.Denied) ]
      else None
    in
    ignore
      (ok
         (Machine.collect m ~type_name:"user"
            ~subject:(Printf.sprintf "sub-%03d" i)
            ~interface:"web_form:user_form.html"
            ~record:
              [
                ("name", Value.VString (Printf.sprintf "u%d" i));
                ("year_of_birthdate", Value.VInt (1970 + (i mod 40)));
              ]
            ?consents ()))
  done;
  let spec =
    ok
      (Machine.make_processing m ~name:"count_young" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         ~cpu_cost_per_record:4_000 ~shard_reduce:Processing.reduce_int_sum
         count_young_impl)
  in
  ignore (ok (Machine.register_processing m spec));
  m

let invoke_outcome m ?pool ?grain ?yield () =
  ok
    (Machine.invoke m ?pool ?grain ?yield ~name:"count_young"
       ~target:(Ded.All_of_type "user") ())

let same_observables label (a : Ded.outcome) (b : Ded.outcome) =
  check_bool (label ^ ": value") true (a.Ded.value = b.Ded.value);
  check_int (label ^ ": consumed") a.Ded.consumed b.Ded.consumed;
  check_int (label ^ ": filtered") a.Ded.filtered b.Ded.filtered;
  check_int (label ^ ": overread") a.Ded.overread b.Ded.overread

let test_ded_yield_fires_between_waves () =
  let subjects = 97 in
  let grain = 2 in
  let m = boot_counting_machine ~subjects in
  let yields = ref 0 in
  let o = invoke_outcome m ~grain ~yield:(fun () -> incr yields) () in
  (* waves of [location_cores Host] shards of [grain] records; the
     yield fires between waves, never after the last one *)
  let shards = (o.Ded.consumed + grain - 1) / grain in
  let cores = Ded.location_cores Ded.Host in
  let waves = (shards + cores - 1) / cores in
  check_bool "several waves" true (waves > 1);
  check_int "one yield per wave boundary" (waves - 1) !yields

let test_ded_yield_preserves_outcome () =
  let subjects = 97 in
  let plain = invoke_outcome (boot_counting_machine ~subjects) () in
  let yielded =
    invoke_outcome (boot_counting_machine ~subjects) ~grain:4
      ~yield:(fun () -> ())
      ()
  in
  same_observables "yield vs plain" plain yielded;
  check_bool "counted something" true
    (match plain.Ded.value with Some (Value.VInt n) -> n > 0 | _ -> false)

let test_ded_yield_pool_unobservable () =
  let subjects = 64 in
  let m_inline = boot_counting_machine ~subjects in
  let m_pooled = boot_counting_machine ~subjects in
  let inline = invoke_outcome m_inline ~grain:4 ~yield:(fun () -> ()) () in
  let pooled =
    Pool.with_pool ~workers:4 (fun pool ->
        invoke_outcome m_pooled ~pool ~grain:4 ~yield:(fun () -> ()) ())
  in
  same_observables "pool vs inline (yield mode)" inline pooled;
  check_bool "identical stage costs" true
    (inline.Ded.stage_ns = pooled.Ded.stage_ns);
  check_int "identical virtual clocks"
    (Clock.now (Machine.clock m_inline))
    (Clock.now (Machine.clock m_pooled))

(* ------------------------------------------------------------------ *)
(* Sla_bench: domain-count determinism                                *)

(* The report must be byte-identical at 1/2/4 domains except for host
   wall clock (and the domain count itself) — the pool accelerates wall
   time only, never the virtual timeline. *)
let test_sla_bench_domains_deterministic () =
  let run domains = SLA.run ~domains ~subjects:240 ~batches:4 () in
  let norm_side (s : SLA.side) = { s with SLA.sd_wall_s = 0.0 } in
  let norm (r : SLA.result) =
    {
      r with
      SLA.r_domains = 0;
      r_fifo = norm_side r.SLA.r_fifo;
      r_edf = norm_side r.SLA.r_edf;
    }
  in
  let r1 = run 1 in
  let r2 = run 2 in
  let r4 = run 4 in
  check_bool "1 vs 2 domains" true (norm r1 = norm r2);
  check_bool "2 vs 4 domains" true (norm r2 = norm r4);
  (* sanity on the shared schedule: both sides served the same rights *)
  let count label (s : SLA.side) =
    match List.find_opt (fun r -> r.SLA.rs_label = label) s.SLA.sd_rights with
    | Some r -> r.SLA.rs_count
    | None -> 0
  in
  check_bool "art15 traffic present" true (count "art15" r1.SLA.r_fifo > 0);
  check_int "same art15 count on both sides"
    (count "art15" r1.SLA.r_fifo)
    (count "art15" r1.SLA.r_edf);
  check_bool "EDF preempted" true
    (List.assoc "preemptions" r1.SLA.r_edf.SLA.sd_counters > 0);
  check_int "FIFO never preempts" 0
    (List.assoc "preemptions" r1.SLA.r_fifo.SLA.sd_counters);
  check_int "storm = 10% of subjects" 24 r1.SLA.r_storm.SLA.st_requests;
  check_bool "breach enumerated subjects" true
    (r1.SLA.r_breach.SLA.bn_affected > 0);
  check_bool "improvement factor computed" true
    (Option.is_some (SLA.improvement r1 "art15"))

(* ------------------------------------------------------------------ *)
(* the committed artifact                                             *)

(* `dune runtest` runs from the test dir (the dep is staged one level
   up); `dune exec test/test_sla.exe` runs from the project root *)
let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_rights_sla.json"; "BENCH_rights_sla.json" ]

let read_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_rights_sla.json missing (regenerate: dune exec bench/main.exe \
         -- sla --sla-json BENCH_rights_sla.json)"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" path e
      | Ok v -> v)

let test_committed_sla_artifact_validates () =
  let v = read_artifact () in
  (match BR.validate_sla v with
  | Ok () -> ()
  | Error e -> Alcotest.failf "BENCH_rights_sla.json invalid: %s" e);
  match BR.sla_improvement_of v with
  | None -> Alcotest.fail "no art15 improvement in the artifact"
  | Some f ->
      check_bool "committed improvement clears the absolute bar" true
        (f >= BR.sla_improvement_bar)

let test_compare_sla_gate () =
  let v = read_artifact () in
  (* both sides of the gate are held to the absolute bar *)
  check_bool "fresh at the bar passes" true
    (Result.is_ok (BR.compare_sla ~old_report:v ~improvement15:BR.sla_improvement_bar));
  check_bool "fresh under the bar fails" true
    (Result.is_error (BR.compare_sla ~old_report:v ~improvement15:4.2))

let test_validate_sla_rejects_garbage () =
  check_bool "empty object" true (Result.is_error (BR.validate_sla (Json.Obj [])))

let () =
  Alcotest.run "rights-sla"
    [
      ( "scheduler-deadline-lane",
        [
          Alcotest.test_case "FIFO submission order pinned" `Quick
            test_fifo_submission_order;
          Alcotest.test_case "canonical counters default to 0" `Quick
            test_counters_zero_defaults;
          Alcotest.test_case "max_queue_depth high-water" `Quick
            test_max_queue_depth_high_water;
          Alcotest.test_case "EDF rights overtake batch" `Quick
            test_edf_rights_overtake_batch;
          Alcotest.test_case "deadline misses counted" `Quick
            test_deadline_miss_counter;
          qt prop_edf_preserves_outcomes_and_busy;
        ] );
      ( "ded-yield",
        [
          Alcotest.test_case "yield fires between waves" `Quick
            test_ded_yield_fires_between_waves;
          Alcotest.test_case "yield preserves outcome" `Quick
            test_ded_yield_preserves_outcome;
          Alcotest.test_case "pool unobservable in yield mode" `Quick
            test_ded_yield_pool_unobservable;
        ] );
      ( "sla-bench",
        [
          Alcotest.test_case "deterministic at 1/2/4 domains" `Slow
            test_sla_bench_domains_deterministic;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "BENCH_rights_sla.json validates" `Quick
            test_committed_sla_artifact_validates;
          Alcotest.test_case "compare gate is absolute" `Quick
            test_compare_sla_gate;
          Alcotest.test_case "garbage rejected" `Quick
            test_validate_sla_rejects_garbage;
        ] );
    ]
