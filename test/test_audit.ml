module A = Rgpdos_audit.Audit_log

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_log () =
  let log = A.create () in
  ignore
    (A.append log ~now:100 ~actor:"ded"
       (A.Collected { pd_id = "pd-1"; interface = "web_form" }));
  ignore
    (A.append log ~now:200 ~actor:"ded"
       (A.Processed { purpose = "p1"; inputs = [ "pd-1" ]; produced = [ "pd-2" ] }));
  ignore
    (A.append log ~now:300 ~actor:"ded"
       (A.Filtered_out { purpose = "p2"; pd_id = "pd-1"; reason = "denied" }));
  ignore
    (A.append log ~now:400 ~actor:"ded"
       (A.Erased { pd_id = "pd-1"; mode = "crypto" }));
  ignore
    (A.append log ~now:500 ~actor:"ps"
       (A.Registered { processing = "compute_age"; alert = false }));
  log

let test_append_and_length () =
  let log = sample_log () in
  check_int "length" 5 (A.length log);
  check_int "entries" 5 (List.length (A.entries log))

let test_chain_verifies () =
  let log = sample_log () in
  check_bool "verifies" true (A.verify log = Ok ())

let test_empty_chain_verifies () =
  check_bool "empty ok" true (A.verify (A.create ()) = Ok ())

let test_chain_links () =
  let log = sample_log () in
  let entries = A.entries log in
  List.iteri
    (fun i e ->
      if i > 0 then
        Alcotest.(check string)
          "prev hash links"
          (List.nth entries (i - 1)).A.hash e.A.prev_hash)
    entries

let test_tamper_detected () =
  let log = sample_log () in
  A.unsafe_tamper log ~seq:2 ~actor:"attacker";
  match A.verify log with
  | Error 2 -> ()
  | Error n -> Alcotest.failf "wrong corrupt index %d" n
  | Ok () -> Alcotest.fail "tamper must be detected"

let test_tamper_first_entry () =
  let log = sample_log () in
  A.unsafe_tamper log ~seq:0 ~actor:"attacker";
  check_bool "detected" true (A.verify log = Error 0)

let test_for_pd () =
  let log = sample_log () in
  let pd1 = A.for_pd log "pd-1" in
  check_int "pd-1 history" 4 (List.length pd1);
  let pd2 = A.for_pd log "pd-2" in
  check_int "pd-2 appears as produced" 1 (List.length pd2);
  check_int "unknown pd" 0 (List.length (A.for_pd log "pd-999"))

let test_for_subject_pds () =
  let log = sample_log () in
  check_int "union of pds" 4
    (List.length (A.for_subject_pds log [ "pd-1"; "pd-999" ]))

let test_to_of_bytes_roundtrip () =
  let log = sample_log () in
  match A.of_bytes (A.to_bytes log) with
  | Error e -> Alcotest.fail e
  | Ok log' ->
      check_int "length preserved" (A.length log) (A.length log');
      check_bool "chain still verifies" true (A.verify log' = Ok ());
      check_bool "entries identical" true (A.entries log = A.entries log')

let test_of_bytes_rejects_garbage () =
  check_bool "garbage" true (Result.is_error (A.of_bytes "garbage"));
  check_bool "empty" true (Result.is_error (A.of_bytes ""));
  (* a truncated chain must not decode *)
  let bytes = A.to_bytes (sample_log ()) in
  check_bool "truncated" true
    (Result.is_error (A.of_bytes (String.sub bytes 0 (String.length bytes / 2))))

let test_persisted_tamper_detected () =
  let log = sample_log () in
  let bytes = A.to_bytes log in
  (* flip a byte in the middle of the serialized chain *)
  let b = Bytes.of_string bytes in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  match A.of_bytes (Bytes.to_string b) with
  | Error _ -> () (* decode failure is fine *)
  | Ok log' ->
      check_bool "verify catches it" true (A.verify log' <> Ok ())

let test_export_json () =
  let log = sample_log () in
  let json = A.export_for_subject log ~pd_ids:[ "pd-1" ] in
  check_bool "array" true (json.[0] = '[');
  check_bool "non-trivial" true (String.length json > 50)

let test_ordering_and_seq () =
  let log = A.create () in
  for i = 0 to 9 do
    ignore
      (A.append log ~now:i ~actor:"a"
         (A.Denied { actor = "x"; reason = string_of_int i }))
  done;
  List.iteri (fun i e -> check_int "seq" i e.A.seq) (A.entries log)

let prop_chain_always_verifies =
  QCheck.Test.make ~name:"chain verifies after arbitrary appends" ~count:50
    QCheck.(list_of_size Gen.(1 -- 30) (pair small_string small_string))
    (fun events ->
      let log = A.create () in
      List.iteri
        (fun i (pd, reason) ->
          ignore
            (A.append log ~now:i ~actor:"ded"
               (A.Filtered_out { purpose = "p"; pd_id = pd; reason })))
        events;
      A.verify log = Ok ())

let () =
  Alcotest.run "audit"
    [
      ( "chain",
        [
          Alcotest.test_case "append/length" `Quick test_append_and_length;
          Alcotest.test_case "verifies" `Quick test_chain_verifies;
          Alcotest.test_case "empty verifies" `Quick test_empty_chain_verifies;
          Alcotest.test_case "links" `Quick test_chain_links;
          Alcotest.test_case "tamper detected" `Quick test_tamper_detected;
          Alcotest.test_case "tamper first entry" `Quick test_tamper_first_entry;
          Alcotest.test_case "seq ordering" `Quick test_ordering_and_seq;
          QCheck_alcotest.to_alcotest prop_chain_always_verifies;
        ] );
      ( "queries",
        [
          Alcotest.test_case "for_pd" `Quick test_for_pd;
          Alcotest.test_case "for_subject_pds" `Quick test_for_subject_pds;
          Alcotest.test_case "export json" `Quick test_export_json;
          Alcotest.test_case "to/of bytes roundtrip" `Quick test_to_of_bytes_roundtrip;
          Alcotest.test_case "of_bytes rejects garbage" `Quick test_of_bytes_rejects_garbage;
          Alcotest.test_case "persisted tamper detected" `Quick
            test_persisted_tamper_detected;
        ] );
    ]
