(* Paged-index + bounded-cache equivalence: qcheck properties driving
   random op sequences (insert/delete/erase/checkpoint/remount/budget
   changes/clock advances) and asserting that the paged store's
   select / pds_of_subject / incremental TTL sweep match in-memory
   reference semantics under ANY cache budget >= 1 — eviction must be
   semantically invisible — plus warm==cold clock-delta pins, the O(1)
   clean-mount read bound, and the committed BENCH_mount_scale.json
   artifact. *)

module Clock = Rgpdos_util.Clock
module Block_device = Rgpdos_block.Block_device
module Stats = Rgpdos_util.Stats
module M = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Query = Rgpdos_dbfs.Query
module Dbfs = Rgpdos_dbfs.Dbfs
module Json = Rgpdos_util.Json
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list string))

let ded = "ded"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dbfs error: %s" (Dbfs.error_to_string e)

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let small_config =
  {
    Block_device.block_size = 512;
    block_count = 4096;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

let item_schema () =
  match
    Schema.make ~name:"item"
      ~fields:
        [
          { Schema.fname = "k_int"; ftype = Value.TInt; required = true };
          { Schema.fname = "k_str"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", M.All) ]
      ~indexed_fields:[ "k_int"; "k_str" ] ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let make_dbfs () =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:small_config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:256 in
  ok (Dbfs.create_type t ~actor:ded (item_schema ()));
  t

let store_clock t = Block_device.clock (Dbfs.device t)

let insert_item t ~subject ~k_int ~k_str ~ttl =
  let clock = store_clock t in
  ok
    (Dbfs.insert t ~actor:ded ~subject ~type_name:"item"
       ~record:
         [ ("k_int", Value.VInt k_int); ("k_str", Value.VString k_str) ]
       ~membrane_of:(fun ~pd_id ->
         M.make ~pd_id ~type_name:"item" ~subject_id:subject ~origin:M.Subject
           ~consents:[ ("service", M.All) ]
           ~created_at:(Clock.now clock) ?ttl ()))

let seal _record = "sealed-by-test"

(* ------------------------------------------------------------------ *)
(* reference semantics, derived by full scan of the entries            *)

let live_pds t =
  List.filter
    (fun pd ->
      let _, _, erased = ok (Dbfs.entry_info t ~actor:ded pd) in
      not erased)
    (ok (Dbfs.list_pds t ~actor:ded "item"))

let reference_select t pred =
  let pds = ok (Dbfs.list_pds t ~actor:ded "item") in
  let loaded = ok (Dbfs.get_records t ~actor:ded pds) in
  List.filter_map
    (fun (pd, record) ->
      match record with
      | Some r when Query.eval pred r -> Some pd
      | _ -> None)
    loaded

(* every pd of the subject, erased included, in insertion order *)
let reference_subject_pds t subject =
  List.filter
    (fun pd ->
      let _, s, _ = ok (Dbfs.entry_info t ~actor:ded pd) in
      s = subject)
    (ok (Dbfs.list_pds t ~actor:ded "item"))

(* live pds whose membrane expiry instant is <= now, in expiry order *)
let reference_expired t ~now =
  List.filter_map
    (fun pd ->
      let m = ok (Dbfs.get_membrane t ~actor:ded pd) in
      match m.M.ttl with
      | Some ttl when m.M.created_at + ttl <= now ->
          Some (m.M.created_at + ttl, pd)
      | _ -> None)
    (live_pds t)
  |> List.sort compare |> List.map snd

let subjects_pool = [ "s0"; "s1"; "s2"; "s3" ]

let queries =
  [
    Query.Eq ("k_int", Value.VInt 1);
    Query.Eq ("k_str", Value.VString "b");
    Query.Gt ("k_int", Value.VInt 2);
    Query.True;
  ]

(* the full equivalence battery, run under one cache budget *)
let assert_equivalent t ~budget =
  Dbfs.set_cache_budget t budget;
  List.iter
    (fun pred ->
      let expected = reference_select t pred in
      let got = ok (Dbfs.select t ~actor:ded "item" pred) in
      if got <> expected then
        Alcotest.failf "select %s diverged at budget %d" (Query.to_string pred)
          budget)
    queries;
  List.iter
    (fun s ->
      let expected = reference_subject_pds t s in
      let got = ok (Dbfs.pds_of_subject t ~actor:ded s) in
      if got <> expected then
        Alcotest.failf "pds_of_subject %s diverged at budget %d" s budget)
    subjects_pool;
  let now = Clock.now (store_clock t) in
  let expected = reference_expired t ~now in
  let got = ok (Dbfs.expired_pds t ~actor:ded ~now) in
  if got <> expected then
    Alcotest.failf "expired_pds diverged at budget %d" budget;
  if Dbfs.cache_resident t > max 1 budget then
    Alcotest.failf "resident %d exceeds budget %d" (Dbfs.cache_resident t)
      budget

(* ------------------------------------------------------------------ *)
(* qcheck: random op sequences                                        *)

type op =
  | Insert of int * string * int option  (* k_int, k_str, ttl *)
  | Delete of int  (* picks live pd by index mod count *)
  | Erase of int
  | Checkpoint
  | Remount
  | Budget of int
  | Advance of int  (* simulated ns *)

let gen_op st =
  match QCheck.Gen.int_range 0 9 st with
  | 0 | 1 | 2 | 3 ->
      let ttl =
        match QCheck.Gen.int_range 0 2 st with
        | 0 -> None
        | 1 -> Some 500
        | _ -> Some 5_000
      in
      Insert
        ( QCheck.Gen.int_range 0 4 st,
          QCheck.Gen.oneofl [ "a"; "b"; "c" ] st,
          ttl )
  | 4 -> Delete (QCheck.Gen.int_range 0 30 st)
  | 5 -> Erase (QCheck.Gen.int_range 0 30 st)
  | 6 -> Checkpoint
  | 7 -> Remount
  | 8 -> Budget (QCheck.Gen.oneofl [ 1; 2; 7; 4096 ] st)
  | _ -> Advance (QCheck.Gen.int_range 100 2_000 st)

let gen_ops st =
  let n = QCheck.Gen.int_range 1 24 st in
  List.init n (fun _ -> gen_op st)

let print_op = function
  | Insert (k, s, ttl) ->
      Printf.sprintf "Insert(%d,%s,%s)" k s
        (match ttl with None -> "-" | Some t -> string_of_int t)
  | Delete i -> Printf.sprintf "Delete(%d)" i
  | Erase i -> Printf.sprintf "Erase(%d)" i
  | Checkpoint -> "Checkpoint"
  | Remount -> "Remount"
  | Budget b -> Printf.sprintf "Budget(%d)" b
  | Advance ns -> Printf.sprintf "Advance(%d)" ns

let print_ops ops = String.concat "; " (List.map print_op ops)

let apply_op t op =
  match op with
  | Insert (k_int, k_str, ttl) ->
      let subject =
        List.nth subjects_pool (k_int mod List.length subjects_pool)
      in
      ignore (insert_item t ~subject ~k_int ~k_str ~ttl);
      t
  | Delete i -> (
      match live_pds t with
      | [] -> t
      | pds ->
          ok (Dbfs.delete t ~actor:ded (List.nth pds (i mod List.length pds)));
          t)
  | Erase i -> (
      match live_pds t with
      | [] -> t
      | pds ->
          ok
            (Dbfs.erase_with t ~actor:ded
               (List.nth pds (i mod List.length pds))
               ~seal);
          t)
  | Checkpoint ->
      Dbfs.checkpoint t;
      t
  | Remount -> (
      match Dbfs.crash_and_remount t with
      | Ok t' -> t'
      | Error e -> Alcotest.failf "remount failed: %s" e)
  | Budget b ->
      Dbfs.set_cache_budget t b;
      t
  | Advance ns ->
      Clock.advance (store_clock t) ns;
      t

let prop_paged_equals_reference =
  QCheck.Test.make
    ~name:"paged select/pds_of_subject/TTL sweep == reference at any budget"
    ~count:60
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let t = List.fold_left apply_op (make_dbfs ()) ops in
      List.iter (fun budget -> assert_equivalent t ~budget) [ 1; 7; 65_536 ];
      (* and again on a cold store: the durable form alone must carry
         the same facts *)
      match Dbfs.crash_and_remount t with
      | Error e -> QCheck.Test.fail_reportf "final remount failed: %s" e
      | Ok cold ->
          List.iter (fun budget -> assert_equivalent cold ~budget) [ 1; 4096 ];
          check_bool "dump == rebuilt dump" true
            (Dbfs.index_dump cold = Dbfs.rebuilt_index_dump cold);
          true)

(* ------------------------------------------------------------------ *)
(* warm == cold charging                                              *)

(* The budget bounds RESIDENT HOST MEMORY only: a page hit charges the
   same simulated device read as a miss, so repeated queries cost the
   same sim time at budget 1 (everything evicted, all misses) as at a
   huge budget (everything resident, all hits). *)
let test_warm_equals_cold () =
  let t = make_dbfs () in
  for i = 0 to 29 do
    ignore
      (insert_item t
         ~subject:(List.nth subjects_pool (i mod 4))
         ~k_int:(i mod 5)
         ~k_str:(String.make 1 (Char.chr (97 + (i mod 3))))
         ~ttl:None)
  done;
  Dbfs.checkpoint t;
  let cold = ok (Result.map_error (fun e -> Dbfs.Corrupt e) (Dbfs.crash_and_remount t)) in
  let clock = store_clock cold in
  let pred = Query.Eq ("k_int", Value.VInt 2) in
  let timed_select () =
    let t0 = Clock.now clock in
    let ids = ok (Dbfs.select cold ~actor:ded "item" pred) in
    (ids, Clock.now clock - t0)
  in
  Dbfs.set_cache_budget cold 1;
  let ids_cold, d_cold = timed_select () in
  let ids_cold2, d_cold2 = timed_select () in
  Dbfs.set_cache_budget cold 65_536;
  let ids_fill, d_fill = timed_select () in
  let ids_warm, d_warm = timed_select () in
  check_ids "same results" ids_cold ids_cold2;
  check_ids "same results warm" ids_cold ids_warm;
  check_ids "same results fill" ids_cold ids_fill;
  check_bool "cold select costs something" true (d_cold > 0);
  check_int "budget-1 repeat == first" d_cold d_cold2;
  check_int "fill (misses) == cold" d_cold d_fill;
  check_int "warm (hits) == cold" d_cold d_warm;
  (* the hits really were hits *)
  check_bool "page hits recorded" true
    (Stats.Counter.get (Dbfs.stats cold) "page_hits" > 0);
  check_bool "evictions recorded at budget 1" true
    (Stats.Counter.get (Dbfs.stats cold) "cache_evictions" > 0)

(* ------------------------------------------------------------------ *)
(* O(1) clean mount                                                   *)

let mount_reads ~n =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:small_config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:256 in
  ok (Dbfs.create_type t ~actor:ded (item_schema ()));
  for i = 0 to n - 1 do
    ignore
      (insert_item t
         ~subject:(List.nth subjects_pool (i mod 4))
         ~k_int:(i mod 5)
         ~k_str:"a" ~ttl:(Some 50_000))
  done;
  Dbfs.checkpoint t;
  let image = Block_device.snapshot dev in
  let clock2 = Clock.create () in
  let dev2 = Block_device.create ~config:small_config ~clock:clock2 () in
  Block_device.restore dev2 image;
  Block_device.reset_stats dev2;
  let store =
    match Dbfs.mount dev2 with
    | Ok s -> s
    | Error e -> Alcotest.failf "mount: %s" e
  in
  (Stats.Counter.get (Block_device.stats dev2) "reads", store)

let test_clean_mount_o1 () =
  let reads_small, _ = mount_reads ~n:50 in
  let reads_big, store = mount_reads ~n:400 in
  check_bool
    (Printf.sprintf "mount reads population-independent (%d vs %d)"
       reads_small reads_big)
    true
    (reads_big <= 2 * reads_small);
  (* and the mount left essentially nothing resident *)
  check_bool "cold mount resident is O(1)" true (Dbfs.cache_resident store <= 4);
  (* the trees really are populated on device *)
  check_bool "index node pages exist" true
    (Dbfs.index_page_blocks store <> [])

(* a dirty crash (journal not empty) still recovers, paying the replay *)
let test_dirty_remount_replays () =
  let t = make_dbfs () in
  for i = 0 to 9 do
    ignore (insert_item t ~subject:"s0" ~k_int:i ~k_str:"a" ~ttl:None)
  done;
  Dbfs.checkpoint t;
  (* five more inserts after the checkpoint live only in the journal *)
  for i = 10 to 14 do
    ignore (insert_item t ~subject:"s1" ~k_int:i ~k_str:"b" ~ttl:None)
  done;
  let cold =
    match Dbfs.crash_and_remount t with
    | Ok s -> s
    | Error e -> Alcotest.failf "remount: %s" e
  in
  (match Dbfs.replay_report cold with
  | Some s -> check_int "journal records replayed" 5 s.Rgpdos_block.Journal_ring.records_replayed
  | None -> Alcotest.fail "no replay report");
  check_int "all 15 entries present" 15 (Dbfs.pd_count cold);
  check_bool "dump == rebuilt dump after dirty remount" true
    (Dbfs.index_dump cold = Dbfs.rebuilt_index_dump cold)

(* ------------------------------------------------------------------ *)
(* committed artifact + compare gate                                  *)

let read_artifact name =
  let path =
    List.find_opt Sys.file_exists [ name; Filename.concat ".." name ]
  in
  match path with
  | None -> Alcotest.failf "committed %s not found" name
  | Some p -> (
      match BR.read_file p with
      | Some v -> v
      | None -> Alcotest.failf "cannot parse %s" p)

let test_committed_artifact () =
  let v = read_artifact "BENCH_mount_scale.json" in
  (match BR.validate_mount v with
  | Ok () -> ()
  | Error e -> Alcotest.failf "committed artifact invalid: %s" e);
  (* the committed evidence must span three decades of population *)
  let rows =
    match Option.bind (Json.member "mount" v) Json.to_list with
    | Some rows -> rows
    | None -> Alcotest.fail "no mount rows"
  in
  let pops =
    List.filter_map
      (fun r -> Option.bind (Json.member "subjects" r) Json.to_float)
      rows
  in
  let mx = List.fold_left max 0.0 pops and mn = List.fold_left min infinity pops in
  check_bool "population span >= 100x" true (mx /. mn >= 100.0)

let test_compare_mount_gate () =
  let v = read_artifact "BENCH_mount_scale.json" in
  let committed =
    match Option.bind (Json.member "read_ratio_max" v) Json.to_float with
    | Some r -> r
    | None -> Alcotest.fail "no read_ratio_max"
  in
  (match BR.compare_mount ~old_report:v ~read_ratio_max:committed with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "same ratio should pass the gate: %s" e);
  match
    BR.compare_mount ~old_report:v ~read_ratio_max:(committed *. 1.5)
  with
  | Ok _ -> Alcotest.fail "a 50% worse ratio must fail the gate"
  | Error line -> check_bool "gate names the regression" true (contains_sub line "regressed")

let () =
  Alcotest.run "mount"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_paged_equals_reference;
          Alcotest.test_case "warm == cold charging" `Quick
            test_warm_equals_cold;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean mount is O(1)" `Quick test_clean_mount_o1;
          Alcotest.test_case "dirty remount replays the journal" `Quick
            test_dirty_remount_replays;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "committed artifact validates" `Quick
            test_committed_artifact;
          Alcotest.test_case "compare gate" `Quick test_compare_mount_gate;
        ] );
    ]
