(* The asynchronous submission/completion queues: engine arithmetic,
   the qcheck async==sync law (an op script produces identical images,
   payloads and counters at every queue depth — only the latency
   telemetry may differ), the DBFS warm==cold pin under async, and the
   BENCH_async_io.json artifact machinery (regression gate included). *)

module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Json = Rgpdos_util.Json
module Prng = Rgpdos_util.Prng
module Block_device = Rgpdos_block.Block_device
module M = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Schema = Rgpdos_dbfs.Schema
module Dbfs = Rgpdos_dbfs.Dbfs
module AB = Rgpdos_workload.Async_bench
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ded = "ded"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dbfs error: %s" (Dbfs.error_to_string e)

let counter dev name = Stats.Counter.get (Block_device.stats dev) name

(* 16-byte blocks, seek 10, 1 ns/byte: a single-block vectored read
   costs exactly 26 ns — small enough to do the queue arithmetic by
   hand. *)
let async_config ~async ~queue_depth =
  {
    Block_device.block_size = 16;
    block_count = 64;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 1;
    vectored = true;
    async;
    queue_depth;
  }

let make_dev ~async ~queue_depth =
  let clock = Clock.create () in
  let dev =
    Block_device.create ~config:(async_config ~async ~queue_depth) ~clock ()
  in
  (dev, clock)

let read_1 = 10 + 16 (* one single-block read: seek + 16 bytes *)

(* ------------------------------------------------------------------ *)
(* engine: sync degradation                                           *)

let test_sync_mode_identity () =
  let dev, clock = make_dev ~async:false ~queue_depth:8 in
  List.iter (fun i -> Block_device.write dev i (Printf.sprintf "b%d" i))
    [ 3; 4; 5 ];
  Block_device.reset_stats dev;
  let t0 = Clock.now clock in
  let tk = Block_device.submit_read_vec dev [ 3; 4; 5 ] in
  (* async=false: the submission charges synchronously, like read_vec *)
  check_int "submit charged the read_vec cost" (10 + 48) (Clock.now clock - t0);
  let t1 = Clock.now clock in
  let payload = Block_device.await dev tk in
  check_int "await is free" 0 (Clock.now clock - t1);
  Alcotest.(check (list int)) "payload indices" [ 3; 4; 5 ]
    (List.map fst payload);
  List.iter
    (fun (i, data) ->
      check_bool "payload bytes" true
        (String.sub data 0 2 = Printf.sprintf "b%d" i))
    payload;
  check_int "reads" 3 (counter dev "reads");
  check_int "bytes_read" 48 (counter dev "bytes_read");
  check_int "vec_reads" 1 (counter dev "vec_reads");
  check_int "merged_runs" 1 (counter dev "merged_runs");
  (* the submit API is accounted in both modes ... *)
  check_int "async_submits" 1 (counter dev "async_submits");
  check_int "async_completions" 1 (counter dev "async_completions");
  check_int "async_service_ns" 58 (counter dev "async_service_ns");
  (* ... but the queue telemetry stays zero when nothing queues *)
  check_int "no overlap in sync mode" 0 (counter dev "overlap_ns_hidden");
  check_int "no highwater in sync mode" 0 (counter dev "queue_depth_highwater");
  (* charge-only and write submissions degrade the same way *)
  let t2 = Clock.now clock in
  let tkc = Block_device.submit_charge_read_vec dev [ 3; 4; 5 ] in
  check_int "charge-only submit costs the same" 58 (Clock.now clock - t2);
  check_bool "charge-only payload empty" true (Block_device.await dev tkc = []);
  let t3 = Clock.now clock in
  ignore (Block_device.submit_write_vec dev [ (7, "x"); (8, "y") ]);
  check_int "write submit charged like write_vec" (20 + 32)
    (Clock.now clock - t3);
  check_bool "write visible" true (String.sub (Block_device.read dev 7) 0 1 = "x");
  check_int "nothing outstanding" 0 (Block_device.outstanding dev)

(* ------------------------------------------------------------------ *)
(* engine: queue arithmetic                                           *)

let test_depth1_is_serial () =
  let dev, clock = make_dev ~async:true ~queue_depth:1 in
  let t0 = Clock.now clock in
  let tk1 = Block_device.submit_read_vec dev [ 3 ] in
  let tk2 = Block_device.submit_read_vec dev [ 9 ] in
  check_int "submission is free under async" 0 (Clock.now clock - t0);
  check_int "two in flight" 2 (Block_device.outstanding dev);
  ignore (Block_device.await dev tk1);
  check_int "first completion at one service" read_1 (Clock.now clock - t0);
  ignore (Block_device.await dev tk2);
  (* depth 1: the second request queued behind the first *)
  check_int "second completion serialised" (2 * read_1) (Clock.now clock - t0);
  check_int "no compute, no overlap" 0 (counter dev "overlap_ns_hidden");
  check_int "highwater" 2 (counter dev "queue_depth_highwater")

let test_overlap_at_depth4 () =
  let dev, clock = make_dev ~async:true ~queue_depth:4 in
  let t0 = Clock.now clock in
  let tks =
    List.map (fun i -> Block_device.submit_read_vec dev [ i ]) [ 1; 2; 3; 4 ]
  in
  (* 4 slots, 4 requests: all complete at t0 + 26; 10 ns of caller
     compute hides 10 ns of the first await and all of the rest *)
  Clock.advance clock 10;
  List.iter (fun tk -> ignore (Block_device.await dev tk)) tks;
  check_int "all four settled at one service" read_1 (Clock.now clock - t0);
  check_int "service submitted" (4 * read_1) (counter dev "async_service_ns");
  check_int "hidden = compute + 3 full services" (10 + (3 * read_1))
    (counter dev "overlap_ns_hidden");
  check_int "highwater" 4 (counter dev "queue_depth_highwater");
  check_int "submits" 4 (counter dev "async_submits");
  check_int "completions" 4 (counter dev "async_completions")

let test_queueing_beyond_depth () =
  let dev, clock = make_dev ~async:true ~queue_depth:2 in
  let t0 = Clock.now clock in
  let tks =
    List.map (fun i -> Block_device.submit_read_vec dev [ i ]) [ 1; 2; 3; 4 ]
  in
  List.iter (fun tk -> ignore (Block_device.await dev tk)) tks;
  (* 4 requests over 2 slots: two service generations *)
  check_int "two generations of service" (2 * read_1) (Clock.now clock - t0);
  check_int "highwater counts queued submissions" 4
    (counter dev "queue_depth_highwater")

let test_channels_are_independent () =
  let dev, clock = make_dev ~async:true ~queue_depth:1 in
  let t0 = Clock.now clock in
  let a = Block_device.submit_read_vec dev ~channel:0 [ 3 ] in
  let b = Block_device.submit_read_vec dev ~channel:1 [ 9 ] in
  ignore (Block_device.await dev a);
  ignore (Block_device.await dev b);
  (* depth 1 per channel, but each channel has its own slot *)
  check_int "channels overlap each other" read_1 (Clock.now clock - t0)

let test_await_idempotent_and_drain () =
  let dev, clock = make_dev ~async:true ~queue_depth:4 in
  Block_device.write dev 5 "payload-five";
  Block_device.reset_stats dev;
  let tk = Block_device.submit_read_vec dev [ 5 ] in
  ignore (Block_device.submit_read_vec dev [ 6 ]);
  ignore (Block_device.submit_read_vec dev [ 7 ]);
  check_int "three outstanding" 3 (Block_device.outstanding dev);
  Block_device.drain dev;
  check_int "drain settles everything" 0 (Block_device.outstanding dev);
  check_int "completions" 3 (counter dev "async_completions");
  let t0 = Clock.now clock in
  let p1 = Block_device.await dev tk in
  check_int "re-await is free" 0 (Clock.now clock - t0);
  check_int "re-await does not re-complete" 3 (counter dev "async_completions");
  check_bool "re-await returns the captured payload" true
    (match p1 with
    | [ (5, data) ] -> String.sub data 0 12 = "payload-five"
    | _ -> false)

let test_write_bytes_persist_at_submit () =
  let dev, clock = make_dev ~async:true ~queue_depth:4 in
  let t0 = Clock.now clock in
  let tk = Block_device.submit_write_vec dev [ (5, "hello-async") ] in
  check_int "submission is free" 0 (Clock.now clock - t0);
  (* bytes are on the medium before the completion settles *)
  check_bool "bytes visible before await" true
    (String.sub (Block_device.read dev 5) 0 11 = "hello-async");
  check_bool "scan sees them too" true
    (Block_device.scan dev "hello-async" <> []);
  ignore (Block_device.await dev tk);
  check_int "write counters" 1 (counter dev "writes")

(* ------------------------------------------------------------------ *)
(* the qcheck law: async == sync modulo latency telemetry             *)

(* A deterministic op script drawn from a seed: submissions on a few
   channels, interleaved compute, early awaits of the oldest ticket.
   The law: running one script on a synchronous device and on async
   devices at depths 1 / 4 / 64 yields identical payloads, identical
   final images and identical counters — except queue_depth_highwater
   and overlap_ns_hidden, which describe the queue itself. *)

type op =
  | Read of int * int list          (* channel, indices *)
  | ChargeRead of int * int list
  | Write of int * (int * string) list
  | Compute of int
  | AwaitOldest

let gen_script seed =
  let prng = Prng.create ~seed:(Int64.of_int seed) () in
  let indices () =
    List.init (1 + Prng.int prng 4) (fun _ -> Prng.int prng 64)
  in
  List.init
    (8 + Prng.int prng 25)
    (fun _ ->
      let ch = Prng.int prng 3 in
      match Prng.int prng 10 with
      | 0 | 1 | 2 -> Read (ch, indices ())
      | 3 | 4 -> ChargeRead (ch, indices ())
      | 5 | 6 ->
          Write
            ( ch,
              List.map
                (fun i -> (i, Printf.sprintf "w%02d-%d" i (Prng.int prng 100)))
                (indices ()) )
      | 7 | 8 -> Compute (Prng.int prng 40)
      | _ -> AwaitOldest)

let run_script ~async ~queue_depth script =
  let dev, clock = make_dev ~async ~queue_depth in
  (* a deterministic pre-image so reads have bytes to capture *)
  for i = 0 to 63 do
    Block_device.write dev i (Printf.sprintf "init-%02d" i)
  done;
  Block_device.reset_stats dev;
  let payloads = ref [] in
  let pending = ref [] in
  let settle tk = payloads := Block_device.await dev tk :: !payloads in
  List.iter
    (fun op ->
      match op with
      | Read (ch, idx) ->
          pending := !pending @ [ Block_device.submit_read_vec dev ~channel:ch idx ]
      | ChargeRead (ch, idx) ->
          pending :=
            !pending @ [ Block_device.submit_charge_read_vec dev ~channel:ch idx ]
      | Write (ch, ws) ->
          pending := !pending @ [ Block_device.submit_write_vec dev ~channel:ch ws ]
      | Compute ns -> Clock.advance clock ns
      | AwaitOldest -> (
          match !pending with
          | [] -> ()
          | tk :: rest ->
              settle tk;
              pending := rest))
    script;
  List.iter settle !pending;
  Block_device.drain dev;
  let counters =
    List.filter
      (fun (k, _) -> k <> "queue_depth_highwater" && k <> "overlap_ns_hidden")
      (List.sort compare (Stats.Counter.to_list (Block_device.stats dev)))
  in
  (List.rev !payloads, Block_device.snapshot dev, counters)

let prop_async_eq_sync =
  QCheck.Test.make ~count:60
    ~name:"async == sync: payloads, images, counters (mod latency telemetry)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let script = gen_script seed in
      let reference = run_script ~async:false ~queue_depth:8 script in
      List.for_all
        (fun depth -> run_script ~async:true ~queue_depth:depth script = reference)
        [ 1; 4; 64 ])

(* ------------------------------------------------------------------ *)
(* DBFS under async: warm == cold, outcomes unchanged                 *)

let dbfs_config ~async =
  {
    Block_device.block_size = 512;
    block_count = 512;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async;
    queue_depth = 4;
  }

let user_schema () =
  match
    Schema.make ~name:"user"
      ~fields:
        [
          { Schema.fname = "name"; ftype = Value.TString; required = true };
          { Schema.fname = "pwd"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", M.All) ]
      ~default_ttl:Clock.year ~default_sensitivity:M.High ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let setup_dbfs ~async =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:(dbfs_config ~async) ~clock () in
  let t = Dbfs.format dev ~journal_blocks:16 in
  ok (Dbfs.create_type t ~actor:ded (user_schema ()));
  (t, dev, clock)

let insert_user t ~subject ~pwd =
  let schema = ok (Dbfs.schema t ~actor:ded "user") in
  ok
    (Dbfs.insert t ~actor:ded ~subject ~type_name:"user"
       ~record:[ ("name", Value.VString subject); ("pwd", Value.VString pwd) ]
       ~membrane_of:(fun ~pd_id ->
         M.make ~pd_id ~type_name:"user" ~subject_id:subject
           ~origin:schema.Schema.default_origin
           ~consents:schema.Schema.default_consents ~created_at:0
           ?ttl:schema.Schema.default_ttl
           ~sensitivity:schema.Schema.default_sensitivity
           ~collection:schema.Schema.collection ()))

let test_dbfs_warm_eq_cold_under_async () =
  let t, _, clock = setup_dbfs ~async:true in
  let pds =
    List.init 8 (fun i -> insert_user t ~subject:(Printf.sprintf "w%d" i) ~pwd:"pw")
  in
  let cost f =
    let t0 = Clock.now clock in
    ignore (ok (f ()));
    Clock.now clock - t0
  in
  let cold = cost (fun () -> Dbfs.get_membranes t ~actor:ded pds) in
  let warm = cost (fun () -> Dbfs.get_membranes t ~actor:ded pds) in
  check_bool "async batch charges device time" true (cold > 0);
  (* cache hits ride the charge-only submission path with the same
     chunk shape as the cold fetch, so the pipeline hides the same
     amount of service both times *)
  check_int "warm batch costs exactly the cold cost" cold warm;
  let cold_r = cost (fun () -> Dbfs.get_records t ~actor:ded pds) in
  let warm_r = cost (fun () -> Dbfs.get_records t ~actor:ded pds) in
  check_int "records: warm = cold" cold_r warm_r

let test_dbfs_outcomes_match_sync () =
  let build ~async =
    let t, dev, _ = setup_dbfs ~async in
    let pds =
      List.init 10 (fun i ->
          insert_user t ~subject:(Printf.sprintf "s%d" i) ~pwd:"secret")
    in
    ok (Dbfs.delete t ~actor:ded (List.nth pds 3));
    let ms = ok (Dbfs.get_membranes t ~actor:ded (List.filteri (fun i _ -> i <> 3) pds)) in
    let rs = ok (Dbfs.get_records t ~actor:ded (List.filteri (fun i _ -> i <> 3) pds)) in
    Block_device.drain dev;
    (ms, rs, Block_device.snapshot dev)
  in
  let sm, sr, simg = build ~async:false in
  let am, ar, aimg = build ~async:true in
  check_bool "membranes identical" true (sm = am);
  check_bool "records identical" true (sr = ar);
  check_bool "on-device image identical" true (simg = aimg)

(* ------------------------------------------------------------------ *)
(* artifact + regression gate                                         *)

let fake_row ~depth ~speedup ~overlap =
  {
    AB.ar_depth = depth;
    ar_total_ns = 1_000_000;
    ar_load_ns = 400_000;
    ar_load_speedup = speedup;
    ar_total_speedup = speedup;
    ar_overlap_pct = overlap;
    ar_submits = 32;
    ar_highwater = depth;
  }

let fake_result ?(invariant = true) ~speedup ~overlap () =
  {
    AB.a_depths = [ 1; 4 ];
    a_sizes =
      [
        {
          AB.as_subjects = 100;
          as_sync_total_ns = 2_000_000;
          as_sync_load_ns = 800_000;
          as_rows =
            [
              fake_row ~depth:1 ~speedup:1.0 ~overlap:0.0;
              fake_row ~depth:4 ~speedup ~overlap;
            ];
          as_invariant_ok = invariant;
        };
      ];
    a_best_load_speedup = speedup;
    a_best_overlap_pct = overlap;
  }

let test_make_async_validates () =
  let report =
    BR.make_async ~result:(fake_result ~speedup:2.5 ~overlap:70.0 ()) ~wall_ms:1.0
  in
  (match BR.validate_async report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "good report rejected: %s" e);
  (match Json.of_string (Json.to_string report) with
  | Ok parsed -> (
      match BR.validate_async parsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "parsed report invalid: %s" e)
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e);
  check_bool "below-bar speedup rejected" true
    (Result.is_error
       (BR.validate_async
          (BR.make_async
             ~result:(fake_result ~speedup:1.2 ~overlap:70.0 ())
             ~wall_ms:1.0)));
  check_bool "below-bar overlap rejected" true
    (Result.is_error
       (BR.validate_async
          (BR.make_async
             ~result:(fake_result ~speedup:2.5 ~overlap:10.0 ())
             ~wall_ms:1.0)));
  check_bool "broken invariant rejected" true
    (Result.is_error
       (BR.validate_async
          (BR.make_async
             ~result:(fake_result ~invariant:false ~speedup:2.5 ~overlap:70.0 ())
             ~wall_ms:1.0)));
  check_bool "garbage rejected" true
    (Result.is_error (BR.validate_async (Json.Obj [ ("schema", Json.Str "x") ])))

let test_compare_async_gate () =
  let old_report =
    BR.make_async ~result:(fake_result ~speedup:2.5 ~overlap:70.0 ()) ~wall_ms:1.0
  in
  (match BR.compare_async ~old_report ~speedup:2.0 ~overlap:55.0 with
  | Ok old_speedup -> check_bool "returns committed figure" true (old_speedup = 2.5)
  | Error e -> Alcotest.failf "passing run flagged: %s" e);
  check_bool "fresh speedup under the absolute bar trips the gate" true
    (Result.is_error (BR.compare_async ~old_report ~speedup:1.5 ~overlap:55.0));
  check_bool "fresh overlap under the absolute bar trips the gate" true
    (Result.is_error (BR.compare_async ~old_report ~speedup:2.0 ~overlap:20.0));
  let bad_committed =
    BR.make_async ~result:(fake_result ~speedup:1.1 ~overlap:70.0 ()) ~wall_ms:1.0
  in
  check_bool "under-bar committed artifact trips the gate" true
    (Result.is_error
       (BR.compare_async ~old_report:bad_committed ~speedup:2.0 ~overlap:55.0))

let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_async_io.json"; "BENCH_async_io.json" ]

let test_committed_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_async_io.json missing (regenerate: dune exec bench/main.exe \
         -- async --async-json BENCH_async_io.json)"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" path e
      | Ok v -> (
          match BR.validate_async v with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" path e))

let () =
  Alcotest.run "async-io"
    [
      ( "engine",
        [
          Alcotest.test_case "sync-mode identity" `Quick test_sync_mode_identity;
          Alcotest.test_case "depth 1 is serial" `Quick test_depth1_is_serial;
          Alcotest.test_case "overlap at depth 4" `Quick test_overlap_at_depth4;
          Alcotest.test_case "queueing beyond depth" `Quick
            test_queueing_beyond_depth;
          Alcotest.test_case "channels independent" `Quick
            test_channels_are_independent;
          Alcotest.test_case "await idempotent, drain settles" `Quick
            test_await_idempotent_and_drain;
          Alcotest.test_case "write bytes persist at submit" `Quick
            test_write_bytes_persist_at_submit;
        ] );
      ("law", [ QCheck_alcotest.to_alcotest prop_async_eq_sync ]);
      ( "dbfs",
        [
          Alcotest.test_case "warm == cold under async" `Quick
            test_dbfs_warm_eq_cold_under_async;
          Alcotest.test_case "outcomes match sync" `Quick
            test_dbfs_outcomes_match_sync;
        ] );
      ( "report",
        [
          Alcotest.test_case "make_async validates" `Quick
            test_make_async_validates;
          Alcotest.test_case "compare gate" `Quick test_compare_async_gate;
          Alcotest.test_case "committed artifact" `Quick test_committed_artifact;
        ] );
    ]
