(* Fault injection, crash recovery and self-healing: the programmable
   fault plan on the block device, DBFS checksum/quarantine/degraded-mode
   behaviour, and the deterministic crash-point campaign. *)

module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Json = Rgpdos_util.Json
module Stats = Rgpdos_util.Stats
module Block_device = Rgpdos_block.Block_device
module Fault_plan = Block_device.Fault_plan
module Dbfs = Rgpdos_dbfs.Dbfs
module Membrane = Rgpdos_membrane.Membrane
module Machine = Rgpdos.Machine
module Population = Rgpdos_workload.Population
module FC = Rgpdos_workload.Fault_campaign
module BR = Rgpdos_workload.Bench_report

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* block device: vectored-write semantics and the fault plan           *)

let small_config =
  {
    Block_device.block_size = 128;
    block_count = 64;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

let make_dev () =
  let clock = Clock.create () in
  (Block_device.create ~config:small_config ~clock (), clock)

let get dev name = Stats.Counter.get (Block_device.stats dev) name

(* regression: a vectored request naming the same block twice must
   resolve duplicates before charging — one seek, one transfer, later
   pair wins *)
let test_write_vec_dedup () =
  let dev, clock = make_dev () in
  let t0 = Clock.now clock in
  Block_device.write_vec dev [ (5, "first"); (5, "second") ];
  let elapsed = Clock.now clock - t0 in
  check_string "later pair wins" "second"
    (String.sub (Block_device.read dev 5) 0 6 |> String.trim);
  check_int "one per-block write" 1 (get dev "writes");
  check_int "one merged run" 1 (get dev "merged_runs");
  check_int "one block of bytes" small_config.Block_device.block_size
    (get dev "bytes_written");
  check_int "one write op" 1 (get dev "write_ops");
  (* duplicate resolved before charging: cost of exactly one seek *)
  check_int "single-seek charge" small_config.Block_device.write_latency
    elapsed

let test_write_vec_out_of_range_atomic () =
  let dev, clock = make_dev () in
  Block_device.write dev 1 "keep";
  let writes0 = get dev "writes" and t0 = Clock.now clock in
  (try
     Block_device.write_vec dev [ (1, "clobber"); (9_999, "x") ];
     Alcotest.fail "expected Out_of_range"
   with Block_device.Out_of_range 9_999 -> ());
  check_string "existing block untouched" "keep"
    (String.trim (Block_device.read dev 1) |> fun s ->
     String.sub s 0 4);
  check_int "no write charged" writes0 (get dev "writes");
  (* only the probe read above advanced the clock *)
  check_int "no time charged by the failed request"
    (small_config.Block_device.read_latency)
    (Clock.now clock - t0)

let test_read_vec_faulted_atomic () =
  let dev, clock = make_dev () in
  Block_device.write dev 1 "a";
  Block_device.write dev 3 "b";
  Block_device.inject_fault dev 3;
  let reads0 = get dev "reads" and t0 = Clock.now clock in
  (try
     ignore (Block_device.read_vec dev [ 1; 3 ]);
     Alcotest.fail "expected Faulted"
   with Block_device.Faulted 3 -> ());
  check_int "no read charged" reads0 (get dev "reads");
  check_int "no time charged" 0 (Clock.now clock - t0)

let test_write_vec_faulted_atomic () =
  let dev, _ = make_dev () in
  Block_device.write dev 2 "keep";
  Block_device.inject_fault dev 7;
  (try
     Block_device.write_vec dev [ (2, "clobber"); (7, "x") ];
     Alcotest.fail "expected Faulted"
   with Block_device.Faulted 7 -> ());
  check_string "no partial persistence" "keep"
    (String.sub (Block_device.read dev 2) 0 4)

let test_crash_after_writes_snapshots_nth () =
  let dev, _ = make_dev () in
  let plan = Fault_plan.create () in
  Fault_plan.crash_after_writes plan 2;
  Block_device.set_fault_plan dev (Some plan);
  Block_device.write dev 1 "one";
  check_bool "not yet captured" true (Block_device.crash_image dev = None);
  Block_device.write dev 2 "two";
  Block_device.write dev 3 "three";
  Block_device.set_fault_plan dev None;
  match Block_device.crash_image dev with
  | None -> Alcotest.fail "crash image not captured"
  | Some image ->
      let clock = Clock.create () in
      let dev2 = Block_device.create ~config:small_config ~clock () in
      Block_device.restore dev2 image;
      check_string "write 1 present" "one"
        (String.sub (Block_device.read dev2 1) 0 3);
      check_string "write 2 present" "two"
        (String.sub (Block_device.read dev2 2) 0 3);
      check_bool "write 3 absent (after the crash)" false
        (Block_device.is_written dev2 3)

let test_torn_write_keeps_prefix_runs () =
  let dev, _ = make_dev () in
  let plan = Fault_plan.create () in
  Fault_plan.on_write plan ~nth:1 (Fault_plan.Torn_write { keep_runs = 1 });
  Block_device.set_fault_plan dev (Some plan);
  (* two contiguous runs: [4;5] and [9] *)
  (try
     Block_device.write_vec dev [ (4, "aa"); (5, "bb"); (9, "cc") ];
     Alcotest.fail "expected Faulted"
   with Block_device.Faulted 9 -> ());
  Block_device.set_fault_plan dev None;
  check_bool "first run persisted" true
    (Block_device.is_written dev 4 && Block_device.is_written dev 5);
  check_bool "second run lost" false (Block_device.is_written dev 9)

let test_bit_flip_action () =
  let dev, _ = make_dev () in
  let plan = Fault_plan.create () in
  Fault_plan.on_write plan ~nth:1
    (Fault_plan.Bit_flip { block = 6; byte = 0; bit = 0 });
  Block_device.set_fault_plan dev (Some plan);
  Block_device.write dev 6 "A";
  (* 'A' = 0x41; bit 0 flipped -> 0x40 = '@' *)
  Block_device.set_fault_plan dev None;
  check_string "one bit flipped" "@" (String.sub (Block_device.read dev 6) 0 1)

(* same seed => same schedule: two identical devices running the same
   writes under two identically seeded random plans end up bit-identical
   and fail at the same ops *)
let test_random_plan_deterministic () =
  let run () =
    let dev, _ = make_dev () in
    let plan =
      Fault_plan.random
        ~prng:(Prng.create ~seed:99L ())
        ~writes:20 ~faults:6
        ~block_count:small_config.Block_device.block_count ()
    in
    Block_device.set_fault_plan dev (Some plan);
    let failures = ref [] in
    for i = 1 to 20 do
      try Block_device.write dev (i mod 32) (Printf.sprintf "w%02d" i)
      with Block_device.Faulted _ -> failures := i :: !failures
    done;
    Block_device.set_fault_plan dev None;
    (Block_device.snapshot dev, !failures)
  in
  let snap1, fails1 = run () and snap2, fails2 = run () in
  check_bool "same medium state" true (snap1 = snap2);
  Alcotest.(check (list int)) "same failing ops" fails1 fails2

(* ------------------------------------------------------------------ *)
(* DBFS self-healing                                                   *)

let pd_config =
  { Block_device.default_config with block_size = 512; block_count = 4_096 }

let npd_config =
  { Block_device.default_config with block_size = 512; block_count = 2_048 }

let actor = "ded"

let boot_machine ?(subjects = 3) () =
  let m =
    Machine.boot ~seed:11L ~pd_device:pd_config ~npd_device:npd_config ()
  in
  (match Machine.load_declarations m Population.type_declaration with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("load_declarations: " ^ e));
  let people = Population.generate (Prng.create ~seed:11L ()) ~n:subjects in
  List.iter
    (fun (p : Population.person) ->
      match
        Machine.collect m ~type_name:Population.type_name
          ~subject:p.Population.subject_id ~interface:"web_form"
          ~record:(Population.record_of p)
          ~consents:p.Population.consent_profile ()
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("collect: " ^ e))
    people;
  (m, people)

let first_pd store (p : Population.person) =
  match Dbfs.pds_of_subject store ~actor p.Population.subject_id with
  | Ok (pd :: _) -> pd
  | _ -> Alcotest.fail "no pd for subject"

let record_blocks store pd =
  match Dbfs.entry_blocks store ~actor pd with
  | Ok (rb, _) -> rb
  | Error e -> Alcotest.fail (Dbfs.error_to_string e)

let cold_remount store =
  match Dbfs.crash_and_remount store with
  | Ok s -> s
  | Error e -> Alcotest.fail ("remount: " ^ e)

let test_record_bit_rot_detected_and_healed () =
  let m, people = boot_machine () in
  let pd = first_pd (Machine.dbfs m) (List.hd people) in
  let blocks = record_blocks (Machine.dbfs m) pd in
  let store = cold_remount (Machine.dbfs m) in
  Block_device.unsafe_flip (Dbfs.device store) ~block:(List.hd blocks)
    ~byte:10 ~bit:3;
  (match Dbfs.get_record store ~actor pd with
  | Error (Dbfs.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "rotten record read back as Ok"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Dbfs.error_to_string e));
  check_bool "fsck flags the damage" true (Result.is_error (Dbfs.fsck store));
  let rep = Dbfs.fsck_repair store in
  check_bool "rotten pd quarantined" true
    (List.mem_assoc pd rep.Dbfs.rr_quarantined);
  check_bool "store clean after repair" true rep.Dbfs.rr_clean;
  check_bool "re-check passes" true (Result.is_ok (Dbfs.fsck store));
  (* the other subjects' data survived *)
  List.iteri
    (fun i p ->
      if i > 0 then
        check_bool "survivor still readable" true
          (Result.is_ok (Dbfs.get_record store ~actor (first_pd store p))))
    people

let test_index_damage_detected_and_rebuilt () =
  let m, people = boot_machine () in
  let store = Machine.dbfs m in
  let pd = first_pd store (List.hd people) in
  check_bool "tamper hook applied" true (Dbfs.unsafe_tamper_index store pd);
  check_bool "fsck flags the dropped posting" true
    (Result.is_error (Dbfs.fsck store));
  let rep = Dbfs.fsck_repair store in
  check_bool "clean after rebuild" true rep.Dbfs.rr_clean;
  check_int "nothing quarantined" 0 (List.length rep.Dbfs.rr_quarantined);
  check_string "index matches a from-scratch rebuild"
    (Dbfs.rebuilt_index_dump store) (Dbfs.index_dump store)

let test_transient_fault_ridden_out () =
  let m, people = boot_machine () in
  let pd = first_pd (Machine.dbfs m) (List.hd people) in
  let blocks = record_blocks (Machine.dbfs m) pd in
  let store = cold_remount (Machine.dbfs m) in
  Block_device.inject_transient_fault (Dbfs.device store) (List.hd blocks)
    ~count:2;
  check_bool "read rides out the transient" true
    (Result.is_ok (Dbfs.get_record store ~actor pd));
  check_bool "bounded retries recorded" true
    (Stats.Counter.get (Dbfs.stats store) "fault_retries" > 0)

let test_degraded_mode_read_only () =
  let m, people = boot_machine () in
  let store = Machine.dbfs m in
  let dev = Machine.pd_device m in
  let lay = Dbfs.layout store in
  let faulted = ref [] in
  for b = lay.Dbfs.l_rec_start to lay.Dbfs.l_high_start - 1 do
    if not (Block_device.is_written dev b) then begin
      Block_device.inject_fault dev b;
      faulted := b :: !faulted
    end
  done;
  let victim = List.hd people in
  let fresh : Population.person =
    { victim with subject_id = "sub-degraded"; email = "degraded@x.test" }
  in
  (match
     Machine.collect m ~type_name:Population.type_name
       ~subject:fresh.Population.subject_id ~interface:"web_form"
       ~record:(Population.record_of fresh)
       ~consents:fresh.Population.consent_profile ()
   with
  | Ok _ -> Alcotest.fail "insert on a dead medium should fail"
  | Error _ -> ());
  check_bool "store flips to degraded" true (Dbfs.degraded store <> None);
  (match
     Machine.set_consent m ~subject:victim.Population.subject_id
       ~purpose:"marketing" Membrane.Denied
   with
  | Ok _ -> Alcotest.fail "mutation accepted while degraded"
  | Error _ -> ());
  (* art. 15 is still served from a degraded store *)
  check_bool "right of access still served" true
    (Result.is_ok
       (Machine.right_of_access m ~subject:victim.Population.subject_id));
  List.iter (Block_device.clear_fault dev) !faulted;
  let rep = Dbfs.fsck_repair store in
  check_bool "repair comes back clean" true rep.Dbfs.rr_clean;
  check_bool "degraded mode cleared" true (Dbfs.degraded store = None);
  (match
     Machine.collect m ~type_name:Population.type_name
       ~subject:fresh.Population.subject_id ~interface:"web_form"
       ~record:(Population.record_of fresh)
       ~consents:fresh.Population.consent_profile ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("writes refused after recovery: " ^ e))

let test_remount_error_on_corrupt_superblock () =
  let m, _ = boot_machine () in
  let store = Machine.dbfs m in
  (* zero the superblock: mount must refuse, not crash *)
  Block_device.trim (Machine.pd_device m) 0;
  match Dbfs.crash_and_remount store with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mounted a device with a destroyed superblock"

(* ------------------------------------------------------------------ *)
(* the campaign itself                                                 *)

let campaign = lazy (FC.run ~seed:5 ~subjects:4 ())

let test_campaign_exhaustive_all_invariants () =
  let r = Lazy.force campaign in
  check_bool "workload produced writes" true (r.FC.fc_total_writes > 0);
  check_bool "not sampled" false r.FC.fc_sampled;
  check_int "every write op crashed exactly once" r.FC.fc_total_writes
    (List.length r.FC.fc_points);
  Alcotest.(check (list int))
    "ordinals cover 1..W"
    (List.init r.FC.fc_total_writes (fun i -> i + 1))
    (List.map (fun p -> p.FC.cp_write) r.FC.fc_points |> List.sort compare);
  List.iter
    (fun p ->
      let ctx = Printf.sprintf "write %d (%s)" p.FC.cp_write p.FC.cp_step in
      check_bool (ctx ^ ": residue-free") true p.FC.cp_residue_free;
      check_bool (ctx ^ ": audit verifiable") true p.FC.cp_audit_ok;
      check_bool (ctx ^ ": fsck clean after repair") true p.FC.cp_fsck_clean)
    r.FC.fc_points;
  Alcotest.(check (float 0.001)) "pass rate" 100.0 (FC.pass_rate_pct r);
  List.iter
    (fun s ->
      check_bool ("scenario " ^ s.FC.sc_name ^ ": " ^ s.FC.sc_detail) true
        s.FC.sc_pass)
    r.FC.fc_scenarios;
  check_bool "all_pass agrees" true (FC.all_pass r)

let test_campaign_deterministic () =
  let r1 = Lazy.force campaign in
  let r2 = FC.run ~seed:5 ~subjects:4 () in
  check_string "same seed => byte-identical report"
    (Json.to_string (FC.to_json r1))
    (Json.to_string (FC.to_json r2))

let test_campaign_sampling_caps_points () =
  let r = FC.run ~seed:5 ~subjects:4 ~max_points:5 () in
  check_bool "sampled flag set" true r.FC.fc_sampled;
  check_bool "at most the cap" true (List.length r.FC.fc_points <= 5);
  check_bool "last write always covered" true
    (List.exists
       (fun p -> p.FC.cp_write = r.FC.fc_total_writes)
       r.FC.fc_points)

let test_committed_artifact_validates () =
  let path =
    if Sys.file_exists "BENCH_fault_campaign.json" then
      "BENCH_fault_campaign.json"
    else "../BENCH_fault_campaign.json"
  in
  match BR.read_file path with
  | None -> Alcotest.fail ("cannot read " ^ path)
  | Some report -> (
      match BR.validate_fault report with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("committed artifact invalid: " ^ e))

let test_validate_rejects_failures () =
  let r = Lazy.force campaign in
  let good = BR.make_fault ~result:r () in
  check_bool "fresh report validates" true
    (Result.is_ok (BR.validate_fault good));
  (* flip one scenario to failing: validation must reject *)
  let broken =
    {
      r with
      FC.fc_scenarios =
        { FC.sc_name = "forced"; sc_pass = false; sc_detail = "x" }
        :: r.FC.fc_scenarios;
    }
  in
  check_bool "failed scenario rejected" true
    (Result.is_error (BR.validate_fault (BR.make_fault ~result:broken ())));
  (* a sampled run claiming exhaustiveness must also be rejected *)
  let holey =
    { r with FC.fc_points = List.tl r.FC.fc_points; fc_sampled = false }
  in
  check_bool "missing crash point rejected" true
    (Result.is_error (BR.validate_fault (BR.make_fault ~result:holey ())));
  match BR.compare_fault ~old_report:good ~pass_rate_pct:99.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compare_fault accepted a sub-100%% pass rate"

let () =
  Alcotest.run "fault-injection"
    [
      ( "block-device",
        [
          Alcotest.test_case "write_vec dedups before charging" `Quick
            test_write_vec_dedup;
          Alcotest.test_case "write_vec atomic on Out_of_range" `Quick
            test_write_vec_out_of_range_atomic;
          Alcotest.test_case "read_vec atomic on Faulted" `Quick
            test_read_vec_faulted_atomic;
          Alcotest.test_case "write_vec atomic on Faulted" `Quick
            test_write_vec_faulted_atomic;
          Alcotest.test_case "crash_after_writes snapshots nth" `Quick
            test_crash_after_writes_snapshots_nth;
          Alcotest.test_case "torn write keeps prefix runs" `Quick
            test_torn_write_keeps_prefix_runs;
          Alcotest.test_case "bit-flip action" `Quick test_bit_flip_action;
          Alcotest.test_case "random plan deterministic" `Quick
            test_random_plan_deterministic;
        ] );
      ( "self-heal",
        [
          Alcotest.test_case "record bit rot detected + healed" `Quick
            test_record_bit_rot_detected_and_healed;
          Alcotest.test_case "index damage detected + rebuilt" `Quick
            test_index_damage_detected_and_rebuilt;
          Alcotest.test_case "transient fault ridden out" `Quick
            test_transient_fault_ridden_out;
          Alcotest.test_case "degraded mode is read-only" `Quick
            test_degraded_mode_read_only;
          Alcotest.test_case "remount fails on dead superblock" `Quick
            test_remount_error_on_corrupt_superblock;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "exhaustive, all invariants hold" `Slow
            test_campaign_exhaustive_all_invariants;
          Alcotest.test_case "deterministic report" `Slow
            test_campaign_deterministic;
          Alcotest.test_case "sampling caps points" `Quick
            test_campaign_sampling_caps_points;
          Alcotest.test_case "committed artifact validates" `Quick
            test_committed_artifact_validates;
          Alcotest.test_case "validation rejects failures" `Quick
            test_validate_rejects_failures;
        ] );
    ]
