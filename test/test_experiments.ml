(* Small-scale smoke runs of every experiment harness, asserting the
   qualitative shape EXPERIMENTS.md records (who wins, who violates). *)

module E = Rgpdos_workload.Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_e1_shape () =
  let r = E.e1_ded_stages ~subjects:100 () in
  check_int "7 stages" 7 (List.length r.E.e1_stage_ns);
  check_bool "total positive" true (r.E.e1_total_ns > 0);
  (* membrane+data loads dominate: they do the device IO *)
  let load =
    List.assoc "ded_load_membrane" r.E.e1_stage_ns
    + List.assoc "ded_load_data" r.E.e1_stage_ns
  in
  check_bool "IO stages dominate" true (load > r.E.e1_total_ns / 2);
  ignore (E.render_e1 r)

let test_e2_shape () =
  let rows = E.e2_gdprbench ~subjects:60 ~ops_per_role:40 () in
  check_int "3 backends x 4 roles" 12 (List.length rows);
  List.iter
    (fun r ->
      check_int (r.E.e2_backend ^ "/" ^ r.E.e2_role ^ " errors") 0 r.E.e2_errors)
    rows;
  (* vanilla must be the fastest processor backend (no enforcement) *)
  let sim backend =
    (List.find
       (fun r -> r.E.e2_backend = backend && r.E.e2_role = "processor")
       rows)
      .E.e2_sim_ms
  in
  check_bool "vanilla <= gdpr baseline on processor" true
    (sim "db-vanilla" <= sim "db-gdpr");
  ignore (E.render_e2 rows)

let test_e2b_shape () =
  let rows = E.e2b_scaling ~sizes:[ 40; 80 ] ~ops:20 () in
  check_int "2 sizes x 3 backends" 6 (List.length rows);
  (* simulated time grows with population for every backend *)
  List.iter
    (fun backend ->
      let at n =
        (List.find
           (fun r -> r.E.e2b_backend = backend && r.E.e2b_subjects = n)
           rows)
          .E.e2b_sim_ms
      in
      check_bool (backend ^ " scales with data") true (at 80 > at 40))
    [ "rgpdos"; "db-gdpr"; "db-vanilla" ];
  ignore (E.render_e2b rows)

let test_e3_shape () =
  let rows = E.e3_erasure ~subjects:40 ~erase_fraction:0.2 () in
  check_int "four systems" 4 (List.length rows);
  let find name =
    List.find
      (fun r ->
        String.length r.E.e3_system >= String.length name
        && String.sub r.E.e3_system 0 (String.length name) = name)
      rows
  in
  let plain = find "db-gdpr (plain" in
  let secure = find "db-gdpr (secure delete" in
  let scrubbed = find "db-gdpr (secure + journal" in
  let rgpdos = find "rgpdOS" in
  (* the paper's claim: the baseline leaks, through free blocks and the
     journal; scrubbing fixes it; rgpdOS never leaks and keeps escrow *)
  check_bool "plain delete leaks" true (plain.E.e3_leaked_subjects > 0);
  check_bool "secure delete still leaks (journal)" true
    (secure.E.e3_leaked_subjects > 0);
  check_int "scrub removes the leak" 0 scrubbed.E.e3_leaked_subjects;
  check_int "rgpdOS never leaks" 0 rgpdos.E.e3_leaked_subjects;
  check_bool "authority escrow works" true rgpdos.E.e3_authority_recovers;
  ignore (E.render_e3 rows)

let test_e4_shape () =
  let rows = E.e4_access ~records_per_subject:[ 1; 10; 50 ] () in
  check_int "three points" 3 (List.length rows);
  List.iter
    (fun r -> check_bool "export complete" true r.E.e4_export_complete)
    rows;
  (* latency grows with volume *)
  let us = List.map (fun r -> r.E.e4_sim_us) rows in
  check_bool "monotone" true (List.sort compare us = us);
  ignore (E.render_e4 rows)

let test_e5_shape () =
  let rows = E.e5_ttl ~sizes:[ 100; 200 ] ~expired_fraction:0.3 () in
  List.iter
    (fun r ->
      check_int "all expired removed" r.E.e5_expired r.E.e5_removed;
      check_bool "expected expiry count" true
        (abs (r.E.e5_expired - (r.E.e5_records * 3 / 10)) <= 1))
    rows;
  ignore (E.render_e5 rows)

let test_e6_shape () =
  let rows = E.e6_filter ~subjects:100 ~rates:[ 0.0; 0.5; 1.0 ] () in
  (match rows with
  | [ r0; r_half; r1 ] ->
      check_int "rate 0: nothing consumed" 0 r0.E.e6_consumed;
      check_int "rate 0: all filtered" 100 r0.E.e6_filtered;
      check_int "rate 1: all consumed" 100 r1.E.e6_consumed;
      check_bool "rate .5 in between" true
        (r_half.E.e6_consumed > 20 && r_half.E.e6_consumed < 80)
  | _ -> Alcotest.fail "expected three rows");
  ignore (E.render_e6 rows)

let test_e7_shape () =
  let r = E.e7_leak ~attacks:40 () in
  check_bool "baseline leaks every dangling read" true
    (r.E.e7_baseline_leaks = r.E.e7_baseline_dangling_reads
    && r.E.e7_baseline_leaks > 0);
  check_int "rgpdOS leaks nothing" 0 r.E.e7_rgpdos_leaks;
  check_int "every rgpdOS attack blocked" r.E.e7_rgpdos_attacks r.E.e7_rgpdos_blocked;
  ignore (E.render_e7 r)

let test_e8_shape () =
  let r = E.e8_register () in
  check_int "no misclassification" 0 r.E.e8_misclassified;
  check_int "accepted" 3 r.E.e8_accepted;
  check_int "rejected" 1 r.E.e8_rejected_no_purpose;
  check_int "alerted" 2 r.E.e8_alerted;
  ignore (E.render_e8 r)

let test_e9_shape () =
  let rows = E.e9_kernels ~jobs:20 () in
  check_int "three splits + two multicore configs" 5 (List.length rows);
  List.iter
    (fun r ->
      check_bool "separation invariant" false r.E.e9_pd_on_general;
      check_bool "both kernels worked" true
        (r.E.e9_general_busy_ms > 0.0 && r.E.e9_rgpd_busy_ms > 0.0))
    rows;
  (match rows with
  | [ small; balanced; big; cores2; cores4 ] ->
      (* giving rgpdOS more CPU shrinks its busy (wall) time *)
      check_bool "bigger rgpd partition => less rgpd wall time" true
        (big.E.e9_rgpd_busy_ms < small.E.e9_rgpd_busy_ms);
      (* multicore: busy time (aggregate core-time) is invariant, the
         makespan shrinks with the per-round critical path *)
      List.iter
        (fun mc ->
          check_bool "busy invariant under cores" true
            (mc.E.e9_rgpd_busy_ms = balanced.E.e9_rgpd_busy_ms
            && mc.E.e9_general_busy_ms = balanced.E.e9_general_busy_ms))
        [ cores2; cores4 ];
      check_bool "2 cores shrink makespan" true
        (cores2.E.e9_makespan_ms < balanced.E.e9_makespan_ms);
      check_bool "4 cores shrink it further" true
        (cores4.E.e9_makespan_ms < cores2.E.e9_makespan_ms)
  | _ -> Alcotest.fail "expected five rows");
  ignore (E.render_e9 rows)

let test_e11_shape () =
  let r = E.e11_consent_churn ~subjects:60 ~copy_fraction:0.25 ~flips:30 () in
  check_int "copies made" 15 r.E.e11_copies;
  check_bool "updates include copies" true (r.E.e11_membranes_updated >= r.E.e11_flips);
  check_int "no copy left inconsistent" 0 r.E.e11_inconsistent_copies;
  ignore (E.render_e11 r)

let test_a1_shape () =
  let rows = E.a1_fetch_mode ~subjects:60 ~rates:[ 0.1; 0.9 ] () in
  check_int "2 rates x 2 modes" 4 (List.length rows);
  let find mode rate =
    List.find (fun r -> r.E.a1_mode = mode && r.E.a1_grant_rate = rate) rows
  in
  (* two-phase never overreads *)
  check_int "two-phase overread @0.1" 0 (find "two-phase" 0.1).E.a1_overread;
  check_int "two-phase overread @0.9" 0 (find "two-phase" 0.9).E.a1_overread;
  (* single-phase reads refused PD, the more so the lower the grant rate *)
  check_bool "single-phase overreads @0.1" true
    ((find "single-phase" 0.1).E.a1_overread > 0);
  check_bool "overread shrinks with grant rate" true
    ((find "single-phase" 0.9).E.a1_overread
    < (find "single-phase" 0.1).E.a1_overread);
  (* at low grant rates two-phase is cheaper: it skips the refused data *)
  check_bool "two-phase cheaper @0.1" true
    ((find "two-phase" 0.1).E.a1_sim_us < (find "single-phase" 0.1).E.a1_sim_us);
  ignore (E.render_a1 rows)

let test_a2_shape () =
  let rows = E.a2_placement ~subjects:100 ~cpu_costs_ns:[ 1_000; 50_000 ] () in
  check_int "2 costs x 3 locations" 6 (List.length rows);
  let at loc cost =
    (List.find
       (fun r -> r.E.a2_location = loc && r.E.a2_cpu_cost_us = cost)
       rows)
      .E.a2_sim_ms
  in
  (* IO-bound (1us/record): near-data wins by skipping the transfer *)
  check_bool "pim beats host when IO-bound" true (at "pim" 1.0 < at "host" 1.0);
  (* compute-bound (50us/record): the host's fast cores win *)
  check_bool "host beats pis when compute-bound" true
    (at "host" 50.0 < at "pis" 50.0);
  ignore (E.render_a2 rows)

let test_e10_shape () =
  let rows = E.e10_audit ~sizes:[ 50; 500 ] () in
  List.iter
    (fun r -> check_bool "tamper detected" true r.E.e10_tamper_detected)
    rows;
  ignore (E.render_e10 rows)

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "E1 ded stages" `Quick test_e1_shape;
          Alcotest.test_case "E2 gdprbench" `Slow test_e2_shape;
          Alcotest.test_case "E2b scaling" `Slow test_e2b_shape;
          Alcotest.test_case "E3 erasure" `Slow test_e3_shape;
          Alcotest.test_case "E4 access" `Quick test_e4_shape;
          Alcotest.test_case "E5 ttl" `Quick test_e5_shape;
          Alcotest.test_case "E6 filter" `Quick test_e6_shape;
          Alcotest.test_case "E7 leak" `Quick test_e7_shape;
          Alcotest.test_case "E8 register" `Quick test_e8_shape;
          Alcotest.test_case "E9 kernels" `Quick test_e9_shape;
          Alcotest.test_case "E11 consent churn" `Quick test_e11_shape;
          Alcotest.test_case "A1 fetch-mode ablation" `Quick test_a1_shape;
          Alcotest.test_case "A2 placement ablation" `Quick test_a2_shape;
          Alcotest.test_case "E10 audit" `Quick test_e10_shape;
        ] );
    ]
