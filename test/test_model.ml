(* The executable GDPR model and its refinement harness: pure-model
   unit laws, the qcheck lockstep law (any generated op script leaves
   the real DBFS observationally equal to the model, on both
   allocators, with the index/cache-coherence audit riding along), the
   crash-refinement and degraded-mode laws, the full campaign
   (linearizability at 1/2/4 domains included), the injected-bug
   demonstration (a deliberately broken DBFS shim is caught with a
   shrunk, replayable counterexample), and the BENCH_model_check.json
   artifact machinery (absolute conformance gate included). *)

module Json = Rgpdos_util.Json
module Prng = Rgpdos_util.Prng
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Query = Rgpdos_dbfs.Query
module M = Rgpdos_membrane.Membrane
module Model = Rgpdos_model.Model
module RF = Rgpdos_model.Refine
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_strings = Alcotest.(check (list string))

let ok = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "model error: %s"
        (match e with
        | Model.Unknown_pd id -> "unknown pd " ^ id
        | Model.Already_erased id -> "already erased " ^ id)

let membrane ~pd_id ~subject ?ttl () =
  M.make ~pd_id ~type_name:"item" ~subject_id:subject ~origin:M.Subject
    ~consents:[ ("service", M.All) ]
    ~created_at:1_000 ?ttl ()

let record i = [ ("k_int", Value.VInt i); ("k_str", Value.VString "x") ]

let seeded_model () =
  let m = Model.empty in
  let m =
    Model.insert m ~pd_id:"pd1" ~type_name:"item" ~subject:"s0"
      ~record:(record 1)
      ~membrane:(membrane ~pd_id:"pd1" ~subject:"s0" ())
  in
  let m =
    Model.insert m ~pd_id:"pd2" ~type_name:"item" ~subject:"s1"
      ~record:(record 2)
      ~membrane:(membrane ~pd_id:"pd2" ~subject:"s1" ~ttl:500 ())
  in
  Model.insert m ~pd_id:"pd3" ~type_name:"item" ~subject:"s0"
    ~record:(record 3)
    ~membrane:(membrane ~pd_id:"pd3" ~subject:"s0" ())

(* ------------------------------------------------------------------ *)
(* pure model                                                         *)

let test_model_observables () =
  let m = seeded_model () in
  check_strings "subjects sorted" [ "s0"; "s1" ] (Model.subjects m);
  check_strings "pds_of_subject insertion order" [ "pd1"; "pd3" ]
    (Model.pds_of_subject m "s0");
  check_strings "list_pds" [ "pd1"; "pd2"; "pd3" ] (Model.list_pds m "item");
  check_strings "select live matches" [ "pd2"; "pd3" ]
    (Model.select m "item" (Query.Gt ("k_int", Value.VInt 1)));
  check_strings "expired: pd2 only, ttl 500 from created_at 1000" [ "pd2" ]
    (Model.expired m ~now:2_000);
  check_strings "nothing expired before the ttl" []
    (Model.expired m ~now:1_200);
  check_int "live_count" 3 (Model.live_count m)

let test_model_erase_delete () =
  let m = seeded_model () in
  let m = ok (Model.erase m "pd1" ~sealed:"sealed-bytes") in
  (match Model.find m "pd1" with
  | Some { Model.p_state = Model.Erased s; _ } ->
      check_string "sealed envelope kept" "sealed-bytes" s
  | _ -> Alcotest.fail "pd1 not erased");
  (* erased entries stay accountable but drop out of live observables *)
  check_strings "erased pd still listed" [ "pd1"; "pd3" ]
    (Model.pds_of_subject m "s0");
  check_strings "erased pd not selected" []
    (Model.select m "item" (Query.Eq ("k_int", Value.VInt 1)));
  (match Model.update_record m "pd1" (record 9) with
  | Error (Model.Already_erased _) -> ()
  | _ -> Alcotest.fail "update_record on erased pd must fail");
  (* membranes on erased entries stay updatable (consent is live even
     after crypto-erasure), like Dbfs.update_membrane *)
  let pd1 = Option.get (Model.find m "pd1") in
  let m =
    ok (Model.update_membrane m "pd1" (M.withdraw pd1.Model.p_membrane ~purpose:"service"))
  in
  let m = ok (Model.delete m "pd3") in
  check_strings "deleted pd gone" [ "pd1" ] (Model.pds_of_subject m "s0");
  (match Model.update_record m "nope" (record 0) with
  | Error (Model.Unknown_pd _) -> ()
  | _ -> Alcotest.fail "unknown pd must fail");
  check_int "live_count after erase+delete" 1 (Model.live_count m)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_model_dump () =
  let m = seeded_model () in
  check_bool "dump mentions every pd" true
    (List.for_all (fun id -> contains ~needle:id (Model.dump m))
       [ "pd1"; "pd2"; "pd3" ]);
  (* dump_excluding drops quarantined entries on the model side, the
     same way the crash harness drops them from the recovered store *)
  let full = Model.dump m in
  let excl = Model.dump_excluding m ~exclude:[ "pd2" ] in
  check_bool "dump differs once pd2 is excluded" true (full <> excl);
  check_string "excluding nothing is dump" full
    (Model.dump_excluding m ~exclude:[]);
  check_bool "equal is structural" true
    (Model.equal m (seeded_model ()));
  check_bool "equal detects divergence" false
    (Model.equal m (ok (Model.delete m "pd1")))

(* ------------------------------------------------------------------ *)
(* qcheck laws                                                        *)

let qcount default =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

(* Scripts shrink by op removal (QCheck.Shrink.list), matching the
   harness's own greedy shrinker; counterexamples print as the
   replayable script dump. *)
let arb_script =
  QCheck.make
    ~print:RF.script_to_string ~shrink:QCheck.Shrink.list
    (QCheck.Gen.map
       (fun seed -> RF.gen_script (Prng.create ~seed:(Int64.of_int seed) ()))
       (QCheck.Gen.int_bound 1_000_000))

let prop_lockstep =
  QCheck.Test.make ~count:(qcount 15)
    ~name:"lockstep: dbfs == model on every observable, both allocators"
    arb_script
    (fun script ->
      List.for_all
        (fun cfg ->
          match RF.run_script cfg script with
          | Ok _ -> true
          | Error e -> QCheck.Test.fail_reportf "%s: %s" (RF.cfg_to_string cfg) e)
        [ RF.base_cfg; { RF.base_cfg with RF.segmented = true } ])

let prop_degraded =
  QCheck.Test.make ~count:(qcount 8)
    ~name:"degraded: unrecoverable damage => every mutation refused, \
           Art. 15 reads survive"
    arb_script
    (fun script ->
      match RF.check_degraded script with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* ------------------------------------------------------------------ *)
(* crash refinement + full campaign                                   *)

let test_crash_matrix () =
  let script = RF.gen_script (Prng.create ~seed:99L ()) in
  List.iteri
    (fun i cfg ->
      match RF.run_crash ~spec_seed:(7_000 + i) cfg script with
      | Ok n -> check_bool "exercised at least the crash point" true (n >= 1)
      | Error e -> Alcotest.failf "crash refinement (%s): %s" (RF.cfg_to_string cfg) e)
    RF.all_cfgs

let test_campaign () =
  let r = RF.run ~seed:7 ~scripts:2 () in
  check_bool "campaign passes" true (RF.all_pass r);
  Alcotest.(check (float 0.0)) "conformance 100" 100.0 (RF.conformance_pct r);
  check_int "scripts" 2 r.RF.r_scripts;
  Alcotest.(check (list int)) "lin domains" [ 1; 2; 4 ] r.RF.r_lin_domains;
  check_bool "crash matrix covered" true
    (r.RF.r_crash_runs = 2 * List.length RF.all_cfgs);
  check_bool "fault points exercised" true (r.RF.r_fault_points > 0);
  check_bool "observables compared" true (r.RF.r_ops_checked > 100)

(* ------------------------------------------------------------------ *)
(* the harness catches an injected semantic bug                       *)

let test_injected_bug_caught_and_shrunk () =
  match
    RF.find_counterexample ~bug:RF.Drop_consent_flip ~seed:3 ~max_scripts:50
      RF.base_cfg
  with
  | None -> Alcotest.fail "injected consent-flip bug was not caught"
  | Some f ->
      let n = List.length f.RF.f_script in
      check_bool "counterexample shrunk to <= 4 ops" true (n <= 4);
      check_bool "shrinking recorded" true (f.RF.f_shrunk_from >= n);
      check_bool "a consent flip survives shrinking" true
        (List.exists (function RF.Flip _ -> true | _ -> false) f.RF.f_script);
      (* replayable: the shrunk script still fails under the bug and
         passes without it *)
      (match RF.run_script ~bug:RF.Drop_consent_flip RF.base_cfg f.RF.f_script with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shrunk counterexample does not replay");
      (match RF.run_script RF.base_cfg f.RF.f_script with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "shrunk script fails without the bug: %s" e);
      let rendered = RF.failure_to_string f in
      check_bool "report carries the seed" true
        (String.length rendered > 0 && f.RF.f_seed >= 0)

(* ------------------------------------------------------------------ *)
(* artifact machinery                                                 *)

let test_report_roundtrip () =
  let r = RF.run ~seed:11 ~scripts:2 () in
  let j = BR.make_model ~result:r ~wall_ms:12.0 () in
  (match BR.validate_model j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* the JSON survives a print/parse cycle *)
  (match Json.of_string (Json.to_string j) with
  | Ok j' -> (
      match BR.validate_model j' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reparsed report invalid: %s" e)
  | Error e -> Alcotest.failf "report does not reparse: %s" e);
  (* the gate is absolute on both sides *)
  (match BR.compare_model ~old_report:j ~conformance_pct:100.0 with
  | Ok pct -> Alcotest.(check (float 0.0)) "gate pct" 100.0 pct
  | Error e -> Alcotest.failf "absolute gate rejected 100%%: %s" e);
  match BR.compare_model ~old_report:j ~conformance_pct:99.9 with
  | Ok _ -> Alcotest.fail "gate passed under 100%% conformance"
  | Error _ -> ()

let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_model_check.json"; "BENCH_model_check.json" ]

let test_committed_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_model_check.json missing (regenerate: dune exec \
         bench/main.exe -- model --model-json BENCH_model_check.json)"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" path e
      | Ok v -> (
          match BR.validate_model v with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" path e))

let () =
  Alcotest.run "model"
    [
      ( "pure-model",
        [
          Alcotest.test_case "observables" `Quick test_model_observables;
          Alcotest.test_case "erase/delete" `Quick test_model_erase_delete;
          Alcotest.test_case "dump/equal" `Quick test_model_dump;
        ] );
      ( "laws",
        [
          QCheck_alcotest.to_alcotest prop_lockstep;
          QCheck_alcotest.to_alcotest prop_degraded;
        ] );
      ( "crash",
        [ Alcotest.test_case "config matrix" `Quick test_crash_matrix ] );
      ( "campaign",
        [ Alcotest.test_case "full run" `Quick test_campaign ] );
      ( "injected-bug",
        [
          Alcotest.test_case "caught, shrunk, replayable" `Quick
            test_injected_bug_caught_and_shrunk;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "fresh report roundtrip + gate" `Quick
            test_report_roundtrip;
          Alcotest.test_case "committed artifact validates" `Quick
            test_committed_artifact;
        ] );
    ]
