module Prng = Rgpdos_util.Prng
module Clock = Rgpdos_util.Clock
module Articles = Rgpdos_gdpr.Articles
module Authority = Rgpdos_gdpr.Authority
module Compliance = Rgpdos_gdpr.Compliance
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* articles                                                           *)

let test_articles_complete () =
  check_int "eleven articles" 11 (List.length Articles.all);
  List.iter
    (fun a ->
      check_bool "has description" true (String.length (Articles.description a) > 0);
      check_bool "has mechanism" true (String.length (Articles.mechanism a) > 0))
    Articles.all

(* ------------------------------------------------------------------ *)
(* authority                                                          *)

let test_authority_seal_open () =
  let auth = Authority.create ~seed:99L () in
  let prng = Prng.create ~seed:5L () in
  let record : Record.t =
    [ ("name", Value.VString "Chiraz"); ("age", Value.VInt 34) ]
  in
  let sealed = Authority.sealer auth ~prng record in
  check_bool "opaque" true (sealed <> Record.encode record);
  match Authority.open_record auth sealed with
  | Ok r -> check_bool "roundtrip" true (Record.equal r record)
  | Error e -> Alcotest.fail e

let test_authority_keys_differ () =
  let a1 = Authority.create ~seed:1L () in
  let a2 = Authority.create ~seed:2L () in
  check_bool "fingerprints differ" true
    (Authority.key_fingerprint a1 <> Authority.key_fingerprint a2)

let test_wrong_authority_cannot_open () =
  let a1 = Authority.create ~seed:1L () in
  let a2 = Authority.create ~seed:2L () in
  let prng = Prng.create ~seed:6L () in
  let sealed = Authority.sealer a1 ~prng [ ("x", Value.VInt 1) ] in
  check_bool "other authority fails" true
    (Result.is_error (Authority.open_record a2 sealed))

let test_authority_rejects_garbage () =
  let auth = Authority.create ~seed:1L () in
  check_bool "garbage" true (Result.is_error (Authority.open_envelope auth "junk"))

let test_authority_deterministic_from_seed () =
  let a1 = Authority.create ~seed:7L () in
  let a2 = Authority.create ~seed:7L () in
  check_string "same key" (Authority.key_fingerprint a1) (Authority.key_fingerprint a2)

(* ------------------------------------------------------------------ *)
(* pseudonymisation                                                   *)

module Pseudonym = Rgpdos_gdpr.Pseudonym

let test_pseudonym_deterministic_and_opaque () =
  let k = Pseudonym.key_of_string "operator-secret" in
  let p1 = Pseudonym.pseudonym k "alice@example.test" in
  let p2 = Pseudonym.pseudonym k "alice@example.test" in
  check_string "stable" p1 p2;
  check_int "16 hex chars" 16 (String.length p1);
  check_bool "opaque" true (p1 <> "alice@example.test");
  (* different identities, different pseudonyms *)
  check_bool "injective-ish" true (Pseudonym.pseudonym k "bob@example.test" <> p1)

let test_pseudonym_unlinkable_across_keys () =
  let k1 = Pseudonym.key_of_string "operator-A" in
  let k2 = Pseudonym.key_of_string "operator-B" in
  check_bool "different keys, different pseudonyms" true
    (Pseudonym.pseudonym k1 "alice" <> Pseudonym.pseudonym k2 "alice")

let test_pseudonymize_fields () =
  let k = Pseudonym.key_of_string "s" in
  let record =
    [ ("name", Value.VString "Alice"); ("email", Value.VString "a@x");
      ("year", Value.VInt 1990) ]
  in
  let out = Pseudonym.pseudonymize_fields k ~fields:[ "name"; "email" ] record in
  check_bool "name pseudonymised" true
    (Record.get out "name" <> Some (Value.VString "Alice"));
  check_bool "int field untouched" true
    (Record.get out "year" = Some (Value.VInt 1990));
  (* idempotent shape: field order preserved *)
  check_int "same arity" 3 (List.length out)

let test_generalize_int () =
  let record = [ ("year", Value.VInt 1987); ("n", Value.VInt (-7)) ] in
  let out = Pseudonym.generalize_int ~bucket:10 ~field:"year" record in
  check_bool "1987 -> 1980" true (Record.get out "year" = Some (Value.VInt 1980));
  let out2 = Pseudonym.generalize_int ~bucket:10 ~field:"n" record in
  check_bool "-7 -> -10 (floor)" true (Record.get out2 "n" = Some (Value.VInt (-10)));
  Alcotest.check_raises "bucket 0"
    (Invalid_argument "Pseudonym.generalize_int: bucket <= 0") (fun () ->
      ignore (Pseudonym.generalize_int ~bucket:0 ~field:"year" record))

let test_k_anonymity () =
  let rows = [ 1980; 1980; 1980; 1990; 1990; 1990 ] in
  check_bool "3-anonymous" true (Pseudonym.k_anonymous_by Fun.id rows ~k:3);
  check_bool "not 4-anonymous" false (Pseudonym.k_anonymous_by Fun.id rows ~k:4);
  (* generalisation repairs a failing release *)
  let years = [ 1981; 1983; 1987; 1992; 1995; 1999 ] in
  check_bool "raw years not 3-anonymous" false
    (Pseudonym.k_anonymous_by Fun.id years ~k:3);
  check_bool "decades are 3-anonymous" true
    (Pseudonym.k_anonymous_by (fun y -> y / 10) years ~k:3)

(* ------------------------------------------------------------------ *)
(* compliance evaluation                                              *)

let test_compliance_clean_passes () =
  let verdicts = Compliance.evaluate Compliance.clean in
  check_bool "all ok" true (Compliance.all_ok verdicts);
  check_bool "summary" true
    (Compliance.summary verdicts = Printf.sprintf "%d/%d articles satisfied"
                                     (List.length verdicts) (List.length verdicts))

let failing_article evidence article =
  let verdicts = Compliance.evaluate evidence in
  let v = List.find (fun v -> v.Compliance.article = article) verdicts in
  not v.Compliance.ok

let test_each_violation_maps_to_article () =
  check_bool "expired -> 5(1)(e)" true
    (failing_article
       { Compliance.clean with Compliance.expired_live_pd = 3 }
       Articles.Art5_1e_storage_limitation);
  check_bool "leaks -> 17" true
    (failing_article
       { Compliance.clean with Compliance.forensic_leaks_after_erasure = 1 }
       Articles.Art17_erasure);
  check_bool "unconsented -> 6" true
    (failing_article
       { Compliance.clean with Compliance.unconsented_accesses = 2 }
       Articles.Art6_lawfulness);
  check_bool "bad audit -> 15" true
    (failing_article
       { Compliance.clean with Compliance.audit_chain_ok = false }
       Articles.Art15_access);
  check_bool "membraneless -> 32" true
    (failing_article
       { Compliance.clean with Compliance.membraneless_pd = 1 }
       Articles.Art32_security);
  check_bool "bad export -> 20" true
    (failing_article
       { Compliance.clean with Compliance.exports_machine_readable = false }
       Articles.Art20_portability);
  check_bool "no minimisation -> 5(1)(c)" true
    (failing_article
       { Compliance.clean with Compliance.minimisation_enforced = false }
       Articles.Art5_1c_minimisation)

let test_summary_names_violations () =
  let verdicts =
    Compliance.evaluate
      { Compliance.clean with Compliance.forensic_leaks_after_erasure = 5 }
  in
  let s = Compliance.summary verdicts in
  let contains needle =
    let hl = String.length s and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "names article 17" true (contains "Art. 17")

let () =
  Alcotest.run "gdpr"
    [
      ( "articles",
        [ Alcotest.test_case "complete" `Quick test_articles_complete ] );
      ( "authority",
        [
          Alcotest.test_case "seal/open" `Quick test_authority_seal_open;
          Alcotest.test_case "keys differ" `Quick test_authority_keys_differ;
          Alcotest.test_case "wrong authority" `Quick test_wrong_authority_cannot_open;
          Alcotest.test_case "garbage" `Quick test_authority_rejects_garbage;
          Alcotest.test_case "deterministic" `Quick test_authority_deterministic_from_seed;
        ] );
      ( "pseudonym",
        [
          Alcotest.test_case "deterministic + opaque" `Quick
            test_pseudonym_deterministic_and_opaque;
          Alcotest.test_case "unlinkable across keys" `Quick
            test_pseudonym_unlinkable_across_keys;
          Alcotest.test_case "pseudonymize fields" `Quick test_pseudonymize_fields;
          Alcotest.test_case "generalize int" `Quick test_generalize_int;
          Alcotest.test_case "k-anonymity" `Quick test_k_anonymity;
        ] );
      ( "compliance",
        [
          Alcotest.test_case "clean passes" `Quick test_compliance_clean_passes;
          Alcotest.test_case "violations map to articles" `Quick
            test_each_violation_maps_to_article;
          Alcotest.test_case "summary names violations" `Quick
            test_summary_names_violations;
        ] );
    ]
