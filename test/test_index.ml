(* Secondary indexes + predicate pushdown: planner equivalence (qcheck),
   plan shapes, crash consistency of the persisted indexes, fsck's
   index ↔ entry cross-checks, subject-index ordering, warm==cold probe
   charging, Query pretty-printer pins, and the committed
   BENCH_index_select.json artifact. *)

module Clock = Rgpdos_util.Clock
module Block_device = Rgpdos_block.Block_device
module M = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Query = Rgpdos_dbfs.Query
module Plan = Rgpdos_dbfs.Plan
module Dbfs = Rgpdos_dbfs.Dbfs
module Json = Rgpdos_util.Json
module BR = Rgpdos_workload.Bench_report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_ids = Alcotest.(check (list string))

let ded = "ded"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dbfs error: %s" (Dbfs.error_to_string e)

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let small_config =
  {
    Block_device.block_size = 512;
    block_count = 4096;
    read_latency = 10;
    write_latency = 20;
    byte_latency = 0;
    vectored = true;
    async = false;
    queue_depth = 8;
  }

(* two indexed fields (one int — exercising the ordered index — and one
   string), two unindexed ones so residual filtering stays in play *)
let indexed_schema () =
  match
    Schema.make ~name:"item"
      ~fields:
        [
          { Schema.fname = "k_int"; ftype = Value.TInt; required = true };
          { Schema.fname = "k_str"; ftype = Value.TString; required = true };
          { Schema.fname = "extra"; ftype = Value.TInt; required = true };
          { Schema.fname = "text"; ftype = Value.TString; required = true };
        ]
      ~default_consents:[ ("service", M.All) ]
      ~default_ttl:Clock.year
      ~indexed_fields:[ "k_int"; "k_str" ] ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let make_dbfs () =
  let clock = Clock.create () in
  let dev = Block_device.create ~config:small_config ~clock () in
  let t = Dbfs.format dev ~journal_blocks:64 in
  ok (Dbfs.create_type t ~actor:ded (indexed_schema ()));
  (t, clock)

let item_record ~k_int ~k_str ~extra : Record.t =
  [
    ("k_int", Value.VInt k_int);
    ("k_str", Value.VString k_str);
    ("extra", Value.VInt extra);
    ("text", Value.VString (Printf.sprintf "row %d %s" k_int k_str));
  ]

let insert_item t clock ~subject record =
  let schema = ok (Dbfs.schema t ~actor:ded "item") in
  ok
    (Dbfs.insert t ~actor:ded ~subject ~type_name:"item" ~record
       ~membrane_of:(fun ~pd_id ->
         M.make ~pd_id ~type_name:"item" ~subject_id:subject
           ~origin:schema.Schema.default_origin
           ~consents:schema.Schema.default_consents
           ~created_at:(Clock.now clock)
           ?ttl:schema.Schema.default_ttl
           ~sensitivity:schema.Schema.default_sensitivity ()))

let seal _record = "sealed-by-test"

(* the reference semantics: full scan + Query.eval over loaded records
   (erased entries yield None and are excluded, like select's live set) *)
let reference_select t pred =
  let pds = ok (Dbfs.list_pds t ~actor:ded "item") in
  let loaded = ok (Dbfs.get_records t ~actor:ded pds) in
  List.filter_map
    (fun (pd, record) ->
      match record with
      | Some r when Query.eval pred r -> Some pd
      | _ -> None)
    loaded

(* ------------------------------------------------------------------ *)
(* qcheck: planner equivalence                                        *)

type case = {
  rows : (int * string * int) list;  (* k_int, k_str, extra *)
  erase_mask : bool list;
  query : Query.t;
}

let gen_field_value st =
  if QCheck.Gen.bool st then ("k_int", Value.VInt (QCheck.Gen.int_range 0 4 st))
  else if QCheck.Gen.bool st then
    ("k_str", Value.VString (QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ] st))
  else ("extra", Value.VInt (QCheck.Gen.int_range 0 4 st))

let gen_atom st =
  match QCheck.Gen.int_range 0 4 st with
  | 0 -> Query.True
  | 1 ->
      let f, v = gen_field_value st in
      Query.Eq (f, v)
  | 2 ->
      let f, v = gen_field_value st in
      Query.Lt (f, v)
  | 3 ->
      let f, v = gen_field_value st in
      Query.Gt (f, v)
  | _ ->
      let f = QCheck.Gen.oneofl [ "k_str"; "text" ] st in
      Query.Contains (f, QCheck.Gen.oneofl [ "a"; "b"; "row"; "zz" ] st)

let rec gen_query depth st =
  if depth <= 0 then gen_atom st
  else
    match QCheck.Gen.int_range 0 4 st with
    | 0 | 1 -> gen_atom st
    | 2 -> Query.And (gen_query (depth - 1) st, gen_query (depth - 1) st)
    | 3 -> Query.Or (gen_query (depth - 1) st, gen_query (depth - 1) st)
    | _ -> Query.Not (gen_query (depth - 1) st)

let gen_case st =
  let n = QCheck.Gen.int_range 0 20 st in
  let rows =
    List.init n (fun _ ->
        ( QCheck.Gen.int_range 0 4 st,
          QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ] st,
          QCheck.Gen.int_range 0 4 st ))
  in
  let erase_mask =
    List.map (fun _ -> QCheck.Gen.int_range 0 4 st = 0) rows
  in
  { rows; erase_mask; query = gen_query 3 st }

let print_case c =
  Printf.sprintf "%d rows, erased [%s], query %s" (List.length c.rows)
    (String.concat ";"
       (List.map (fun b -> if b then "x" else ".") c.erase_mask))
    (Query.to_string c.query)

let populate c =
  let t, clock = make_dbfs () in
  let pds =
    List.mapi
      (fun i (k_int, k_str, extra) ->
        insert_item t clock
          ~subject:(Printf.sprintf "s%d" (i mod 4))
          (item_record ~k_int ~k_str ~extra))
      c.rows
  in
  List.iteri
    (fun i pd ->
      if List.nth c.erase_mask i then
        ok (Dbfs.erase_with t ~actor:ded pd ~seal))
    pds;
  (t, clock)

let prop_select_equals_eval =
  QCheck.Test.make ~name:"select == full-scan Query.eval filter" ~count:120
    (QCheck.make ~print:print_case gen_case)
    (fun c ->
      let t, _clock = populate c in
      let expected = reference_select t c.query in
      let via_index = ok (Dbfs.select t ~actor:ded "item" c.query) in
      let via_scan =
        ok (Dbfs.select t ~actor:ded ~use_indexes:false "item" c.query)
      in
      via_index = expected && via_scan = expected)

let prop_select_survives_remount =
  QCheck.Test.make ~name:"select equivalence holds after crash_and_remount"
    ~count:40
    (QCheck.make ~print:print_case gen_case)
    (fun c ->
      let t, _clock = populate c in
      let expected = reference_select t c.query in
      match Dbfs.crash_and_remount t with
      | Error e -> QCheck.Test.fail_reportf "remount failed: %s" e
      | Ok t' ->
          ok (Dbfs.select t' ~actor:ded "item" c.query) = expected
          && Dbfs.index_dump t' = Dbfs.rebuilt_index_dump t')

(* ------------------------------------------------------------------ *)
(* plan shapes                                                        *)

let plan t pred = ok (Dbfs.plan_for t ~actor:ded "item" pred)

let test_plan_shapes () =
  let t, _ = make_dbfs () in
  (match plan t Query.True with
  | Plan.Full_scan { trivial = true } -> ()
  | p -> Alcotest.failf "True: expected trivial full scan, got %s" (Plan.to_string p));
  (match plan t (Query.Eq ("k_int", Value.VInt 1)) with
  | Plan.Indexed { exact = true; _ } -> ()
  | p -> Alcotest.failf "Eq indexed: expected exact probe, got %s" (Plan.to_string p));
  (match plan t (Query.Lt ("k_int", Value.VInt 3)) with
  | Plan.Indexed { exact = true; _ } -> ()
  | p -> Alcotest.failf "Lt indexed: expected exact probe, got %s" (Plan.to_string p));
  (match plan t (Query.Eq ("extra", Value.VInt 1)) with
  | Plan.Full_scan { trivial = false } -> ()
  | p -> Alcotest.failf "Eq unindexed: expected full scan, got %s" (Plan.to_string p));
  (match plan t (Query.Not (Query.Eq ("k_int", Value.VInt 1))) with
  | Plan.Full_scan { trivial = false } -> ()
  | p -> Alcotest.failf "Not: expected full scan, got %s" (Plan.to_string p));
  (match
     plan t
       (Query.And
          (Query.Eq ("k_int", Value.VInt 1), Query.Contains ("text", "row")))
   with
  | Plan.Indexed { exact = false; _ } -> ()
  | p ->
      Alcotest.failf "And with residual: expected inexact probe, got %s"
        (Plan.to_string p));
  (match
     plan t
       (Query.And
          ( Query.Eq ("k_int", Value.VInt 1),
            Query.Gt ("k_int", Value.VInt 0) ))
   with
  | Plan.Indexed { probe = Plan.Inter _; exact = true } -> ()
  | p -> Alcotest.failf "And: expected exact intersection, got %s" (Plan.to_string p));
  (match
     plan t
       (Query.Or
          ( Query.Eq ("k_int", Value.VInt 1),
            Query.Eq ("k_str", Value.VString "a") ))
   with
  | Plan.Indexed { probe = Plan.Union _; exact = true } -> ()
  | p -> Alcotest.failf "Or: expected exact union, got %s" (Plan.to_string p));
  match
    plan t
      (Query.Or
         (Query.Eq ("k_int", Value.VInt 1), Query.Contains ("text", "row")))
  with
  | Plan.Full_scan { trivial = false } -> ()
  | p ->
      Alcotest.failf "Or with unindexed arm: expected full scan, got %s"
        (Plan.to_string p)

(* an exact plan needs no record loads at all *)
let test_exact_plan_skips_record_loads () =
  let t, clock = make_dbfs () in
  for i = 0 to 19 do
    ignore
      (insert_item t clock ~subject:"s0"
         (item_record ~k_int:(i mod 5) ~k_str:"a" ~extra:i))
  done;
  let reads_before = Rgpdos_util.Stats.Counter.get (Dbfs.stats t) "record_reads" in
  let ids = ok (Dbfs.select t ~actor:ded "item" (Query.Eq ("k_int", Value.VInt 2))) in
  check_int "matches" 4 (List.length ids);
  check_int "no record loads on an exact plan" reads_before
    (Rgpdos_util.Stats.Counter.get (Dbfs.stats t) "record_reads")

(* warm == cold: probing twice costs the same simulated time *)
let test_probe_charging_warm_equals_cold () =
  let t, clock = make_dbfs () in
  for i = 0 to 19 do
    ignore
      (insert_item t clock ~subject:"s0"
         (item_record ~k_int:(i mod 5) ~k_str:"b" ~extra:i))
  done;
  let time_one pred =
    let t0 = Clock.now clock in
    ignore (ok (Dbfs.select t ~actor:ded "item" pred));
    Clock.now clock - t0
  in
  let pred = Query.Eq ("k_int", Value.VInt 3) in
  let cold = time_one pred in
  let warm = time_one pred in
  check_bool "probe charges simulated time" true (cold > 0);
  check_int "warm == cold" cold warm

(* ------------------------------------------------------------------ *)
(* crash consistency                                                  *)

let ok' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "remount: %s" e

let test_index_survives_crash_interleaved () =
  let t, clock = make_dbfs () in
  let pds = ref [] in
  let insert i =
    let pd =
      insert_item t clock
        ~subject:(Printf.sprintf "s%d" (i mod 3))
        (item_record ~k_int:(i mod 5) ~k_str:"a" ~extra:i)
    in
    pds := !pds @ [ pd ];
    pd
  in
  for i = 0 to 7 do
    ignore (insert i)
  done;
  (* update flips an indexed field: postings must re-key *)
  ok
    (Dbfs.update_record t ~actor:ded (List.nth !pds 2)
       (item_record ~k_int:4 ~k_str:"e" ~extra:99));
  ok (Dbfs.erase_with t ~actor:ded (List.nth !pds 3) ~seal);
  ok (Dbfs.delete t ~actor:ded (List.nth !pds 4));
  let t = ok' (Dbfs.crash_and_remount t) in
  check_string "remount restores exactly the rebuilt index"
    (Dbfs.rebuilt_index_dump t) (Dbfs.index_dump t);
  (* keep going after the crash: more inserts and a consent re-membrane *)
  let t_ref = t in
  let pd9 =
    insert_item t_ref clock ~subject:"s1" (item_record ~k_int:1 ~k_str:"c" ~extra:9)
  in
  let membrane = ok (Dbfs.get_membrane t_ref ~actor:ded pd9) in
  let rekeyed =
    M.make ~pd_id:pd9 ~type_name:"item" ~subject_id:"s1"
      ~origin:membrane.M.origin ~consents:membrane.M.consents
      ~created_at:membrane.M.created_at ~ttl:(2 * Clock.year)
      ~sensitivity:membrane.M.sensitivity ()
  in
  ok (Dbfs.update_membrane t_ref ~actor:ded pd9 rekeyed);
  let t2 = ok' (Dbfs.crash_and_remount t_ref) in
  check_string "second remount still matches the rebuild"
    (Dbfs.rebuilt_index_dump t2) (Dbfs.index_dump t2);
  match Dbfs.fsck t2 with
  | Ok () -> ()
  | Error lines -> Alcotest.failf "fsck after crashes: %s" (String.concat "; " lines)

let test_expiry_queue_tracks_membranes () =
  let t, clock = make_dbfs () in
  let p0 = insert_item t clock ~subject:"s0" (item_record ~k_int:0 ~k_str:"a" ~extra:0) in
  Clock.advance clock Clock.day;
  let p1 = insert_item t clock ~subject:"s1" (item_record ~k_int:1 ~k_str:"b" ~extra:1) in
  Clock.advance clock Clock.day;
  let p2 = insert_item t clock ~subject:"s2" (item_record ~k_int:2 ~k_str:"c" ~extra:2) in
  check_int "queue population" 3 (Dbfs.expiry_queue_size t);
  (* nothing expired yet *)
  check_ids "peek before expiry" []
    (ok (Dbfs.expired_pds t ~actor:ded ~now:(Clock.now clock)));
  (* past the first TTL only *)
  let now = Clock.year + (Clock.day / 2) in
  check_ids "only the first entry is due" [ p0 ]
    (ok (Dbfs.expired_pds t ~actor:ded ~now));
  (* all due, in expiry order *)
  let later = Clock.year + (3 * Clock.day) in
  check_ids "expiry order" [ p0; p1; p2 ]
    (ok (Dbfs.expired_pds t ~actor:ded ~now:later));
  (* erase/delete pull entries out of the queue *)
  ok (Dbfs.erase_with t ~actor:ded p1 ~seal);
  ok (Dbfs.delete t ~actor:ded p0);
  check_int "queue shrank" 1 (Dbfs.expiry_queue_size t);
  check_ids "erased and deleted entries left the queue" [ p2 ]
    (ok (Dbfs.expired_pds t ~actor:ded ~now:later));
  (* and the queue survives a crash *)
  let t = match Dbfs.crash_and_remount t with
    | Ok t -> t
    | Error e -> Alcotest.failf "remount: %s" e
  in
  check_int "queue size after remount" 1 (Dbfs.expiry_queue_size t);
  check_ids "queue content after remount" [ p2 ]
    (ok (Dbfs.expired_pds t ~actor:ded ~now:later))

let test_fsck_flags_tampered_index () =
  let t, clock = make_dbfs () in
  let pd = insert_item t clock ~subject:"s0" (item_record ~k_int:3 ~k_str:"d" ~extra:0) in
  ignore (insert_item t clock ~subject:"s1" (item_record ~k_int:1 ~k_str:"a" ~extra:1));
  (match Dbfs.fsck t with
  | Ok () -> ()
  | Error lines -> Alcotest.failf "clean fsck: %s" (String.concat "; " lines));
  check_bool "tamper hook found a posting to corrupt" true
    (Dbfs.unsafe_tamper_index t pd);
  match Dbfs.fsck t with
  | Ok () -> Alcotest.fail "fsck missed a corrupted posting list"
  | Error lines ->
      check_bool "complaint names the index" true
        (List.exists (fun l -> contains_sub l "index") lines)

(* ------------------------------------------------------------------ *)
(* subject index ordering                                             *)

let test_pds_of_subject_insertion_order () =
  let t, clock = make_dbfs () in
  let mine = ref [] in
  for i = 0 to 9 do
    let subject = if i mod 2 = 0 then "alice" else "bob" in
    let pd =
      insert_item t clock ~subject (item_record ~k_int:i ~k_str:"a" ~extra:i)
    in
    if subject = "alice" then mine := !mine @ [ pd ]
  done;
  check_ids "insertion order at the API" !mine
    (ok (Dbfs.pds_of_subject t ~actor:ded "alice"));
  let t = match Dbfs.crash_and_remount t with
    | Ok t -> t
    | Error e -> Alcotest.failf "remount: %s" e
  in
  check_ids "same order after remount" !mine
    (ok (Dbfs.pds_of_subject t ~actor:ded "alice"))

(* ------------------------------------------------------------------ *)
(* Query pretty-printer pins                                          *)

let test_query_to_string_golden () =
  let open Query in
  check_string "true" "true" (to_string True);
  check_string "eq int" "k_int = 3" (to_string (Eq ("k_int", Value.VInt 3)));
  check_string "eq string" "k_str = \"a\""
    (to_string (Eq ("k_str", Value.VString "a")));
  check_string "lt float" "price < 2.5"
    (to_string (Lt ("price", Value.VFloat 2.5)));
  check_string "contains" "text contains \"row\""
    (to_string (Contains ("text", "row")));
  check_string "not" "not (k_int > 1)"
    (to_string (Not (Gt ("k_int", Value.VInt 1))));
  check_string "nested and/or/not"
    "((k_int = 1 and k_str = \"b\") or not ((extra < 4 and text contains \
     \"x\")))"
    (to_string
       (Or
          ( And (Eq ("k_int", Value.VInt 1), Eq ("k_str", Value.VString "b")),
            Not (And (Lt ("extra", Value.VInt 4), Contains ("text", "x"))) )));
  (* pp and to_string agree *)
  let q = And (True, Not (Or (True, Eq ("f", Value.VBool true)))) in
  check_string "pp == to_string" (to_string q) (Format.asprintf "%a" Query.pp q);
  check_string "bool golden" "(true and not ((true or f = true)))" (to_string q)

let test_monotone () =
  let open Query in
  check_bool "atoms are monotone" true
    (monotone (And (Eq ("a", Value.VInt 1), Or (Lt ("b", Value.VInt 2), Contains ("c", "x")))));
  check_bool "Not is not" false (monotone (Not True));
  check_bool "Not below And" false
    (monotone (And (True, Not (Eq ("a", Value.VInt 1)))))

(* ------------------------------------------------------------------ *)
(* committed artifact                                                 *)

let artifact =
  List.find_opt Sys.file_exists
    [ "../BENCH_index_select.json"; "BENCH_index_select.json" ]

let test_committed_artifact () =
  match artifact with
  | None ->
      Alcotest.fail
        "BENCH_index_select.json missing (regenerate: dune exec \
         bench/main.exe -- index --index-json BENCH_index_select.json)"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string raw with
      | Error e -> Alcotest.failf "%s does not parse: %s" path e
      | Ok v -> (
          match BR.validate_index v with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s invalid: %s" path e))

let test_compare_index_gate () =
  match artifact with
  | None -> Alcotest.fail "BENCH_index_select.json missing"
  | Some path -> (
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let old_report =
        match Json.of_string raw with
        | Ok v -> v
        | Error e -> Alcotest.failf "%s does not parse: %s" path e
      in
      (* the committed number gates itself *)
      let committed =
        match BR.compare_index ~old_report ~speedup1pct:1.0e9 with
        | Ok c -> c
        | Error e -> Alcotest.failf "self-compare failed: %s" e
      in
      check_bool "committed speedup clears the 10x bar" true
        (committed >= BR.index_speedup_bar);
      match BR.compare_index ~old_report ~speedup1pct:(committed *. 0.5) with
      | Ok _ -> Alcotest.fail "a halved speedup must trip the gate"
      | Error line ->
          check_bool "gate names the regression" true
            (contains_sub line "regressed"))

let () =
  Alcotest.run "index"
    [
      ( "planner",
        [
          QCheck_alcotest.to_alcotest prop_select_equals_eval;
          QCheck_alcotest.to_alcotest prop_select_survives_remount;
          Alcotest.test_case "plan shapes" `Quick test_plan_shapes;
          Alcotest.test_case "exact plan skips record loads" `Quick
            test_exact_plan_skips_record_loads;
          Alcotest.test_case "probe warm == cold" `Quick
            test_probe_charging_warm_equals_cold;
        ] );
      ( "durability",
        [
          Alcotest.test_case "index survives interleaved crashes" `Quick
            test_index_survives_crash_interleaved;
          Alcotest.test_case "expiry queue tracks membranes" `Quick
            test_expiry_queue_tracks_membranes;
          Alcotest.test_case "fsck flags a tampered index" `Quick
            test_fsck_flags_tampered_index;
          Alcotest.test_case "pds_of_subject insertion order" `Quick
            test_pds_of_subject_insertion_order;
        ] );
      ( "query",
        [
          Alcotest.test_case "to_string golden" `Quick test_query_to_string_golden;
          Alcotest.test_case "monotone" `Quick test_monotone;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "committed artifact validates" `Quick
            test_committed_artifact;
          Alcotest.test_case "compare gate" `Quick test_compare_index_gate;
        ] );
    ]
