(* Domain-parallel execution tests: the Pool primitive, PRNG stream
   splitting, the Clock/Idgen single-writer rule, the scheduler's
   multicore invariants, and — the load-bearing acceptance test — that a
   parallel DED / sharded-bench run is observably identical to the
   sequential run in everything but host wall-clock time. *)

module Pool = Rgpdos_util.Pool
module Prng = Rgpdos_util.Prng
module Clock = Rgpdos_util.Clock
module Idgen = Rgpdos_util.Idgen
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Resource = Rgpdos_kernel.Resource
module Syscall = Rgpdos_kernel.Syscall
module Subkernel = Rgpdos_kernel.Subkernel
module Scheduler = Rgpdos_kernel.Scheduler
module Audit_log = Rgpdos_audit.Audit_log
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Machine = Rgpdos.Machine
module SB = Rgpdos_workload.Shard_bench
module BR = Rgpdos_workload.Bench_report
module Json = Rgpdos_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)

let test_pool_map_preserves_order () =
  Pool.with_pool ~workers:3 (fun p ->
      let input = Array.init 100 (fun i -> i) in
      let out = Pool.map_array p (fun i -> i * i) input in
      Array.iteri (fun i v -> check_int "square in order" (i * i) v) out;
      let lst = Pool.map_list p string_of_int [ 5; 4; 3 ] in
      check_bool "list order" true (lst = [ "5"; "4"; "3" ]))

let test_pool_exception_propagates () =
  Pool.with_pool ~workers:2 (fun p ->
      let raised =
        try
          ignore
            (Pool.map_array p
               (fun i -> if i = 3 then failwith "boom3" else i)
               (Array.init 8 (fun i -> i)));
          false
        with Failure m -> m = "boom3"
      in
      check_bool "task failure re-raised" true raised;
      (* pool still usable after a failed map *)
      let out = Pool.map_array p (fun i -> i + 1) [| 1; 2 |] in
      check_bool "pool survives" true (out = [| 2; 3 |]))

let test_pool_inline () =
  (* workers:0 runs everything in the calling domain, immediately *)
  let p = Pool.create ~workers:0 () in
  check_int "no workers" 0 (Pool.workers p);
  let here = (Domain.self () :> int) in
  let fut = Pool.async p (fun () -> (Domain.self () :> int)) in
  check_int "inline task runs in caller's domain" here (Pool.await fut);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *)

let prop_chunks_cover_exactly =
  QCheck.Test.make ~count:300 ~name:"Pool.chunks covers each item once, balanced"
    QCheck.(pair (int_bound 500) (int_range 1 32))
    (fun (items, chunks) ->
      let ranges = Pool.chunks ~items ~chunks in
      let seen = Array.make (max items 1) 0 in
      Array.iter
        (fun (off, len) ->
          for i = off to off + len - 1 do
            seen.(i) <- seen.(i) + 1
          done)
        ranges;
      let covered =
        items = 0 || Array.for_all (fun c -> c = 1) (Array.sub seen 0 items)
      in
      let lens = Array.map snd ranges in
      let balanced =
        Array.length lens = 0
        || Array.fold_left max 0 lens - Array.fold_left min max_int lens <= 1
      in
      let bounded = Array.length ranges <= chunks in
      covered && balanced && bounded)

(* ------------------------------------------------------------------ *)
(* PRNG splitting                                                     *)

let prop_split_reproducible =
  QCheck.Test.make ~count:100 ~name:"Prng.split: same parent, same child stream"
    QCheck.int64 (fun seed ->
      let draw g = List.init 16 (fun _ -> Prng.next64 g) in
      let a = Prng.split (Prng.create ~seed ()) in
      let b = Prng.split (Prng.create ~seed ()) in
      draw a = draw b)

let prop_split_independent =
  QCheck.Test.make ~count:100
    ~name:"Prng.split: child stream differs from parent and siblings"
    QCheck.int64 (fun seed ->
      let g = Prng.create ~seed () in
      let kids = Prng.split_n g 4 in
      let draws = List.map (fun k -> List.init 8 (fun _ -> Prng.next64 k)) kids in
      let parent = List.init 8 (fun _ -> Prng.next64 g) in
      let all = parent :: draws in
      (* pairwise distinct streams *)
      List.for_all
        (fun s -> List.length (List.filter (( = ) s) all) = 1)
        all)

let test_split_n_shards_reproducible () =
  (* the sharded driver's seeding discipline: splitting the master PRNG
     n ways yields the same per-shard streams on every run *)
  let streams seed =
    Prng.split_n (Prng.create ~seed ()) 8
    |> List.map (fun g -> List.init 4 (fun _ -> Prng.next64 g))
  in
  check_bool "8-way split stable" true (streams 42L = streams 42L);
  check_bool "seed changes streams" true (streams 42L <> streams 43L)

(* ------------------------------------------------------------------ *)
(* single-writer rule for the mutable virtual-time primitives          *)

let test_clock_single_writer () =
  let c = Clock.create () in
  Clock.advance c 10;
  (* claimed by this domain *)
  let tripped =
    Domain.join
      (Domain.spawn (fun () ->
           try
             Clock.advance c 1;
             false
           with Failure _ -> true))
  in
  check_bool "cross-domain clock mutation trips assertion" true tripped;
  (* reads stay allowed anywhere; owner keeps writing *)
  check_int "read survives" 10
    (Domain.join (Domain.spawn (fun () -> Clock.now c)));
  Clock.advance c 5;
  check_int "owner still writes" 15 (Clock.now c)

let test_idgen_single_writer () =
  let g = Idgen.create ~prefix:"pd" in
  ignore (Idgen.fresh g);
  let tripped =
    Domain.join
      (Domain.spawn (fun () ->
           try
             ignore (Idgen.fresh_int g);
             false
           with Failure _ -> true))
  in
  check_bool "cross-domain idgen mutation trips assertion" true tripped;
  check_string "owner still allocates" "pd-00000001" (Idgen.fresh g)

(* ------------------------------------------------------------------ *)
(* scheduler multicore                                                *)

let make_kernels ~general_cores ~rgpd_cores =
  let r = Resource.create ~cpu_millis:8000 ~mem_pages:10000 in
  let claim owner cpu =
    Result.get_ok (Resource.claim r ~owner ~cpu_millis:cpu ~mem_pages:100)
  in
  let general =
    Subkernel.make ~id:"general" ~kind:Subkernel.General_purpose
      ~partition:(claim "general" 4000) ~policy:Syscall.Policy.allow_all
      ~cores:general_cores ()
  in
  let rgpd =
    Subkernel.make ~id:"rgpdos" ~kind:Subkernel.Rgpd
      ~partition:(claim "rgpdos" 2000) ~policy:Syscall.Policy.builtin_policy
      ~cores:rgpd_cores ()
  in
  (general, rgpd)

let run_mix ~general_cores ~rgpd_cores =
  let general, rgpd = make_kernels ~general_cores ~rgpd_cores in
  let clock = Clock.create () in
  let sched = Scheduler.create ~clock ~kernels:[ general; rgpd ] in
  for i = 0 to 15 do
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "pd%d" i;
           data_class = Scheduler.Pd;
           work = 1_000_000;
         });
    ignore
      (Scheduler.submit sched
         {
           Scheduler.job_id = Printf.sprintf "npd%d" i;
           data_class = Scheduler.Npd;
           work = 1_000_000;
         })
  done;
  Scheduler.run_until_idle sched ();
  (Scheduler.kernel_busy_time sched, Clock.now clock)

let test_scheduler_multicore_invariants () =
  let busy1, makespan1 = run_mix ~general_cores:1 ~rgpd_cores:1 in
  let busy4, makespan4 = run_mix ~general_cores:4 ~rgpd_cores:4 in
  (* busy time is aggregate core-time: invariant across core counts *)
  check_int "general busy invariant" (List.assoc "general" busy1)
    (List.assoc "general" busy4);
  check_int "rgpd busy invariant" (List.assoc "rgpdos" busy1)
    (List.assoc "rgpdos" busy4);
  (* the virtual clock advances by the per-round critical path, so four
     cores finish the same work markedly faster *)
  check_bool "multicore makespan shrinks" true (makespan4 * 2 < makespan1);
  check_bool "speedup bounded by core count" true (makespan4 * 4 >= makespan1)

let test_pd_never_on_general_any_core_count () =
  List.iter
    (fun cores ->
      let general, rgpd = make_kernels ~general_cores:cores ~rgpd_cores:cores in
      let clock = Clock.create () in
      let sched = Scheduler.create ~clock ~kernels:[ general; rgpd ] in
      for i = 0 to 9 do
        ignore
          (Scheduler.submit sched
             {
               Scheduler.job_id = Printf.sprintf "pd%d" i;
               data_class = Scheduler.Pd;
               work = 500_000;
             })
      done;
      Scheduler.run_until_idle sched ();
      let busy = Scheduler.kernel_busy_time sched in
      check_int
        (Printf.sprintf "general idle at %d cores" cores)
        0
        (List.assoc "general" busy);
      check_bool "rgpd did the work" true (List.assoc "rgpdos" busy > 0))
    [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* DED: parallel == sequential                                        *)

let declarations =
  {|
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_ano { year_of_birthdate };
  consent { purpose3: v_ano };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}

purpose purpose3 {
  description: "count users born after 1990";
  reads: user.v_ano;
  legal_basis: consent;
}
|}

let count_young_impl _ctx inputs =
  let n =
    List.length
      (List.filter
         (fun (i : Processing.pd_input) ->
           match Record.get i.record "year_of_birthdate" with
           | Some (Value.VInt y) -> y > 1990
           | _ -> false)
         inputs)
  in
  Ok (Processing.value_output (Value.VInt n))

let boot_counting_machine ~subjects =
  let m = Machine.boot ~seed:99L () in
  ignore (ok (Machine.load_declarations m declarations));
  for i = 0 to subjects - 1 do
    let consents =
      (* every third subject refuses, so the filtered counter is live *)
      if i mod 3 = 0 then Some [ ("purpose3", Rgpdos_membrane.Membrane.Denied) ]
      else None
    in
    ignore
      (ok
         (Machine.collect m ~type_name:"user"
            ~subject:(Printf.sprintf "sub-%03d" i)
            ~interface:"web_form:user_form.html"
            ~record:
              [
                ("name", Value.VString (Printf.sprintf "u%d" i));
                ("pwd", Value.VString "x");
                ("year_of_birthdate", Value.VInt (1970 + (i mod 40)));
              ]
            ?consents ()))
  done;
  let spec =
    ok
      (Machine.make_processing m ~name:"count_young" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         ~cpu_cost_per_record:4_000 ~shard_reduce:Processing.reduce_int_sum
         count_young_impl)
  in
  ignore (ok (Machine.register_processing m spec));
  m

let invoke_outcome m ?cores ?pool () =
  ok
    (Machine.invoke m ?cores ?pool ~name:"count_young"
       ~target:(Ded.All_of_type "user") ())

let same_observables label (a : Ded.outcome) (b : Ded.outcome) =
  check_bool (label ^ ": value") true (a.Ded.value = b.Ded.value);
  check_bool (label ^ ": produced_refs") true
    (a.Ded.produced_refs = b.Ded.produced_refs);
  check_int (label ^ ": consumed") a.Ded.consumed b.Ded.consumed;
  check_int (label ^ ": filtered") a.Ded.filtered b.Ded.filtered;
  check_int (label ^ ": overread") a.Ded.overread b.Ded.overread

(* The acceptance-criteria test: a parallel DED run yields the same
   outcome, the same filter/overread counters and the same audit
   verdict as the sequential run. *)
let test_ded_parallel_equals_sequential () =
  let subjects = 97 in
  let m_seq = boot_counting_machine ~subjects in
  let m_par = boot_counting_machine ~subjects in
  let seq = invoke_outcome m_seq ~cores:1 () in
  let par = invoke_outcome m_par ~cores:8 () in
  same_observables "cores 8 vs 1" seq par;
  check_bool "sequential counted something" true
    (match seq.Ded.value with Some (Value.VInt n) -> n > 0 | _ -> false);
  check_bool "some subjects filtered" true (seq.Ded.filtered > 0);
  check_int "overread zero (two-phase)" 0 seq.Ded.overread;
  (* both audit chains verify, with identical verdicts and lengths *)
  let verdict m = Result.is_ok (Audit_log.verify (Machine.audit m)) in
  check_bool "sequential audit verifies" true (verdict m_seq);
  check_bool "parallel audit verifies" true (verdict m_par);
  check_int "same audit length"
    (Audit_log.length (Machine.audit m_seq))
    (Audit_log.length (Machine.audit m_par));
  (* critical-path charging: the parallel ded_execute stage is strictly
     cheaper in simulated time than the sequential one *)
  let exec o = List.assoc "ded_execute" o.Ded.stage_ns in
  check_bool "parallel ded_execute cheaper" true (exec par < exec seq)

let test_ded_pool_changes_nothing () =
  (* with the same core count, running the shards on real domains must
     be fully unobservable: same outcome, same virtual clock, same
     audit head *)
  let subjects = 64 in
  let m_inline = boot_counting_machine ~subjects in
  let m_pooled = boot_counting_machine ~subjects in
  let inline = invoke_outcome m_inline ~cores:8 () in
  let pooled =
    Pool.with_pool ~workers:4 (fun pool ->
        invoke_outcome m_pooled ~cores:8 ~pool ())
  in
  same_observables "pool vs inline" inline pooled;
  check_bool "identical stage costs" true
    (inline.Ded.stage_ns = pooled.Ded.stage_ns);
  check_int "identical virtual clocks"
    (Clock.now (Machine.clock m_inline))
    (Clock.now (Machine.clock m_pooled));
  let head m =
    match List.rev (Audit_log.entries (Machine.audit m)) with
    | e :: _ -> e.Audit_log.hash
    | [] -> "genesis"
  in
  check_string "identical audit heads" (head m_inline) (head m_pooled)

let test_ded_filter_linear () =
  (* pin ded_filter's linearity: cost per membrane examined, so doubling
     the population doubles the stage *)
  let filter_ns subjects =
    let m = boot_counting_machine ~subjects in
    List.assoc "ded_filter" (invoke_outcome m ~cores:1 ()).Ded.stage_ns
  in
  let f40 = filter_ns 40 and f80 = filter_ns 80 in
  check_int "filter linear in selection" (2 * f40) f80;
  check_int "per-membrane constant" (Ded.cost_filter_per_membrane * 40) f40

(* ------------------------------------------------------------------ *)
(* sharded GDPRBench driver                                           *)

let test_shard_bench_pool_deterministic () =
  let run pool =
    SB.run ?pool ~role:Rgpdos_workload.Gdprbench.Processor ~subjects:120
      ~total_ops:60 ~shards:4 ()
  in
  let inline = run None in
  let pooled = Pool.with_pool ~workers:4 (fun p -> run (Some p)) in
  check_bool "audit ok inline" true inline.SB.audit_ok;
  check_bool "audit ok pooled" true pooled.SB.audit_ok;
  (* identical in everything but host wall-clock *)
  check_bool "same report modulo wall" true
    ({ inline with SB.wall_seconds = 0. }
    = { pooled with SB.wall_seconds = 0. });
  check_string "same cross-link" inline.SB.cross_link pooled.SB.cross_link;
  check_int "all ops accounted" 60
    (List.fold_left (fun a (o : SB.shard_outcome) -> a + o.SB.ops) 0
       inline.SB.per_shard)

let test_shard_bench_partition () =
  let pop =
    Rgpdos_workload.Population.generate (Prng.create ~seed:7L ()) ~n:200
  in
  let parts = SB.partition ~shards:8 pop in
  check_int "8 buckets" 8 (Array.length parts);
  check_int "partition covers population" 200
    (Array.fold_left (fun a p -> a + List.length p) 0 parts);
  (* deterministic: same population partitions the same way *)
  let again = SB.partition ~shards:8 pop in
  check_bool "partition deterministic" true (parts = again)

let test_shard_bench_speedup () =
  let run shards =
    SB.run ~role:Rgpdos_workload.Gdprbench.Processor ~subjects:200
      ~total_ops:80 ~shards ()
  in
  let base = run 1 and four = run 4 in
  check_bool "1-shard audit ok" true base.SB.audit_ok;
  check_bool "4-shard audit ok" true four.SB.audit_ok;
  let s = SB.speedup ~baseline:base four in
  check_bool
    (Printf.sprintf "4-shard speedup %.2f >= 2.5" s)
    true (s >= BR.speedup_bar)

(* ------------------------------------------------------------------ *)
(* committed artifact                                                 *)

let test_committed_scale_artifact_validates () =
  let path =
    List.find_opt Sys.file_exists
      [ "../BENCH_parallel_scale.json"; "BENCH_parallel_scale.json" ]
  in
  match path with
  | None -> Alcotest.fail "BENCH_parallel_scale.json not found"
  | Some p ->
      let ic = open_in_bin p in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      let json = ok (Json.of_string s) in
      (match BR.validate_scale json with
      | Ok () -> ()
      | Error e -> Alcotest.failf "artifact invalid: %s" e);
      (match BR.scale_speedup_at json 4 with
      | Some s ->
          check_bool
            (Printf.sprintf "committed 4-domain speedup %.2f >= 2.5" s)
            true (s >= BR.speedup_bar)
      | None -> Alcotest.fail "no 4-domain row")

(* ------------------------------------------------------------------ *)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_pool_map_preserves_order;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "inline pool" `Quick test_pool_inline;
          qt prop_chunks_cover_exactly;
        ] );
      ( "prng-split",
        [
          qt prop_split_reproducible;
          qt prop_split_independent;
          Alcotest.test_case "split_n reproducible" `Quick
            test_split_n_shards_reproducible;
        ] );
      ( "single-writer",
        [
          Alcotest.test_case "clock" `Quick test_clock_single_writer;
          Alcotest.test_case "idgen" `Quick test_idgen_single_writer;
        ] );
      ( "scheduler-multicore",
        [
          Alcotest.test_case "busy invariant, makespan shrinks" `Quick
            test_scheduler_multicore_invariants;
          Alcotest.test_case "PD never on general" `Quick
            test_pd_never_on_general_any_core_count;
        ] );
      ( "ded-parallel",
        [
          Alcotest.test_case "parallel == sequential" `Quick
            test_ded_parallel_equals_sequential;
          Alcotest.test_case "pool unobservable" `Quick
            test_ded_pool_changes_nothing;
          Alcotest.test_case "ded_filter linear" `Quick test_ded_filter_linear;
        ] );
      ( "shard-bench",
        [
          Alcotest.test_case "pool deterministic" `Quick
            test_shard_bench_pool_deterministic;
          Alcotest.test_case "partition" `Quick test_shard_bench_partition;
          Alcotest.test_case "speedup at 4 shards" `Quick
            test_shard_bench_speedup;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "BENCH_parallel_scale.json validates" `Quick
            test_committed_scale_artifact_validates;
        ] );
    ]
