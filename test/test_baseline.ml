module Clock = Rgpdos_util.Clock
module Block_device = Rgpdos_block.Block_device
module Jfs = Rgpdos_journalfs.Journalfs
module Userdb = Rgpdos_baseline.Userdb
module Process_model = Rgpdos_baseline.Process_model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "baseline error: %s" (Userdb.error_to_string e)

let make_db mode =
  let clock = Clock.create () in
  let dev =
    Block_device.create
      ~config:{ Block_device.default_config with Block_device.block_count = 4096 }
      ~clock ()
  in
  let fs = Jfs.format dev ~journal_blocks:64 in
  let db = ok (Userdb.create fs ~mode) in
  ok (Userdb.create_table db "person");
  (db, dev, clock)

let row ?(purposes = [ "service" ]) ?expires subject name =
  {
    Userdb.subject;
    fields = [ ("name", name); ("email", name ^ "@x.test") ];
    allowed_purposes = purposes;
    expires_at = expires;
  }

(* ------------------------------------------------------------------ *)
(* userdb engine                                                      *)

let test_insert_get () =
  let db, _, _ = make_db Userdb.Gdpr in
  let id = ok (Userdb.insert db ~table:"person" (row "s1" "Ana")) in
  match ok (Userdb.get db ~table:"person" id) with
  | Some r -> check_bool "name" true (List.assoc "name" r.Userdb.fields = "Ana")
  | None -> Alcotest.fail "row missing"

let test_update_delete () =
  let db, _, _ = make_db Userdb.Gdpr in
  let id = ok (Userdb.insert db ~table:"person" (row "s1" "Ana")) in
  ok (Userdb.update db ~table:"person" id (row "s1" "Anna"));
  (match ok (Userdb.get db ~table:"person" id) with
  | Some r -> check_bool "updated" true (List.assoc "name" r.Userdb.fields = "Anna")
  | None -> Alcotest.fail "row missing");
  ok (Userdb.delete db ~table:"person" id);
  check_bool "gone" true (ok (Userdb.get db ~table:"person" id) = None);
  check_int "count" 0 (ok (Userdb.row_count db ~table:"person"))

let test_unknown_table () =
  let db, _, _ = make_db Userdb.Gdpr in
  check_bool "unknown table" true
    (Result.is_error (Userdb.insert db ~table:"ghost" (row "s" "x")))

let test_gdpr_mode_purpose_filtering () =
  let db, _, clock = make_db Userdb.Gdpr in
  ignore (ok (Userdb.insert db ~table:"person" (row ~purposes:[ "service" ] "s1" "A")));
  ignore
    (ok
       (Userdb.insert db ~table:"person"
          (row ~purposes:[ "service"; "marketing" ] "s2" "B")));
  let marketing =
    ok (Userdb.query_purpose db ~table:"person" ~purpose:"marketing" ~now:(Clock.now clock))
  in
  check_int "only consented row" 1 (List.length marketing);
  let service =
    ok (Userdb.query_purpose db ~table:"person" ~purpose:"service" ~now:(Clock.now clock))
  in
  check_int "both rows" 2 (List.length service)

let test_vanilla_mode_ignores_consent () =
  let db, _, clock = make_db Userdb.Vanilla in
  ignore (ok (Userdb.insert db ~table:"person" (row ~purposes:[] "s1" "A")));
  let rows =
    ok (Userdb.query_purpose db ~table:"person" ~purpose:"marketing" ~now:(Clock.now clock))
  in
  check_int "vanilla returns everything" 1 (List.length rows)

let test_gdpr_mode_ttl_filtering () =
  let db, _, clock = make_db Userdb.Gdpr in
  ignore
    (ok
       (Userdb.insert db ~table:"person"
          (row ~purposes:[ "service" ] ~expires:1000 "s1" "A")));
  check_int "before expiry" 1
    (List.length
       (ok (Userdb.query_purpose db ~table:"person" ~purpose:"service" ~now:500)));
  Clock.advance clock 2000;
  check_int "after expiry hidden" 0
    (List.length
       (ok
          (Userdb.query_purpose db ~table:"person" ~purpose:"service"
             ~now:(Clock.now clock))));
  (* but the row is still on disk until an expiry pass runs *)
  check_int "still stored" 1 (ok (Userdb.row_count db ~table:"person"));
  let n = ok (Userdb.expire_rows db ~table:"person" ~now:(Clock.now clock)) in
  check_int "expired" 1 n;
  check_int "removed" 0 (ok (Userdb.row_count db ~table:"person"))

let test_subject_rows_and_delete_subject () =
  let db, _, _ = make_db Userdb.Gdpr in
  ignore (ok (Userdb.insert db ~table:"person" (row "alice" "A1")));
  ignore (ok (Userdb.insert db ~table:"person" (row "bob" "B")));
  ignore (ok (Userdb.insert db ~table:"person" (row "alice" "A2")));
  check_int "alice rows" 2
    (List.length (ok (Userdb.rows_of_subject db ~table:"person" "alice")));
  check_int "deleted" 2 (ok (Userdb.delete_subject db ~table:"person" "alice"));
  check_int "remaining" 1 (ok (Userdb.row_count db ~table:"person"))

let test_export_positional_keys () =
  (* the §4 critique: baseline exports are structured but the keys are the
     field VALUES in positional pairs, not meaningful names *)
  let db, _, _ = make_db Userdb.Gdpr in
  ignore
    (ok
       (Userdb.insert db ~table:"person"
          {
            Userdb.subject = "s";
            fields = [ ("first_name", "Chiraz"); ("last_name", "Benamor") ];
            allowed_purposes = [];
            expires_at = None;
          }));
  let export = ok (Userdb.export_subject db ~table:"person" "s") in
  let contains needle =
    let hl = String.length export and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub export i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "positional pairing" true (contains "\"Chiraz\": \"Benamor\"");
  check_bool "no meaningful key" false (contains "first_name")

(* ------------------------------------------------------------------ *)
(* the E3 leak: baseline erasure is not forgetting                    *)

let test_baseline_erasure_leaks_via_journal () =
  let db, dev, _ = make_db Userdb.Gdpr in
  let secret = "FORGOTTEN-SUBJECT-SECRET" in
  ignore (ok (Userdb.insert db ~table:"person" (row "victim" secret)));
  check_int "deleted" 1
    (ok (Userdb.delete_subject ~secure:true db ~table:"person" "victim"));
  check_bool "engine says gone" true
    (ok (Userdb.rows_of_subject db ~table:"person" "victim") = []);
  (* the forensic scan still finds the data: journal retention *)
  check_bool "journal leaks" true (Block_device.scan dev secret <> [])

(* ------------------------------------------------------------------ *)
(* process model (E7): use-after-free crosses purposes                *)

let test_uaf_reads_other_owners_pd () =
  let heap = Process_model.create ~slots:4 in
  let p1 = Process_model.alloc heap ~owner:"purpose1" ~data:"pd1-alice" in
  Process_model.free heap p1;
  (* the allocator reuses the slot for another purpose's PD *)
  let _p2 = Process_model.alloc heap ~owner:"purpose2" ~data:"pd2-bob-SECRET" in
  (* f1 still holds the stale pointer and dereferences it *)
  (match Process_model.read heap p1 with
  | Some (owner, data) ->
      check_bool "sees other purpose's data" true
        (owner = "purpose2" && data = "pd2-bob-SECRET")
  | None -> Alcotest.fail "slot should be occupied");
  check_int "leak counted" 1 (Process_model.cross_owner_reads heap)

let test_valid_reads_not_counted () =
  let heap = Process_model.create ~slots:4 in
  let p = Process_model.alloc heap ~owner:"p1" ~data:"mine" in
  (match Process_model.read heap p with
  | Some (owner, _) -> check_bool "own data" true (owner = "p1")
  | None -> Alcotest.fail "missing");
  check_int "no leak" 0 (Process_model.cross_owner_reads heap)

let test_read_after_free_before_reuse () =
  let heap = Process_model.create ~slots:4 in
  let p = Process_model.alloc heap ~owner:"p1" ~data:"mine" in
  Process_model.free heap p;
  check_bool "unmapped" true (Process_model.read heap p = None);
  check_int "live" 0 (Process_model.live_slots heap)

let test_heap_exhaustion () =
  let heap = Process_model.create ~slots:2 in
  ignore (Process_model.alloc heap ~owner:"a" ~data:"1");
  ignore (Process_model.alloc heap ~owner:"a" ~data:"2");
  Alcotest.check_raises "oom" (Failure "Process_model.alloc: out of memory")
    (fun () -> ignore (Process_model.alloc heap ~owner:"a" ~data:"3"))

let () =
  Alcotest.run "baseline"
    [
      ( "userdb",
        [
          Alcotest.test_case "insert/get" `Quick test_insert_get;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "unknown table" `Quick test_unknown_table;
          Alcotest.test_case "gdpr purpose filtering" `Quick test_gdpr_mode_purpose_filtering;
          Alcotest.test_case "vanilla ignores consent" `Quick test_vanilla_mode_ignores_consent;
          Alcotest.test_case "gdpr ttl filtering" `Quick test_gdpr_mode_ttl_filtering;
          Alcotest.test_case "subject rows / delete subject" `Quick
            test_subject_rows_and_delete_subject;
          Alcotest.test_case "positional export keys" `Quick test_export_positional_keys;
          Alcotest.test_case "erasure leaks via journal" `Quick
            test_baseline_erasure_leaks_via_journal;
        ] );
      ( "process-model",
        [
          Alcotest.test_case "UAF crosses purposes" `Quick test_uaf_reads_other_owners_pd;
          Alcotest.test_case "valid reads clean" `Quick test_valid_reads_not_counted;
          Alcotest.test_case "read after free" `Quick test_read_after_free_before_reuse;
          Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
        ] );
    ]
