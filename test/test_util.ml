open Rgpdos_util
module Codec = Rgpdos_util.Codec

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L () in
  let b = Prng.create ~seed:42L () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1L () in
  let b = Prng.create ~seed:2L () in
  let la = List.init 16 (fun _ -> Prng.next64 a) in
  let lb = List.init 16 (fun _ -> Prng.next64 b) in
  Alcotest.(check bool) "different streams" true (la <> lb)

let test_prng_int_bounds () =
  let g = Prng.create () in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_nonpositive () =
  let g = Prng.create () in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_int_in () =
  let g = Prng.create () in
  for _ = 1 to 500 do
    let v = Prng.int_in g (-3) 3 in
    Alcotest.(check bool) "in closed range" true (v >= -3 && v <= 3)
  done

let test_prng_float_bounds () =
  let g = Prng.create () in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let g = Prng.create () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli g 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli g 1.0)
  done

let test_prng_split_independent () =
  let g = Prng.create ~seed:7L () in
  let h = Prng.split g in
  let a = List.init 8 (fun _ -> Prng.next64 g) in
  let b = List.init 8 (fun _ -> Prng.next64 h) in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_prng_shuffle_permutation () =
  let g = Prng.create () in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_mean_uniformity () =
  (* crude statistical smoke test: mean of 10k U[0,1) within 3 sigma *)
  let g = Prng.create ~seed:99L () in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_zipf_bounds_and_skew () =
  let g = Prng.create ~seed:5L () in
  let s = Prng.Zipf.create ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = Prng.Zipf.sample s g in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 100);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 50" true
    (counts.(0) > 4 * counts.(50))

let test_zipf_theta_zero_uniformish () =
  let g = Prng.create ~seed:6L () in
  let s = Prng.Zipf.create ~n:10 ~theta:0.0 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Prng.Zipf.sample s g in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 600 && c < 1400))
    counts

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Prng.Zipf.create ~n:0 ~theta:0.5))

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)

let test_clock_advance () =
  let c = Clock.create () in
  check_int "starts at 0" 0 (Clock.now c);
  Clock.advance c 500;
  check_int "advanced" 500 (Clock.now c);
  Clock.advance c Clock.day;
  check_int "plus a day" (500 + Clock.day) (Clock.now c)

let test_clock_no_backwards () =
  let c = Clock.create ~now:100 () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative duration") (fun () ->
      Clock.advance c (-1));
  Alcotest.check_raises "set backwards"
    (Invalid_argument "Clock.set: time cannot go backwards") (fun () ->
      Clock.set c 50)

let test_clock_pp () =
  let s d = Format.asprintf "%a" Clock.pp_duration d in
  check_string "ns" "42ns" (s 42);
  check_string "years" "2y 10d" (s ((2 * Clock.year) + (10 * Clock.day)))

(* ------------------------------------------------------------------ *)
(* Hex                                                                *)

let test_hex_roundtrip_known () =
  check_string "encode" "68656c6c6f" (Hex.encode "hello");
  check_string "decode" "hello" (Hex.decode_exn "68656c6c6f");
  check_string "empty" "" (Hex.encode "");
  check_string "binary" "00ff10" (Hex.encode "\x00\xff\x10")

let test_hex_decode_errors () =
  Alcotest.(check bool) "odd length" true (Result.is_error (Hex.decode "abc"));
  Alcotest.(check bool) "bad digit" true (Result.is_error (Hex.decode "zz"))

let test_hex_uppercase () =
  check_string "uppercase accepted" "\xAB\xCD" (Hex.decode_exn "ABCD")

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hex.decode_exn (Hex.encode s) = s)

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.int w 1234567890;
  Codec.Writer.string w "hello";
  Codec.Writer.bool w true;
  Codec.Writer.bool w false;
  Codec.Writer.list w (Codec.Writer.string w) [ "a"; "bb"; "" ];
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check (result int string)) "int" (Ok 1234567890) (Codec.Reader.int r);
  Alcotest.(check (result string string)) "string" (Ok "hello") (Codec.Reader.string r);
  Alcotest.(check (result bool string)) "bool t" (Ok true) (Codec.Reader.bool r);
  Alcotest.(check (result bool string)) "bool f" (Ok false) (Codec.Reader.bool r);
  (match Codec.Reader.list r Codec.Reader.string with
  | Ok l -> Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] l
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "at end" true (Codec.Reader.at_end r);
  Alcotest.(check bool) "expect_end ok" true (Codec.Reader.expect_end r = Ok ())

let test_codec_negative_int_rejected () =
  let w = Codec.Writer.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Codec.Writer.int: negative")
    (fun () -> Codec.Writer.int w (-1))

let test_codec_truncation_and_trailing () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "payload";
  let bytes = Codec.Writer.contents w in
  (* truncated input decodes to Error, never raises *)
  let r = Codec.Reader.create (String.sub bytes 0 5) in
  Alcotest.(check bool) "truncated" true (Result.is_error (Codec.Reader.string r));
  (* trailing bytes detected *)
  let r2 = Codec.Reader.create (bytes ^ "junk") in
  ignore (Codec.Reader.string r2);
  Alcotest.(check bool) "trailing" true (Result.is_error (Codec.Reader.expect_end r2))

let test_codec_invalid_bool_byte () =
  let r = Codec.Reader.create "\x07" in
  Alcotest.(check bool) "bad bool" true (Result.is_error (Codec.Reader.bool r))

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec string roundtrip" ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 200)) (int_range 0 1000000))
    (fun (payload, n) ->
      let w = Codec.Writer.create () in
      Codec.Writer.string w payload;
      Codec.Writer.int w n;
      let r = Codec.Reader.create (Codec.Writer.contents w) in
      Codec.Reader.string r = Ok payload && Codec.Reader.int r = Ok n)

(* ------------------------------------------------------------------ *)
(* Idgen                                                              *)

let test_idgen_sequence () =
  let g = Idgen.create ~prefix:"sub" in
  check_string "first" "sub-00000000" (Idgen.fresh g);
  check_string "second" "sub-00000001" (Idgen.fresh g);
  check_int "count" 2 (Idgen.count g)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.p50;
  check_int "count" 5 s.count

let test_stats_stddev () =
  Alcotest.(check (float 1e-9)) "sd of constant" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]);
  Alcotest.(check (float 1e-6)) "sd known" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_percentile_interpolates () =
  let arr = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "p50 between" 15.0 (Stats.percentile arr 0.5)

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "reads";
  Stats.Counter.incr c ~by:4 "reads";
  Stats.Counter.incr c "writes";
  check_int "reads" 5 (Stats.Counter.get c "reads");
  check_int "writes" 1 (Stats.Counter.get c "writes");
  check_int "absent" 0 (Stats.Counter.get c "nope");
  Alcotest.(check (list (pair string int)))
    "to_list sorted"
    [ ("reads", 5); ("writes", 1) ]
    (Stats.Counter.to_list c)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "n" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check_int "4 lines" 4 (List.length lines);
  Alcotest.(check bool) "header present" true
    (String.length (List.nth lines 0) > 0)

let test_table_alignment_and_padding () =
  let out =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "k"; "value" ]
      [ [ "x"; "1" ]; [ "y" ] (* short row gets padded *) ]
  in
  Alcotest.(check bool) "right-aligned value" true
    (let lines = String.split_on_char '\n' out in
     let row = List.nth lines 2 in
     (* "value" column is 5 wide; "1" should be preceded by spaces *)
     String.length row >= 8)

let test_fmt_int () =
  check_string "small" "999" (Table.fmt_int 999);
  check_string "thousands" "12,345" (Table.fmt_int 12345);
  check_string "millions" "1,234,567" (Table.fmt_int 1234567);
  check_string "negative" "-1,000" (Table.fmt_int (-1000))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects <=0" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "int_in closed range" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "mean uniformity" `Quick test_prng_mean_uniformity;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds and skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "theta 0 uniformish" `Quick test_zipf_theta_zero_uniformish;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "no backwards" `Quick test_clock_no_backwards;
          Alcotest.test_case "pp_duration" `Quick test_clock_pp;
        ] );
      ( "hex",
        [
          Alcotest.test_case "known vectors" `Quick test_hex_roundtrip_known;
          Alcotest.test_case "decode errors" `Quick test_hex_decode_errors;
          Alcotest.test_case "uppercase" `Quick test_hex_uppercase;
          QCheck_alcotest.to_alcotest prop_hex_roundtrip;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "negative int" `Quick test_codec_negative_int_rejected;
          Alcotest.test_case "truncation/trailing" `Quick test_codec_truncation_and_trailing;
          Alcotest.test_case "invalid bool byte" `Quick test_codec_invalid_bool_byte;
          QCheck_alcotest.to_alcotest prop_codec_string_roundtrip;
        ] );
      ( "idgen",
        [ Alcotest.test_case "sequence" `Quick test_idgen_sequence ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolates;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment/padding" `Quick test_table_alignment_and_padding;
          Alcotest.test_case "fmt_int" `Quick test_fmt_int;
        ] );
    ]
