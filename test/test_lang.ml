module Lexer = Rgpdos_lang.Lexer
module Parser = Rgpdos_lang.Parser
module Ast = Rgpdos_lang.Ast
module Clock = Rgpdos_util.Clock
module M = Rgpdos_membrane.Membrane
module Schema = Rgpdos_dbfs.Schema

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* the paper's Listing 1, in the concrete syntax *)
let listing1 =
  {|
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection {
    web_form: user_form.html,
    third_party: fetch_data.py
  };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}
|}

let purpose3_decl =
  {|
purpose purpose3 {
  description: "compute the age of the input user";
  reads: user.v_ano;
  produces: age_result;
  legal_basis: consent;
}
|}

let parse_one_type src =
  match Parser.parse_types src with
  | Ok [ d ] -> d
  | Ok ds -> Alcotest.failf "expected 1 type, got %d" (List.length ds)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* lexer                                                              *)

let test_lexer_basic_tokens () =
  match Lexer.tokenize "type user { age: 1Y; x: 42 } // comment" with
  | Error e -> Alcotest.fail e
  | Ok toks ->
      let kinds = List.map (fun t -> t.Lexer.token) toks in
      check_bool "has type ident" true (List.mem (Lexer.IDENT "type") kinds);
      check_bool "has duration" true (List.mem (Lexer.DURATION Clock.year) kinds);
      check_bool "has int" true (List.mem (Lexer.INT 42) kinds);
      check_bool "comment dropped" false
        (List.mem (Lexer.IDENT "comment") kinds);
      check_bool "ends with EOF" true (List.mem Lexer.EOF kinds)

let test_lexer_strings_and_escapes () =
  match Lexer.tokenize {|"hello \"world\"\n"|} with
  | Ok [ { Lexer.token = Lexer.STRING s; _ }; _ ] ->
      check_string "escaped" "hello \"world\"\n" s
  | Ok _ -> Alcotest.fail "unexpected token stream"
  | Error e -> Alcotest.fail e

let test_lexer_durations () =
  let dur src expected =
    match Lexer.tokenize src with
    | Ok ({ Lexer.token = Lexer.DURATION d; _ } :: _) ->
        check_int src expected d
    | _ -> Alcotest.failf "no duration in %s" src
  in
  dur "2Y" (2 * Clock.year);
  dur "30D" (30 * Clock.day);
  dur "12H" (12 * Clock.hour);
  dur "5M" (5 * Clock.minute);
  dur "10S" (10 * Clock.second)

let test_lexer_line_numbers_in_errors () =
  match Lexer.tokenize "ok tokens\n  @bad" with
  | Error e ->
      check_bool "mentions line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected lexer error"

let test_lexer_unterminated_string () =
  check_bool "unterminated" true (Result.is_error (Lexer.tokenize "\"oops"))

(* ------------------------------------------------------------------ *)
(* parser: the paper's listing                                        *)

let test_parse_listing1 () =
  let d = parse_one_type listing1 in
  check_string "name" "user" d.Ast.t_name;
  Alcotest.(check (list (pair string string)))
    "fields"
    [ ("name", "string"); ("pwd", "string"); ("year_of_birthdate", "int") ]
    d.Ast.t_fields;
  check_int "views" 2 (List.length d.Ast.t_views);
  check_bool "v_ano view" true
    (List.assoc "v_ano" d.Ast.t_views = [ "year_of_birthdate" ]);
  check_bool "purpose1 all" true (List.assoc "purpose1" d.Ast.t_consents = Ast.C_all);
  check_bool "purpose2 none" true
    (List.assoc "purpose2" d.Ast.t_consents = Ast.C_none);
  check_bool "purpose3 view" true
    (List.assoc "purpose3" d.Ast.t_consents = Ast.C_view "v_ano");
  check_bool "collection file kept" true
    (List.assoc "web_form" d.Ast.t_collection = "user_form.html");
  check_bool "origin" true (d.Ast.t_origin = Some "subject");
  check_bool "age 1Y" true (d.Ast.t_age = Some Clock.year);
  check_bool "sensitivity" true (d.Ast.t_sensitivity = Some "high")

let test_parse_purpose_decl () =
  match Parser.parse_purposes purpose3_decl with
  | Error e -> Alcotest.fail e
  | Ok [ p ] ->
      check_string "name" "purpose3" p.Ast.p_name;
      check_string "description" "compute the age of the input user"
        p.Ast.p_description;
      check_bool "reads view" true (p.Ast.p_reads = [ ("user", Some "v_ano") ]);
      check_bool "produces" true (p.Ast.p_produces = Some "age_result");
      check_bool "basis" true (p.Ast.p_legal_basis = Ast.Consent)
  | Ok ps -> Alcotest.failf "expected 1 purpose, got %d" (List.length ps)

let test_parse_mixed_file () =
  match Parser.parse (listing1 ^ purpose3_decl) with
  | Ok [ Ast.Type_decl _; Ast.Purpose_decl _ ] -> ()
  | Ok ds -> Alcotest.failf "unexpected decl count %d" (List.length ds)
  | Error e -> Alcotest.fail e

let test_parse_minimal_type () =
  let d = parse_one_type "type t { fields { a: int } }" in
  check_bool "no views" true (d.Ast.t_views = []);
  check_bool "no age" true (d.Ast.t_age = None)

let test_parse_third_party_origin () =
  let d =
    parse_one_type
      {|type t { fields { a: int }; origin: third_party("partner-hospital"); }|}
  in
  check_bool "third party parsed" true
    (d.Ast.t_origin = Some "third_party:partner-hospital")

let test_parse_errors () =
  let expect_error src =
    match Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %s" src
  in
  expect_error "type {}";
  expect_error "type t { }" (* no fields *);
  expect_error "type t { fields { a: int } age: 1 }" (* unitless age *);
  expect_error "type t { fields { a int } }" (* missing colon *);
  expect_error "purpose p { reads: user; }" (* no description *);
  expect_error "purpose p { description: \"d\"; legal_basis: astrology; }";
  expect_error "banana t {}"

let test_parse_error_position () =
  match Parser.parse "type t {\n  fields { a: }\n}" with
  | Error e ->
      check_bool "mentions line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected parse error"

let test_duplicate_clause_rejected () =
  match
    Parser.parse
      "type t { fields { a: int }; fields { b: int } }"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate fields clause must be rejected"

(* ------------------------------------------------------------------ *)
(* elaboration to schema                                              *)

let test_to_schema_listing1 () =
  let d = parse_one_type listing1 in
  match Ast.to_schema d with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_string "schema name" "user" s.Schema.name;
      check_int "fields" 3 (List.length s.Schema.fields);
      check_bool "ttl" true (s.Schema.default_ttl = Some Clock.year);
      check_bool "sensitivity high" true
        (s.Schema.default_sensitivity = M.High);
      check_bool "origin subject" true (s.Schema.default_origin = M.Subject);
      check_bool "consent scope elaborated" true
        (List.assoc "purpose3" s.Schema.default_consents = M.View "v_ano")

let test_to_schema_accepts_papers_hight_typo () =
  (* Listing 1 in the paper literally says "sensitivity: hight" *)
  let d =
    parse_one_type "type t { fields { a: int }; sensitivity: hight; }"
  in
  match Ast.to_schema d with
  | Ok s -> check_bool "hight = high" true (s.Schema.default_sensitivity = M.High)
  | Error e -> Alcotest.fail e

let test_to_schema_bad_field_type () =
  let d = parse_one_type "type t { fields { a: quaternion } }" in
  check_bool "rejected" true (Result.is_error (Ast.to_schema d))

let test_to_schema_bad_view_reference () =
  let d = parse_one_type "type t { fields { a: int }; view v { ghost }; }" in
  check_bool "rejected by schema validation" true (Result.is_error (Ast.to_schema d))

(* ------------------------------------------------------------------ *)
(* selection predicates                                               *)

module Query = Rgpdos_dbfs.Query
module Value = Rgpdos_dbfs.Value

let parse_pred src =
  match Parser.parse_predicate src with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_predicate_atoms () =
  check_bool "eq int" true
    (parse_pred "year = 1990" = Query.Eq ("year", Value.VInt 1990));
  check_bool "eq string" true
    (parse_pred {|name = "Chiraz"|} = Query.Eq ("name", Value.VString "Chiraz"));
  check_bool "lt" true (parse_pred "y < 2000" = Query.Lt ("y", Value.VInt 2000));
  check_bool "gt" true (parse_pred "y > 1987" = Query.Gt ("y", Value.VInt 1987));
  check_bool "contains" true
    (parse_pred {|name contains "hir"|} = Query.Contains ("name", "hir"));
  check_bool "bool literal" true
    (parse_pred "active = true" = Query.Eq ("active", Value.VBool true));
  check_bool "true" true (parse_pred "true" = Query.True)

let test_predicate_connectives_and_precedence () =
  (* and binds tighter than or *)
  check_bool "precedence" true
    (parse_pred "a = 1 or b = 2 and c = 3"
    = Query.Or
        ( Query.Eq ("a", Value.VInt 1),
          Query.And (Query.Eq ("b", Value.VInt 2), Query.Eq ("c", Value.VInt 3)) ));
  (* parentheses override *)
  check_bool "parens" true
    (parse_pred "(a = 1 or b = 2) and c = 3"
    = Query.And
        ( Query.Or (Query.Eq ("a", Value.VInt 1), Query.Eq ("b", Value.VInt 2)),
          Query.Eq ("c", Value.VInt 3) ));
  check_bool "not" true
    (parse_pred {|not (name contains "test")|}
    = Query.Not (Query.Contains ("name", "test")))

let test_predicate_evaluates_end_to_end () =
  let p = parse_pred {|year_of_birthdate > 1987 and not (name contains "bot")|} in
  let alice = [ ("name", Value.VString "alice"); ("year_of_birthdate", Value.VInt 1990) ] in
  let robot = [ ("name", Value.VString "crawler-bot"); ("year_of_birthdate", Value.VInt 1995) ] in
  let old = [ ("name", Value.VString "zo"); ("year_of_birthdate", Value.VInt 1960) ] in
  check_bool "alice matches" true (Query.eval p alice);
  check_bool "bot excluded" false (Query.eval p robot);
  check_bool "too old excluded" false (Query.eval p old)

let test_predicate_errors () =
  List.iter
    (fun src ->
      match Parser.parse_predicate src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" src)
    [ ""; "a ="; "= 3"; "a contains 3"; "a = 1 extra"; "a ~ 1"; "(a = 1" ]

let prop_parser_never_crashes =
  QCheck.Test.make ~name:"parser total on arbitrary input" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun src ->
      match Parser.parse src with Ok _ | Error _ -> true)

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic_tokens;
          Alcotest.test_case "strings and escapes" `Quick test_lexer_strings_and_escapes;
          Alcotest.test_case "durations" `Quick test_lexer_durations;
          Alcotest.test_case "error positions" `Quick test_lexer_line_numbers_in_errors;
          Alcotest.test_case "unterminated string" `Quick test_lexer_unterminated_string;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper listing 1" `Quick test_parse_listing1;
          Alcotest.test_case "purpose declaration" `Quick test_parse_purpose_decl;
          Alcotest.test_case "mixed file" `Quick test_parse_mixed_file;
          Alcotest.test_case "minimal type" `Quick test_parse_minimal_type;
          Alcotest.test_case "third-party origin" `Quick test_parse_third_party_origin;
          Alcotest.test_case "syntax errors rejected" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_parse_error_position;
          Alcotest.test_case "duplicate clause" `Quick test_duplicate_clause_rejected;
          QCheck_alcotest.to_alcotest prop_parser_never_crashes;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "atoms" `Quick test_predicate_atoms;
          Alcotest.test_case "connectives + precedence" `Quick
            test_predicate_connectives_and_precedence;
          Alcotest.test_case "end-to-end eval" `Quick test_predicate_evaluates_end_to_end;
          Alcotest.test_case "errors" `Quick test_predicate_errors;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "listing 1 to schema" `Quick test_to_schema_listing1;
          Alcotest.test_case "paper's 'hight' accepted" `Quick
            test_to_schema_accepts_papers_hight_typo;
          Alcotest.test_case "bad field type" `Quick test_to_schema_bad_field_type;
          Alcotest.test_case "bad view reference" `Quick test_to_schema_bad_view_reference;
        ] );
    ]
