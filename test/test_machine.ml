(* End-to-end tests of the booted rgpdOS machine: the paper's Listings 1-3
   scenario (user type + compute_age processing), the eight-step DED
   pipeline, PS registration rules, subject rights, TTL sweeping,
   enforcement attacks, and the compliance checker. *)

module Clock = Rgpdos_util.Clock
module Prng = Rgpdos_util.Prng
module Membrane = Rgpdos_membrane.Membrane
module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record
module Dbfs = Rgpdos_dbfs.Dbfs
module Syscall = Rgpdos_kernel.Syscall
module Audit_log = Rgpdos_audit.Audit_log
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Ps = Rgpdos_ps.Processing_store
module Authority = Rgpdos_gdpr.Authority
module Ttl_sweeper = Rgpdos_gdpr.Ttl_sweeper
module Compliance = Rgpdos_gdpr.Compliance
module Block_device = Rgpdos_block.Block_device
module Machine = Rgpdos.Machine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* The paper's declarations: Listing 1 plus purposes 1-3. *)
let declarations =
  {|
type user {
  fields {
    name: string,
    pwd: string,
    year_of_birthdate: int
  };
  view v_name { name };
  view v_ano { year_of_birthdate };
  consent {
    purpose1: all,
    purpose2: none,
    purpose3: v_ano
  };
  collection { web_form: user_form.html };
  origin: subject;
  age: 1Y;
  sensitivity: high;
}

type age_pd {
  fields { age: int };
  consent { purpose3: all };
  sensitivity: low;
}

purpose purpose1 {
  description: "operate the user account";
  reads: user;
  legal_basis: contract;
}

purpose purpose2 {
  description: "profile users for partner advertising";
  reads: user;
  legal_basis: consent;
}

purpose purpose3 {
  description: "compute the age of the input user";
  reads: user.v_ano;
  produces: age_pd;
  legal_basis: consent;
}
|}

let current_year = 2026

(* Listing 2: compute_age, with the line-4 availability check *)
let compute_age_impl _ctx inputs =
  let ages =
    List.filter_map
      (fun (i : Processing.pd_input) ->
        match Record.get i.record "year_of_birthdate" with
        | Some (Value.VInt y) ->
            (* is age allowed to be seen? *)
            Some (i.subject, [ ("age", Value.VInt (current_year - y)) ])
        | _ -> None (* field not available under this view: skip *))
      inputs
  in
  Ok
    {
      Processing.value = Some (Value.VInt (List.length ages));
      produced = List.map (fun (subject, r) -> ("age_pd", subject, r)) ages;
    }

let user_record name year : Record.t =
  [
    ("name", Value.VString name);
    ("pwd", Value.VString ("pwdhash-" ^ name));
    ("year_of_birthdate", Value.VInt year);
  ]

let boot_with_users () =
  let m = Machine.boot ~seed:7L () in
  let types, purposes = ok (Machine.load_declarations m declarations) in
  check_int "types loaded" 2 types;
  check_int "purposes loaded" 3 purposes;
  let collect name year =
    ok
      (Machine.collect m ~type_name:"user"
         ~subject:("sub-" ^ String.lowercase_ascii name)
         ~interface:"web_form:user_form.html"
         ~record:(user_record name year) ())
  in
  let pd_alice = collect "Alice" 1990 in
  let pd_bob = collect "Bob" 1985 in
  let pd_carol = collect "Carol" 2000 in
  (m, pd_alice, pd_bob, pd_carol)

let register_compute_age m =
  let spec =
    ok
      (Machine.make_processing m ~name:"compute_age" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         compute_age_impl)
  in
  match ok (Machine.register_processing m spec) with
  | Ps.Registered -> ()
  | Ps.Registered_with_alert reason ->
      Alcotest.failf "unexpected alert: %s" reason

(* ------------------------------------------------------------------ *)
(* the Listing 1-3 scenario                                           *)

let test_compute_age_end_to_end () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  (* all three users consent to purpose3 through v_ano (schema default) *)
  check_int "3 users processed" 3 outcome.Ded.consumed;
  check_int "none filtered" 0 outcome.Ded.filtered;
  check_bool "non-PD count returned" true (outcome.Ded.value = Some (Value.VInt 3));
  check_int "3 age_pd produced" 3 (List.length outcome.Ded.produced_refs);
  (* produced PD is stored and wrapped *)
  List.iter
    (fun pd_id ->
      let m' = ok (Result.map_error Dbfs.error_to_string
                     (Dbfs.get_membrane (Machine.dbfs m) ~actor:"ded" pd_id)) in
      check_string "type" "age_pd" m'.Membrane.type_name)
    outcome.Ded.produced_refs

let test_view_projection_hides_fields () =
  (* a processing under purpose3 must never see name or pwd *)
  let m, _, _, _ = boot_with_users () in
  let leak = ref [] in
  let spy_impl _ctx inputs =
    List.iter
      (fun (i : Processing.pd_input) ->
        leak := List.map fst i.Processing.record @ !leak)
      inputs;
    Ok Processing.no_output
  in
  let spec =
    ok
      (Machine.make_processing m ~name:"spy" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         spy_impl)
  in
  ignore (ok (Machine.register_processing m spec));
  ignore (ok (Machine.invoke m ~name:"spy" ~target:(Ded.All_of_type "user") ()));
  check_bool "only v_ano fields visible" true
    (List.for_all (( = ) "year_of_birthdate") !leak);
  check_bool "saw something" true (!leak <> [])

let test_denied_purpose_filters_everything () =
  let m, _, _, _ = boot_with_users () in
  let spec =
    ok
      (Machine.make_processing m ~name:"ad_profiling" ~purpose:"purpose2"
         ~touches:[ ("user", [ "name" ]) ]
         (fun _ctx inputs ->
           Ok (Processing.value_output (Value.VInt (List.length inputs)))))
  in
  ignore (ok (Machine.register_processing m spec));
  let outcome =
    ok (Machine.invoke m ~name:"ad_profiling" ~target:(Ded.All_of_type "user") ())
  in
  check_int "nothing consumed" 0 outcome.Ded.consumed;
  check_int "all filtered" 3 outcome.Ded.filtered;
  (* the refusals are in the audit log *)
  let audit = Machine.audit m in
  let refusals =
    List.filter
      (fun e ->
        match e.Audit_log.event with
        | Audit_log.Filtered_out { purpose = "purpose2"; _ } -> true
        | _ -> false)
      (Audit_log.entries audit)
  in
  check_int "refusals logged" 3 (List.length refusals)

let test_stage_breakdown_present () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  let stages = List.map fst outcome.Ded.stage_ns in
  Alcotest.(check (list string))
    "stage order"
    [ "ded_type2req"; "ded_load_membrane"; "ded_filter"; "ded_load_data";
      "ded_execute"; "ded_build_membrane+store"; "ded_return" ]
    stages;
  check_bool "membrane load costs time" true
    (List.assoc "ded_load_membrane" outcome.Ded.stage_ns > 0);
  (* the DBFS counters agree with the pipeline: one membrane read and one
     record read per subject in this invoke (plus the earlier register) *)
  let stats = Dbfs.stats (Machine.dbfs m) in
  check_bool "membrane reads counted" true
    (Rgpdos_util.Stats.Counter.get stats "membrane_reads" >= 3);
  check_bool "record reads counted" true
    (Rgpdos_util.Stats.Counter.get stats "record_reads" >= 3)

let test_target_pd_refs () =
  let m, pd_alice, _, _ = boot_with_users () in
  register_compute_age m;
  let outcome =
    ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.Pd_refs [ pd_alice ]) ())
  in
  check_int "one consumed" 1 outcome.Ded.consumed

let test_selection_target () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  (* alice 1990, bob 1985, carol 2000: select year > 1987 *)
  let outcome =
    ok
      (Machine.invoke m ~name:"compute_age"
         ~target:
           (Ded.Selection
              ( "user",
                Rgpdos_dbfs.Query.Gt ("year_of_birthdate", Value.VInt 1987) ))
         ())
  in
  check_int "two match the selection" 2 outcome.Ded.consumed;
  (* selection on a field hidden by the view fails closed: purpose3 only
     sees year_of_birthdate, so a predicate on name matches nothing *)
  let hidden =
    ok
      (Machine.invoke m ~name:"compute_age"
         ~target:
           (Ded.Selection
              ("user", Rgpdos_dbfs.Query.Eq ("name", Value.VString "Alice")))
         ())
  in
  check_int "hidden-field selection matches nothing" 0 hidden.Ded.consumed

let test_attestation_in_audit () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  let attested =
    List.filter_map
      (fun e ->
        match e.Audit_log.event with
        | Audit_log.Attested { processing = "compute_age"; measurement } ->
            Some measurement
        | _ -> None)
      (Audit_log.entries (Machine.audit m))
  in
  check_int "one attestation per run" 1 (List.length attested);
  (* the recorded measurement matches what the regulator would recompute
     from the registered spec *)
  let spec =
    ok
      (Machine.make_processing m ~name:"compute_age_copy" ~purpose:"purpose3"
         ~touches:[ ("user", [ "year_of_birthdate" ]) ]
         compute_age_impl)
  in
  let recomputed = Ded.measurement { spec with Processing.name = "compute_age" } in
  check_string "measurement reproducible" recomputed (List.hd attested);
  (* and a different footprint yields a different measurement *)
  check_bool "measurement binds the footprint" true
    (Ded.measurement spec <> recomputed
    || spec.Processing.name = "compute_age")

let test_location_cost_model () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let run location =
    let clock = Machine.clock m in
    let t0 = Rgpdos_util.Clock.now clock in
    ignore
      (ok
         (Machine.invoke m ~location ~name:"compute_age"
            ~target:(Ded.All_of_type "user") ()));
    Rgpdos_util.Clock.now clock - t0
  in
  let host = run Ded.Host in
  let pim = run Ded.Pim in
  (* compute_age is cheap per record: near-data should not be slower than
     host by more than the scaled execute cost, and both must make progress *)
  check_bool "both ran" true (host > 0 && pim > 0)

let test_single_phase_mode_overreads () =
  let m, _, _, _ = boot_with_users () in
  (* carol denies purpose1?  No: purpose1 default is All.  Use purpose3
     after withdrawing carol's consent so one membrane refuses. *)
  register_compute_age m;
  ignore (ok (Machine.withdraw_consent m ~subject:"sub-carol" ~purpose:"purpose3"));
  let two =
    ok
      (Machine.invoke m ~fetch_mode:Ded.Two_phase ~name:"compute_age"
         ~target:(Ded.All_of_type "user") ())
  in
  check_int "two-phase never overreads" 0 two.Ded.overread;
  let single =
    ok
      (Machine.invoke m ~fetch_mode:Ded.Single_phase ~name:"compute_age"
         ~target:(Ded.All_of_type "user") ())
  in
  check_int "single-phase reads carol's refused PD" 1 single.Ded.overread;
  check_int "same consumed either way" two.Ded.consumed single.Ded.consumed

let test_ded_edge_targets () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  (* empty reference list: a clean no-op *)
  let empty = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.Pd_refs []) ()) in
  check_int "nothing consumed" 0 empty.Ded.consumed;
  check_int "nothing produced" 0 (List.length empty.Ded.produced_refs);
  (* unknown reference: surfaced as a storage error, not a crash *)
  (match
     Machine.invoke m ~name:"compute_age"
       ~target:(Ded.Pd_refs [ "pd-99999999" ]) ()
   with
  | Error msg -> check_bool "mentions unknown pd" true (contains_sub msg "pd-99999999")
  | Ok _ -> Alcotest.fail "unknown ref must fail");
  (* unknown type behind All_of_type *)
  (match Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "ghost") () with
  | Error msg -> check_bool "mentions ghost type" true (contains_sub msg "ghost")
  | Ok _ -> Alcotest.fail "unknown type must fail");
  (* selection over an empty match set is a clean no-op too *)
  let none =
    ok
      (Machine.invoke m ~name:"compute_age"
         ~target:
           (Ded.Selection
              ("user", Rgpdos_dbfs.Query.Gt ("year_of_birthdate", Value.VInt 3000)))
         ())
  in
  check_int "selection matches nothing" 0 none.Ded.consumed

(* ------------------------------------------------------------------ *)
(* PS registration rules                                              *)

let test_ps_rejects_purposeless () =
  let m, _, _, _ = boot_with_users () in
  let spec = Processing.make ~name:"anonymous_fn" (fun _ _ -> Ok Processing.no_output) in
  match Machine.register_processing m spec with
  | Error msg -> check_bool "explains" true (contains_sub msg "no purpose")
  | Ok _ -> Alcotest.fail "must reject purposeless function"

let test_ps_alerts_on_footprint_mismatch () =
  let m, _, _, _ = boot_with_users () in
  (* claims purpose3 (v_ano only) but touches the name field *)
  let spec =
    ok
      (Machine.make_processing m ~name:"overreach" ~purpose:"purpose3"
         ~touches:[ ("user", [ "name"; "year_of_birthdate" ]) ]
         (fun _ _ -> Ok Processing.no_output))
  in
  (match ok (Machine.register_processing m spec) with
  | Ps.Registered_with_alert reason ->
      check_bool "reason names the field" true (contains_sub reason "name")
  | Ps.Registered -> Alcotest.fail "expected an alert");
  (* cannot invoke before sysadmin approval *)
  (match Machine.invoke m ~name:"overreach" ~target:(Ded.All_of_type "user") () with
  | Error msg -> check_bool "awaits approval" true (contains_sub msg "approval")
  | Ok _ -> Alcotest.fail "must await approval");
  (* sysadmin approves; now it runs (but the DED still projects views!) *)
  ok (Machine.approve_processing m "overreach");
  check_bool "runs after approval" true
    (Result.is_ok (Machine.invoke m ~name:"overreach" ~target:(Ded.All_of_type "user") ()))

let test_ps_duplicate_registration () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let spec =
    ok
      (Machine.make_processing m ~name:"compute_age" ~purpose:"purpose3"
         (fun _ _ -> Ok Processing.no_output))
  in
  check_bool "duplicate rejected" true
    (Result.is_error (Machine.register_processing m spec))

let test_ps_unknown_processing () =
  let m, _, _, _ = boot_with_users () in
  check_bool "unknown" true
    (Result.is_error (Machine.invoke m ~name:"ghost" ~target:(Ded.All_of_type "user") ()))

let test_ps_pending_alerts_listing () =
  let m, _, _, _ = boot_with_users () in
  let spec =
    ok
      (Machine.make_processing m ~name:"sneaky" ~purpose:"purpose3"
         ~touches:[ ("user", [ "pwd" ]) ]
         (fun _ _ -> Ok Processing.no_output))
  in
  ignore (ok (Machine.register_processing m spec));
  let pending = Ps.pending_alerts (Machine.ps m) in
  check_int "one pending" 1 (List.length pending);
  check_string "name" "sneaky" (fst (List.hd pending))

(* ------------------------------------------------------------------ *)
(* sandbox enforcement                                                *)

let test_sandbox_kills_exfiltrating_processing () =
  let m, _, _, _ = boot_with_users () in
  let evil_impl (ctx : Processing.context) _inputs =
    (* try to write PD to the network — seccomp must block it *)
    match ctx.Processing.syscall Syscall.Sys_net_send with
    | Ok () -> Ok (Processing.value_output (Value.VString "sent!"))
    | Error _ ->
        (* even if the function shrugs the error off, the DED aborts *)
        Ok Processing.no_output
  in
  let spec =
    ok
      (Machine.make_processing m ~name:"exfiltrate" ~purpose:"purpose1"
         ~touches:[ ("user", [ "name" ]) ]
         evil_impl)
  in
  ignore (ok (Machine.register_processing m spec));
  match Machine.invoke m ~name:"exfiltrate" ~target:(Ded.All_of_type "user") () with
  | Error msg -> check_bool "seccomp message" true (contains_sub msg "blocked")
  | Ok _ -> Alcotest.fail "sandbox must kill the processing"

let test_sandbox_blocks_raw_pd_return () =
  let m, _, _, _ = boot_with_users () in
  let leak_impl _ctx inputs =
    match inputs with
    | (i : Processing.pd_input) :: _ -> (
        match Record.get i.Processing.record "name" with
        | Some v -> Ok (Processing.value_output v)
        | None -> Ok Processing.no_output)
    | [] -> Ok Processing.no_output
  in
  let spec =
    ok
      (Machine.make_processing m ~name:"leak_return" ~purpose:"purpose1"
         ~touches:[ ("user", [ "name" ]) ]
         leak_impl)
  in
  ignore (ok (Machine.register_processing m spec));
  match Machine.invoke m ~name:"leak_return" ~target:(Ded.All_of_type "user") () with
  | Error msg -> check_bool "return leak caught" true (contains_sub msg "raw PD")
  | Ok _ -> Alcotest.fail "raw PD return must be blocked"

let test_lsm_blocks_direct_dbfs_access () =
  let m, pd_alice, _, _ = boot_with_users () in
  (* a rogue application tries to read DBFS directly, bypassing PS/DED *)
  match Dbfs.get_record (Machine.dbfs m) ~actor:"rogue_app" pd_alice with
  | Error (Dbfs.Access_denied _) ->
      check_bool "denial recorded" true
        (Rgpdos_kernel.Lsm.denial_count (Machine.lsm m) > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Dbfs.error_to_string e)
  | Ok _ -> Alcotest.fail "LSM must block direct DBFS access"

let test_crashing_implementation_contained () =
  let m, _, _, _ = boot_with_users () in
  let spec =
    ok
      (Machine.make_processing m ~name:"crasher" ~purpose:"purpose1"
         (fun _ _ -> failwith "segfault simulation"))
  in
  ignore (ok (Machine.register_processing m spec));
  match Machine.invoke m ~name:"crasher" ~target:(Ded.All_of_type "user") () with
  | Error msg -> check_bool "contained" true (contains_sub msg "segfault")
  | Ok _ -> Alcotest.fail "crash must surface as an error"

(* ------------------------------------------------------------------ *)
(* subject rights                                                     *)

let test_right_of_access () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  let response = ok (Machine.right_of_access m ~subject:"sub-alice") in
  (* meaningful keys, actual values, and processing history *)
  check_bool "has name field" true (contains_sub response "\"name\": \"Alice\"");
  check_bool "has records" true (contains_sub response "\"records\"");
  check_bool "has processing history" true (contains_sub response "\"processings\"");
  check_bool "history mentions purpose3" true (contains_sub response "purpose3")

let test_right_to_portability () =
  let m, _, _, _ = boot_with_users () in
  let out = ok (Machine.right_to_portability m ~subject:"sub-bob") in
  check_bool "structured" true (out.[0] = '[');
  check_bool "meaningful key" true (contains_sub out "\"year_of_birthdate\": 1985")

let test_right_to_erasure_full_cycle () =
  let m, pd_alice, _, _ = boot_with_users () in
  let erased = ok (Machine.right_to_erasure m ~subject:"sub-alice") in
  check_int "one PD erased" 1 erased;
  (* plaintext unreadable *)
  (match Dbfs.get_record (Machine.dbfs m) ~actor:"ded" pd_alice with
  | Error (Dbfs.Erased _) -> ()
  | _ -> Alcotest.fail "record must be erased");
  (* no forensic trace of the name on the PD device *)
  check_int "no plaintext on device" 0
    (List.length (Block_device.scan (Machine.pd_device m) "Alice"));
  (* the authority can still open the envelope (legal investigation) *)
  let sealed = ok (Result.map_error Dbfs.error_to_string
                     (Dbfs.erased_payload (Machine.dbfs m) ~actor:"ded" pd_alice)) in
  let record = ok (Authority.open_record (Machine.authority m) sealed) in
  check_bool "authority recovers the record" true
    (Record.get record "name" = Some (Value.VString "Alice"));
  (* erasing again is a no-op *)
  check_int "idempotent" 0 (ok (Machine.right_to_erasure m ~subject:"sub-alice"))

let test_erased_pd_skipped_by_processing () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.right_to_erasure m ~subject:"sub-bob"));
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  (* bob's membrane now denies everything; only alice+carol processed *)
  check_int "two remain" 2 outcome.Ded.consumed

let test_right_to_rectification () =
  let m, pd_alice, _, _ = boot_with_users () in
  ok (Machine.right_to_rectification m ~pd_id:pd_alice (user_record "Alicia" 1991));
  let r = ok (Result.map_error Dbfs.error_to_string
                (Dbfs.get_record (Machine.dbfs m) ~actor:"ded" pd_alice)) in
  check_bool "rectified" true (Record.get r "name" = Some (Value.VString "Alicia"))

let test_consent_withdrawal_changes_processing () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let n = ok (Machine.withdraw_consent m ~subject:"sub-carol" ~purpose:"purpose3") in
  check_int "one membrane updated" 1 n;
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  check_int "carol filtered out" 2 outcome.Ded.consumed;
  check_int "one refusal" 1 outcome.Ded.filtered;
  (* re-grant *)
  ignore (ok (Machine.set_consent m ~subject:"sub-carol" ~purpose:"purpose3"
                (Membrane.View "v_ano")));
  let outcome2 = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  check_int "carol back" 3 outcome2.Ded.consumed

(* ------------------------------------------------------------------ *)
(* collection interfaces                                              *)

let test_collect_via_registered_interface () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  Machine.register_collector m ~interface:"web_form" (fun () ->
      [ ("sub-erin", user_record "Erin" 1999);
        ("sub-farid", user_record "Farid" 1969) ]);
  let n = ok (Machine.collect_via m ~type_name:"user" ~interface:"web_form") in
  check_int "two rows pulled" 2 n;
  (* collected PD is wrapped and processable immediately *)
  let outcome =
    ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ())
  in
  check_int "5 users now" 5 outcome.Ded.consumed;
  (* the acquisitions are in the audit log *)
  let collected =
    List.filter
      (fun e ->
        match e.Audit_log.event with
        | Audit_log.Collected { interface = "web_form"; _ } -> true
        | _ -> false)
      (Audit_log.entries (Machine.audit m))
  in
  check_int "collections audited" 2 (List.length collected)

let test_collect_via_undeclared_interface_refused () =
  let m, _, _, _ = boot_with_users () in
  Machine.register_collector m ~interface:"dark_pattern_scraper" (fun () ->
      [ ("victim", user_record "Scraped" 1980) ]);
  (match Machine.collect_via m ~type_name:"user" ~interface:"dark_pattern_scraper" with
  | Error msg -> check_bool "refused" true (contains_sub msg "not a declared")
  | Ok _ -> Alcotest.fail "undeclared collection channel must be refused");
  check_bool "unregistered interface also fails" true
    (Result.is_error (Machine.collect_via m ~type_name:"user" ~interface:"ghost"))

let test_describe_trees () =
  let m, pd_alice, _, _ = boot_with_users () in
  let trees =
    ok
      (Result.map_error Dbfs.error_to_string
         (Dbfs.describe_trees (Machine.dbfs m) ~actor:"ded"))
  in
  check_bool "subject tree section" true (contains_sub trees "subject tree");
  check_bool "schema tree section" true (contains_sub trees "schema tree");
  check_bool "format descriptors" true (contains_sub trees "format descriptors");
  check_bool "alice's inode listed" true (contains_sub trees pd_alice);
  check_bool "user fields listed" true (contains_sub trees "field year_of_birthdate: int")

(* ------------------------------------------------------------------ *)
(* TTL sweeping & compliance                                          *)

let test_ttl_sweep_crypto_erases_expired () =
  let m, _, _, _ = boot_with_users () in
  (* user TTL is 1Y; advance past it *)
  Clock.advance (Machine.clock m) (Clock.year + Clock.day);
  let report = Machine.sweep_ttl m () in
  check_int "all three expired" 3 report.Ttl_sweeper.expired;
  check_int "all removed" 3 report.Ttl_sweeper.removed;
  check_bool "no errors" true (report.Ttl_sweeper.errors = []);
  (* second sweep finds nothing *)
  let report2 = Machine.sweep_ttl m () in
  check_int "drained" 0 report2.Ttl_sweeper.expired

let test_compliance_clean_machine () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  ignore (ok (Machine.right_to_erasure m ~subject:"sub-alice"));
  let evidence =
    Machine.compliance_evidence m ~forensic_probes:[ "Alice"; "pwdhash-Alice" ] ()
  in
  let verdicts = Compliance.evaluate evidence in
  check_bool
    (Compliance.summary verdicts)
    true (Compliance.all_ok verdicts)

let test_compliance_catches_expired_pd () =
  let m, _, _, _ = boot_with_users () in
  Clock.advance (Machine.clock m) (2 * Clock.year);
  (* no sweep: expired PD still live *)
  let verdicts = Compliance.evaluate (Machine.compliance_evidence m ()) in
  check_bool "violation found" false (Compliance.all_ok verdicts);
  let v =
    List.find
      (fun v -> v.Compliance.article = Rgpdos_gdpr.Articles.Art5_1e_storage_limitation)
      verdicts
  in
  check_bool "storage limitation flagged" false v.Compliance.ok

(* ------------------------------------------------------------------ *)
(* collection with explicit subject consents                          *)

let test_collect_with_explicit_consents () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let pd =
    ok
      (Machine.collect m ~type_name:"user" ~subject:"sub-dave"
         ~interface:"web_form:user_form.html"
         ~record:(user_record "Dave" 1970)
         ~consents:[ ("purpose1", Membrane.All); ("purpose3", Membrane.Denied) ]
         ())
  in
  ignore pd;
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  (* dave opted out of purpose3 at collection time *)
  check_int "dave filtered" 3 outcome.Ded.consumed;
  check_int "one refusal" 1 outcome.Ded.filtered

let test_restriction_of_processing () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let n = ok (Machine.restrict_processing m ~subject:"sub-alice") in
  check_int "one membrane restricted" 1 n;
  let outcome =
    ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ())
  in
  check_int "alice excluded while restricted" 2 outcome.Ded.consumed;
  (* data is retained: access still works *)
  let response = ok (Machine.right_of_access m ~subject:"sub-alice") in
  check_bool "data retained" true (contains_sub response "Alice");
  ignore (ok (Machine.lift_restriction m ~subject:"sub-alice"));
  let outcome2 =
    ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ())
  in
  check_int "alice back after lifting" 3 outcome2.Ded.consumed

let test_audit_persistence () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  ok (Machine.persist_audit m);
  let n = ok (Machine.verify_persisted_audit m) in
  check_int "persisted length" (Audit_log.length (Machine.audit m)) n;
  (* tamper with the file on the NPD filesystem: verification must fail *)
  let fs = Machine.npd_fs m in
  let raw =
    match Rgpdos_journalfs.Journalfs.read_file fs "/var/audit.chain" with
    | Ok r -> r
    | Error e -> Alcotest.fail (Rgpdos_journalfs.Journalfs.error_to_string e)
  in
  let b = Bytes.of_string raw in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 1));
  (match Rgpdos_journalfs.Journalfs.write_file fs "/var/audit.chain" (Bytes.to_string b) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Rgpdos_journalfs.Journalfs.error_to_string e));
  check_bool "tampered file rejected" true
    (Result.is_error (Machine.verify_persisted_audit m))

let test_machine_jobs_and_repartition () =
  let m, _, _, _ = boot_with_users () in
  for i = 0 to 9 do
    let data_class =
      if i mod 2 = 0 then Rgpdos_kernel.Scheduler.Pd
      else Rgpdos_kernel.Scheduler.Npd
    in
    ok
      (Machine.submit_job m
         {
           Rgpdos_kernel.Scheduler.job_id = string_of_int i;
           data_class;
           work = 100_000;
         })
  done;
  Machine.run_jobs m;
  check_int "all jobs done" 10
    (List.length (Rgpdos_kernel.Scheduler.completed (Machine.scheduler m)));
  (* dynamic repartition: move CPU from general to rgpdos *)
  let before = Machine.cpu_partitions m in
  check_int "rgpdos initial share" 3_000
    (let _, cpu, _ = List.find (fun (id, _, _) -> id = "rgpdos") before in cpu);
  ok (Machine.repartition_cpu m ~rgpd_mcpu:5_000 ~general_mcpu:2_000);
  let after = Machine.cpu_partitions m in
  check_int "rgpdos grown" 5_000
    (let _, cpu, _ = List.find (fun (id, _, _) -> id = "rgpdos") after in cpu);
  check_int "general shrunk" 2_000
    (let _, cpu, _ = List.find (fun (id, _, _) -> id = "general") after in cpu);
  (* over-allocation refused *)
  check_bool "overcommit refused" true
    (Result.is_error (Machine.repartition_cpu m ~rgpd_mcpu:9_000 ~general_mcpu:2_000))

let test_consent_receipts () =
  let m, _, _, _ = boot_with_users () in
  let n, receipt =
    ok
      (Machine.set_consent_with_receipt m ~subject:"sub-alice"
         ~purpose:"purpose2" (Membrane.View "v_name"))
  in
  check_int "one membrane" 1 n;
  check_bool "receipt verifies" true (Machine.verify_receipt m receipt);
  check_string "subject" "sub-alice" receipt.Machine.receipt_subject;
  check_string "purpose" "purpose2" receipt.Machine.receipt_purpose;
  (* a forged receipt (changed scope) is rejected *)
  check_bool "forgery rejected" false
    (Machine.verify_receipt m { receipt with Machine.receipt_scope = "all" });
  (* a receipt pointing at the wrong audit entry is rejected *)
  check_bool "wrong audit seq rejected" false
    (Machine.verify_receipt m
       { receipt with Machine.receipt_audit_seq = 0 });
  (* a second machine (different key) rejects it *)
  let other = Machine.boot ~seed:999L () in
  check_bool "other machine rejects" false (Machine.verify_receipt other receipt)

let test_float_bool_fields_end_to_end () =
  let m = Machine.boot ~seed:31L () in
  ignore
    (ok
       (Machine.load_declarations m
          {|type sensor_profile {
              fields { owner: string, weight_kg: float, opted_in: bool };
              consent { wellness: all };
            }
            purpose wellness {
              description: "wellness trend computation";
              reads: sensor_profile;
              legal_basis: consent;
            }|}));
  let pd =
    ok
      (Machine.collect m ~type_name:"sensor_profile" ~subject:"sub-w"
         ~interface:"web_form"
         ~record:
           [
             ("owner", Value.VString "W");
             ("weight_kg", Value.VFloat 72.5);
             ("opted_in", Value.VBool true);
           ]
         ())
  in
  let r = ok (Result.map_error Dbfs.error_to_string
                (Dbfs.get_record (Machine.dbfs m) ~actor:"ded" pd)) in
  check_bool "float roundtrips" true
    (Record.get r "weight_kg" = Some (Value.VFloat 72.5));
  check_bool "bool roundtrips" true
    (Record.get r "opted_in" = Some (Value.VBool true));
  (* wrong types rejected at the door *)
  check_bool "float field rejects int" true
    (Result.is_error
       (Machine.collect m ~type_name:"sensor_profile" ~subject:"sub-w"
          ~interface:"web_form"
          ~record:
            [
              ("owner", Value.VString "W");
              ("weight_kg", Value.VInt 72);
              ("opted_in", Value.VBool true);
            ]
          ()))

let test_machine_reboot () =
  let m, pd_alice, _, _ = boot_with_users () in
  register_compute_age m;
  ignore (ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  ok (Machine.persist_audit m);
  let audit_len = Audit_log.length (Machine.audit m) in
  let m2 = ok (Machine.reboot m) in
  (* stored PD and membranes survive the power cycle *)
  let r = ok (Result.map_error Dbfs.error_to_string
                (Dbfs.get_record (Machine.dbfs m2) ~actor:"ded" pd_alice)) in
  check_bool "record survives" true
    (Record.get r "name" = Some (Value.VString "Alice"));
  (* the persisted audit chain was reloaded and verifies *)
  check_int "audit chain reloaded" audit_len (Audit_log.length (Machine.audit m2));
  check_bool "chain verifies" true (Audit_log.verify (Machine.audit m2) = Ok ());
  (* in-memory state is gone: the processing must be redeployed *)
  check_bool "processing gone" true
    (Result.is_error
       (Machine.invoke m2 ~name:"compute_age" ~target:(Ded.All_of_type "user") ()));
  (* the LSM policy is re-armed on the remounted DBFS *)
  check_bool "LSM re-armed" true
    (Result.is_error (Dbfs.get_record (Machine.dbfs m2) ~actor:"rogue" pd_alice));
  (* operator redeploys code: declarations without types (already in DBFS) *)
  let _, purposes =
    ok
      (Machine.load_declarations m2
         {|purpose purpose3 {
             description: "compute the age of the input user";
             reads: user.v_ano;
             produces: age_pd;
             legal_basis: consent;
           }|})
  in
  check_int "purpose redeclared" 1 purposes;
  register_compute_age m2;
  let outcome =
    ok (Machine.invoke m2 ~name:"compute_age" ~target:(Ded.All_of_type "user") ())
  in
  check_int "processing runs on surviving PD" 3 outcome.Ded.consumed

(* ------------------------------------------------------------------ *)
(* subject request desk (art. 12(3))                                  *)

module Requests = Rgpdos.Subject_requests

let test_request_desk_lifecycle () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let desk = Requests.create m in
  let r_access = Requests.file desk ~subject:"sub-alice" Requests.Access in
  let r_erase = Requests.file desk ~subject:"sub-bob" Requests.Erasure in
  check_int "two pending" 2 (List.length (Requests.pending desk));
  (* fulfilment dispatches to the machine rights *)
  let fulfilled = ok (Requests.fulfil desk r_access.Requests.request_id) in
  (match fulfilled.Requests.response with
  | Some doc -> check_bool "access doc returned" true (contains_sub doc "Alice")
  | None -> Alcotest.fail "access must carry a response");
  ignore (ok (Requests.fulfil desk r_erase.Requests.request_id));
  (match Dbfs.get_record (Machine.dbfs m) ~actor:"ded"
           (List.hd (ok (Result.map_error Dbfs.error_to_string
                           (Dbfs.pds_of_subject (Machine.dbfs m) ~actor:"ded" "sub-bob"))))
   with
  | Error (Dbfs.Erased _) -> ()
  | _ -> Alcotest.fail "erasure request must erase");
  check_int "none pending" 0 (List.length (Requests.pending desk));
  (* double fulfilment refused *)
  check_bool "refulfil fails" true
    (Result.is_error (Requests.fulfil desk r_access.Requests.request_id));
  let filed, fulfilled_n, rejected, overdue = Requests.statistics desk in
  check_int "filed" 2 filed;
  check_int "fulfilled" 2 fulfilled_n;
  check_int "rejected" 0 rejected;
  check_int "overdue" 0 overdue

let test_request_desk_deadlines () =
  let m, _, _, _ = boot_with_users () in
  let desk = Requests.create m in
  ignore (Requests.file desk ~subject:"sub-alice" Requests.Portability);
  check_int "not overdue yet" 0 (List.length (Requests.overdue desk));
  (* 29 days pass: still inside the statutory month *)
  Clock.advance (Machine.clock m) (29 * Clock.day);
  check_int "day 29: fine" 0 (List.length (Requests.overdue desk));
  (* day 31: art. 12(3) violated *)
  Clock.advance (Machine.clock m) (2 * Clock.day);
  check_int "day 31: overdue" 1 (List.length (Requests.overdue desk));
  (* fulfilling clears it (late, but no longer pending) *)
  check_int "fulfil all" 1 (Requests.fulfil_all_pending desk);
  check_int "cleared" 0 (List.length (Requests.overdue desk))

let test_request_desk_all_kinds () =
  let m, _, _, _ = boot_with_users () in
  register_compute_age m;
  let desk = Requests.create m in
  List.iter
    (fun kind -> ignore (Requests.file desk ~subject:"sub-carol" kind))
    [ Requests.Access; Requests.Portability;
      Requests.Withdraw_consent "purpose3"; Requests.Restriction;
      Requests.Lift_restriction; Requests.Erasure ];
  check_int "all six fulfilled" 6 (Requests.fulfil_all_pending desk);
  (* after the sequence carol is erased *)
  let outcome = ok (Machine.invoke m ~name:"compute_age" ~target:(Ded.All_of_type "user") ()) in
  check_int "carol gone from processing" 2 outcome.Ded.consumed

let () =
  Alcotest.run "machine"
    [
      ( "listing-scenario",
        [
          Alcotest.test_case "compute_age end-to-end" `Quick test_compute_age_end_to_end;
          Alcotest.test_case "view projection hides fields" `Quick
            test_view_projection_hides_fields;
          Alcotest.test_case "denied purpose filters all" `Quick
            test_denied_purpose_filters_everything;
          Alcotest.test_case "stage breakdown" `Quick test_stage_breakdown_present;
          Alcotest.test_case "target pd refs" `Quick test_target_pd_refs;
          Alcotest.test_case "single-phase ablation overreads" `Quick
            test_single_phase_mode_overreads;
          Alcotest.test_case "selection target + hidden fields" `Quick
            test_selection_target;
          Alcotest.test_case "attestation in audit" `Quick test_attestation_in_audit;
          Alcotest.test_case "location cost model" `Quick test_location_cost_model;
          Alcotest.test_case "edge targets" `Quick test_ded_edge_targets;
        ] );
      ( "processing-store",
        [
          Alcotest.test_case "rejects purposeless" `Quick test_ps_rejects_purposeless;
          Alcotest.test_case "alerts on mismatch" `Quick test_ps_alerts_on_footprint_mismatch;
          Alcotest.test_case "duplicate registration" `Quick test_ps_duplicate_registration;
          Alcotest.test_case "unknown processing" `Quick test_ps_unknown_processing;
          Alcotest.test_case "pending alerts" `Quick test_ps_pending_alerts_listing;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "sandbox kills exfiltration" `Quick
            test_sandbox_kills_exfiltrating_processing;
          Alcotest.test_case "raw PD return blocked" `Quick test_sandbox_blocks_raw_pd_return;
          Alcotest.test_case "LSM blocks direct DBFS access" `Quick
            test_lsm_blocks_direct_dbfs_access;
          Alcotest.test_case "crashing impl contained" `Quick
            test_crashing_implementation_contained;
        ] );
      ( "rights",
        [
          Alcotest.test_case "right of access" `Quick test_right_of_access;
          Alcotest.test_case "portability" `Quick test_right_to_portability;
          Alcotest.test_case "erasure full cycle" `Quick test_right_to_erasure_full_cycle;
          Alcotest.test_case "erased PD skipped" `Quick test_erased_pd_skipped_by_processing;
          Alcotest.test_case "rectification" `Quick test_right_to_rectification;
          Alcotest.test_case "consent withdrawal" `Quick
            test_consent_withdrawal_changes_processing;
          Alcotest.test_case "collect with explicit consents" `Quick
            test_collect_with_explicit_consents;
          Alcotest.test_case "art. 18 restriction of processing" `Quick
            test_restriction_of_processing;
        ] );
      ( "collection",
        [
          Alcotest.test_case "collect via registered interface" `Quick
            test_collect_via_registered_interface;
          Alcotest.test_case "undeclared interface refused" `Quick
            test_collect_via_undeclared_interface_refused;
          Alcotest.test_case "describe inode trees" `Quick test_describe_trees;
        ] );
      ( "operations",
        [
          Alcotest.test_case "ttl sweep" `Quick test_ttl_sweep_crypto_erases_expired;
          Alcotest.test_case "compliance clean" `Quick test_compliance_clean_machine;
          Alcotest.test_case "compliance catches expired" `Quick
            test_compliance_catches_expired_pd;
          Alcotest.test_case "jobs + dynamic repartition" `Quick
            test_machine_jobs_and_repartition;
          Alcotest.test_case "audit persistence on NPD fs" `Quick
            test_audit_persistence;
        ] );
      ( "consent-receipts",
        [
          Alcotest.test_case "issue + verify + forgeries" `Quick test_consent_receipts;
          Alcotest.test_case "float/bool fields e2e" `Quick
            test_float_bool_fields_end_to_end;
        ] );
      ( "reboot",
        [ Alcotest.test_case "power cycle" `Quick test_machine_reboot ] );
      ( "request-desk",
        [
          Alcotest.test_case "lifecycle" `Quick test_request_desk_lifecycle;
          Alcotest.test_case "art. 12(3) deadlines" `Quick test_request_desk_deadlines;
          Alcotest.test_case "all kinds dispatch" `Quick test_request_desk_all_kinds;
        ] );
    ]
