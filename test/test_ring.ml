(* Direct unit and property tests of the shared journal ring (both
   filesystems sit on it, so its replay/checkpoint semantics deserve their
   own coverage). *)

module Clock = Rgpdos_util.Clock
module Block_device = Rgpdos_block.Block_device
module Ring = Rgpdos_block.Journal_ring
module Prng = Rgpdos_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_ring ?(num_blocks = 8) () =
  let clock = Clock.create () in
  let dev =
    Block_device.create
      ~config:
        {
          Block_device.block_size = 128;
          block_count = 64;
          read_latency = 1;
          write_latency = 1;
          byte_latency = 0;
          vectored = true;
          async = false;
          queue_depth = 8;
        }
      ~clock ()
  in
  (Ring.create dev ~start_block:2 ~num_blocks, dev)

let no_overflow () = Alcotest.fail "unexpected ring overflow"

let test_append_replay_roundtrip () =
  let ring, dev = make_ring () in
  let payloads = [ "alpha"; "beta"; "gamma with spaces"; "" ] in
  List.iter (Ring.append ring ~on_overflow:no_overflow) payloads;
  check_int "live records" 4 (fst (Ring.live ring));
  (* replay from a fresh attach at position 0 *)
  let reader = Ring.attach dev ~start_block:2 ~num_blocks:8 ~head:0 ~seq:0 in
  let seen = ref [] in
  let summary = Ring.replay reader (fun p -> seen := p :: !seen) in
  Alcotest.(check (list string)) "replayed in order" payloads (List.rev !seen);
  check_int "summary counts records" 4 summary.Ring.records_replayed;
  check_bool "clean stop" true (summary.Ring.stop_reason = Ring.Clean)

let test_replay_from_checkpoint_position () =
  let ring, dev = make_ring () in
  Ring.append ring ~on_overflow:no_overflow "before";
  let head = Ring.head ring and seq = Ring.seq ring in
  Ring.append ring ~on_overflow:no_overflow "after-1";
  Ring.append ring ~on_overflow:no_overflow "after-2";
  let reader = Ring.attach dev ~start_block:2 ~num_blocks:8 ~head ~seq in
  let seen = ref [] in
  let summary = Ring.replay reader (fun p -> seen := p :: !seen) in
  Alcotest.(check (list string)) "only post-checkpoint records"
    [ "after-1"; "after-2" ] (List.rev !seen);
  check_int "summary counts records" 2 summary.Ring.records_replayed

let test_overflow_triggers_checkpoint_callback () =
  let ring, _ = make_ring ~num_blocks:2 () in
  (* 2 * 128 = 256 bytes of ring; 64-byte payloads + ~30B framing *)
  let checkpoints = ref 0 in
  let on_overflow () =
    incr checkpoints;
    Ring.mark_checkpointed ring
  in
  for _ = 1 to 10 do
    Ring.append ring ~on_overflow (String.make 64 'x')
  done;
  check_bool "overflow fired" true (!checkpoints > 0)

let test_record_too_large () =
  let ring, _ = make_ring ~num_blocks:1 () in
  Alcotest.check_raises "oversized record"
    (Failure "Journal_ring: record larger than ring") (fun () ->
      Ring.append ring ~on_overflow:no_overflow (String.make 1000 'x'))

let test_overflow_handler_must_checkpoint () =
  let ring, _ = make_ring ~num_blocks:1 () in
  Alcotest.check_raises "bad handler"
    (Failure "Journal_ring: overflow handler did not checkpoint") (fun () ->
      for _ = 1 to 10 do
        Ring.append ring ~on_overflow:(fun () -> ()) (String.make 64 'x')
      done)

let test_replay_stops_at_garbage () =
  let ring, dev = make_ring () in
  (* enough records that some land in device block 4 (ring bytes 256+) *)
  for i = 1 to 10 do
    Ring.append ring ~on_overflow:no_overflow (Printf.sprintf "good-%02d" i)
  done;
  (* clobber a block in the middle of the appended records *)
  Block_device.write dev 4 (String.make 128 'Z');
  let reader = Ring.attach dev ~start_block:2 ~num_blocks:8 ~head:0 ~seq:0 in
  let seen = ref 0 in
  let summary = Ring.replay reader (fun _ -> incr seen) in
  check_bool "stops without crashing" true (!seen < 10);
  check_int "summary agrees with callback count" !seen
    summary.Ring.records_replayed;
  check_bool "damage reported, not clean" true
    (summary.Ring.stop_reason <> Ring.Clean)

let test_scrub_zeroes_dead_blocks () =
  let ring, dev = make_ring () in
  Ring.append ring ~on_overflow:no_overflow "SECRET-IN-RING";
  check_bool "present before scrub" true
    (Block_device.scan dev "SECRET-IN-RING" <> []);
  Ring.mark_checkpointed ring;
  Ring.scrub ring;
  check_int "scrubbed" 0 (List.length (Block_device.scan dev "SECRET-IN-RING"))

let test_scrub_preserves_live_records () =
  let ring, dev = make_ring () in
  Ring.append ring ~on_overflow:no_overflow "dead-record";
  Ring.mark_checkpointed ring;
  let head = Ring.head ring and seq = Ring.seq ring in
  Ring.append ring ~on_overflow:no_overflow "LIVE-RECORD";
  Ring.scrub ring;
  check_bool "live survives" true (Block_device.scan dev "LIVE-RECORD" <> []);
  (* and it still replays from the checkpoint position *)
  let reader = Ring.attach dev ~start_block:2 ~num_blocks:8 ~head ~seq in
  let seen = ref [] in
  let summary = Ring.replay reader (fun p -> seen := p :: !seen) in
  Alcotest.(check (list string)) "live replays" [ "LIVE-RECORD" ] !seen;
  check_bool "clean stop after scrub" true
    (summary.Ring.stop_reason = Ring.Clean)

let prop_roundtrip_arbitrary_payloads =
  QCheck.Test.make ~name:"ring roundtrips arbitrary payload lists" ~count:100
    QCheck.(list_of_size Gen.(0 -- 12) (string_of_size Gen.(0 -- 100)))
    (fun payloads ->
      let ring, dev = make_ring ~num_blocks:32 () in
      List.iter (Ring.append ring ~on_overflow:(fun () -> assert false)) payloads;
      let reader = Ring.attach dev ~start_block:2 ~num_blocks:32 ~head:0 ~seq:0 in
      let seen = ref [] in
      let summary = Ring.replay reader (fun p -> seen := p :: !seen) in
      List.rev !seen = payloads
      && summary.Ring.records_replayed = List.length payloads
      && summary.Ring.stop_reason = Ring.Clean)

let prop_wraparound_preserves_tail =
  (* fill the ring several times over with checkpoints; the records since
     the last checkpoint must always replay *)
  QCheck.Test.make ~name:"wraparound keeps post-checkpoint records" ~count:50
    QCheck.(int_range 1 40)
    (fun n ->
      let ring, dev = make_ring ~num_blocks:3 () in
      let last_ckpt = ref (0, 0) in
      for i = 1 to n do
        Ring.append ring
          ~on_overflow:(fun () ->
            last_ckpt := (Ring.head ring, Ring.seq ring);
            Ring.mark_checkpointed ring)
          (Printf.sprintf "record-%04d" i)
      done;
      let head, seq = !last_ckpt in
      let reader = Ring.attach dev ~start_block:2 ~num_blocks:3 ~head ~seq in
      let seen = ref [] in
      let (_ : Ring.replay_summary) =
        Ring.replay reader (fun p -> seen := p :: !seen)
      in
      (* the replayed list must be a contiguous suffix ending at record n *)
      match !seen with
      | [] -> fst (Ring.live ring) = 0
      | last :: _ -> last = Printf.sprintf "record-%04d" n)

let () =
  Alcotest.run "journal-ring"
    [
      ( "ring",
        [
          Alcotest.test_case "append/replay roundtrip" `Quick test_append_replay_roundtrip;
          Alcotest.test_case "replay from checkpoint" `Quick
            test_replay_from_checkpoint_position;
          Alcotest.test_case "overflow callback" `Quick
            test_overflow_triggers_checkpoint_callback;
          Alcotest.test_case "record too large" `Quick test_record_too_large;
          Alcotest.test_case "handler must checkpoint" `Quick
            test_overflow_handler_must_checkpoint;
          Alcotest.test_case "replay stops at garbage" `Quick test_replay_stops_at_garbage;
          Alcotest.test_case "scrub zeroes dead blocks" `Quick test_scrub_zeroes_dead_blocks;
          Alcotest.test_case "scrub preserves live" `Quick test_scrub_preserves_live_records;
          QCheck_alcotest.to_alcotest prop_roundtrip_arbitrary_payloads;
          QCheck_alcotest.to_alcotest prop_wraparound_preserves_tail;
        ] );
    ]
