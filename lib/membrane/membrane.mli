(** The PD membrane: the paper's first demonstration of {i active data}.

    Every piece of personal data stored in DBFS is wrapped in a membrane
    (Fig. 3's black layer) that carries the metadata §2 enumerates: origin,
    per-purpose consents, time-to-live, sensitivity level, and the
    collection interfaces to use when the data is not yet present.  The
    membrane is what makes the data "active": access decisions are taken by
    evaluating the membrane, not by trusting the requesting process.

    Consents name {i views} of the PD type (Listing 1: [purpose1: all,
    purpose2: none, purpose3: ano]); resolving a view name to concrete
    fields is the schema's job (see [Rgpdos_dbfs.Schema]) — the membrane
    only records and evaluates the subject's decisions. *)

type origin =
  | Subject              (** collected directly from the data subject *)
  | Sysadmin             (** entered by the data operator *)
  | Third_party of string  (** received from another data operator *)

type sensitivity = Low | Medium | High

val pp_origin : Format.formatter -> origin -> unit
val pp_sensitivity : Format.formatter -> sensitivity -> unit

(** A subject's decision for one processing purpose. *)
type consent_scope =
  | All                  (** full access to the PD type *)
  | Denied               (** no access at all *)
  | View of string       (** access restricted to the named view *)

val pp_consent_scope : Format.formatter -> consent_scope -> unit

type t = {
  pd_id : string;        (** identifier of the wrapped PD *)
  type_name : string;    (** DBFS table this PD belongs to *)
  subject_id : string;   (** whose PD this is *)
  origin : origin;
  consents : (string * consent_scope) list;  (** purpose -> decision *)
  created_at : Rgpdos_util.Clock.ns;
  ttl : Rgpdos_util.Clock.ns option;  (** lifetime; [None] = no expiry *)
  sensitivity : sensitivity;
  collection : (string * string) list;
      (** collection interfaces, e.g. [("web_form", "user_form.html")] *)
  version : int;  (** bumped on every consent change, for copy consistency *)
  lineage : string;  (** pd_id of the original ancestor; see {!lineage_root} *)
  restricted : bool;
      (** GDPR art. 18 restriction of processing: while set, every purpose
          is refused but the data is retained (unlike erasure) *)
}

val make :
  pd_id:string ->
  type_name:string ->
  subject_id:string ->
  origin:origin ->
  consents:(string * consent_scope) list ->
  created_at:Rgpdos_util.Clock.ns ->
  ?ttl:Rgpdos_util.Clock.ns ->
  ?sensitivity:sensitivity ->
  ?collection:(string * string) list ->
  unit ->
  t
(** Build a membrane.  Defaults: no TTL, [Low] sensitivity, no collection
    interfaces, version 0.
    @raise Invalid_argument if [consents] names the same purpose twice. *)

(** {1 Decisions} *)

type decision =
  | Granted of consent_scope  (** access allowed; scope still applies *)
  | Refused of string         (** human-readable reason *)

val decide : t -> purpose:string -> now:Rgpdos_util.Clock.ns -> decision
(** The core active-data check: is [purpose] allowed to touch this PD right
    now?  Refuses when the TTL has expired, when consent is [Denied], and —
    deny-by-default — when the purpose is not mentioned at all. *)

val expired : t -> now:Rgpdos_util.Clock.ns -> bool

val allows : t -> purpose:string -> now:Rgpdos_util.Clock.ns -> bool
(** [true] iff [decide] grants. *)

(** {1 Consent lifecycle} *)

val set_consent : t -> purpose:string -> consent_scope -> t
(** Add or replace a purpose's consent; bumps [version]. *)

val withdraw : t -> purpose:string -> t
(** GDPR art. 7(3): withdrawal of consent — sets the purpose to [Denied].
    Withdrawal of an unknown purpose still records a [Denied] entry. *)

val withdraw_all : t -> t
(** Set every recorded purpose to [Denied]; bumps [version]. *)

val set_restricted : t -> bool -> t
(** Art. 18: restrict (or lift the restriction of) processing.  A
    restricted membrane refuses every purpose while keeping the data and
    the consent record intact; bumps [version]. *)

val extend_ttl : t -> Rgpdos_util.Clock.ns option -> t

(** {1 Copies} *)

val copy_for : t -> new_pd_id:string -> t
(** Membrane for a copy of the PD (built-in [copy]): all restrictions are
    inherited, only the wrapped PD's identity changes.  The paper requires
    membrane consistency across all copies of the same PD: the [lineage]
    of the copy lets the machine find and update them together. *)

val lineage_root : t -> string
(** The pd_id of the original ancestor (for copies, the id this membrane
    was first created with; stable across [copy_for]). *)

(** {1 Serialization} *)

val encode : t -> string
val decode : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
