module Clock = Rgpdos_util.Clock
module Codec = Rgpdos_util.Codec

open Rgpdos_util.Codec

type origin = Subject | Sysadmin | Third_party of string

type sensitivity = Low | Medium | High

let pp_origin fmt = function
  | Subject -> Format.pp_print_string fmt "subject"
  | Sysadmin -> Format.pp_print_string fmt "sysadmin"
  | Third_party op -> Format.fprintf fmt "third-party(%s)" op

let pp_sensitivity fmt = function
  | Low -> Format.pp_print_string fmt "low"
  | Medium -> Format.pp_print_string fmt "medium"
  | High -> Format.pp_print_string fmt "high"

type consent_scope = All | Denied | View of string

let pp_consent_scope fmt = function
  | All -> Format.pp_print_string fmt "all"
  | Denied -> Format.pp_print_string fmt "none"
  | View v -> Format.fprintf fmt "view(%s)" v

type t = {
  pd_id : string;
  type_name : string;
  subject_id : string;
  origin : origin;
  consents : (string * consent_scope) list;
  created_at : Clock.ns;
  ttl : Clock.ns option;
  sensitivity : sensitivity;
  collection : (string * string) list;
  version : int;
  lineage : string;
  restricted : bool;
}

let make ~pd_id ~type_name ~subject_id ~origin ~consents ~created_at ?ttl
    ?(sensitivity = Low) ?(collection = []) () =
  let purposes = List.map fst consents in
  let dedup = List.sort_uniq String.compare purposes in
  if List.length dedup <> List.length purposes then
    invalid_arg "Membrane.make: duplicate purpose in consents";
  {
    pd_id;
    type_name;
    subject_id;
    origin;
    consents;
    created_at;
    ttl;
    sensitivity;
    collection;
    version = 0;
    lineage = pd_id;
    restricted = false;
  }

type decision = Granted of consent_scope | Refused of string

let expired m ~now =
  match m.ttl with None -> false | Some ttl -> now >= m.created_at + ttl

let decide m ~purpose ~now =
  if m.restricted then
    Refused
      (Printf.sprintf "processing of PD %s is restricted (GDPR art. 18)" m.pd_id)
  else if expired m ~now then
    Refused
      (Format.asprintf "PD %s expired (ttl %a elapsed)" m.pd_id
         (Format.pp_print_option Clock.pp_duration)
         m.ttl)
  else
    match List.assoc_opt purpose m.consents with
    | None ->
        Refused
          (Printf.sprintf "no consent recorded for purpose %s on PD %s"
             purpose m.pd_id)
    | Some Denied ->
        Refused (Printf.sprintf "purpose %s denied by subject %s" purpose m.subject_id)
    | Some (All | View _) as s -> Granted (Option.get s)

let allows m ~purpose ~now =
  match decide m ~purpose ~now with Granted _ -> true | Refused _ -> false

let set_consent m ~purpose scope =
  let consents =
    if List.mem_assoc purpose m.consents then
      List.map
        (fun (p, s) -> if p = purpose then (p, scope) else (p, s))
        m.consents
    else m.consents @ [ (purpose, scope) ]
  in
  { m with consents; version = m.version + 1 }

let withdraw m ~purpose = set_consent m ~purpose Denied

let withdraw_all m =
  {
    m with
    consents = List.map (fun (p, _) -> (p, Denied)) m.consents;
    version = m.version + 1;
  }

let set_restricted m restricted = { m with restricted; version = m.version + 1 }

let extend_ttl m ttl = { m with ttl; version = m.version + 1 }

let copy_for m ~new_pd_id = { m with pd_id = new_pd_id }

let lineage_root m = m.lineage

(* ------------------------------------------------------------------ *)
(* serialization                                                      *)

let encode_origin w = function
  | Subject -> Codec.Writer.string w "subject"
  | Sysadmin -> Codec.Writer.string w "sysadmin"
  | Third_party op ->
      Codec.Writer.string w "third_party";
      Codec.Writer.string w op

let decode_origin r =
  let* tag = Codec.Reader.string r in
  match tag with
  | "subject" -> Ok Subject
  | "sysadmin" -> Ok Sysadmin
  | "third_party" ->
      let* op = Codec.Reader.string r in
      Ok (Third_party op)
  | other -> Error ("unknown origin " ^ other)

let encode_scope w = function
  | All -> Codec.Writer.string w "all"
  | Denied -> Codec.Writer.string w "none"
  | View v ->
      Codec.Writer.string w "view";
      Codec.Writer.string w v

let decode_scope r =
  let* tag = Codec.Reader.string r in
  match tag with
  | "all" -> Ok All
  | "none" -> Ok Denied
  | "view" ->
      let* v = Codec.Reader.string r in
      Ok (View v)
  | other -> Error ("unknown consent scope " ^ other)

let sensitivity_to_string = function Low -> "low" | Medium -> "medium" | High -> "high"

let sensitivity_of_string = function
  | "low" -> Ok Low
  | "medium" -> Ok Medium
  | "high" -> Ok High
  | other -> Error ("unknown sensitivity " ^ other)

let encode m =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "MBR1";
  Codec.Writer.string w m.pd_id;
  Codec.Writer.string w m.type_name;
  Codec.Writer.string w m.subject_id;
  encode_origin w m.origin;
  Codec.Writer.list w
    (fun (p, s) ->
      Codec.Writer.string w p;
      encode_scope w s)
    m.consents;
  Codec.Writer.int w m.created_at;
  (match m.ttl with
  | None -> Codec.Writer.bool w false
  | Some ttl ->
      Codec.Writer.bool w true;
      Codec.Writer.int w ttl);
  Codec.Writer.string w (sensitivity_to_string m.sensitivity);
  Codec.Writer.list w
    (fun (k, v) ->
      Codec.Writer.string w k;
      Codec.Writer.string w v)
    m.collection;
  Codec.Writer.int w m.version;
  Codec.Writer.string w m.lineage;
  Codec.Writer.bool w m.restricted;
  Codec.Writer.contents w

let decode s =
  let r = Codec.Reader.create s in
  let* magic = Codec.Reader.string r in
  if magic <> "MBR1" then Error "not a membrane: bad magic"
  else
    let* pd_id = Codec.Reader.string r in
    let* type_name = Codec.Reader.string r in
    let* subject_id = Codec.Reader.string r in
    let* origin = decode_origin r in
    let* consents =
      Codec.Reader.list r (fun r ->
          let* p = Codec.Reader.string r in
          let* s = decode_scope r in
          Ok (p, s))
    in
    let* created_at = Codec.Reader.int r in
    let* has_ttl = Codec.Reader.bool r in
    let* ttl =
      if has_ttl then
        let* v = Codec.Reader.int r in
        Ok (Some v)
      else Ok None
    in
    let* sens_str = Codec.Reader.string r in
    let* sensitivity = sensitivity_of_string sens_str in
    let* collection =
      Codec.Reader.list r (fun r ->
          let* k = Codec.Reader.string r in
          let* v = Codec.Reader.string r in
          Ok (k, v))
    in
    let* version = Codec.Reader.int r in
    let* lineage = Codec.Reader.string r in
    let* restricted = Codec.Reader.bool r in
    let* () = Codec.Reader.expect_end r in
    Ok
      {
        pd_id;
        type_name;
        subject_id;
        origin;
        consents;
        created_at;
        ttl;
        sensitivity;
        collection;
        version;
        lineage;
        restricted;
      }

let pp fmt m =
  Format.fprintf fmt
    "@[<v 2>membrane %s (type %s, subject %s)@,origin: %a@,sensitivity: %a@,\
     version: %d@,consents:@,%a@]"
    m.pd_id m.type_name m.subject_id pp_origin m.origin pp_sensitivity
    m.sensitivity m.version
    (Format.pp_print_list (fun fmt (p, s) ->
         Format.fprintf fmt "  %s -> %a" p pp_consent_scope s))
    m.consents

let equal a b = a = b
