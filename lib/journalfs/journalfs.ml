module Block_device = Rgpdos_block.Block_device
module Journal_ring = Rgpdos_block.Journal_ring
module Codec = Rgpdos_util.Codec
module Clock = Rgpdos_util.Clock
module Fnv = Rgpdos_util.Fnv

open Rgpdos_util.Codec

type error =
  | Not_found of string
  | Already_exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Directory_not_empty of string
  | No_space
  | Invalid_path of string

let pp_error fmt = function
  | Not_found p -> Format.fprintf fmt "not found: %s" p
  | Already_exists p -> Format.fprintf fmt "already exists: %s" p
  | Not_a_directory p -> Format.fprintf fmt "not a directory: %s" p
  | Is_a_directory p -> Format.fprintf fmt "is a directory: %s" p
  | Directory_not_empty p -> Format.fprintf fmt "directory not empty: %s" p
  | No_space -> Format.fprintf fmt "no space left on device"
  | Invalid_path p -> Format.fprintf fmt "invalid path: %s" p

let error_to_string e = Format.asprintf "%a" pp_error e

type stat = { inode : int; is_dir : bool; size : int; mtime : Clock.ns }

type inode = {
  mutable is_dir : bool;
  mutable size : int;
  mutable blocks : int list; (* data blocks, in file order *)
  mutable entries : (string * int) list; (* directory entries *)
  mutable mtime : Clock.ns;
}

(* Journal operations.  Each op carries every parameter needed to replay it
   deterministically, including the block numbers chosen at execution time.
   Crucially for experiment E3, Op_write embeds the FULL FILE DATA: this is
   data journaling (ext3 data=journal), the mode the paper's introduction
   identifies as a right-to-be-forgotten hazard. *)
type op =
  | Op_mkdir of { parent : int; name : string; ino : int }
  | Op_create of { parent : int; name : string; ino : int }
  | Op_write of { ino : int; data : string; blocks : int list }
  | Op_delete of { parent : int; name : string; ino : int; secure : bool }
  | Op_rename of {
      src_parent : int;
      src_name : string;
      dst_parent : int;
      dst_name : string;
    }

type t = {
  dev : Block_device.t;
  ring : Journal_ring.t;
  journal_blocks : int;
  meta_start : int;
  meta_blocks : int;
  data_start : int;
  inodes : (int, inode) Hashtbl.t;
  free : bool array; (* true = data block free; indexed from data_start *)
  mutable next_inode : int;
  mutable replay : Journal_ring.replay_summary option;
      (* mount-time journal replay summary; None on a freshly formatted fs *)
  mutable replay_warning : string option;
      (* decode error of the first corrupt (framed-but-unparseable) op *)
}

let root_ino = 0
let superblock_magic = "RGPDJFS1"
let meta_blocks_default = 64

(* ------------------------------------------------------------------ *)
(* path handling                                                      *)

let split_path path =
  if path = "" || path.[0] <> '/' then Error (Invalid_path path)
  else
    let parts = String.split_on_char '/' path in
    let parts = List.filter (fun s -> s <> "") parts in
    if List.exists (fun s -> s = "." || s = "..") parts then
      Error (Invalid_path path)
    else Ok parts

(* ------------------------------------------------------------------ *)
(* inode helpers                                                      *)

let new_dir_inode now = { is_dir = true; size = 0; blocks = []; entries = []; mtime = now }
let new_file_inode now = { is_dir = false; size = 0; blocks = []; entries = []; mtime = now }

let find_inode fs ino = Hashtbl.find_opt fs.inodes ino

let lookup_child fs parent name =
  match find_inode fs parent with
  | Some dir when dir.is_dir -> List.assoc_opt name dir.entries
  | _ -> None

(* Resolve a path to (parent_ino, name, child_ino option).  For the root
   path the result is (root, "", Some root). *)
let resolve fs path =
  match split_path path with
  | Error e -> Error e
  | Ok [] -> Ok (root_ino, "", Some root_ino)
  | Ok parts ->
      let rec walk ino = function
        | [] -> assert false
        | [ last ] -> Ok (ino, last, lookup_child fs ino last)
        | part :: rest -> (
            match lookup_child fs ino part with
            | None -> Error (Not_found path)
            | Some child -> (
                match find_inode fs child with
                | Some i when i.is_dir -> walk child rest
                | Some _ -> Error (Not_a_directory path)
                | None -> Error (Not_found path)))
      in
      (match find_inode fs root_ino with
      | Some _ -> walk root_ino parts
      | None -> Error (Not_found "/"))

(* ------------------------------------------------------------------ *)
(* block allocation                                                   *)

let block_size fs = (Block_device.config fs.dev).Block_device.block_size

let data_block_count fs =
  (Block_device.config fs.dev).Block_device.block_count - fs.data_start

(* Extent allocation, same policy as DBFS's data zones: contiguous
   first-fit so vectored reads of a file merge into one run, scattered
   per-block fallback when fragmented, rollback on shortfall. *)
let alloc_blocks fs n =
  let total = data_block_count fs in
  let extent =
    let result = ref None in
    let start = ref (-1) in
    let i = ref 0 in
    while !result = None && !i < total do
      if fs.free.(!i) then begin
        if !start < 0 then start := !i;
        if !i - !start + 1 >= n then result := Some !start
      end
      else start := -1;
      incr i
    done;
    !result
  in
  match extent with
  | Some s when n > 0 ->
      for j = s to s + n - 1 do
        fs.free.(j) <- false
      done;
      Some (List.init n (fun j -> fs.data_start + s + j))
  | _ ->
      let out = ref [] in
      let found = ref 0 in
      let i = ref 0 in
      while !found < n && !i < total do
        if fs.free.(!i) then begin
          fs.free.(!i) <- false;
          out := (fs.data_start + !i) :: !out;
          incr found
        end;
        incr i
      done;
      if !found < n then begin
        (* roll back *)
        List.iter (fun b -> fs.free.(b - fs.data_start) <- true) !out;
        None
      end
      else Some (List.rev !out)

let free_block fs b = fs.free.(b - fs.data_start) <- true

let blocks_needed fs len =
  if len = 0 then 0 else ((len - 1) / block_size fs) + 1

(* ------------------------------------------------------------------ *)
(* op codec                                                           *)

let encode_op op =
  let w = Codec.Writer.create () in
  (match op with
  | Op_mkdir { parent; name; ino } ->
      Codec.Writer.string w "mkdir";
      Codec.Writer.int w parent;
      Codec.Writer.string w name;
      Codec.Writer.int w ino
  | Op_create { parent; name; ino } ->
      Codec.Writer.string w "create";
      Codec.Writer.int w parent;
      Codec.Writer.string w name;
      Codec.Writer.int w ino
  | Op_write { ino; data; blocks } ->
      Codec.Writer.string w "write";
      Codec.Writer.int w ino;
      Codec.Writer.string w data;
      Codec.Writer.list w (Codec.Writer.int w) blocks
  | Op_delete { parent; name; ino; secure } ->
      Codec.Writer.string w "delete";
      Codec.Writer.int w parent;
      Codec.Writer.string w name;
      Codec.Writer.int w ino;
      Codec.Writer.bool w secure
  | Op_rename { src_parent; src_name; dst_parent; dst_name } ->
      Codec.Writer.string w "rename";
      Codec.Writer.int w src_parent;
      Codec.Writer.string w src_name;
      Codec.Writer.int w dst_parent;
      Codec.Writer.string w dst_name);
  Codec.Writer.contents w

let decode_op s =
  let r = Codec.Reader.create s in
  let* tag = Codec.Reader.string r in
  match tag with
  | "mkdir" ->
      let* parent = Codec.Reader.int r in
      let* name = Codec.Reader.string r in
      let* ino = Codec.Reader.int r in
      Ok (Op_mkdir { parent; name; ino })
  | "create" ->
      let* parent = Codec.Reader.int r in
      let* name = Codec.Reader.string r in
      let* ino = Codec.Reader.int r in
      Ok (Op_create { parent; name; ino })
  | "write" ->
      let* ino = Codec.Reader.int r in
      let* data = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      Ok (Op_write { ino; data; blocks })
  | "delete" ->
      let* parent = Codec.Reader.int r in
      let* name = Codec.Reader.string r in
      let* ino = Codec.Reader.int r in
      let* secure = Codec.Reader.bool r in
      Ok (Op_delete { parent; name; ino; secure })
  | "rename" ->
      let* src_parent = Codec.Reader.int r in
      let* src_name = Codec.Reader.string r in
      let* dst_parent = Codec.Reader.int r in
      let* dst_name = Codec.Reader.string r in
      Ok (Op_rename { src_parent; src_name; dst_parent; dst_name })
  | other -> Error ("unknown journal op " ^ other)

(* ------------------------------------------------------------------ *)
(* metadata checkpoint                                                *)

let encode_inode w ino inode =
  Codec.Writer.int w ino;
  Codec.Writer.bool w inode.is_dir;
  Codec.Writer.int w inode.size;
  Codec.Writer.list w (Codec.Writer.int w) inode.blocks;
  Codec.Writer.list w
    (fun (name, child) ->
      Codec.Writer.string w name;
      Codec.Writer.int w child)
    inode.entries;
  Codec.Writer.int w inode.mtime

let decode_inode r =
  let* ino = Codec.Reader.int r in
  let* is_dir = Codec.Reader.bool r in
  let* size = Codec.Reader.int r in
  let* blocks = Codec.Reader.list r Codec.Reader.int in
  let* entries =
    Codec.Reader.list r (fun r ->
        let* name = Codec.Reader.string r in
        let* child = Codec.Reader.int r in
        Ok (name, child))
  in
  let* mtime = Codec.Reader.int r in
  Ok (ino, { is_dir; size; blocks; entries; mtime })

let encode_meta fs =
  let w = Codec.Writer.create () in
  Codec.Writer.string w superblock_magic;
  Codec.Writer.int w fs.next_inode;
  Codec.Writer.int w (Journal_ring.head fs.ring);
  Codec.Writer.int w (Journal_ring.seq fs.ring);
  let inode_list = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fs.inodes [] in
  Codec.Writer.list w (fun (k, v) -> encode_inode w k v) inode_list;
  let free_bits =
    String.init (Array.length fs.free) (fun i -> if fs.free.(i) then '1' else '0')
  in
  Codec.Writer.string w free_bits;
  Codec.Writer.contents w

(* Metadata lives in a fixed region; each checkpoint rewrites it whole. *)
let write_meta fs =
  let bs = block_size fs in
  let payload = encode_meta fs in
  let framed =
    let w = Codec.Writer.create () in
    Codec.Writer.string w payload;
    Codec.Writer.contents w ^ Fnv.hash64_hex payload
  in
  if String.length framed > fs.meta_blocks * bs then
    failwith "Journalfs: metadata region overflow";
  let nblocks = ((String.length framed - 1) / bs) + 1 in
  Block_device.write_vec fs.dev
    (List.init nblocks (fun i ->
         ( fs.meta_start + i,
           String.sub framed (i * bs)
             (min bs (String.length framed - (i * bs))) )));
  ()

let read_meta dev ~meta_start ~meta_blocks =
  let got =
    Block_device.read_vec dev (List.init meta_blocks (fun i -> meta_start + i))
  in
  let buf = Buffer.create 4096 in
  List.iter (fun (_, s) -> Buffer.add_string buf s) got;
  let raw = Buffer.contents buf in
  let r = Codec.Reader.create raw in
  let* payload = Codec.Reader.string r in
  if String.length raw < 4 + String.length payload + 16 then
    Error "truncated metadata"
  else
    let stored_sum = String.sub raw (4 + String.length payload) 16 in
    if stored_sum <> Fnv.hash64_hex payload then Error "metadata checksum mismatch"
    else Ok payload

(* ------------------------------------------------------------------ *)
(* superblock                                                         *)

let encode_superblock ~journal_blocks ~meta_blocks =
  let w = Codec.Writer.create () in
  Codec.Writer.string w superblock_magic;
  Codec.Writer.int w journal_blocks;
  Codec.Writer.int w meta_blocks;
  Codec.Writer.contents w

let decode_superblock raw =
  let r = Codec.Reader.create raw in
  let* magic = Codec.Reader.string r in
  if magic <> superblock_magic then Error "bad superblock magic"
  else
    let* journal_blocks = Codec.Reader.int r in
    let* meta_blocks = Codec.Reader.int r in
    Ok (journal_blocks, meta_blocks)

(* ------------------------------------------------------------------ *)
(* applying ops                                                       *)

let write_data_blocks fs data blocks =
  let bs = block_size fs in
  match blocks with
  | [] -> ()
  | _ ->
      Block_device.write_vec fs.dev
        (List.mapi
           (fun i b ->
             ( b,
               String.sub data (i * bs)
                 (min bs (String.length data - (i * bs))) ))
           blocks)

(* Apply an op to the in-memory state and data region.  The op is assumed
   valid: validation happened before journaling. *)
let apply_op fs op =
  match op with
  | Op_mkdir { parent; name; ino } ->
      let dir = Hashtbl.find fs.inodes parent in
      dir.entries <- dir.entries @ [ (name, ino) ];
      Hashtbl.replace fs.inodes ino (new_dir_inode 0);
      if ino >= fs.next_inode then fs.next_inode <- ino + 1
  | Op_create { parent; name; ino } ->
      let dir = Hashtbl.find fs.inodes parent in
      dir.entries <- dir.entries @ [ (name, ino) ];
      Hashtbl.replace fs.inodes ino (new_file_inode 0);
      if ino >= fs.next_inode then fs.next_inode <- ino + 1
  | Op_write { ino; data; blocks } ->
      let node = Hashtbl.find fs.inodes ino in
      (* free previous blocks (no zeroing: classic FS behaviour) *)
      List.iter (fun b -> free_block fs b) node.blocks;
      List.iter (fun b -> fs.free.(b - fs.data_start) <- false) blocks;
      node.blocks <- blocks;
      node.size <- String.length data;
      write_data_blocks fs data blocks
  | Op_delete { parent; name; ino; secure } ->
      let dir = Hashtbl.find fs.inodes parent in
      dir.entries <- List.filter (fun (n, _) -> n <> name) dir.entries;
      (match Hashtbl.find_opt fs.inodes ino with
      | None -> ()
      | Some node ->
          if secure && node.blocks <> [] then
            Block_device.write_vec fs.dev
              (List.map
                 (fun b -> (b, String.make (block_size fs) '\000'))
                 node.blocks);
          List.iter (fun b -> free_block fs b) node.blocks;
          Hashtbl.remove fs.inodes ino)
  | Op_rename { src_parent; src_name; dst_parent; dst_name } ->
      let src_dir = Hashtbl.find fs.inodes src_parent in
      let ino = List.assoc src_name src_dir.entries in
      src_dir.entries <- List.filter (fun (n, _) -> n <> src_name) src_dir.entries;
      let dst_dir = Hashtbl.find fs.inodes dst_parent in
      dst_dir.entries <-
        List.filter (fun (n, _) -> n <> dst_name) dst_dir.entries @ [ (dst_name, ino) ]

(* ------------------------------------------------------------------ *)
(* checkpoint & journal append                                        *)

let checkpoint fs =
  write_meta fs;
  (* settle any async group-commit flushes at the durability point *)
  Journal_ring.barrier fs.ring;
  Journal_ring.mark_checkpointed fs.ring

let log_and_apply fs op =
  Journal_ring.append fs.ring ~on_overflow:(fun () -> checkpoint fs) (encode_op op);
  apply_op fs op

(* ------------------------------------------------------------------ *)
(* construction                                                       *)

let format dev ~journal_blocks =
  let cfg = Block_device.config dev in
  let meta_blocks = meta_blocks_default in
  let data_start = 1 + journal_blocks + meta_blocks in
  if data_start >= cfg.Block_device.block_count then
    invalid_arg "Journalfs.format: device too small";
  Block_device.write dev 0 (encode_superblock ~journal_blocks ~meta_blocks);
  let fs =
    {
      dev;
      ring = Journal_ring.create dev ~start_block:1 ~num_blocks:journal_blocks;
      journal_blocks;
      meta_start = 1 + journal_blocks;
      meta_blocks;
      data_start;
      inodes = Hashtbl.create 64;
      free = Array.make (cfg.Block_device.block_count - data_start) true;
      next_inode = root_ino + 1;
      replay = None;
      replay_warning = None;
    }
  in
  Hashtbl.replace fs.inodes root_ino (new_dir_inode 0);
  write_meta fs;
  fs

let mount dev =
  match decode_superblock (Block_device.read dev 0) with
  | Error e -> Error e
  | Ok (journal_blocks, meta_blocks) -> (
      let meta_start = 1 + journal_blocks in
      match read_meta dev ~meta_start ~meta_blocks with
      | Error e -> Error e
      | Ok payload -> (
          let r = Codec.Reader.create payload in
          let parse =
            let* magic = Codec.Reader.string r in
            if magic <> superblock_magic then Error "bad metadata magic"
            else
              let* next_inode = Codec.Reader.int r in
              let* jhead = Codec.Reader.int r in
              let* jseq = Codec.Reader.int r in
              let* inode_list = Codec.Reader.list r decode_inode in
              let* free_bits = Codec.Reader.string r in
              Ok (next_inode, jhead, jseq, inode_list, free_bits)
          in
          match parse with
          | Error e -> Error e
          | Ok (next_inode, jhead, jseq, inode_list, free_bits) ->
              let data_start = 1 + journal_blocks + meta_blocks in
              let fs =
                {
                  dev;
                  ring =
                    Journal_ring.attach dev ~start_block:1
                      ~num_blocks:journal_blocks ~head:jhead ~seq:jseq;
                  journal_blocks;
                  meta_start;
                  meta_blocks;
                  data_start;
                  inodes = Hashtbl.create 64;
                  free =
                    Array.init (String.length free_bits) (fun i ->
                        free_bits.[i] = '1');
                  next_inode;
                  replay = None;
                  replay_warning = None;
                }
              in
              List.iter (fun (k, v) -> Hashtbl.replace fs.inodes k v) inode_list;
              (* exn-free replay: a framed-but-undecodable op stops further
                 application and is reported, it does not fail the mount *)
              let summary =
                Journal_ring.replay fs.ring (fun payload ->
                    if fs.replay_warning = None then
                      match decode_op payload with
                      | Ok op -> apply_op fs op
                      | Error e ->
                          fs.replay_warning <-
                            Some ("Journalfs: corrupt journal op: " ^ e))
              in
              fs.replay <- Some summary;
              Ok fs))

let device fs = fs.dev

let replay_report fs = fs.replay

let replay_warning fs = fs.replay_warning

(* ------------------------------------------------------------------ *)
(* public namespace operations                                        *)

let mkdir fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, Some _) -> Error (Already_exists path)
  | Ok (parent, name, None) ->
      if name = "" then Error (Invalid_path path)
      else begin
        let ino = fs.next_inode in
        fs.next_inode <- ino + 1;
        log_and_apply fs (Op_mkdir { parent; name; ino });
        Ok ()
      end

let create fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, Some _) -> Error (Already_exists path)
  | Ok (parent, name, None) ->
      if name = "" then Error (Invalid_path path)
      else begin
        let ino = fs.next_inode in
        fs.next_inode <- ino + 1;
        log_and_apply fs (Op_create { parent; name; ino });
        Ok ()
      end

let write_to_inode fs ino data =
  let n = blocks_needed fs (String.length data) in
  match alloc_blocks fs n with
  | None -> Error No_space
  | Some blocks ->
      (* alloc_blocks already marked them used; apply_op re-marks (idempotent)
         and frees the old ones. *)
      log_and_apply fs (Op_write { ino; data; blocks });
      Ok ()

let write_file fs path data =
  match resolve fs path with
  | Error e -> Error e
  | Ok (parent, name, None) ->
      if name = "" then Error (Invalid_path path)
      else begin
        let ino = fs.next_inode in
        fs.next_inode <- ino + 1;
        log_and_apply fs (Op_create { parent; name; ino });
        write_to_inode fs ino data
      end
  | Ok (_, _, Some ino) -> (
      match find_inode fs ino with
      | Some node when node.is_dir -> Error (Is_a_directory path)
      | Some _ -> write_to_inode fs ino data
      | None -> Error (Not_found path))

let read_file fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, None) -> Error (Not_found path)
  | Ok (_, _, Some ino) -> (
      match find_inode fs ino with
      | None -> Error (Not_found path)
      | Some node when node.is_dir -> Error (Is_a_directory path)
      | Some node ->
          (* one vectored request for the whole file *)
          let got = Block_device.read_vec fs.dev node.blocks in
          let buf = Buffer.create node.size in
          List.iter
            (fun b -> Buffer.add_string buf (List.assoc b got))
            node.blocks;
          Ok (Buffer.sub buf 0 node.size))

let append_file fs path data =
  match read_file fs path with
  | Ok existing -> write_file fs path (existing ^ data)
  | Error (Not_found _) -> write_file fs path data
  | Error e -> Error e

let delete ?(secure = false) fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, None) -> Error (Not_found path)
  | Ok (_, "", Some _) -> Error (Invalid_path path) (* refuse to delete root *)
  | Ok (parent, name, Some ino) -> (
      match find_inode fs ino with
      | None -> Error (Not_found path)
      | Some node when node.is_dir && node.entries <> [] ->
          Error (Directory_not_empty path)
      | Some _ ->
          log_and_apply fs (Op_delete { parent; name; ino; secure });
          Ok ())

(* is [ino] inside the subtree rooted at [root]? (guards rename cycles) *)
let rec in_subtree fs ~root ino =
  ino = root
  ||
  match find_inode fs root with
  | Some node when node.is_dir ->
      List.exists (fun (_, child) -> in_subtree fs ~root:child ino) node.entries
  | _ -> false

let rename fs src dst =
  match resolve fs src with
  | Error e -> Error e
  | Ok (_, _, None) -> Error (Not_found src)
  | Ok (_, "", Some _) -> Error (Invalid_path src)
  | Ok (src_parent, src_name, Some src_ino) -> (
      match resolve fs dst with
      | Error e -> Error e
      | Ok (_, "", _) -> Error (Invalid_path dst)
      | Ok (dst_parent, dst_name, existing) -> (
          match existing with
          | Some _ -> Error (Already_exists dst)
          | None ->
              if in_subtree fs ~root:src_ino dst_parent then
                (* moving a directory into its own subtree would orphan it *)
                Error (Invalid_path dst)
              else begin
                log_and_apply fs
                  (Op_rename { src_parent; src_name; dst_parent; dst_name });
                Ok ()
              end))

let list_dir fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, None) -> Error (Not_found path)
  | Ok (_, _, Some ino) -> (
      match find_inode fs ino with
      | Some node when node.is_dir -> Ok (List.map fst node.entries)
      | Some _ -> Error (Not_a_directory path)
      | None -> Error (Not_found path))

let stat fs path =
  match resolve fs path with
  | Error e -> Error e
  | Ok (_, _, None) -> Error (Not_found path)
  | Ok (_, _, Some ino) -> (
      match find_inode fs ino with
      | None -> Error (Not_found path)
      | Some node ->
          Ok { inode = ino; is_dir = node.is_dir; size = node.size; mtime = node.mtime })

let exists fs path =
  match resolve fs path with Ok (_, _, Some _) -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* durability & introspection                                         *)

let scrub_journal fs = Journal_ring.scrub fs.ring

let crash_and_remount fs = mount fs.dev

let journal_stats fs =
  let records, bytes = Journal_ring.live fs.ring in
  let blocks = if bytes = 0 then 0 else ((bytes - 1) / block_size fs) + 1 in
  (records, blocks)

let fsck fs =
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* every directory entry points to a live inode *)
  Hashtbl.iter
    (fun ino node ->
      if node.is_dir then
        List.iter
          (fun (name, child) ->
            if not (Hashtbl.mem fs.inodes child) then
              note "dangling entry %s in inode %d -> %d" name ino child)
          node.entries)
    fs.inodes;
  (* block ownership: unique, allocated, within data region *)
  let owners = Hashtbl.create 64 in
  Hashtbl.iter
    (fun ino node ->
      List.iter
        (fun b ->
          if b < fs.data_start then note "inode %d owns non-data block %d" ino b
          else begin
            if fs.free.(b - fs.data_start) then
              note "inode %d owns free block %d" ino b;
            match Hashtbl.find_opt owners b with
            | Some other -> note "block %d owned by inodes %d and %d" b other ino
            | None -> Hashtbl.replace owners b ino
          end)
        node.blocks)
    fs.inodes;
  (* sizes consistent with block counts *)
  Hashtbl.iter
    (fun ino node ->
      if not node.is_dir then begin
        let needed = blocks_needed fs node.size in
        if List.length node.blocks <> needed then
          note "inode %d size %d expects %d blocks, has %d" ino node.size needed
            (List.length node.blocks)
      end)
    fs.inodes;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)
