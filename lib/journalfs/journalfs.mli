(** A conventional file-based filesystem with data journaling.

    This is the substrate of the Fig-2 baseline and rgpdOS's "second
    filesystem" for non-personal data.  It deliberately reproduces the two
    properties the paper's introduction criticises in traditional
    filesystems:

    - {b coarse granularity}: files are opaque byte strings; the FS has no
      notion of typed personal-data pieces;
    - {b journal retention}: in data-journaling mode (ext3's
      [data=journal]) every write — including writes of personal data — is
      first copied into the on-device journal ring, where it survives the
      logical deletion of the file until enough later traffic laps the
      ring.  A DB engine running above this FS can "delete" a subject and
      still leave their data recoverable from the medium, which is the
      right-to-be-forgotten violation measured by experiment E3.

    The implementation is a real (simulated-device-backed) filesystem:
    hierarchical directories, an inode table, a block allocator, a journal
    with crash recovery, and durable metadata checkpoints. *)

type t

type error =
  | Not_found of string
  | Already_exists of string
  | Not_a_directory of string
  | Is_a_directory of string
  | Directory_not_empty of string
  | No_space
  | Invalid_path of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type stat = {
  inode : int;
  is_dir : bool;
  size : int;
  mtime : Rgpdos_util.Clock.ns;
}

val format : Rgpdos_block.Block_device.t -> journal_blocks:int -> t
(** [format dev ~journal_blocks] writes a fresh filesystem.  The journal
    occupies [journal_blocks] device blocks used as a ring. *)

val mount : Rgpdos_block.Block_device.t -> (t, string) result
(** Mount an existing filesystem: load the last metadata checkpoint and
    replay any journal records written after it (crash recovery).  Journal
    damage does not fail the mount: replay stops at the first bad frame and
    the outcome is reported by {!replay_report}/{!replay_warning}. *)

val device : t -> Rgpdos_block.Block_device.t

val replay_report : t -> Rgpdos_block.Journal_ring.replay_summary option
(** The mount-time journal replay summary — how many records were applied
    and why replay stopped.  [None] on a freshly formatted filesystem. *)

val replay_warning : t -> string option
(** Set when a correctly framed journal record failed to decode as an
    operation during mount-time replay (application stopped there). *)

(** {1 Namespace operations} *)

val mkdir : t -> string -> (unit, error) result
val create : t -> string -> (unit, error) result
(** Create an empty regular file. *)

val write_file : t -> string -> string -> (unit, error) result
(** Replace the file's contents (creating it if absent).  Data goes through
    the journal first, then to in-place data blocks. *)

val append_file : t -> string -> string -> (unit, error) result
val read_file : t -> string -> (string, error) result

val delete : ?secure:bool -> t -> string -> (unit, error) result
(** Remove a file.  With [~secure:true] the data blocks are zeroed before
    being freed — but, as on a real journaling FS, the journal copies of
    past writes are {i not} scrubbed.  Directories must be empty. *)

val rename : t -> string -> string -> (unit, error) result
val list_dir : t -> string -> (string list, error) result
val stat : t -> string -> (stat, error) result
val exists : t -> string -> bool

(** {1 Durability} *)

val checkpoint : t -> unit
(** Flush metadata to the device and advance the journal tail.  Checkpointed
    journal blocks are {i not} zeroed (they are merely eligible for reuse),
    matching real journal behaviour. *)

val scrub_journal : t -> unit
(** Zero all journal blocks not holding live (un-checkpointed) records.
    This is the remediation a GDPR-aware FS would need; exposed so
    experiments can quantify its cost. *)

val crash_and_remount : t -> (t, string) result
(** Simulate a power failure: discard all in-memory state and [mount] the
    device again.  Returns the recovered filesystem. *)

(** {1 Introspection} *)

val journal_stats : t -> int * int
(** [(live_records, journal_blocks_in_use)]. *)

val fsck : t -> (unit, string list) result
(** Consistency check: every directory entry points to a live inode, every
    allocated block is owned by exactly one inode or the journal, sizes
    match.  Returns the list of inconsistencies if any. *)
