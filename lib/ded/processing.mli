(** Data-processing definitions: a {i purpose} plus its {i implementation}
    (the paper calls the pair a "data processing").

    Implementations are OCaml closures, standing in for the arbitrary-
    language functions of §2 ("functions can be implemented in any
    programming language").  A closure receives a sandbox context — its
    only window to the outside world — and the view-projected PD records
    the DED fetched for it.  Attempting a denied syscall through the
    context aborts the processing, exactly as seccomp would kill the
    process. *)

module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record

type pd_input = {
  pd_id : string;
  subject : string;
  record : Record.t;  (** already projected to the consented view *)
}

(** The sandbox an implementation runs inside. *)
type context = {
  syscall : Rgpdos_kernel.Syscall.t -> (unit, string) result;
      (** the simulated syscall trap; denied calls return [Error] and the
          DED aborts the processing *)
  now : unit -> Rgpdos_util.Clock.ns;
  log : string -> unit;  (** public (non-PD) log line, via Sys_log_public *)
}

type output = {
  value : Value.t option;  (** non-PD scalar result returned to the caller *)
  produced : (string * string * Record.t) list;
      (** new PD to store: (type_name, subject, record) *)
}

val no_output : output
val value_output : Value.t -> output

type impl = context -> pd_input list -> (output, string) result

type reduce = Value.t option list -> Value.t option
(** Merge the scalar results of per-shard executions (in shard order)
    into the value a whole-list execution would have produced. *)

type spec = {
  name : string;
  purpose : Rgpdos_lang.Ast.purpose_decl option;
      (** [None] models a function submitted without a purpose — the
          Processing Store must reject it *)
  touches : (string * string list) list;
      (** static access footprint: (type, fields) the implementation
          reads.  PS checks it against the declared purpose. *)
  cpu_cost_per_record : Rgpdos_util.Clock.ns;
      (** simulated compute per input record *)
  body : impl;
  shard_reduce : reduce option;
      (** [Some reduce] declares the body {i pure over its footprint} and
          record-wise decomposable: running it on disjoint shards of the
          input and combining the shard values with [reduce] (and
          concatenating [produced] in shard order) is equivalent to one
          whole-list run.  The DED then executes [ded_execute] in
          parallel over record shards and charges the critical path
          instead of the sum.  [None] (the default) keeps the body
          sequential — the only safe choice for bodies with cross-record
          state. *)
}

val make :
  name:string ->
  ?purpose:Rgpdos_lang.Ast.purpose_decl ->
  ?touches:(string * string list) list ->
  ?cpu_cost_per_record:Rgpdos_util.Clock.ns ->
  ?shard_reduce:reduce ->
  impl ->
  spec
(** Defaults: no footprint, 10us of compute per record, sequential
    (no [shard_reduce]). *)

val reduce_int_sum : reduce
(** Sum [VInt] shard values; [None] if no shard returned one.  The right
    reduce for counting/aggregating readers. *)

val reduce_first : reduce
(** First [Some] value in shard order ([None] if all are [None]). *)

val purpose_name : spec -> string option
