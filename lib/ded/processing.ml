module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record

type pd_input = { pd_id : string; subject : string; record : Record.t }

type context = {
  syscall : Rgpdos_kernel.Syscall.t -> (unit, string) result;
  now : unit -> Rgpdos_util.Clock.ns;
  log : string -> unit;
}

type output = {
  value : Value.t option;
  produced : (string * string * Record.t) list;
}

let no_output = { value = None; produced = [] }

let value_output v = { value = Some v; produced = [] }

type impl = context -> pd_input list -> (output, string) result

type spec = {
  name : string;
  purpose : Rgpdos_lang.Ast.purpose_decl option;
  touches : (string * string list) list;
  cpu_cost_per_record : Rgpdos_util.Clock.ns;
  body : impl;
}

let make ~name ?purpose ?(touches = []) ?(cpu_cost_per_record = 10_000) body =
  { name; purpose; touches; cpu_cost_per_record; body }

let purpose_name spec =
  Option.map (fun p -> p.Rgpdos_lang.Ast.p_name) spec.purpose
