module Value = Rgpdos_dbfs.Value
module Record = Rgpdos_dbfs.Record

type pd_input = { pd_id : string; subject : string; record : Record.t }

type context = {
  syscall : Rgpdos_kernel.Syscall.t -> (unit, string) result;
  now : unit -> Rgpdos_util.Clock.ns;
  log : string -> unit;
}

type output = {
  value : Value.t option;
  produced : (string * string * Record.t) list;
}

let no_output = { value = None; produced = [] }

let value_output v = { value = Some v; produced = [] }

type impl = context -> pd_input list -> (output, string) result

type reduce = Value.t option list -> Value.t option

type spec = {
  name : string;
  purpose : Rgpdos_lang.Ast.purpose_decl option;
  touches : (string * string list) list;
  cpu_cost_per_record : Rgpdos_util.Clock.ns;
  body : impl;
  shard_reduce : reduce option;
}

let make ~name ?purpose ?(touches = []) ?(cpu_cost_per_record = 10_000)
    ?shard_reduce body =
  { name; purpose; touches; cpu_cost_per_record; body; shard_reduce }

let reduce_int_sum values =
  let ints =
    List.filter_map
      (function Some (Value.VInt n) -> Some n | _ -> None)
      values
  in
  match ints with
  | [] -> None
  | _ -> Some (Value.VInt (List.fold_left ( + ) 0 ints))

let reduce_first values =
  List.fold_left
    (fun acc v -> match acc with Some _ -> acc | None -> v)
    None values

let purpose_name spec =
  Option.map (fun p -> p.Rgpdos_lang.Ast.p_name) spec.purpose
