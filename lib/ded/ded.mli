(** The Data Execution Domain (§2): the only component that touches DBFS.

    rgpdOS reverses the usual power balance: instead of a process pulling
    PD into its address space, the function runs {i inside the PD's
    domain}.  A DED instance executes one data processing through eight
    named steps:

    + [ded_type2req] — translate the input parameter (a PD type or
      explicit references) into DBFS requests;
    + [ded_load_membrane] — fetch only the membranes;
    + [ded_filter] — keep the PD whose membrane approves this purpose now;
    + [ded_load_data] — fetch records for the survivors, projected to the
      consented view (data minimisation);
    + [ded_execute] — run the implementation inside the seccomp sandbox;
    + [ded_build_membrane] — wrap any produced PD in a fresh membrane;
    + [ded_store] — store produced PD in DBFS;
    + [ded_return] — return non-PD values and {i references} to PD — raw
      records never cross back to the caller.

    Every step's simulated cost is recorded, which experiment E1 reports
    as the pipeline breakdown. *)

type target =
  | All_of_type of string       (** process every PD of a type *)
  | Pd_refs of string list      (** process specific PD references *)
  | Selection of string * Rgpdos_dbfs.Query.t
      (** process the PD of a type matching a predicate.  The predicate is
          evaluated {i after} membrane filtering and view projection, so a
          selection can never observe fields the purpose may not see. *)

(** How stages 2-4 fetch from DBFS.  [Two_phase] is the paper's design:
    membranes first, data only for PD whose membrane granted access.
    [Single_phase] is the ablation: membrane and record fetched together,
    as a conventional engine would — faster when almost everything is
    granted, but it *reads* PD that consents then refuse (the [overread]
    counter), which the paper's architecture exists to prevent. *)
type fetch_mode = Two_phase | Single_phase

(** Where the DED instance executes (§3(3)): on the host CPU, with
    Processing-in-Memory (UPMEM-style DPUs), or with Processing-in-Storage.
    The cost model: the host pays a per-record DMA transfer to bring data
    up the hierarchy but has the fastest cores; PIM/PIS avoid the transfer
    and run on progressively slower near-data cores.  Crossover depends on
    the processing's compute intensity (ablation A2). *)
type location = Host | Pim | Pis

type outcome = {
  value : Rgpdos_dbfs.Value.t option;   (** non-PD result *)
  produced_refs : string list;          (** references to newly stored PD *)
  consumed : int;                       (** PD records actually processed *)
  filtered : int;                       (** PD refused by their membranes *)
  overread : int;
      (** records fetched from DBFS despite a refusing membrane — always 0
          in [Two_phase] mode *)
  stage_ns : (string * Rgpdos_util.Clock.ns) list;
      (** simulated nanoseconds per pipeline stage, in stage order *)
}

type error =
  | Unknown_type of string
  | Syscall_violation of string   (** sandbox killed the processing *)
  | Implementation_error of string
  | Storage_error of string
  | No_purpose of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t

val create :
  clock:Rgpdos_util.Clock.t ->
  dbfs:Rgpdos_dbfs.Dbfs.t ->
  audit:Rgpdos_audit.Audit_log.t ->
  unit ->
  t
(** One [t] per machine; each [execute] call instantiates a fresh logical
    DED (the paper's "PS instantiates a DED" on every invoke). *)

val actor : string
(** The actor string DBFS sees for DED accesses: ["ded"]. *)

val measurement : Processing.spec -> string
(** SGX-style enclave measurement of a data processing: a SHA-256 digest
    over the processing's identity (name, purpose text, declared
    footprint).  Recorded in the audit chain on every execution so a
    regulator can verify {i which} code ran against the PD. *)

val location_cores : location -> int
(** Cores the [ded_execute] stage may fan out over at each location:
    [Host] has few fast cores (8), [Pim] many slow DPUs (64), [Pis] an
    intermediate array (16).  Together with {!execute_multiplier}'s
    per-core slowdown this makes the A2 placement crossover a function
    of parallelism (§3(3)). *)

val execute_multiplier : location -> int
(** Per-core slowdown of [ded_execute] at each location (Host 1×,
    Pim 2×, Pis 4×). *)

val cost_filter_per_membrane : Rgpdos_util.Clock.ns
(** Simulated cost [ded_filter] charges per membrane examined (the stage
    is linear in the selection size, not flat). *)

val cost_spawn_per_shard : Rgpdos_util.Clock.ns
(** Simulated overhead charged per shard spawned by a parallel
    [ded_execute]. *)

val default_grain : int
(** Records per shard in preemptible ([?yield]) execution (64). *)

val execute :
  t ->
  ?fetch_mode:fetch_mode ->
  ?location:location ->
  ?cores:int ->
  ?pool:Rgpdos_util.Pool.t ->
  ?grain:int ->
  ?yield:(unit -> unit) ->
  ?channel:int ->
  processing:Processing.spec ->
  target:target ->
  unit ->
  (outcome, error) result
(** Run the eight-step pipeline (default [Two_phase], [Host]).  The processing
    must have a purpose (enforced again here, defence in depth — PS
    already rejects purposeless functions).

    When the processing declares [shard_reduce] and [cores > 1] (default:
    [location_cores location]), the [ded_execute] stage splits the
    granted records into at most [cores] contiguous shards, runs the
    body once per shard, and charges simulated time as the {b critical
    path} — [cost_spawn_per_shard * shards + cost of the longest shard]
    — instead of the sum.  [?pool] additionally runs the shards on real
    domains, which changes host wall-clock time only: outcomes, filter /
    overread counters, audit verdicts and the virtual clock are
    identical with or without a pool, and (for honestly-declared
    [shard_reduce]) identical to the sequential [~cores:1] run.

    [?yield] makes a shard-decomposable [ded_execute] {b cooperatively
    preemptible}: the granted records split into bounded shards of
    [?grain] records ({!default_grain} by default) instead of [cores]
    balanced chunks, shards execute in waves of [cores], each wave
    charges its own critical path ([cost_spawn_per_shard] per shard +
    longest shard in the wave), and [yield ()] runs {i between waves} —
    the shard-boundary pause point where a deadline scheduler serves
    rights requests.  Preemption is sound exactly here because stages
    1-4 already materialised the scan's membranes and projected records:
    whatever the yield callback mutates (an erasure, a consent flip) is
    invisible to the in-flight shards, so outcomes and merge order stay
    deterministic and pool-vs-inline equivalence holds wave by wave.
    A processing without [shard_reduce] ignores [?yield] (a body with
    cross-record state cannot be paused mid-scan).  The shard values
    seen by [reduce] differ in count (more, smaller shards), which is
    observationally equivalent for an honestly-declared decomposable
    reduce.

    [?channel] (default 0) names the async submission channel the load
    stages use on an async {!Block_device}: stage 2/4 batch fetches are
    pipelined so decode of one chunk overlaps the device service of the
    next, and concurrent [execute] calls on distinct channels queue
    independently (each DED shard gets its own).  On a synchronous
    device the parameter is inert. *)

(** {1 Built-in functions} ([F_pd^w], provided by rgpdOS itself) *)

val builtin_acquire :
  t ->
  type_name:string ->
  subject:string ->
  interface:string ->
  record:Rgpdos_dbfs.Record.t ->
  ?consents:(string * Rgpdos_membrane.Membrane.consent_scope) list ->
  unit ->
  (string, error) result
(** Data collection: wrap the collected record in a membrane built from the
    schema's defaults (overridable by the subject's explicit [consents])
    and store it.  Returns the new PD reference. *)

val builtin_update :
  t -> pd_id:string -> Rgpdos_dbfs.Record.t -> (unit, error) result

val builtin_copy : t -> pd_id:string -> (string, error) result

val builtin_delete : t -> pd_id:string -> (unit, error) result
(** Physical deletion (zeroing). *)

val builtin_crypto_erase :
  t -> pd_id:string -> seal:(Rgpdos_dbfs.Record.t -> string) ->
  (unit, error) result
(** Right-to-be-forgotten erasure: replace the record with an
    authority-sealed envelope and withdraw every consent on the membrane. *)
