module Clock = Rgpdos_util.Clock
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Record = Rgpdos_dbfs.Record
module Value = Rgpdos_dbfs.Value
module Membrane = Rgpdos_membrane.Membrane
module Syscall = Rgpdos_kernel.Syscall
module Audit_log = Rgpdos_audit.Audit_log

module Query = Rgpdos_dbfs.Query

type target =
  | All_of_type of string
  | Pd_refs of string list
  | Selection of string * Query.t

type fetch_mode = Two_phase | Single_phase

type location = Host | Pim | Pis

type outcome = {
  value : Value.t option;
  produced_refs : string list;
  consumed : int;
  filtered : int;
  overread : int;
  stage_ns : (string * Clock.ns) list;
}

type error =
  | Unknown_type of string
  | Syscall_violation of string
  | Implementation_error of string
  | Storage_error of string
  | No_purpose of string

let pp_error fmt = function
  | Unknown_type n -> Format.fprintf fmt "unknown PD type %s" n
  | Syscall_violation m -> Format.fprintf fmt "sandbox violation: %s" m
  | Implementation_error m -> Format.fprintf fmt "implementation error: %s" m
  | Storage_error m -> Format.fprintf fmt "storage error: %s" m
  | No_purpose n -> Format.fprintf fmt "processing %s has no purpose" n

let error_to_string e = Format.asprintf "%a" pp_error e

type t = { clock : Clock.t; dbfs : Dbfs.t; audit : Audit_log.t }

let actor = "ded"

let create ~clock ~dbfs ~audit () = { clock; dbfs; audit }

let measurement (spec : Processing.spec) =
  let purpose_text =
    match spec.Processing.purpose with
    | None -> "<none>"
    | Some p ->
        p.Rgpdos_lang.Ast.p_name ^ "|" ^ p.Rgpdos_lang.Ast.p_description
  in
  let footprint =
    String.concat ";"
      (List.map
         (fun (ty, fields) -> ty ^ ":" ^ String.concat "," fields)
         spec.Processing.touches)
  in
  Rgpdos_crypto.Sha256.hexdigest
    (spec.Processing.name ^ "|" ^ purpose_text ^ "|" ^ footprint)

(* fixed CPU costs of the pipeline machinery itself (IO costs are charged
   by the block device underneath DBFS) *)
let cost_type2req = 1_000

(* §3(3) placement cost model: the host pays a DMA transfer per record to
   move PD up the memory hierarchy; near-data locations avoid it but have
   slower cores. *)
let host_transfer_per_record = 2_000

let execute_multiplier = function Host -> 1 | Pim -> 2 | Pis -> 4

let location_transfer = function
  | Host -> host_transfer_per_record
  | Pim | Pis -> 0
let cost_filter_per_membrane = 300
let cost_build_membrane = 500
let cost_return = 200

(* Parallel ded_execute (§3(3)): shardable processings fan out over the
   location's cores.  Host has few fast cores; PIM exposes many slow
   DPUs; PIS sits in between — so the A2 crossover is a function of
   parallelism, not just the per-core multiplier. *)
let location_cores = function Host -> 8 | Pim -> 64 | Pis -> 16
let cost_spawn_per_shard = 500

(* records per shard when a cooperative [?yield] makes ded_execute
   preemptible: small enough that a rights request waits at most one
   wave of shards, large enough that spawn overhead stays negligible *)
let default_grain = 64

let storage e = Error (Storage_error (Dbfs.error_to_string e))

let ( let** ) r f = match r with Error e -> Error e | Ok v -> f v

let lift r = match r with Ok v -> Ok v | Error e -> storage e

(* Best-effort exfiltration check on the scalar returned to the caller:
   the value must not verbatim reproduce a PD field it was shown.  (The
   structural guarantee is that records themselves never cross the
   boundary; this catches the lazy leak of copying a field into the
   return value.) *)
let value_leaks inputs value =
  match value with
  | Some (Value.VString s) when s <> "" ->
      List.exists
        (fun (input : Processing.pd_input) ->
          List.exists
            (fun (_, v) ->
              match v with Value.VString s' -> String.equal s s' | _ -> false)
            input.record)
        inputs
  | _ -> false

let execute t ?(fetch_mode = Two_phase) ?(location = Host) ?cores ?pool ?grain
    ?yield ?(channel = 0) ~processing ~target () =
  let open Processing in
  let cores =
    match cores with Some c -> max 1 c | None -> location_cores location
  in
  match processing.purpose with
  | None -> Error (No_purpose processing.name)
  | Some purpose -> (
      let purpose_name = purpose.Rgpdos_lang.Ast.p_name in
      let stages = ref [] in
      let staged name f =
        let before = Clock.now t.clock in
        let result = f () in
        stages := (name, Clock.now t.clock - before) :: !stages;
        result
      in
      (* 1. ded_type2req *)
      let** refs =
        staged "ded_type2req" (fun () ->
            Clock.advance t.clock cost_type2req;
            match target with
            | Pd_refs refs -> Ok refs
            | All_of_type ty -> lift (Dbfs.list_pds t.dbfs ~actor ty)
            | Selection (ty, pred) when Query.monotone pred ->
                (* Predicate pushdown: let DBFS prune the selection with
                   its secondary indexes.  Sound only for Not-free
                   predicates — stage 5 re-evaluates on the PROJECTED
                   record (fail closed), and for a monotone predicate
                   raw-record truth is implied by projected-record truth,
                   so index pruning on raw records never drops a pd the
                   residual filter would keep.  A [Not] breaks that
                   implication, so those selections keep the full scan. *)
                lift (Dbfs.select t.dbfs ~actor ~channel ty pred)
            | Selection (ty, _) -> lift (Dbfs.list_pds t.dbfs ~actor ty))
      in
      (* 2. ded_load_membrane — under Single_phase (the ablation mode) the
         record is fetched together with its membrane, before the filter
         has spoken *)
      let** loaded =
        let stage_name =
          match fetch_mode with
          | Two_phase -> "ded_load_membrane"
          | Single_phase -> "ded_load_membrane+data"
        in
        staged stage_name (fun () ->
            (* one vectored request for the whole selection's membranes *)
            let** membranes = lift (Dbfs.get_membranes t.dbfs ~actor ~channel refs) in
            match fetch_mode with
            | Two_phase ->
                Ok (List.map (fun (pd_id, m) -> (pd_id, m, None)) membranes)
            | Single_phase ->
                (* the ablation fetches the records alongside, before the
                   filter has spoken (erased pds come back as None) *)
                let** records = lift (Dbfs.get_records t.dbfs ~actor ~channel refs) in
                Ok
                  (List.map2
                     (fun (pd_id, m) (_, r) -> (pd_id, m, r))
                     membranes records))
      in
      (* 3. ded_filter *)
      let now = Clock.now t.clock in
      let granted, filtered_out =
        staged "ded_filter" (fun () ->
            Clock.advance t.clock
              (cost_filter_per_membrane * List.length loaded);
            List.partition_map
              (fun (pd_id, m, prefetched) ->
                match Membrane.decide m ~purpose:purpose_name ~now with
                | Membrane.Granted scope -> Left (pd_id, m, scope, prefetched)
                | Membrane.Refused reason -> Right (pd_id, reason, prefetched))
              loaded)
      in
      (* records fetched before their membrane refused: the privacy cost
         the paper's two-phase design exists to avoid *)
      let overread =
        List.length
          (List.filter (fun (_, _, prefetched) -> prefetched <> None) filtered_out)
      in
      List.iter
        (fun (pd_id, reason, _) ->
          ignore
            (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
               (Audit_log.Filtered_out
                  { purpose = purpose_name; pd_id; reason })))
        filtered_out;
      (* 4. ded_load_data (Two_phase) / projection only (Single_phase) *)
      let** inputs =
        let stage_name =
          match fetch_mode with
          | Two_phase -> "ded_load_data"
          | Single_phase -> "ded_project"
        in
        staged stage_name (fun () ->
            (* one vectored request for every record the filter granted;
               erased pds come back as None and silently drop out *)
            let need =
              List.filter_map
                (fun (pd_id, _, _, prefetched) ->
                  if prefetched = None then Some pd_id else None)
                granted
            in
            let** fetched = lift (Dbfs.get_records t.dbfs ~actor ~channel need) in
            let by_id = Hashtbl.create (max 16 (2 * List.length fetched)) in
            List.iter (fun (pd_id, r) -> Hashtbl.replace by_id pd_id r) fetched;
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (pd_id, m, scope, prefetched) :: rest -> (
                  let record_opt =
                    match prefetched with
                    | Some record -> Some record
                    | None -> Hashtbl.find by_id pd_id
                  in
                  match record_opt with
                  | None -> go acc rest
                  | Some record -> (
                      match Dbfs.schema t.dbfs ~actor m.Membrane.type_name with
                      | Error e -> storage e
                      | Ok schema ->
                          let visible = Schema.view_fields schema scope in
                          let projected = Record.project record visible in
                          go
                            ({
                               pd_id;
                               subject = m.Membrane.subject_id;
                               record = projected;
                             }
                            :: acc)
                            rest))
            in
            go [] granted)
      in
      Clock.advance t.clock (location_transfer location * List.length inputs);
      (* selection predicates run on the PROJECTED records: a field the
         purpose may not see can never match (fails closed) *)
      let inputs =
        match target with
        | All_of_type _ | Pd_refs _ -> inputs
        | Selection (_, pred) ->
            Clock.advance t.clock (100 * List.length inputs);
            List.filter
              (fun (i : Processing.pd_input) -> Query.eval pred i.record)
              inputs
      in
      (* 5. ded_execute, inside the seccomp sandbox.  Each (potential)
         shard gets its own violation cell and sandbox context so a pool
         worker never writes state another shard reads; violations merge
         deterministically in shard order afterwards. *)
      let violation = ref None in
      let policy = Syscall.Policy.fpd_reader_policy in
      let sandbox_context cell =
        {
          syscall =
            (fun sc ->
              match Syscall.Policy.check policy sc with
              | Ok () -> Ok ()
              | Error msg ->
                  if !cell = None then cell := Some msg;
                  Error msg);
          now = (fun () -> Clock.now t.clock);
          log = (fun _line -> ());
        }
      in
      let run_body cell shard_inputs =
        match processing.body (sandbox_context cell) shard_inputs with
        | exception exn -> Error (Implementation_error (Printexc.to_string exn))
        | Error msg -> Error (Implementation_error msg)
        | Ok out -> Ok out
      in
      let n_inputs = List.length inputs in
      let mult = execute_multiplier location in
      let** out =
        staged "ded_execute" (fun () ->
            match processing.shard_reduce with
            | Some reduce when cores > 1 && n_inputs > 1 ->
                let input_arr = Array.of_list inputs in
                let bounds =
                  match yield with
                  | None ->
                      (* non-preemptible: one wave of at most [cores]
                         balanced shards (the pre-yield behaviour) *)
                      Rgpdos_util.Pool.chunks ~items:n_inputs ~chunks:cores
                  | Some _ ->
                      (* preemptible: bounded-size shards executed in
                         waves of [cores], a yield point between waves *)
                      let g = max 1 (Option.value ~default:default_grain grain) in
                      let nshards = (n_inputs + g - 1) / g in
                      Array.init nshards (fun i ->
                          (i * g, min g (n_inputs - (i * g))))
                in
                let nshards = Array.length bounds in
                let cells = Array.map (fun _ -> ref None) bounds in
                let run_shard i =
                  let off, len = bounds.(i) in
                  let shard_inputs =
                    Array.to_list (Array.sub input_arr off len)
                  in
                  run_body cells.(i) shard_inputs
                in
                let collected = Array.make nshards None in
                (* one wave: every shard in it spawns, the slowest shard
                   gates completion — the clock is charged the wave's
                   critical path BEFORE the bodies run, so pool and
                   inline execution observe identical simulated time *)
                let run_wave start n =
                  let longest = ref 0 in
                  for i = start to start + n - 1 do
                    let _, len = bounds.(i) in
                    if len > !longest then longest := len
                  done;
                  Clock.advance t.clock
                    ((cost_spawn_per_shard * n)
                    + (processing.cpu_cost_per_record * mult * !longest));
                  let indices = Array.init n (fun j -> start + j) in
                  let rs =
                    match pool with
                    | Some p -> Rgpdos_util.Pool.map_array p run_shard indices
                    | None -> Array.map run_shard indices
                  in
                  Array.iteri (fun j r -> collected.(start + j) <- Some r) rs
                in
                (match yield with
                | None -> run_wave 0 nshards
                | Some yield_fn ->
                    let start = ref 0 in
                    while !start < nshards do
                      let n = min cores (nshards - !start) in
                      run_wave !start n;
                      start := !start + n;
                      (* the cooperative preemption point: the caller may
                         run rights work here; the paused scan's inputs
                         were materialised in stages 1-4, so nothing the
                         yield mutates can reach the in-flight shards *)
                      if !start < nshards then yield_fn ()
                    done);
                let shard_results =
                  Array.map
                    (function Some r -> r | None -> assert false)
                    collected
                in
                (* first violation in shard order wins, matching what a
                   sequential left-to-right run would have recorded *)
                (match Array.find_map (fun c -> !c) cells with
                | Some msg -> if !violation = None then violation := Some msg
                | None -> ());
                let** outs =
                  Array.fold_left
                    (fun acc r ->
                      match (acc, r) with
                      | (Error _ as e), _ -> e
                      | Ok outs, Ok o -> Ok (o :: outs)
                      | Ok _, (Error _ as e) -> e)
                    (Ok []) shard_results
                  |> Result.map List.rev
                in
                Ok
                  {
                    value = reduce (List.map (fun o -> o.value) outs);
                    produced = List.concat_map (fun o -> o.produced) outs;
                  }
            | _ ->
                Clock.advance t.clock
                  (processing.cpu_cost_per_record * mult * n_inputs);
                run_body violation inputs)
      in
      let** () =
        match !violation with
        | Some msg ->
            ignore
              (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
                 (Audit_log.Denied { actor = processing.name; reason = msg }));
            Error (Syscall_violation msg)
        | None -> Ok ()
      in
      let** () =
        if value_leaks inputs out.value then begin
          let msg =
            Printf.sprintf "processing %s attempted to return raw PD"
              processing.name
          in
          ignore
            (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
               (Audit_log.Denied { actor = processing.name; reason = msg }));
          Error (Syscall_violation msg)
        end
        else Ok ()
      in
      (* 6+7. ded_build_membrane, ded_store *)
      let** produced_refs =
        staged "ded_build_membrane+store" (fun () ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (type_name, subject, record) :: rest -> (
                  Clock.advance t.clock cost_build_membrane;
                  match Dbfs.schema t.dbfs ~actor type_name with
                  | Error e -> storage e
                  | Ok schema -> (
                      let membrane_of ~pd_id =
                        Membrane.make ~pd_id ~type_name ~subject_id:subject
                          ~origin:Membrane.Sysadmin
                          ~consents:schema.Schema.default_consents
                          ~created_at:(Clock.now t.clock)
                          ?ttl:schema.Schema.default_ttl
                          ~sensitivity:schema.Schema.default_sensitivity ()
                      in
                      match
                        Dbfs.insert t.dbfs ~actor ~subject ~type_name ~record
                          ~membrane_of
                      with
                      | Error e -> storage e
                      | Ok pd_id -> go (pd_id :: acc) rest))
            in
            go [] out.produced)
      in
      (* 8. ded_return *)
      let consumed_ids = List.map (fun (i : Processing.pd_input) -> i.pd_id) inputs in
      ignore
        (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
           (Audit_log.Attested
              {
                processing = processing.name;
                measurement = measurement processing;
              }));
      ignore
        (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
           (Audit_log.Processed
              { purpose = purpose_name; inputs = consumed_ids; produced = produced_refs }));
      let result =
        staged "ded_return" (fun () ->
            Clock.advance t.clock cost_return;
            {
              value = out.value;
              produced_refs;
              consumed = List.length inputs;
              filtered = List.length filtered_out;
              overread;
              stage_ns = [];
            })
      in
      Ok { result with stage_ns = List.rev !stages })

(* ------------------------------------------------------------------ *)
(* built-ins                                                          *)

let builtin_acquire t ~type_name ~subject ~interface ~record ?consents () =
  match Dbfs.schema t.dbfs ~actor type_name with
  | Error e -> storage e
  | Ok schema -> (
      let consents =
        Option.value ~default:schema.Schema.default_consents consents
      in
      let membrane_of ~pd_id =
        Membrane.make ~pd_id ~type_name ~subject_id:subject
          ~origin:schema.Schema.default_origin ~consents
          ~created_at:(Clock.now t.clock) ?ttl:schema.Schema.default_ttl
          ~sensitivity:schema.Schema.default_sensitivity
          ~collection:schema.Schema.collection ()
      in
      match Dbfs.insert t.dbfs ~actor ~subject ~type_name ~record ~membrane_of with
      | Error e -> storage e
      | Ok pd_id ->
          ignore
            (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
               (Audit_log.Collected { pd_id; interface }));
          Ok pd_id)

let builtin_update t ~pd_id record =
  lift (Dbfs.update_record t.dbfs ~actor pd_id record)

let builtin_copy t ~pd_id = lift (Dbfs.copy_pd t.dbfs ~actor pd_id)

let builtin_delete t ~pd_id =
  let** () = lift (Dbfs.delete t.dbfs ~actor pd_id) in
  ignore
    (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
       (Audit_log.Erased { pd_id; mode = "physical" }));
  Ok ()

let builtin_crypto_erase t ~pd_id ~seal =
  let** membrane = lift (Dbfs.get_membrane t.dbfs ~actor pd_id) in
  let withdrawn = Membrane.withdraw_all membrane in
  let** () = lift (Dbfs.update_membrane t.dbfs ~actor pd_id withdrawn) in
  let** () = lift (Dbfs.erase_with t.dbfs ~actor pd_id ~seal) in
  ignore
    (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
       (Audit_log.Erased { pd_id; mode = "crypto" }));
  Ok ()
