(* On-device paged B+-trees, bulk-loaded at checkpoint and read one node at
   a time afterwards.

   A tree is a set of immutable pages in the DBFS metadata heap.  Leaves
   hold sorted (key, value) runs; interior nodes hold (first_key, child)
   separators.  Pages are written once by [write_tree] (bottom-up bulk
   load from a sorted stream) and never updated in place: mutations go to
   the in-memory overlay in [Index] / the DBFS entry overlay, and the next
   checkpoint rewrites the tree into the other metadata heap half.

   Every page is framed like the other on-device structures: a u32 payload
   length, the payload, and a 16-hex-char FNV checksum.  A page normally
   occupies one device block; a single oversized entry gets a multi-block
   ("fat") page.  All device access goes through an [io] record provided
   by DBFS, which layers the shared LRU page cache and warm==cold read
   charging underneath. *)

module Codec = Rgpdos_util.Codec
module Fnv = Rgpdos_util.Fnv

type io = {
  page_size : int;  (** device block size *)
  read_page : int -> int -> string;
      (** [read_page first nblocks] returns the concatenated raw bytes of a
          page (cached + charged by DBFS) *)
  prefetch_page : int -> int -> unit;
      (** [prefetch_page first nblocks] hints that the page will be read
          shortly: an async DBFS submits its device read so the service
          overlaps the decode of the page being scanned now; a no-op on
          synchronous devices *)
  write_blocks : (int * string) list -> unit;
  alloc : int -> int;
      (** [alloc nblocks] reserves a contiguous run in the metadata heap and
          returns its first block *)
}

type root = { r_block : int; r_nblocks : int }

let empty_root = { r_block = -1; r_nblocks = 0 }
let is_empty r = r.r_block < 0

exception Corrupt_page of int

(* ------------------------------------------------------------------ *)
(* page encoding                                                      *)

let leaf_tag = "PL"
let interior_tag = "PI"

type node = Leaf of (string * string) list | Interior of (string * root) list

let frame payload =
  let w = Codec.Writer.create () in
  Codec.Writer.string w payload;
  Codec.Writer.contents w ^ Fnv.hash64_hex payload

(* frame (4 + 16) + tag (4 + 2) + entry count (4) *)
let page_overhead = 30
let leaf_entry_cost k v = 8 + String.length k + String.length v
let interior_entry_cost k = 20 + String.length k

let encode_node node =
  let w = Codec.Writer.create () in
  (match node with
  | Leaf kvs ->
      Codec.Writer.string w leaf_tag;
      Codec.Writer.list w
        (fun (k, v) ->
          Codec.Writer.string w k;
          Codec.Writer.string w v)
        kvs
  | Interior children ->
      Codec.Writer.string w interior_tag;
      Codec.Writer.list w
        (fun (k, child) ->
          Codec.Writer.string w k;
          Codec.Writer.int w (child.r_block + 1);
          Codec.Writer.int w child.r_nblocks)
        children);
  Codec.Writer.contents w

let decode_node ~block raw =
  let corrupt () = raise (Corrupt_page block) in
  let ( let* ) r f = match r with Ok v -> f v | Error _ -> corrupt () in
  let r = Codec.Reader.create raw in
  let* payload = Codec.Reader.string r in
  let sumpos = 4 + String.length payload in
  if String.length raw < sumpos + 16 then corrupt ();
  if String.sub raw sumpos 16 <> Fnv.hash64_hex payload then corrupt ();
  let r = Codec.Reader.create payload in
  let* tag = Codec.Reader.string r in
  if tag = leaf_tag then
    let* kvs =
      Codec.Reader.list r (fun r ->
          let ( let* ) = Result.bind in
          let* k = Codec.Reader.string r in
          let* v = Codec.Reader.string r in
          Ok (k, v))
    in
    Leaf kvs
  else if tag = interior_tag then
    let* children =
      Codec.Reader.list r (fun r ->
          let ( let* ) = Result.bind in
          let* k = Codec.Reader.string r in
          let* b = Codec.Reader.int r in
          let* n = Codec.Reader.int r in
          Ok (k, { r_block = b - 1; r_nblocks = n }))
    in
    Interior children
  else corrupt ()

(* ------------------------------------------------------------------ *)
(* bulk load                                                          *)

let write_page io raw =
  let bs = io.page_size in
  let len = String.length raw in
  let n = max 1 ((len + bs - 1) / bs) in
  let first = io.alloc n in
  let writes =
    List.init n (fun i ->
        let off = i * bs in
        (first + i, String.sub raw off (min bs (len - off))))
  in
  io.write_blocks writes;
  { r_block = first; r_nblocks = n }

(* Greedy fill: close a page when the next entry would overflow one block.
   A single entry larger than a block gets its own fat page. *)
let pack io ~cost ~node_of ~key_of items =
  let usable = io.page_size - page_overhead in
  let flush acc group =
    match group with
    | [] -> acc
    | _ ->
        let group = List.rev group in
        let root = write_page io (frame (encode_node (node_of group))) in
        (key_of (List.hd group), root) :: acc
  in
  let rec go acc group size = function
    | [] -> List.rev (flush acc group)
    | item :: rest ->
        let c = cost item in
        if group <> [] && size + c > usable then
          go (flush acc group) [ item ] c rest
        else go acc (item :: group) (size + c) rest
  in
  go [] [] 0 items

let rec build_interior io children =
  match children with
  | [] -> empty_root
  | [ (_, r) ] -> r
  | _ ->
      build_interior io
        (pack io
           ~cost:(fun (k, _) -> interior_entry_cost k)
           ~node_of:(fun g -> Interior g)
           ~key_of:fst children)

let write_tree io items =
  build_interior io
    (pack io
       ~cost:(fun (k, v) -> leaf_entry_cost k v)
       ~node_of:(fun g -> Leaf g)
       ~key_of:fst items)

(* ------------------------------------------------------------------ *)
(* reads                                                              *)

let load io r = decode_node ~block:r.r_block (io.read_page r.r_block r.r_nblocks)

let lookup io root key =
  if is_empty root then None
  else
    let rec go r =
      match load io r with
      | Leaf kvs -> List.assoc_opt key kvs
      | Interior children ->
          let rec pick best = function
            | [] -> best
            | (k, c) :: rest -> if k <= key then pick (Some c) rest else best
          in
          (match pick None children with None -> None | Some c -> go c)
    in
    go root

exception Stopped

let iter_from ?on_corrupt io root ~lo f =
  if is_empty root then ()
  else
    let load_guarded r k =
      match load io r with
      | node -> k node
      | exception Corrupt_page b -> (
          match on_corrupt with
          | Some g -> g b (* skip the unreadable subtree *)
          | None -> raise (Corrupt_page b))
    in
    let rec go r =
      load_guarded r (function
        | Leaf kvs ->
            List.iter
              (fun (k, v) -> if k >= lo && not (f k v) then raise Stopped)
              kvs
        | Interior children ->
            (* child i covers [key_i, key_{i+1}): prune when key_{i+1} <= lo.
               Once a child is visited every later sibling is visited too
               (separator keys ascend), so prefetching the next sibling
               before descending is consumed unless the scan stops early
               inside this subtree — the lookahead overlaps the sibling's
               device read with this subtree's descent and decode. *)
            let rec walk = function
              | [] -> ()
              | [ (_, c) ] -> go c
              | (_, c) :: ((k2, c2) :: _ as rest) ->
                  if k2 > lo then begin
                    io.prefetch_page c2.r_block c2.r_nblocks;
                    go c
                  end;
                  walk rest
            in
            walk children)
    in
    try go root with Stopped -> ()

let iter_prefix ?on_corrupt io root ~prefix f =
  iter_from ?on_corrupt io root ~lo:prefix (fun k v ->
      if String.starts_with ~prefix k then (
        f k v;
        true)
      else false)

let node_blocks ?on_corrupt io root =
  if is_empty root then []
  else
    let acc = ref [] in
    let rec go r =
      acc := (r.r_block, r.r_nblocks) :: !acc;
      match load io r with
      | Leaf _ -> ()
      | Interior children -> List.iter (fun (_, c) -> go c) children
      | exception Corrupt_page b -> (
          match on_corrupt with
          | Some g -> g b
          | None -> raise (Corrupt_page b))
    in
    go root;
    List.rev !acc

(* ------------------------------------------------------------------ *)
(* root (de)serialization, for the DBFS root slot                     *)

let encode_root w r =
  Codec.Writer.int w (r.r_block + 1);
  Codec.Writer.int w r.r_nblocks

let decode_root rd =
  let ( let* ) = Result.bind in
  let* b = Codec.Reader.int rd in
  let* n = Codec.Reader.int rd in
  Ok { r_block = b - 1; r_nblocks = n }
