(* Query planner: compile a [Query.t] into index probes.

   The compiler runs over a three-point abstraction of "what candidate
   set can the indexes produce for this sub-predicate":

     Universe          — every live pd matches (True)
     Unknown           — indexes say nothing (Not, Contains, unindexed
                         field); candidates = all live pds, residual
                         filter required
     Node (n, exact)   — probe tree [n] yields a candidate superset;
                         [exact] when it is exactly the matching set

   And/Or combine pointwise: And narrows (Universe is identity, a Node
   beside an Unknown survives but loses exactness — the probe is still a
   sound superset because And can only shrink the matching set), Or
   widens (Universe absorbs, Unknown poisons — a union that misses one
   disjunct would drop matches). *)

type atom =
  | Aeq of string * Value.t
  | Alt of string * Value.t
  | Agt of string * Value.t

type node = Atom of atom | Inter of node * node | Union of node * node

type t =
  | Full_scan of { trivial : bool }
      (* trivial: predicate is [True] — every live pd matches, no record
         loads and no residual evaluation needed *)
  | Indexed of { probe : node; exact : bool }

type approx = Universe | Unknown | Node of node * bool

let compile ~indexed pred =
  let rec go = function
    | Query.True -> Universe
    | Query.Eq (f, v) -> if indexed f then Node (Atom (Aeq (f, v)), true) else Unknown
    | Query.Lt (f, v) -> if indexed f then Node (Atom (Alt (f, v)), true) else Unknown
    | Query.Gt (f, v) -> if indexed f then Node (Atom (Agt (f, v)), true) else Unknown
    | Query.Contains _ -> Unknown
    | Query.Not _ -> Unknown
    | Query.And (p, q) -> (
        match (go p, go q) with
        | Universe, x | x, Universe -> x
        | Unknown, Unknown -> Unknown
        | Node (n, _), Unknown | Unknown, Node (n, _) -> Node (n, false)
        | Node (n1, e1), Node (n2, e2) -> Node (Inter (n1, n2), e1 && e2))
    | Query.Or (p, q) -> (
        match (go p, go q) with
        | Universe, _ | _, Universe -> Universe
        | Unknown, _ | _, Unknown -> Unknown
        | Node (n1, e1), Node (n2, e2) -> Node (Union (n1, n2), e1 && e2))
  in
  match go pred with
  | Universe -> Full_scan { trivial = true }
  | Unknown -> Full_scan { trivial = false }
  | Node (probe, exact) -> Indexed { probe; exact }

let pp_atom fmt = function
  | Aeq (f, v) -> Format.fprintf fmt "eq(%s, %a)" f Value.pp v
  | Alt (f, v) -> Format.fprintf fmt "lt(%s, %a)" f Value.pp v
  | Agt (f, v) -> Format.fprintf fmt "gt(%s, %a)" f Value.pp v

let rec pp_node fmt = function
  | Atom a -> pp_atom fmt a
  | Inter (x, y) -> Format.fprintf fmt "(%a ∩ %a)" pp_node x pp_node y
  | Union (x, y) -> Format.fprintf fmt "(%a ∪ %a)" pp_node x pp_node y

let pp fmt = function
  | Full_scan { trivial = true } -> Format.pp_print_string fmt "full-scan (trivial)"
  | Full_scan { trivial = false } -> Format.pp_print_string fmt "full-scan"
  | Indexed { probe; exact } ->
      Format.fprintf fmt "probe %a%s" pp_node probe
        (if exact then " (exact)" else " + residual")

let to_string p = Format.asprintf "%a" pp p
