(* Log-structured record segments over the DBFS data region.

   The zoned data region (membrane zone / ordinary records / sensitive
   records, see dbfs.ml) is carved into fixed-size segments of
   [seg_blocks] device blocks each.  In segmented mode every payload
   extent is bump-allocated at the write pointer of the zone's single
   *open* segment, so the device sees strictly sequential appends per
   zone instead of first-fit holes.  A segment whose write pointer
   reaches the end (or that is abandoned by a remount) is *sealed*:
   nothing is ever written into it again, it can only lose liveness as
   entries are superseded, deleted or erased, until the compactor
   relocates the survivors and hands the whole segment back as *free*.

   Liveness is tracked in a per-segment live table: live blocks, live
   payload bytes, and the segment's bump pointer.  The table is derived
   state — its single source of truth is the DBFS allocation bitmap,
   which is already persisted at every checkpoint.  On a fresh mount the
   table is rebuilt lazily from the hydrated bitmap (every non-empty
   segment is sealed, its allocated blocks are its live blocks), so
   clean mounts stay O(1) and the table can never disagree with the
   bitmap after a crash.

   GDPR twist (the paper's §1 criticism inverted): freed blocks inside a
   sealed segment keep their plaintext until they are *purged*.  DBFS
   purges synchronously on every destruction op (delete / erase) and
   during compaction; a fully dead segment is reclaimed with a
   segment-granular [Block_device.trim] — modelling an SSD erase-block
   discard, which the scattered extents of the update-in-place allocator
   can never use because live neighbours share their erase block. *)

type state = S_free | S_open | S_sealed

let state_to_string = function
  | S_free -> "free"
  | S_open -> "open"
  | S_sealed -> "sealed"

type seg = {
  g_id : int;
  g_class : int; (* 0 membrane, 1 ordinary record, 2 sensitive record *)
  g_first : int; (* first device block *)
  g_nblocks : int;
  mutable g_state : state;
  mutable g_used : int; (* bump pointer, in blocks *)
  mutable g_live : int; (* live (allocated) blocks *)
  mutable g_live_bytes : int; (* live payload bytes (exact for blocks
                                 allocated this session, block-rounded
                                 for blocks inherited from the bitmap) *)
}

type t = {
  seg_blocks : int;
  zones : (int * int) array; (* per class: [lo, hi) device blocks *)
  segs : seg array;
  class_start : int array; (* first index into [segs] per class *)
  class_count : int array;
  open_seg : int option array; (* per class: index into [segs] *)
  mutable hydrated : bool;
  dirty : (int, unit) Hashtbl.t;
      (* freed-but-not-yet-purged device blocks (still holding bytes).
         An explicit set, not a counter: the purge path zeroes exactly
         these blocks, so a block is scrubbed once — a zeroed block stays
         [is_written] on the device and must never re-enter the sweep. *)
}

let num_classes = 3

let create ~seg_blocks ~zones =
  if seg_blocks <= 0 then invalid_arg "Segstore.create: seg_blocks";
  if List.length zones <> num_classes then invalid_arg "Segstore.create: zones";
  let zones = Array.of_list zones in
  let class_start = Array.make num_classes 0 in
  let class_count = Array.make num_classes 0 in
  let segs = ref [] in
  let id = ref 0 in
  Array.iteri
    (fun c (lo, hi) ->
      class_start.(c) <- !id;
      let n = (hi - lo) / seg_blocks in
      class_count.(c) <- n;
      for i = 0 to n - 1 do
        segs :=
          {
            g_id = !id + i;
            g_class = c;
            g_first = lo + (i * seg_blocks);
            g_nblocks = seg_blocks;
            g_state = S_free;
            g_used = 0;
            g_live = 0;
            g_live_bytes = 0;
          }
          :: !segs
      done;
      id := !id + n)
    zones;
  {
    seg_blocks;
    zones;
    segs = Array.of_list (List.rev !segs);
    class_start;
    class_count;
    open_seg = Array.make num_classes None;
    hydrated = false;
    dirty = Hashtbl.create 256;
  }

let hydrated t = t.hydrated

let seg_count t = Array.length t.segs

(* Segment owning a device block, or [None] for blocks outside every
   segment (zone tails smaller than a segment are never allocated in
   segmented mode). *)
let seg_of_block t b =
  let found = ref None in
  Array.iteri
    (fun c (lo, hi) ->
      if !found = None && b >= lo && b < hi then begin
        let i = (b - lo) / t.seg_blocks in
        if i < t.class_count.(c) then
          found := Some t.segs.(t.class_start.(c) + i)
      end)
    t.zones;
  !found

(* Rebuild the live table from the allocation bitmap: the bitmap is the
   persisted truth, the table is its per-segment summary.  Every segment
   holding any allocated or written block is sealed — appends after a
   remount start in a fresh segment, which is what makes the bump
   pointers trustworthy without persisting them. *)
let hydrate t ~is_free ~is_written =
  Hashtbl.reset t.dirty;
  Array.iter
    (fun g ->
      let live = ref 0 and used = ref 0 in
      for b = g.g_first to g.g_first + g.g_nblocks - 1 do
        if not (is_free b) then begin
          incr live;
          used := b - g.g_first + 1
        end
        else if is_written b then begin
          (* a pre-crash purge may already have zeroed this block; one
             redundant scrub per mount is the price of not persisting
             the dirty set *)
          Hashtbl.replace t.dirty b ();
          used := b - g.g_first + 1
        end
      done;
      g.g_live <- !live;
      g.g_live_bytes <- 0;
      g.g_used <- (if !live > 0 then g.g_nblocks else !used);
      g.g_state <- (if !live > 0 || !used > 0 then S_sealed else S_free))
    t.segs;
  Array.fill t.open_seg 0 num_classes None;
  t.hydrated <- true

let invalidate t =
  Array.iter
    (fun g ->
      g.g_state <- S_free;
      g.g_used <- 0;
      g.g_live <- 0;
      g.g_live_bytes <- 0)
    t.segs;
  Array.fill t.open_seg 0 num_classes None;
  Hashtbl.reset t.dirty;
  t.hydrated <- false

let seal t g =
  if g.g_state = S_open then begin
    g.g_state <- S_sealed;
    if t.open_seg.(g.g_class) = Some g.g_id then t.open_seg.(g.g_class) <- None
  end

let next_free_seg t cls =
  let lo = t.class_start.(cls) in
  let hi = lo + t.class_count.(cls) in
  let rec go i =
    if i >= hi then None
    else if t.segs.(i).g_state = S_free then Some t.segs.(i)
    else go (i + 1)
  in
  go lo

let free_segs t cls =
  let lo = t.class_start.(cls) in
  let n = ref 0 in
  for i = lo to lo + t.class_count.(cls) - 1 do
    if t.segs.(i).g_state = S_free then incr n
  done;
  !n

(* Bump-allocate [n] contiguous blocks in class [cls].  Only picks the
   placement — liveness accounting happens when DBFS marks the blocks
   used in the bitmap (note_alloc), so replayed journal ops and live ops
   account identically.  An extent larger than one segment takes a run
   of consecutive free segments (a "jumbo" extent) and seals them. *)
let alloc t ~cls n =
  if n = 0 then Some []
  else if n <= t.seg_blocks then begin
    let take g =
      let first = g.g_first + g.g_used in
      g.g_used <- g.g_used + n;
      if g.g_used >= g.g_nblocks then seal t g;
      Some (List.init n (fun i -> first + i))
    in
    let open_ok g = g.g_state = S_open && g.g_used + n <= g.g_nblocks in
    match t.open_seg.(cls) with
    | Some i when open_ok t.segs.(i) -> take t.segs.(i)
    | cur -> (
        (match cur with Some i -> seal t t.segs.(i) | None -> ());
        match next_free_seg t cls with
        | None -> None
        | Some g ->
            g.g_state <- S_open;
            g.g_used <- 0;
            t.open_seg.(cls) <- Some g.g_id;
            take g)
  end
  else begin
    (* jumbo: consecutive free segments covering n blocks *)
    let segs_needed = ((n - 1) / t.seg_blocks) + 1 in
    let lo = t.class_start.(cls) in
    let hi = lo + t.class_count.(cls) in
    let rec find i run =
      if i >= hi then None
      else if t.segs.(i).g_state = S_free then
        if run + 1 >= segs_needed then Some (i - run)
        else find (i + 1) (run + 1)
      else find (i + 1) 0
    in
    match find lo 0 with
    | None -> None
    | Some first_idx ->
        let first = t.segs.(first_idx).g_first in
        let remaining = ref n in
        for k = first_idx to first_idx + segs_needed - 1 do
          let g = t.segs.(k) in
          g.g_state <- S_sealed;
          g.g_used <- min !remaining g.g_nblocks;
          remaining := !remaining - g.g_used
        done;
        Some (List.init n (fun i -> first + i))
  end

(* Bitmap write-through hooks: DBFS calls these from mark_used/mark_free
   so the table tracks exactly what the bitmap records. *)

let note_alloc t b ~bytes =
  match seg_of_block t b with
  | None -> ()
  | Some g ->
      g.g_live <- g.g_live + 1;
      g.g_live_bytes <- g.g_live_bytes + bytes;
      let off = b - g.g_first + 1 in
      if off > g.g_used then g.g_used <- off;
      if g.g_state = S_free then g.g_state <- S_sealed

let note_free t b ~bytes ~written =
  match seg_of_block t b with
  | None -> ()
  | Some g ->
      g.g_live <- max 0 (g.g_live - 1);
      g.g_live_bytes <- max 0 (g.g_live_bytes - bytes);
      if written then Hashtbl.replace t.dirty b ()

let dirty_blocks t = Hashtbl.length t.dirty

let dirty_in t g =
  let hi = g.g_first + g.g_nblocks in
  Hashtbl.fold
    (fun b () acc -> if b >= g.g_first && b < hi then b :: acc else acc)
    t.dirty []
  |> List.sort compare

let clear_dirty t blocks = List.iter (Hashtbl.remove t.dirty) blocks

let take_dirty t =
  let all = Hashtbl.fold (fun b () acc -> b :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  List.sort compare all

(* Reclaim: the compactor has relocated (or dropped) every live byte and
   destroyed the segment's contents; hand it back for reuse. *)
let reclaim t g =
  g.g_state <- S_free;
  g.g_used <- 0;
  g.g_live <- 0;
  g.g_live_bytes <- 0;
  if t.open_seg.(g.g_class) = Some g.g_id then t.open_seg.(g.g_class) <- None

(* Compaction victims: sealed segments with any consumed space whose
   liveness (live blocks / bump pointer) is at or below
   [liveness_pct] — fully dead segments first (pure reclaim, no copy),
   then lowest liveness.  The open segments are never victims. *)
let victims t ~max_victims ~liveness_pct =
  let cands = ref [] in
  Array.iter
    (fun g ->
      if g.g_state = S_sealed && g.g_used > 0 then begin
        let ratio = 100.0 *. float_of_int g.g_live /. float_of_int g.g_used in
        if ratio <= liveness_pct then cands := (ratio, g) :: !cands
      end)
    t.segs;
  List.sort
    (fun (ra, a) (rb, b) -> compare (ra, a.g_id) (rb, b.g_id))
    !cands
  |> List.filteri (fun i _ -> i < max_victims)
  |> List.map snd

let iter_segs t f = Array.iter f t.segs

let live_table t =
  Array.to_list t.segs
  |> List.filter (fun g -> g.g_state <> S_free)
  |> List.map (fun g ->
         (g.g_id, state_to_string g.g_state, g.g_used, g.g_live, g.g_live_bytes))
