(** Selection predicates over PD records.

    The DED's first step "translates the processing's input parameter type
    to requests at the destination of DBFS" (§2).  Besides whole types and
    explicit references, a processing can target a {i selection} — e.g.
    patients with a given diagnosis.  Predicates are a small first-order
    language over record fields; evaluation is total (a predicate over a
    missing or differently-typed field is simply false, which makes
    selection compose safely with view projection: fields a processing may
    not see can never match). *)

type t =
  | True
  | Eq of string * Value.t       (** field = value *)
  | Lt of string * Value.t       (** field < value (ints and floats) *)
  | Gt of string * Value.t
  | Contains of string * string  (** string field contains substring *)
  | Not of t
  | And of t * t
  | Or of t * t

val eval : t -> Record.t -> bool
(** Total: missing fields and type mismatches make the atom false. *)

val fields : t -> string list
(** Field names the predicate touches (duplicates removed) — used by the
    Processing Store to include selection fields in the footprint check. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
