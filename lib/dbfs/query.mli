(** Selection predicates over PD records.

    The DED's first step "translates the processing's input parameter type
    to requests at the destination of DBFS" (§2).  Besides whole types and
    explicit references, a processing can target a {i selection} — e.g.
    patients with a given diagnosis.  Predicates are a small first-order
    language over record fields; evaluation is total (a predicate over a
    missing or differently-typed field is simply false, which makes
    selection compose safely with view projection: fields a processing may
    not see can never match). *)

type t =
  | True
  | Eq of string * Value.t       (** field = value *)
  | Lt of string * Value.t       (** field < value (ints and floats) *)
  | Gt of string * Value.t
  | Contains of string * string  (** string field contains substring *)
  | Not of t
  | And of t * t
  | Or of t * t

val eval : t -> Record.t -> bool
(** Total: missing fields and type mismatches make the atom false. *)

val numeric_cmp : Value.t -> Value.t -> int option
(** The comparison [Lt]/[Gt] evaluation uses: exact within ints and
    within floats, int/float cross-comparisons via float cast, [None] on
    non-numeric operands.  Exposed so the ordered secondary index can
    re-filter range probes with exactly the evaluator's semantics. *)

val fields : t -> string list
(** Field names the predicate touches (duplicates removed) — used by the
    Processing Store to include selection fields in the footprint check. *)

val monotone : t -> bool
(** [true] when the predicate contains no [Not].  For such predicates,
    every atom is false on a missing field, so removing fields from a
    record can only turn the predicate from true to false — i.e.
    [eval p (project r)] implies [eval p r].  This is the soundness
    condition for pruning a selection with raw-record index probes before
    the projected-record residual filter: a monotone predicate that holds
    on the projection is guaranteed to hold on the raw record, so no
    candidate the projection would accept is ever dropped. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
