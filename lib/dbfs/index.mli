(** Paged secondary indexes for DBFS.

    Three families, maintained write-through by DBFS on every
    insert/update/delete/erase/consent flip:

    - per (type, indexed field): equality and [Lt]/[Gt] range probes;
    - the subject → pd_ids index backing [Dbfs.pds_of_subject];
    - a TTL expiry min-queue (expiry instant → pd_ids) backing the
      incremental storage-limitation sweeper.

    The durable form is a set of bulk-loaded {!Pagestore} B+-trees in the
    DBFS metadata heap, read on demand node by node — attaching to them
    ({!attach}) touches no index pages at all.  Mutations go to an
    in-memory overlay which is authoritative per pd: the first mutation
    for a pd copies its base facts into the overlay (one [pdinfo] point
    lookup) and from then on the base keys for that pd are ignored.
    {!checkpoint} rewrites the trees from the merged view.

    The removal source of truth is the pd → indexed-values map (overlay
    [pd_keys], base [pdinfo] tree), so maintenance never re-decodes
    payload bytes — which keeps replay correct when old blocks have been
    zeroed or reused.  Index values never enter the journal: they live
    only in the metadata heap pages. *)

type t

val create : unit -> t
(** Empty index with no on-device base (fresh format / full rebuild). *)

(** {2 Field indexes} *)

val add_entry :
  t -> pd_id:string -> type_name:string -> indexed:string list ->
  (string * Value.t) list -> unit
(** (Re-)index a record: drops any stale keys for [pd_id] first, then
    posts each indexed field present in the record. *)

val remove_entry : t -> pd_id:string -> unit
(** Drop every field-index fact for [pd_id] (delete / erase). *)

val probe_eq :
  t -> type_name:string -> field:string -> Value.t -> string list * int
(** Candidate pd_ids whose [field] equals the value under [Value.equal]
    (floats: nan = nan, -0. = 0.), plus the simulated index bytes the
    overlay side of the probe touched (base pages are charged as node
    reads by the [Pagestore.io] provider). *)

val probe_range :
  t -> type_name:string -> field:string -> op:[ `Lt | `Gt ] -> Value.t ->
  string list * int
(** Candidate pd_ids under [Query.numeric_cmp] — walks the ordered
    structures and re-filters each distinct value with [numeric_cmp], so
    results match [Query.eval] exactly. *)

(** {2 Subject index} *)

val add_subject : t -> subject:string -> pd_id:string -> unit
val remove_subject : t -> subject:string -> pd_id:string -> unit

val subject_pds : t -> string -> string list
(** In insertion order (oldest first) — stable across remount. *)

val subject_list : t -> string list
(** Sorted; subjects whose list became empty are skipped. *)

(** {2 Expiry queue} *)

val set_expiry : t -> pd_id:string -> int option -> unit
(** [Some ns]: (re)key the pd at expiry instant [ns]
    (membrane [created_at + ttl]); [None]: remove it (no TTL). *)

val clear_expiry : t -> pd_id:string -> unit

val expired : t -> now:int -> string list
(** Non-destructive: pds whose expiry instant is [<= now], in expiry
    order.  Entries leave the queue when their pd is deleted, erased or
    re-membraned — never as a side effect of listing. *)

val expiry_size : t -> int

(** {2 Persistence} *)

type roots = {
  rt_postings : Pagestore.root;
  rt_pdinfo : Pagestore.root;
  rt_subjects : Pagestore.root;
  rt_expiry : Pagestore.root;
  rt_expiry_count : int;
  rt_max_pd : string;  (** largest pd key in the base, [""] when empty *)
}
(** Tree roots checkpointed into the DBFS root slot. *)

val empty_roots : roots

val attach : io:Pagestore.io -> roots -> t
(** Index view over checkpointed trees with an empty overlay.  Reads no
    pages — this is what makes a clean mount O(1). *)

val checkpoint : t -> io:Pagestore.io -> roots
(** Bulk-write the merged (base + overlay) view as fresh trees through
    [io] and re-base the index on them.  The overlay is retained: it
    stays authoritative for touched pds, whose facts the new base
    duplicates exactly. *)

val encode_roots : Rgpdos_util.Codec.Writer.t -> roots -> unit
val decode_roots : Rgpdos_util.Codec.Reader.t -> (roots, string) result

val node_pages : t -> (int * int) list
(** Every node page [(first_block, nblocks)] of the four base trees —
    fsck ownership checks and fault injection.  Empty without a base.
    @raise Pagestore.Corrupt_page on unreadable interior pages. *)

(** {2 Introspection — fsck and tests} *)

val dump : t -> string
(** Canonical rendering of the merged facts (sorted, order-independent):
    two indexes holding the same facts dump identically, whether the
    facts live in overlay memory or in base pages. *)

val fold_pd_keys :
  t -> (string -> string * (string * Value.t) list -> 'a -> 'a) -> 'a -> 'a

val pd_key : t -> string -> (string * (string * Value.t) list) option
val expiry_of : t -> string -> int option
val eq_postings : t -> type_name:string -> field:string -> Value.t -> string list

val unsafe_drop_posting : t -> pd_id:string -> bool
(** Test hook: silently drop [pd_id] from the posting list of its first
    indexed field, leaving the pd claiming it is indexed — the kind of
    corruption {!Dbfs.fsck} must flag.  Returns [false] when the pd has
    no indexed fields. *)
