(** Persistent secondary indexes for DBFS.

    Three families, maintained write-through by DBFS on every
    insert/update/delete/erase/consent flip and persisted with the rest
    of the metadata at checkpoint:

    - per (type, indexed field): hash posting lists for equality probes
      and an ordered value map for [Lt]/[Gt] range probes;
    - the subject → pd_ids index backing [Dbfs.pds_of_subject];
    - a TTL expiry min-queue (expiry instant → pd_ids) backing the
      incremental storage-limitation sweeper.

    The removal source of truth is [pd_keys] (pd → indexed values at
    last write), so maintenance never re-decodes payload bytes — which
    keeps replay correct when old blocks have been zeroed or reused.
    Index values never enter the journal: only the derivation roots are
    serialized ({!encode_into}) and the probe structures are rebuilt on
    {!decode_from}. *)

type t

val create : unit -> t

(** {2 Field indexes} *)

val add_entry :
  t -> pd_id:string -> type_name:string -> indexed:string list ->
  (string * Value.t) list -> unit
(** (Re-)index a record: drops any stale keys for [pd_id] first, then
    posts each indexed field present in the record. *)

val remove_entry : t -> pd_id:string -> unit
(** Drop every field-index fact for [pd_id] (delete / erase). *)

val probe_eq :
  t -> type_name:string -> field:string -> Value.t -> string list * int
(** Candidate pd_ids whose [field] equals the value under [Value.equal]
    (floats: nan = nan, -0. = 0.), plus the simulated index bytes the
    probe touched. *)

val probe_range :
  t -> type_name:string -> field:string -> op:[ `Lt | `Gt ] -> Value.t ->
  string list * int
(** Candidate pd_ids under [Query.numeric_cmp] — walks the ordered map
    on the probe side of the split and re-filters each distinct value
    with [numeric_cmp], so results match [Query.eval] exactly. *)

(** {2 Subject index} *)

val add_subject : t -> subject:string -> pd_id:string -> unit
val remove_subject : t -> subject:string -> pd_id:string -> unit

val subject_pds : t -> string -> string list
(** In insertion order (oldest first) — stable across remount. *)

val subject_list : t -> string list
(** Sorted; subjects whose list became empty are skipped. *)

(** {2 Expiry queue} *)

val set_expiry : t -> pd_id:string -> int option -> unit
(** [Some ns]: (re)key the pd at expiry instant [ns]
    (membrane [created_at + ttl]); [None]: remove it (no TTL). *)

val clear_expiry : t -> pd_id:string -> unit

val expired : t -> now:int -> string list
(** Non-destructive: pds whose expiry instant is [<= now], in expiry
    order.  Entries leave the queue when their pd is deleted, erased or
    re-membraned — never as a side effect of listing. *)

val expiry_size : t -> int

(** {2 Persistence} *)

val encode_into : Rgpdos_util.Codec.Writer.t -> t -> unit
val decode_from : Rgpdos_util.Codec.Reader.t -> (t, string) result

(** {2 Introspection — fsck and tests} *)

val dump : t -> string
(** Canonical rendering (sorted, order-independent): two indexes holding
    the same facts dump identically. *)

val fold_pd_keys :
  t -> (string -> string * (string * Value.t) list -> 'a -> 'a) -> 'a -> 'a

val pd_key : t -> string -> (string * (string * Value.t) list) option
val expiry_of : t -> string -> int option
val eq_postings : t -> type_name:string -> field:string -> Value.t -> string list

val unsafe_drop_posting : t -> pd_id:string -> bool
(** Test hook: silently drop [pd_id] from the posting list of its first
    indexed field, leaving [pd_keys] claiming it is indexed — the kind
    of corruption {!Dbfs.fsck} must flag.  Returns [false] when the pd
    has no indexed fields. *)
