(** On-device paged B+-trees, bulk-loaded at checkpoint and read one node
    at a time afterwards.

    Pages are immutable once written: mutations accumulate in in-memory
    overlays and the next checkpoint rewrites the whole tree into the
    other metadata heap half (see DESIGN.md).  All device access goes
    through the {!io} closures supplied by DBFS, which layer the shared
    LRU page cache and warm==cold read charging underneath. *)

type io = {
  page_size : int;  (** device block size *)
  read_page : int -> int -> string;
      (** [read_page first nblocks]: concatenated raw page bytes, cached and
          cost-charged by the provider *)
  prefetch_page : int -> int -> unit;
      (** hint that the page will be read shortly: an async provider
          submits the device read so its service overlaps the current
          page's decode ({!iter_from} issues it for the next sibling
          before descending); a no-op on synchronous devices *)
  write_blocks : (int * string) list -> unit;
  alloc : int -> int;
      (** [alloc nblocks] reserves a contiguous metadata-heap run and
          returns its first block *)
}

type root = { r_block : int; r_nblocks : int }
(** Location of a tree's root page; [r_block = -1] encodes the empty tree. *)

val empty_root : root
val is_empty : root -> bool

exception Corrupt_page of int
(** Raised (with the page's first block) when a page fails its checksum or
    does not parse. *)

val write_tree : io -> (string * string) list -> root
(** Bulk-load a tree from items sorted ascending by key (keys unique).
    Packs leaves greedily into single blocks (an oversized entry gets a
    multi-block page), then builds interior levels bottom-up. *)

val lookup : io -> root -> string -> string option
(** Point lookup; O(height) page reads.  @raise Corrupt_page *)

val iter_from :
  ?on_corrupt:(int -> unit) -> io -> root -> lo:string -> (string -> string -> bool) -> unit
(** In-order iteration over keys >= [lo]; the callback returns [false] to
    stop.  Subtrees entirely below [lo] are pruned.  With [on_corrupt],
    unreadable pages are reported and skipped instead of raising. *)

val iter_prefix :
  ?on_corrupt:(int -> unit) -> io -> root -> prefix:string -> (string -> string -> unit) -> unit
(** Iterate exactly the keys with the given prefix, in order. *)

val node_blocks : ?on_corrupt:(int -> unit) -> io -> root -> (int * int) list
(** Every page of the tree as [(first_block, nblocks)], root first — used
    by fsck ownership checks and fault injection. *)

val encode_root : Rgpdos_util.Codec.Writer.t -> root -> unit
val decode_root : Rgpdos_util.Codec.Reader.t -> (root, string) result
