module Block_device = Rgpdos_block.Block_device
module Journal_ring = Rgpdos_block.Journal_ring
module Clock = Rgpdos_util.Clock
module Codec = Rgpdos_util.Codec
module Fnv = Rgpdos_util.Fnv
module Stats = Rgpdos_util.Stats
module Membrane = Rgpdos_membrane.Membrane

open Rgpdos_util.Codec

type error =
  | Unknown_type of string
  | Type_exists of string
  | Unknown_pd of string
  | Membrane_mismatch of string
  | Invalid_record of string
  | Erased of string
  | No_space
  | Access_denied of string
  | Corrupt of string
  | Device_fault of string
  | Degraded of string

let pp_error fmt = function
  | Unknown_type n -> Format.fprintf fmt "unknown PD type: %s" n
  | Type_exists n -> Format.fprintf fmt "PD type already exists: %s" n
  | Unknown_pd id -> Format.fprintf fmt "unknown PD: %s" id
  | Membrane_mismatch m -> Format.fprintf fmt "membrane mismatch: %s" m
  | Invalid_record m -> Format.fprintf fmt "invalid record: %s" m
  | Erased id -> Format.fprintf fmt "PD %s has been erased" id
  | No_space -> Format.fprintf fmt "no space left in DBFS"
  | Access_denied m -> Format.fprintf fmt "access denied: %s" m
  | Corrupt m -> Format.fprintf fmt "DBFS corruption: %s" m
  | Device_fault m -> Format.fprintf fmt "device fault: %s" m
  | Degraded m -> Format.fprintf fmt "DBFS degraded (read-only): %s" m

let error_to_string e = Format.asprintf "%a" pp_error e

(* A PD entry: the pair of inodes (record + membrane) in the subject tree.
   [record_sum]/[membrane_sum] are FNV-64 checksums of the extent payload
   bytes (for an erased entry, of the sealed envelope), verified whenever
   the extent is read off the device. *)
type entry = {
  pd_id : string;
  type_name : string;
  subject : string;
  high : bool; (* allocated in the sensitive region *)
  mutable record_blocks : int list;
  mutable record_size : int;
  mutable record_sum : string;
  mutable membrane_blocks : int list;
  mutable membrane_size : int;
  mutable membrane_sum : string;
  mutable erased : bool;
}

type table = { schema : Schema.t; mutable pds_rev : string list }

type t = {
  dev : Block_device.t;
  ring : Journal_ring.t;
  journal_blocks : int;
  meta_start : int;
  meta_blocks : int;
  data_start : int;
  high_start : int; (* first block of the sensitive region *)
  tables : (string, table) Hashtbl.t;
  entries : (string, entry) Hashtbl.t;
  mutable index : Index.t;
      (* secondary indexes: per-field postings, subject -> pd_ids (the old
         in-memory subject_tree, now persisted), TTL expiry queue; mutable
         so [fsck ~repair] can swap in a from-scratch rebuild *)
  free : bool array;
  mutable next_pd : int;
  mutable hook : (actor:string -> op:string -> bool) option;
  mutable degraded : string option;
      (* Some reason => explicit degraded read-only mode: every mutation
         returns [Error (Degraded _)], reads are still served *)
  mutable replay : Journal_ring.replay_summary option;
      (* mount-time journal replay summary; None on a fresh format *)
  mutable replay_warning : string option;
      (* first journal record that framed correctly but failed to apply *)
  counters : Stats.Counter.t;
  (* Decoded read caches, keyed by pd_id.  Coherence rule: ANY mutation of
     an entry (membrane update, record update, erasure, delete — including
     journal replay) invalidates its cached value; the only population
     points are [insert] (write-through) and a read miss.  Cache hits still
     charge the full simulated device-read cost (Block_device.charge_read),
     so the experiments' stage_ns accounting is unchanged — the cache only
     removes host-side block reassembly and decoding. *)
  membrane_cache : (string, Membrane.t) Hashtbl.t;
  record_cache : (string, Record.t) Hashtbl.t;
}

let superblock_magic = "RGPDBFS1"
let meta_blocks_default = 128

(* ------------------------------------------------------------------ *)
(* guard                                                              *)

let guard t ~actor ~op =
  match t.hook with
  | None -> Ok ()
  | Some check ->
      if check ~actor ~op then Ok ()
      else begin
        Stats.Counter.incr t.counters "denials";
        Error
          (Access_denied
             (Printf.sprintf "actor %s may not perform %s on DBFS" actor op))
      end

let ( let** ) r f = match r with Error e -> Error e | Ok v -> f v

(* ------------------------------------------------------------------ *)
(* fault handling                                                     *)

(* Transient device faults get a bounded retry with exponential backoff
   charged to the virtual clock; a fault that survives every retry
   propagates as [Block_device.Faulted] to the API boundary, where write
   paths flip the store into degraded read-only mode and read paths report
   [Device_fault]. *)
let retry_limit = 3

let retry_backoff_ns = 50_000 (* 50us, doubling per attempt *)

let retrying t f =
  let rec go attempt =
    try f ()
    with Block_device.Faulted _ when attempt < retry_limit ->
      Stats.Counter.incr t.counters "fault_retries";
      Clock.advance (Block_device.clock t.dev) (retry_backoff_ns lsl attempt);
      go (attempt + 1)
  in
  go 0

let check_degraded t =
  match t.degraded with Some reason -> Error (Degraded reason) | None -> Ok ()

let enter_degraded t reason =
  if t.degraded = None then begin
    t.degraded <- Some reason;
    Stats.Counter.incr t.counters "degraded_entries"
  end;
  Error (Degraded reason)

(* API-boundary wrappers: convert an exhausted-retries device fault into a
   typed error instead of an exception.  A mutation that hits one leaves
   the store in degraded read-only mode — its in-place writes may be
   partial, and refusing further writes until [fsck ~repair] has run is
   the only honest state. *)
let protect_write t thunk =
  try thunk ()
  with Block_device.Faulted b ->
    enter_degraded t (Printf.sprintf "unrecoverable device fault on block %d" b)

let protect_read thunk =
  try thunk ()
  with Block_device.Faulted b ->
    Error (Device_fault (Printf.sprintf "block %d failed after retries" b))

(* Simulated cost of verifying an extent checksum on read, charged on
   cache hits and misses alike so the warm==cold invariant holds (~64
   bytes hashed per ns; well under 1% of the block transfer cost). *)
let charge_checksum t size =
  Clock.advance (Block_device.clock t.dev) (max 1 (size / 64))

(* ------------------------------------------------------------------ *)
(* geometry & allocation                                              *)

let block_size t = (Block_device.config t.dev).Block_device.block_size

let total_blocks t = (Block_device.config t.dev).Block_device.block_count

let blocks_needed t len = if len = 0 then 0 else ((len - 1) / block_size t) + 1

(* Data-region layout.  Membranes and records get disjoint zones so a
   whole-selection batch read of one kind covers (mostly) contiguous
   blocks: with the old interleaved allocation (record, membrane, record,
   membrane, ...) a membranes-only request had stride-2 block numbers and
   the vectored path could never merge anything.

   [data_start, rec_start)   membrane zone (one per entry, any sensitivity)
   [rec_start,  high_start)  ordinary records
   [high_start, block_count) High-sensitivity records (stored apart, §3(1))

   The split is a pure function of the device geometry, so [mount] can
   recompute it without any metadata format change. *)
let compute_rec_start ~data_start ~block_count =
  data_start + ((block_count - data_start) / 4)

(* Sensitive region: the top quarter of the record zone. *)
let compute_high_start ~data_start ~block_count =
  let rec_start = compute_rec_start ~data_start ~block_count in
  rec_start + ((block_count - rec_start) * 3 / 4)

let rec_start t =
  compute_rec_start ~data_start:t.data_start ~block_count:(total_blocks t)

type zone = Z_membrane | Z_record of bool (* high? *)

(* Zone bounds in free-array coordinates (offset by data_start). *)
let zone_bounds t = function
  | Z_membrane -> (0, rec_start t - t.data_start)
  | Z_record false -> (rec_start t - t.data_start, t.high_start - t.data_start)
  | Z_record true -> (t.high_start - t.data_start, total_blocks t - t.data_start)

(* First-fit contiguous extent of [n] free slots inside [lo, hi). *)
let find_extent t ~lo ~hi n =
  let result = ref None in
  let start = ref (-1) in
  let i = ref lo in
  while !result = None && !i < hi do
    if t.free.(!i) then begin
      if !start < 0 then start := !i;
      if !i - !start + 1 >= n then result := Some !start
    end
    else start := -1;
    incr i
  done;
  !result

(* Extent allocation: contiguous first-fit, falling back to scattered
   per-block first-fit when the zone is too fragmented to hold a single
   run.  Either way, failure rolls back every block taken. *)
let alloc_zone t zone n =
  if n = 0 then Some []
  else
    let lo, hi = zone_bounds t zone in
    match find_extent t ~lo ~hi n with
    | Some s ->
        for j = s to s + n - 1 do
          t.free.(j) <- false
        done;
        Some (List.init n (fun j -> t.data_start + s + j))
    | None ->
        let out = ref [] in
        let found = ref 0 in
        let i = ref lo in
        while !found < n && !i < hi do
          if t.free.(!i) then begin
            t.free.(!i) <- false;
            out := (t.data_start + !i) :: !out;
            incr found
          end;
          incr i
        done;
        if !found < n then begin
          List.iter (fun b -> t.free.(b - t.data_start) <- true) !out;
          None
        end
        else Some (List.rev !out)

let alloc_record_blocks t ~high n = alloc_zone t (Z_record high) n

let alloc_membrane_blocks t n = alloc_zone t Z_membrane n

let zero_and_free t blocks =
  let bs = block_size t in
  (match blocks with
  | [] -> ()
  | _ ->
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.map (fun b -> (b, String.make bs '\000')) blocks)));
  List.iter (fun b -> t.free.(b - t.data_start) <- true) blocks

let write_payload t payload blocks =
  let bs = block_size t in
  match blocks with
  | [] -> ()
  | _ ->
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.mapi
               (fun i b ->
                 ( b,
                   String.sub payload (i * bs)
                     (min bs (String.length payload - (i * bs))) ))
               blocks))

let read_payload t blocks size =
  let got = retrying t (fun () -> Block_device.read_vec t.dev blocks) in
  let buf = Buffer.create size in
  List.iter (fun b -> Buffer.add_string buf (List.assoc b got)) blocks;
  Buffer.sub buf 0 size

(* cache hit: simulated cost of the vectored read we did not perform *)
let charge_payload_read t blocks =
  retrying t (fun () -> Block_device.charge_read_vec t.dev blocks)

(* ------------------------------------------------------------------ *)
(* journal ops (metadata only: no PD bytes ever enter the ring)       *)

type op =
  | J_create_type of string (* encoded schema: structure, not PD *)
  | J_insert of {
      pd_id : string;
      type_name : string;
      subject : string;
      high : bool;
      record_blocks : int list;
      record_size : int;
      record_sum : string;
      membrane_blocks : int list;
      membrane_size : int;
      membrane_sum : string;
    }
  | J_update_record of {
      pd_id : string;
      blocks : int list;
      size : int;
      sum : string;
    }
  | J_update_membrane of {
      pd_id : string;
      blocks : int list;
      size : int;
      sum : string;
    }
  | J_delete of string
  | J_erase of { pd_id : string; blocks : int list; size : int; sum : string }

let encode_op op =
  let w = Codec.Writer.create () in
  (match op with
  | J_create_type schema_bytes ->
      Codec.Writer.string w "ctype";
      Codec.Writer.string w schema_bytes
  | J_insert e ->
      Codec.Writer.string w "ins";
      Codec.Writer.string w e.pd_id;
      Codec.Writer.string w e.type_name;
      Codec.Writer.string w e.subject;
      Codec.Writer.bool w e.high;
      Codec.Writer.list w (Codec.Writer.int w) e.record_blocks;
      Codec.Writer.int w e.record_size;
      Codec.Writer.string w e.record_sum;
      Codec.Writer.list w (Codec.Writer.int w) e.membrane_blocks;
      Codec.Writer.int w e.membrane_size;
      Codec.Writer.string w e.membrane_sum
  | J_update_record { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "urec";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum
  | J_update_membrane { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "umbr";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum
  | J_delete pd_id ->
      Codec.Writer.string w "del";
      Codec.Writer.string w pd_id
  | J_erase { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "ers";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum);
  Codec.Writer.contents w

let decode_op s =
  let r = Codec.Reader.create s in
  let* tag = Codec.Reader.string r in
  match tag with
  | "ctype" ->
      let* schema_bytes = Codec.Reader.string r in
      Ok (J_create_type schema_bytes)
  | "ins" ->
      let* pd_id = Codec.Reader.string r in
      let* type_name = Codec.Reader.string r in
      let* subject = Codec.Reader.string r in
      let* high = Codec.Reader.bool r in
      let* record_blocks = Codec.Reader.list r Codec.Reader.int in
      let* record_size = Codec.Reader.int r in
      let* record_sum = Codec.Reader.string r in
      let* membrane_blocks = Codec.Reader.list r Codec.Reader.int in
      let* membrane_size = Codec.Reader.int r in
      let* membrane_sum = Codec.Reader.string r in
      Ok
        (J_insert
           {
             pd_id;
             type_name;
             subject;
             high;
             record_blocks;
             record_size;
             record_sum;
             membrane_blocks;
             membrane_size;
             membrane_sum;
           })
  | "urec" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_update_record { pd_id; blocks; size; sum })
  | "umbr" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_update_membrane { pd_id; blocks; size; sum })
  | "del" ->
      let* pd_id = Codec.Reader.string r in
      Ok (J_delete pd_id)
  | "ers" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_erase { pd_id; blocks; size; sum })
  | other -> Error ("unknown DBFS journal op " ^ other)

(* Apply an op to the in-memory trees and the free map.  Data blocks are
   NOT touched here: in ordered-mode journaling they were written in place
   before the record committed. *)
let mark_used t blocks = List.iter (fun b -> t.free.(b - t.data_start) <- false) blocks

let mark_free t blocks = List.iter (fun b -> t.free.(b - t.data_start) <- true) blocks

(* Every path that changes an entry funnels through here (live ops via
   log_and_apply, recovery via journal replay), so this is the single
   invalidation point of the coherence rule above. *)
let invalidate_caches t pd_id =
  Hashtbl.remove t.membrane_cache pd_id;
  Hashtbl.remove t.record_cache pd_id

(* Index write-through rides the same funnel.  Live call sites hand the
   decoded values down as a hint (they just validated and encoded them),
   so index maintenance costs no extra device traffic; journal replay has
   no hint and re-reads the payload blocks instead.  A replayed op whose
   blocks have since been zeroed or reused simply fails to decode and is
   skipped: removal never needs the payload (it goes through the
   [Index.pd_keys] source of truth by pd_id), and the LAST op for any pd
   always has valid in-place blocks — ordered journaling wrote them
   before the record committed and nothing freed them since — so the
   final index state is exact.  Index values themselves never enter the
   journal: the ring stays free of PD bytes. *)
type hint = { h_record : Record.t option; h_membrane : Membrane.t option }

let no_hint = { h_record = None; h_membrane = None }

let indexed_fields_of t type_name =
  match Hashtbl.find_opt t.tables type_name with
  | Some tbl -> tbl.schema.Schema.indexed_fields
  | None -> []

(* Best-effort decode helpers (index maintenance, fsck): an extent that
   cannot be read even after retries yields [None] rather than raising —
   the callers treat it the same as an undecodable payload. *)
let decode_record_at t blocks size =
  match
    try Record.decode (read_payload t blocks size)
    with Block_device.Faulted b -> Error (Printf.sprintf "block %d faulted" b)
  with
  | Ok r -> Some r
  | Error _ -> None

let decode_membrane_at t blocks size =
  match
    try Membrane.decode (read_payload t blocks size)
    with Block_device.Faulted b -> Error (Printf.sprintf "block %d faulted" b)
  with
  | Ok m -> Some m
  | Error _ -> None

let expiry_instant m =
  match m.Membrane.ttl with
  | None -> None
  | Some ttl -> Some (m.Membrane.created_at + ttl)

let index_put_record t ~pd_id ~type_name ~hint ~blocks ~size =
  let indexed = indexed_fields_of t type_name in
  if indexed <> [] then
    let record =
      match hint.h_record with
      | Some r -> Some r
      | None -> decode_record_at t blocks size
    in
    match record with
    | Some record -> Index.add_entry t.index ~pd_id ~type_name ~indexed record
    | None -> ()

let index_put_membrane t ~pd_id ~hint ~blocks ~size =
  let membrane =
    match hint.h_membrane with
    | Some m -> Some m
    | None -> decode_membrane_at t blocks size
  in
  match membrane with
  | Some m -> Index.set_expiry t.index ~pd_id (expiry_instant m)
  | None -> ()

(* [freed_acc], passed by mount-time replay, collects every block an op
   frees.  Live mutators zero old blocks AFTER the journal record commits,
   so a crash in that window leaves plaintext on blocks the replayed
   metadata considers free; replay zeroes whichever of them are still free
   once the whole journal is applied (blocks reused by a later op keep
   their new owner's in-place data). *)
let apply_op ?(hint = no_hint) ?freed_acc t op =
  let note_freed blocks =
    match freed_acc with
    | Some acc -> acc := List.rev_append blocks !acc
    | None -> ()
  in
  (match op with
  | J_create_type _ -> ()
  | J_insert { pd_id; _ }
  | J_update_record { pd_id; _ }
  | J_update_membrane { pd_id; _ }
  | J_delete pd_id
  | J_erase { pd_id; _ } ->
      invalidate_caches t pd_id);
  match op with
  | J_create_type schema_bytes -> (
      match Schema.decode schema_bytes with
      | Error e -> failwith ("DBFS: corrupt schema in journal: " ^ e)
      | Ok schema ->
          Hashtbl.replace t.tables schema.Schema.name { schema; pds_rev = [] })
  | J_insert e ->
      let entry =
        {
          pd_id = e.pd_id;
          type_name = e.type_name;
          subject = e.subject;
          high = e.high;
          record_blocks = e.record_blocks;
          record_size = e.record_size;
          record_sum = e.record_sum;
          membrane_blocks = e.membrane_blocks;
          membrane_size = e.membrane_size;
          membrane_sum = e.membrane_sum;
          erased = false;
        }
      in
      Hashtbl.replace t.entries e.pd_id entry;
      mark_used t e.record_blocks;
      mark_used t e.membrane_blocks;
      (match Hashtbl.find_opt t.tables e.type_name with
      | Some table -> table.pds_rev <- e.pd_id :: table.pds_rev
      | None -> failwith "DBFS: insert into unknown table during apply");
      Index.add_subject t.index ~subject:e.subject ~pd_id:e.pd_id;
      index_put_record t ~pd_id:e.pd_id ~type_name:e.type_name ~hint
        ~blocks:e.record_blocks ~size:e.record_size;
      index_put_membrane t ~pd_id:e.pd_id ~hint ~blocks:e.membrane_blocks
        ~size:e.membrane_size;
      (* keep pd counter ahead of any replayed id *)
      (match int_of_string_opt (String.sub e.pd_id 3 (String.length e.pd_id - 3)) with
      | Some n when n >= t.next_pd -> t.next_pd <- n + 1
      | _ -> ())
  | J_update_record { pd_id; blocks; size; sum } ->
      let entry = Hashtbl.find t.entries pd_id in
      note_freed entry.record_blocks;
      mark_free t entry.record_blocks;
      mark_used t blocks;
      entry.record_blocks <- blocks;
      entry.record_size <- size;
      entry.record_sum <- sum;
      index_put_record t ~pd_id ~type_name:entry.type_name ~hint ~blocks ~size
  | J_update_membrane { pd_id; blocks; size; sum } ->
      let entry = Hashtbl.find t.entries pd_id in
      note_freed entry.membrane_blocks;
      mark_free t entry.membrane_blocks;
      mark_used t blocks;
      entry.membrane_blocks <- blocks;
      entry.membrane_size <- size;
      entry.membrane_sum <- sum;
      (* consent flips and TTL changes land here: re-key the expiry queue *)
      index_put_membrane t ~pd_id ~hint ~blocks ~size
  | J_delete pd_id ->
      let entry = Hashtbl.find t.entries pd_id in
      note_freed entry.record_blocks;
      note_freed entry.membrane_blocks;
      mark_free t entry.record_blocks;
      mark_free t entry.membrane_blocks;
      Hashtbl.remove t.entries pd_id;
      (match Hashtbl.find_opt t.tables entry.type_name with
      | Some table -> table.pds_rev <- List.filter (( <> ) pd_id) table.pds_rev
      | None -> ());
      Index.remove_entry t.index ~pd_id;
      Index.remove_subject t.index ~subject:entry.subject ~pd_id;
      Index.clear_expiry t.index ~pd_id
  | J_erase { pd_id; blocks; size; sum } ->
      let entry = Hashtbl.find t.entries pd_id in
      note_freed entry.record_blocks;
      mark_free t entry.record_blocks;
      mark_used t blocks;
      entry.record_blocks <- blocks;
      entry.record_size <- size;
      entry.record_sum <- sum;
      entry.erased <- true;
      (* sealed payload is not PD: no field keys, no expiry; the subject
         link stays (erasure seals the pd, it does not unlink it) *)
      Index.remove_entry t.index ~pd_id;
      Index.clear_expiry t.index ~pd_id

(* ------------------------------------------------------------------ *)
(* metadata checkpoint                                                *)

let encode_entry w e =
  Codec.Writer.string w e.pd_id;
  Codec.Writer.string w e.type_name;
  Codec.Writer.string w e.subject;
  Codec.Writer.bool w e.high;
  Codec.Writer.list w (Codec.Writer.int w) e.record_blocks;
  Codec.Writer.int w e.record_size;
  Codec.Writer.string w e.record_sum;
  Codec.Writer.list w (Codec.Writer.int w) e.membrane_blocks;
  Codec.Writer.int w e.membrane_size;
  Codec.Writer.string w e.membrane_sum;
  Codec.Writer.bool w e.erased

let decode_entry r =
  let* pd_id = Codec.Reader.string r in
  let* type_name = Codec.Reader.string r in
  let* subject = Codec.Reader.string r in
  let* high = Codec.Reader.bool r in
  let* record_blocks = Codec.Reader.list r Codec.Reader.int in
  let* record_size = Codec.Reader.int r in
  let* record_sum = Codec.Reader.string r in
  let* membrane_blocks = Codec.Reader.list r Codec.Reader.int in
  let* membrane_size = Codec.Reader.int r in
  let* membrane_sum = Codec.Reader.string r in
  let* erased = Codec.Reader.bool r in
  Ok
    {
      pd_id;
      type_name;
      subject;
      high;
      record_blocks;
      record_size;
      record_sum;
      membrane_blocks;
      membrane_size;
      membrane_sum;
      erased;
    }

let encode_meta t =
  let w = Codec.Writer.create () in
  Codec.Writer.string w superblock_magic;
  Codec.Writer.int w t.next_pd;
  Codec.Writer.int w (Journal_ring.head t.ring);
  Codec.Writer.int w (Journal_ring.seq t.ring);
  let tables = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [] in
  Codec.Writer.list w
    (fun tbl ->
      Codec.Writer.string w (Schema.encode tbl.schema);
      Codec.Writer.list w (Codec.Writer.string w) tbl.pds_rev)
    tables;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [] in
  Codec.Writer.list w (fun e -> encode_entry w e) entries;
  (* secondary indexes: derivation roots only (pd_keys, subject lists,
     expiry queue) — probe structures are rebuilt on mount *)
  Index.encode_into w t.index;
  let free_bits =
    String.init (Array.length t.free) (fun i -> if t.free.(i) then '1' else '0')
  in
  Codec.Writer.string w free_bits;
  Codec.Writer.contents w

let write_meta t =
  let bs = block_size t in
  let payload = encode_meta t in
  let framed =
    let w = Codec.Writer.create () in
    Codec.Writer.string w payload;
    Codec.Writer.contents w ^ Fnv.hash64_hex payload
  in
  if String.length framed > t.meta_blocks * bs then
    failwith "Dbfs: metadata region overflow";
  let nblocks = ((String.length framed - 1) / bs) + 1 in
  retrying t (fun () ->
      Block_device.write_vec t.dev
        (List.init nblocks (fun i ->
             ( t.meta_start + i,
               String.sub framed (i * bs)
                 (min bs (String.length framed - (i * bs))) ))))

let read_meta dev ~meta_start ~meta_blocks =
  let got =
    Block_device.read_vec dev (List.init meta_blocks (fun i -> meta_start + i))
  in
  let buf = Buffer.create 4096 in
  List.iter (fun (_, s) -> Buffer.add_string buf s) got;
  let raw = Buffer.contents buf in
  let r = Codec.Reader.create raw in
  let* payload = Codec.Reader.string r in
  if String.length raw < 4 + String.length payload + 16 then
    Error "truncated DBFS metadata"
  else
    let stored = String.sub raw (4 + String.length payload) 16 in
    if stored <> Fnv.hash64_hex payload then Error "DBFS metadata checksum mismatch"
    else Ok payload

let checkpoint t =
  write_meta t;
  Journal_ring.mark_checkpointed t.ring

let log_and_apply ?hint t op =
  retrying t (fun () ->
      Journal_ring.append t.ring
        ~on_overflow:(fun () -> checkpoint t)
        (encode_op op));
  apply_op ?hint t op

(* ------------------------------------------------------------------ *)
(* construction                                                       *)

let format dev ~journal_blocks =
  let cfg = Block_device.config dev in
  let block_count = cfg.Block_device.block_count in
  (* The metadata region now also persists the secondary indexes, whose
     size grows with the population; scale the region with the device
     (1/16th) instead of a fixed 128 blocks so large-population
     checkpoints cannot overflow it.  [mount] reads the figure from the
     superblock, so the layout stays self-describing. *)
  let meta_blocks = max meta_blocks_default (block_count / 16) in
  let data_start = 1 + journal_blocks + meta_blocks in
  if data_start >= block_count then invalid_arg "Dbfs.format: device too small";
  let w = Codec.Writer.create () in
  Codec.Writer.string w superblock_magic;
  Codec.Writer.int w journal_blocks;
  Codec.Writer.int w meta_blocks;
  Block_device.write dev 0 (Codec.Writer.contents w);
  let t =
    {
      dev;
      ring = Journal_ring.create dev ~start_block:1 ~num_blocks:journal_blocks;
      journal_blocks;
      meta_start = 1 + journal_blocks;
      meta_blocks;
      data_start;
      high_start = compute_high_start ~data_start ~block_count;
      tables = Hashtbl.create 8;
      entries = Hashtbl.create 256;
      index = Index.create ();
      free = Array.make (block_count - data_start) true;
      next_pd = 0;
      hook = None;
      degraded = None;
      replay = None;
      replay_warning = None;
      counters = Stats.Counter.create ();
      membrane_cache = Hashtbl.create 256;
      record_cache = Hashtbl.create 256;
    }
  in
  write_meta t;
  t

let mount dev =
  let raw = Block_device.read dev 0 in
  let r = Codec.Reader.create raw in
  let parse_super =
    let* magic = Codec.Reader.string r in
    if magic <> superblock_magic then Error "bad DBFS superblock magic"
    else
      let* journal_blocks = Codec.Reader.int r in
      let* meta_blocks = Codec.Reader.int r in
      Ok (journal_blocks, meta_blocks)
  in
  match parse_super with
  | Error e -> Error e
  | Ok (journal_blocks, meta_blocks) -> (
      let meta_start = 1 + journal_blocks in
      match read_meta dev ~meta_start ~meta_blocks with
      | Error e -> Error e
      | Ok payload -> (
          let r = Codec.Reader.create payload in
          let parse =
            let* magic = Codec.Reader.string r in
            if magic <> superblock_magic then Error "bad DBFS metadata magic"
            else
              let* next_pd = Codec.Reader.int r in
              let* jhead = Codec.Reader.int r in
              let* jseq = Codec.Reader.int r in
              let* tables =
                Codec.Reader.list r (fun r ->
                    let* schema_bytes = Codec.Reader.string r in
                    let* schema = Schema.decode schema_bytes in
                    let* pds_rev = Codec.Reader.list r Codec.Reader.string in
                    Ok { schema; pds_rev })
              in
              let* entries = Codec.Reader.list r decode_entry in
              let* index = Index.decode_from r in
              let* free_bits = Codec.Reader.string r in
              Ok (next_pd, jhead, jseq, tables, entries, index, free_bits)
          in
          match parse with
          | Error e -> Error e
          | Ok (next_pd, jhead, jseq, tables, entries, index, free_bits) ->
              let cfg = Block_device.config dev in
              let block_count = cfg.Block_device.block_count in
              let data_start = 1 + journal_blocks + meta_blocks in
              let t =
                {
                  dev;
                  ring =
                    Journal_ring.attach dev ~start_block:1
                      ~num_blocks:journal_blocks ~head:jhead ~seq:jseq;
                  journal_blocks;
                  meta_start;
                  meta_blocks;
                  data_start;
                  high_start = compute_high_start ~data_start ~block_count;
                  tables = Hashtbl.create 8;
                  entries = Hashtbl.create 256;
                  index;
                  free =
                    Array.init (String.length free_bits) (fun i ->
                        free_bits.[i] = '1');
                  next_pd;
                  hook = None;
                  degraded = None;
                  replay = None;
                  replay_warning = None;
                  counters = Stats.Counter.create ();
                  membrane_cache = Hashtbl.create 256;
                  record_cache = Hashtbl.create 256;
                }
              in
              List.iter
                (fun tbl -> Hashtbl.replace t.tables tbl.schema.Schema.name tbl)
                tables;
              List.iter (fun e -> Hashtbl.replace t.entries e.pd_id e) entries;
              (* exn-free replay: a record that frames correctly but fails
                 to decode or apply stops further application and flips the
                 store into degraded read-only mode instead of failing the
                 mount *)
              let freed = ref [] in
              let summary =
                Journal_ring.replay t.ring (fun payload ->
                    if t.replay_warning = None then
                      match decode_op payload with
                      | Ok op -> (
                          try apply_op t ~freed_acc:freed op with
                          | Failure m -> t.replay_warning <- Some m
                          | Not_found ->
                              t.replay_warning <-
                                Some "journal op references an unknown pd")
                      | Error e ->
                          t.replay_warning <-
                            Some ("corrupt journal op: " ^ e))
              in
              t.replay <- Some summary;
              (match t.replay_warning with
              | Some m ->
                  t.degraded <- Some ("journal replay: " ^ m);
                  Stats.Counter.incr t.counters "degraded_entries"
              | None -> ());
              (* close the commit->zero crash window: any block a replayed
                 op freed and nothing later reused must not keep its old
                 plaintext *)
              let bs = block_size t in
              let leftover =
                List.sort_uniq compare !freed
                |> List.filter (fun b ->
                       t.free.(b - t.data_start)
                       && Block_device.is_written t.dev b)
              in
              (match leftover with
              | [] -> ()
              | _ ->
                  Stats.Counter.incr t.counters
                    ~by:(List.length leftover)
                    "replay_zeroed_blocks";
                  retrying t (fun () ->
                      Block_device.write_vec t.dev
                        (List.map
                           (fun b -> (b, String.make bs '\000'))
                           leftover)));
              Ok t))

let device t = t.dev

type layout = {
  l_data_start : int;
  l_rec_start : int;
  l_high_start : int;
  l_block_count : int;
}

let layout t =
  {
    l_data_start = t.data_start;
    l_rec_start = rec_start t;
    l_high_start = t.high_start;
    l_block_count = total_blocks t;
  }

let set_access_hook t hook = t.hook <- Some hook

(* ------------------------------------------------------------------ *)
(* schema tree                                                        *)

let create_type t ~actor schema =
  let** () = guard t ~actor ~op:"create_type" in
  let** () = check_degraded t in
  let name = schema.Schema.name in
  if Hashtbl.mem t.tables name then Error (Type_exists name)
  else
    protect_write t (fun () ->
        Stats.Counter.incr t.counters "create_type";
        log_and_apply t (J_create_type (Schema.encode schema));
        Ok ())

let schema t ~actor name =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl.schema
  | None -> Error (Unknown_type name)

let list_types t ~actor =
  let** () = guard t ~actor ~op:"read" in
  Ok (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* PD entries                                                         *)

let find_entry t pd_id =
  match Hashtbl.find_opt t.entries pd_id with
  | Some e -> Ok e
  | None -> Error (Unknown_pd pd_id)

let entry_blocks t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Ok (e.record_blocks, e.membrane_blocks)

let insert t ~actor ~subject ~type_name ~record ~membrane_of =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl -> (
      match Schema.validate_record tbl.schema record with
      | Error e -> Error (Invalid_record e)
      | Ok () -> (
          let pd_id = Printf.sprintf "pd-%08d" t.next_pd in
          let membrane = membrane_of ~pd_id in
          (* enforcement rule 3: the membrane must wrap THIS pd *)
          if membrane.Membrane.pd_id <> pd_id then
            Error (Membrane_mismatch "membrane wraps a different pd_id")
          else if membrane.Membrane.type_name <> type_name then
            Error (Membrane_mismatch "membrane declares a different type")
          else if membrane.Membrane.subject_id <> subject then
            Error (Membrane_mismatch "membrane names a different subject")
          else
            let high = membrane.Membrane.sensitivity = Membrane.High in
            let record_bytes = Record.encode record in
            let membrane_bytes = Membrane.encode membrane in
            let rn = blocks_needed t (String.length record_bytes) in
            let mn = blocks_needed t (String.length membrane_bytes) in
            match alloc_record_blocks t ~high rn with
            | None -> Error No_space
            | Some record_blocks -> (
                match alloc_membrane_blocks t mn with
                | None ->
                    mark_free t record_blocks;
                    Error No_space
                | Some membrane_blocks ->
                    protect_write t (fun () ->
                        (* ordered mode: data in place first, then journal *)
                        write_payload t record_bytes record_blocks;
                        write_payload t membrane_bytes membrane_blocks;
                        t.next_pd <- t.next_pd + 1;
                        log_and_apply t
                          ~hint:
                            { h_record = Some record; h_membrane = Some membrane }
                          (J_insert
                             {
                               pd_id;
                               type_name;
                               subject;
                               high;
                               record_blocks;
                               record_size = String.length record_bytes;
                               record_sum = Fnv.hash64_hex record_bytes;
                               membrane_blocks;
                               membrane_size = String.length membrane_bytes;
                               membrane_sum = Fnv.hash64_hex membrane_bytes;
                             });
                        Stats.Counter.incr t.counters "inserts";
                        (* write-through: the values just validated and
                           encoded are exactly what a read would decode *)
                        Hashtbl.replace t.membrane_cache pd_id membrane;
                        Hashtbl.replace t.record_cache pd_id record;
                        Ok pd_id))))

(* Verify an extent's checksum against the raw bytes just read.  An empty
   stored sum means "no checksum recorded" (never the case for entries
   written by this code, but kept permissive). *)
let verify_sum ~what ~pd_id ~stored raw =
  if stored <> "" && Fnv.hash64_hex raw <> stored then
    Error (Corrupt (what ^ " of " ^ pd_id ^ ": extent checksum mismatch"))
  else Ok raw

let get_membrane t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Stats.Counter.incr t.counters "membrane_reads";
  match Hashtbl.find_opt t.membrane_cache pd_id with
  | Some m ->
      Stats.Counter.incr t.counters "cache_hits";
      protect_read (fun () ->
          charge_payload_read t e.membrane_blocks;
          charge_checksum t e.membrane_size;
          Ok m)
  | None ->
      Stats.Counter.incr t.counters "cache_misses";
      protect_read (fun () ->
          let raw = read_payload t e.membrane_blocks e.membrane_size in
          charge_checksum t e.membrane_size;
          let** raw =
            verify_sum ~what:"membrane" ~pd_id ~stored:e.membrane_sum raw
          in
          match Membrane.decode raw with
          | Ok m ->
              Hashtbl.replace t.membrane_cache pd_id m;
              Ok m
          | Error msg -> Error (Corrupt ("membrane of " ^ pd_id ^ ": " ^ msg)))

let get_record t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else begin
    Stats.Counter.incr t.counters "record_reads";
    match Hashtbl.find_opt t.record_cache pd_id with
    | Some r ->
        Stats.Counter.incr t.counters "cache_hits";
        protect_read (fun () ->
            charge_payload_read t e.record_blocks;
            charge_checksum t e.record_size;
            Ok r)
    | None ->
        Stats.Counter.incr t.counters "cache_misses";
        protect_read (fun () ->
            let raw = read_payload t e.record_blocks e.record_size in
            charge_checksum t e.record_size;
            let** raw =
              verify_sum ~what:"record" ~pd_id ~stored:e.record_sum raw
            in
            match Record.decode raw with
            | Ok r ->
                Hashtbl.replace t.record_cache pd_id r;
                Ok r
            | Error msg -> Error (Corrupt ("record of " ^ pd_id ^ ": " ^ msg)))
  end

(* ---------- batched reads (the DED's vectored load path) ----------

   One vectored device request covers every pd in the selection, so the
   fixed seek latency is paid once per contiguous run of the union rather
   than once per pd.  Cost transparency is preserved: cached entries'
   blocks stay in the request (only the host-side decode is skipped), so
   a warm cache changes no stage_ns figure. *)

let resolve_entries t pd_ids =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | pd_id :: rest -> (
        match find_entry t pd_id with
        | Ok e -> go (e :: acc) rest
        | Error e -> Error e)
  in
  go [] pd_ids

(* Issue the batch request for [blocks]: a full [read_vec] when at least
   one entry needs bytes, a cost-only [charge_read_vec] when every entry
   is cached.  Returns an index->contents lookup. *)
let batch_read t ~any_miss blocks =
  if any_miss then begin
    let got = retrying t (fun () -> Block_device.read_vec t.dev blocks) in
    let h = Hashtbl.create (max 16 (2 * List.length got)) in
    List.iter (fun (i, s) -> Hashtbl.replace h i s) got;
    h
  end
  else begin
    retrying t (fun () -> Block_device.charge_read_vec t.dev blocks);
    Hashtbl.create 1
  end

let assemble h blocks size =
  let buf = Buffer.create size in
  List.iter (fun b -> Buffer.add_string buf (Hashtbl.find h b)) blocks;
  Buffer.sub buf 0 size

let get_membranes t ~actor pd_ids =
  let** () = guard t ~actor ~op:"read" in
  let** entries = resolve_entries t pd_ids in
  let blocks = List.concat_map (fun e -> e.membrane_blocks) entries in
  let any_miss =
    List.exists (fun e -> not (Hashtbl.mem t.membrane_cache e.pd_id)) entries
  in
  protect_read (fun () ->
      let h = batch_read t ~any_miss blocks in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            Stats.Counter.incr t.counters "membrane_reads";
            charge_checksum t e.membrane_size;
            match Hashtbl.find_opt t.membrane_cache e.pd_id with
            | Some m ->
                Stats.Counter.incr t.counters "cache_hits";
                go ((e.pd_id, m) :: acc) rest
            | None -> (
                Stats.Counter.incr t.counters "cache_misses";
                let raw = assemble h e.membrane_blocks e.membrane_size in
                let** raw =
                  verify_sum ~what:"membrane" ~pd_id:e.pd_id
                    ~stored:e.membrane_sum raw
                in
                match Membrane.decode raw with
                | Ok m ->
                    Hashtbl.replace t.membrane_cache e.pd_id m;
                    go ((e.pd_id, m) :: acc) rest
                | Error msg ->
                    Error (Corrupt ("membrane of " ^ e.pd_id ^ ": " ^ msg))))
      in
      go [] entries)

(* Erased pds yield [None] (their sealed payload is not PD and is not
   read), matching the DED's skip-erased semantics without forcing every
   caller to pre-filter the selection. *)
let get_records t ~actor pd_ids =
  let** () = guard t ~actor ~op:"read" in
  let** entries = resolve_entries t pd_ids in
  let live = List.filter (fun e -> not e.erased) entries in
  let blocks = List.concat_map (fun e -> e.record_blocks) live in
  let any_miss =
    List.exists (fun e -> not (Hashtbl.mem t.record_cache e.pd_id)) live
  in
  protect_read (fun () ->
      let h = batch_read t ~any_miss blocks in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
            if e.erased then go ((e.pd_id, None) :: acc) rest
            else begin
              Stats.Counter.incr t.counters "record_reads";
              charge_checksum t e.record_size;
              match Hashtbl.find_opt t.record_cache e.pd_id with
              | Some r ->
                  Stats.Counter.incr t.counters "cache_hits";
                  go ((e.pd_id, Some r) :: acc) rest
              | None -> (
                  Stats.Counter.incr t.counters "cache_misses";
                  let raw = assemble h e.record_blocks e.record_size in
                  let** raw =
                    verify_sum ~what:"record" ~pd_id:e.pd_id
                      ~stored:e.record_sum raw
                  in
                  match Record.decode raw with
                  | Ok r ->
                      Hashtbl.replace t.record_cache e.pd_id r;
                      go ((e.pd_id, Some r) :: acc) rest
                  | Error msg ->
                      Error (Corrupt ("record of " ^ e.pd_id ^ ": " ^ msg)))
            end
      in
      go [] entries)

let update_record t ~actor pd_id record =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    match Hashtbl.find_opt t.tables e.type_name with
    | None -> Error (Unknown_type e.type_name)
    | Some tbl -> (
        match Schema.validate_record tbl.schema record with
        | Error msg -> Error (Invalid_record msg)
        | Ok () -> (
            let bytes = Record.encode record in
            let old_blocks = e.record_blocks in
            match
              alloc_record_blocks t ~high:e.high
                (blocks_needed t (String.length bytes))
            with
            | None -> Error No_space
            | Some blocks ->
                protect_write t (fun () ->
                    write_payload t bytes blocks;
                    log_and_apply t
                      ~hint:{ no_hint with h_record = Some record }
                      (J_update_record
                         {
                           pd_id;
                           blocks;
                           size = String.length bytes;
                           sum = Fnv.hash64_hex bytes;
                         });
                    (* zeroing deallocation: no stale PD on the medium *)
                    zero_and_free t old_blocks;
                    Stats.Counter.incr t.counters "record_updates";
                    Ok ())))

let update_membrane t ~actor pd_id membrane =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if membrane.Membrane.pd_id <> pd_id then
    Error (Membrane_mismatch "membrane wraps a different pd_id")
  else if membrane.Membrane.type_name <> e.type_name then
    Error (Membrane_mismatch "membrane declares a different type")
  else if membrane.Membrane.subject_id <> e.subject then
    Error (Membrane_mismatch "membrane names a different subject")
  else
    let bytes = Membrane.encode membrane in
    let old_blocks = e.membrane_blocks in
    match alloc_membrane_blocks t (blocks_needed t (String.length bytes)) with
    | None -> Error No_space
    | Some blocks ->
        protect_write t (fun () ->
            write_payload t bytes blocks;
            log_and_apply t
              ~hint:{ no_hint with h_membrane = Some membrane }
              (J_update_membrane
                 {
                   pd_id;
                   blocks;
                   size = String.length bytes;
                   sum = Fnv.hash64_hex bytes;
                 });
            zero_and_free t old_blocks;
            Stats.Counter.incr t.counters "membrane_updates";
            Ok ())

let update_membranes_by_lineage t ~actor ~lineage f =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let ids =
    Hashtbl.fold (fun pd_id _ acc -> pd_id :: acc) t.entries []
    |> List.sort compare
  in
  (* one batched membrane load to find the lineage, then point updates *)
  let** membranes = get_membranes t ~actor ids in
  let rec go updated = function
    | [] -> Ok updated
    | (pd_id, m) :: rest ->
        if Membrane.lineage_root m = lineage then
          match update_membrane t ~actor pd_id (f m) with
          | Error e -> Error e
          | Ok () -> go (updated + 1) rest
        else go updated rest
  in
  go 0 membranes

let copy_pd t ~actor pd_id =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    let** record = get_record t ~actor pd_id in
    let** membrane = get_membrane t ~actor pd_id in
    insert t ~actor ~subject:e.subject ~type_name:e.type_name ~record
      ~membrane_of:(fun ~pd_id -> Membrane.copy_for membrane ~new_pd_id:pd_id)

let delete t ~actor pd_id =
  let** () = guard t ~actor ~op:"delete" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  let record_blocks = e.record_blocks in
  let membrane_blocks = e.membrane_blocks in
  protect_write t (fun () ->
      log_and_apply t (J_delete pd_id);
      (* physical zeroing after the metadata commit, as one vectored write *)
      let bs = block_size t in
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.map
               (fun b -> (b, String.make bs '\000'))
               (record_blocks @ membrane_blocks)));
      Stats.Counter.incr t.counters "deletes";
      Ok ())

let erase_with t ~actor pd_id ~seal =
  let** () = guard t ~actor ~op:"erase" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    let** record = get_record t ~actor pd_id in
    let sealed = seal record in
    let old_blocks = e.record_blocks in
    match
      alloc_record_blocks t ~high:e.high
        (blocks_needed t (String.length sealed))
    with
    | None -> Error No_space
    | Some blocks ->
        protect_write t (fun () ->
            write_payload t sealed blocks;
            log_and_apply t
              (J_erase
                 {
                   pd_id;
                   blocks;
                   size = String.length sealed;
                   sum = Fnv.hash64_hex sealed;
                 });
            zero_and_free t old_blocks;
            Stats.Counter.incr t.counters "erasures";
            Ok ())

let erased_payload t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  if not e.erased then Error (Invalid_record (pd_id ^ " is not erased"))
  else
    protect_read (fun () ->
        let raw = read_payload t e.record_blocks e.record_size in
        charge_checksum t e.record_size;
        verify_sum ~what:"sealed payload" ~pd_id ~stored:e.record_sum raw)

(* ------------------------------------------------------------------ *)
(* queries                                                            *)

let list_pds t ~actor type_name =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl -> Ok (List.rev tbl.pds_rev)

let pds_of_subject t ~actor subject =
  let** () = guard t ~actor ~op:"read" in
  Ok (Index.subject_pds t.index subject)

let subjects t ~actor =
  let** () = guard t ~actor ~op:"read" in
  Ok (Index.subject_list t.index)

(* ---------- predicate pushdown (Dbfs.select) ----------

   Plan the predicate against the type's secondary indexes, probe for a
   candidate set, batch-load only the candidates and run the original
   predicate as a residual filter.  Exact plans skip the record loads
   entirely.  Probe charging follows the warm==cold rule: the probe
   structures notionally live in the metadata region, so every probe
   charges a vectored read of as many metadata blocks as its byte
   footprint covers — the in-memory acceleration is host-side only and
   never changes a simulated figure. *)

module SS = Set.Make (String)

let charge_index_read t bytes =
  let bs = block_size t in
  let nblocks = min t.meta_blocks (max 1 (((bytes - 1) / bs) + 1)) in
  Block_device.charge_read_vec t.dev
    (List.init nblocks (fun i -> t.meta_start + i))

let run_probe t ~type_name probe =
  let rec go = function
    | Plan.Atom (Plan.Aeq (field, v)) ->
        let ids, bytes = Index.probe_eq t.index ~type_name ~field v in
        (SS.of_list ids, bytes)
    | Plan.Atom (Plan.Alt (field, v)) ->
        let ids, bytes = Index.probe_range t.index ~type_name ~field ~op:`Lt v in
        (SS.of_list ids, bytes)
    | Plan.Atom (Plan.Agt (field, v)) ->
        let ids, bytes = Index.probe_range t.index ~type_name ~field ~op:`Gt v in
        (SS.of_list ids, bytes)
    | Plan.Inter (x, y) ->
        let sx, bx = go x in
        let sy, by = go y in
        (SS.inter sx sy, bx + by)
    | Plan.Union (x, y) ->
        let sx, bx = go x in
        let sy, by = go y in
        (SS.union sx sy, bx + by)
  in
  go probe

let select t ~actor ?(use_indexes = true) type_name pred =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl -> (
      Stats.Counter.incr t.counters "selects";
      let live pd =
        match Hashtbl.find_opt t.entries pd with
        | Some e -> not e.erased
        | None -> false
      in
      let all_live () = List.filter live (List.rev tbl.pds_rev) in
      let residual pd_ids =
        (* one batched vectored load, then the full predicate *)
        let** records = get_records t ~actor pd_ids in
        Ok
          (List.filter_map
             (fun (pd, r) ->
               match r with
               | Some r when Query.eval pred r -> Some pd
               | _ -> None)
             records)
      in
      let plan =
        if use_indexes then
          Plan.compile pred
            ~indexed:(fun f -> List.mem f tbl.schema.Schema.indexed_fields)
        else
          Plan.Full_scan
            { trivial = (match pred with Query.True -> true | _ -> false) }
      in
      match plan with
      | Plan.Full_scan { trivial = true } -> Ok (all_live ())
      | Plan.Full_scan { trivial = false } -> residual (all_live ())
      | Plan.Indexed { probe; exact } ->
          Stats.Counter.incr t.counters "index_probes";
          let cand, bytes = run_probe t ~type_name probe in
          charge_index_read t bytes;
          (* back to insertion order — probe sets are unordered *)
          let cand_list = List.filter (fun pd -> SS.mem pd cand) (all_live ()) in
          if exact then Ok cand_list else residual cand_list)

let plan_for t ~actor type_name pred =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl ->
      Ok
        (Plan.compile pred
           ~indexed:(fun f -> List.mem f tbl.schema.Schema.indexed_fields))

let expired_pds t ~actor ~now =
  let** () = guard t ~actor ~op:"read" in
  Stats.Counter.incr t.counters "index_probes";
  let ids = Index.expired t.index ~now in
  charge_index_read t (32 + (16 * List.length ids));
  Ok ids

let expiry_queue_size t = Index.expiry_size t.index

let pd_count t = Hashtbl.length t.entries

let entry_info t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Ok (e.type_name, e.subject, e.erased)

let export_subject t ~actor subject =
  let** () = guard t ~actor ~op:"export" in
  let** ids = pds_of_subject t ~actor subject in
  (* one vectored request for the whole subject subtree *)
  let** records = get_records t ~actor ids in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (_, None) :: rest -> go acc rest (* erased *)
    | (pd_id, Some record) :: rest ->
        let** e = find_entry t pd_id in
        go (Record.to_export ~type_name:e.type_name ~pd_id record :: acc) rest
  in
  let** items = go [] records in
  Stats.Counter.incr t.counters "exports";
  Ok ("[" ^ String.concat ", " items ^ "]")

let describe_trees t ~actor =
  let** () = guard t ~actor ~op:"read" in
  let buf = Buffer.create 1024 in
  let blocks_str blocks =
    String.concat "," (List.map string_of_int blocks)
  in
  Buffer.add_string buf "subject tree (one inode subtree per data subject)\n";
  let subjects =
    List.map (fun s -> (s, Index.subject_pds t.index s)) (Index.subject_list t.index)
  in
  List.iter
    (fun (subject, ids) ->
      if ids <> [] then begin
        Buffer.add_string buf (Printf.sprintf "  %s\n" subject);
        List.iter
          (fun pd_id ->
            match Hashtbl.find_opt t.entries pd_id with
            | None -> ()
            | Some e ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "    %s [%s]%s  record@{%s}  membrane@{%s}\n" pd_id
                     e.type_name
                     (if e.erased then " (erased)" else "")
                     (blocks_str e.record_blocks)
                     (blocks_str e.membrane_blocks)))
          ids
      end)
    subjects;
  Buffer.add_string buf "schema tree (database structure + row lists)\n";
  let tables =
    Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tables []
    |> List.sort compare
  in
  List.iter
    (fun (name, tbl) ->
      Buffer.add_string buf
        (Printf.sprintf "  table %s: %d row(s)\n" name
           (List.length tbl.pds_rev));
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "    field %s: %s%s\n" f.Schema.fname
               (Value.ftype_to_string f.Schema.ftype)
               (if f.Schema.required then "" else " (optional)")))
        tbl.schema.Schema.fields;
      let row_subjects =
        List.rev tbl.pds_rev
        |> List.filter_map (fun pd_id ->
               Option.map (fun e -> e.subject) (Hashtbl.find_opt t.entries pd_id))
        |> List.sort_uniq compare
      in
      Buffer.add_string buf
        (Printf.sprintf "    subject inodes: %s\n"
           (String.concat ", " row_subjects)))
    tables;
  Buffer.add_string buf
    "format descriptors (record layout used when returning data to the DED)\n";
  List.iter
    (fun (name, tbl) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: REC1 <%s>\n" name
           (String.concat "|"
              (List.map (fun f -> f.Schema.fname) tbl.schema.Schema.fields))))
    tables;
  Ok (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* durability & integrity                                             *)

let crash_and_remount t = mount t.dev

(* Extent read that reports an exhausted-retries device fault as [None]
   instead of raising — fsck must keep scanning past a dead block. *)
let try_read_extent t blocks size =
  try Some (read_payload t blocks size) with Block_device.Faulted _ -> None

let sum_matches stored raw = stored = "" || Fnv.hash64_hex raw = stored

(* The check pass: every invariant violation as a message, no mutation.
   [fsck ?repair] wraps this. *)
let fsck_check t =
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* extent integrity + membrane invariant: every entry's extents are
     readable, their checksums match, and the membrane wraps this pd *)
  Hashtbl.iter
    (fun pd_id e ->
      (match try_read_extent t e.membrane_blocks e.membrane_size with
      | None -> note "entry %s: membrane extent unreadable (device fault)" pd_id
      | Some raw when not (sum_matches e.membrane_sum raw) ->
          note "entry %s: membrane extent checksum mismatch" pd_id
      | Some raw -> (
          match Membrane.decode raw with
          | Error msg -> note "entry %s: undecodable membrane (%s)" pd_id msg
          | Ok m ->
              if m.Membrane.pd_id <> pd_id then
                note "entry %s: membrane wraps %s" pd_id m.Membrane.pd_id;
              if m.Membrane.type_name <> e.type_name then
                note "entry %s: membrane type %s <> %s" pd_id
                  m.Membrane.type_name e.type_name;
              if m.Membrane.subject_id <> e.subject then
                note "entry %s: membrane subject %s <> %s" pd_id
                  m.Membrane.subject_id e.subject));
      match try_read_extent t e.record_blocks e.record_size with
      | None -> note "entry %s: record extent unreadable (device fault)" pd_id
      | Some raw when not (sum_matches e.record_sum raw) ->
          note "entry %s: record extent checksum mismatch" pd_id
      | Some raw ->
          if not e.erased then (
            match Record.decode raw with
            | Error msg -> note "entry %s: undecodable record (%s)" pd_id msg
            | Ok _ -> ()))
    t.entries;
  (* block ownership: unique, allocated, correct zone *)
  let owners = Hashtbl.create 64 in
  let rs = rec_start t in
  let check_block pd_id b =
    if t.free.(b - t.data_start) then note "entry %s owns free block %d" pd_id b;
    match Hashtbl.find_opt owners b with
    | Some other -> note "block %d owned by %s and %s" b other pd_id
    | None -> Hashtbl.replace owners b pd_id
  in
  Hashtbl.iter
    (fun pd_id e ->
      List.iter
        (fun b ->
          if b < t.data_start then note "entry %s owns non-data block %d" pd_id b
          else begin
            if b < rs then
              note "entry %s stores record in membrane zone (block %d)" pd_id b;
            if e.high && b < t.high_start then
              note "sensitive entry %s stored in ordinary region (block %d)" pd_id b;
            if (not e.high) && b >= t.high_start then
              note "ordinary entry %s stored in sensitive region (block %d)" pd_id b;
            check_block pd_id b
          end)
        e.record_blocks;
      List.iter
        (fun b ->
          if b < t.data_start then note "entry %s owns non-data block %d" pd_id b
          else begin
            if b >= rs then
              note "entry %s stores membrane outside membrane zone (block %d)"
                pd_id b;
            check_block pd_id b
          end)
        e.membrane_blocks)
    t.entries;
  (* table membership consistent *)
  Hashtbl.iter
    (fun name tbl ->
      List.iter
        (fun pd_id ->
          match Hashtbl.find_opt t.entries pd_id with
          | None -> note "table %s lists unknown pd %s" name pd_id
          | Some e ->
              if e.type_name <> name then
                note "table %s lists pd %s of type %s" name pd_id e.type_name)
        tbl.pds_rev)
    t.tables;
  (* secondary indexes <-> entries, both directions *)
  Index.fold_pd_keys t.index
    (fun pd_id (type_name, kvs) () ->
      match Hashtbl.find_opt t.entries pd_id with
      | None -> note "index keys unknown pd %s" pd_id
      | Some e ->
          if e.erased then note "index keys erased pd %s" pd_id;
          if e.type_name <> type_name then
            note "index keys pd %s under type %s (entry says %s)" pd_id
              type_name e.type_name;
          (* every claimed key must be posted, and must match the record *)
          let record = decode_record_at t e.record_blocks e.record_size in
          List.iter
            (fun (field, v) ->
              if
                not
                  (List.mem pd_id
                     (Index.eq_postings t.index ~type_name ~field v))
              then
                note "index: pd %s missing from posting list of %s.%s" pd_id
                  type_name field;
              match record with
              | None -> note "index: pd %s record undecodable" pd_id
              | Some r -> (
                  match List.assoc_opt field r with
                  | Some v' when Value.equal v v' -> ()
                  | _ ->
                      note "index: stale key %s.%s for pd %s" type_name field
                        pd_id))
            kvs)
    ();
  Hashtbl.iter
    (fun pd_id e ->
      (* live pd of an indexed type must be keyed *)
      (if not e.erased then
         let indexed = indexed_fields_of t e.type_name in
         if indexed <> [] && Index.pd_key t.index pd_id = None then
           note "index: live pd %s of indexed type %s has no keys" pd_id
             e.type_name);
      (* subject index must link every pd (erased included) *)
      if not (List.mem pd_id (Index.subject_pds t.index e.subject)) then
        note "index: pd %s missing from subject %s" pd_id e.subject;
      (* expiry queue agrees with the membrane *)
      let expected =
        if e.erased then None
        else
          match decode_membrane_at t e.membrane_blocks e.membrane_size with
          | None -> None
          | Some m -> expiry_instant m
      in
      match (expected, Index.expiry_of t.index pd_id) with
      | None, Some ns -> note "index: pd %s spuriously queued to expire at %d" pd_id ns
      | Some ns, None -> note "index: pd %s missing from expiry queue (due %d)" pd_id ns
      | Some a, Some b when a <> b ->
          note "index: pd %s queued at %d, membrane says %d" pd_id b a
      | _ -> ())
    t.entries;
  (* allocation leaks: a data block marked in-use must have an owner *)
  Array.iteri
    (fun i is_free ->
      if (not is_free) && not (Hashtbl.mem owners (t.data_start + i)) then
        note "allocated block %d owned by no entry" (t.data_start + i))
    t.free;
  List.rev !problems

(* From-scratch index rebuild over the (surviving) entries — the repair
   path swaps this in wholesale, which heals any in-memory or persisted
   index damage in one move. *)
let rebuild_index t =
  let idx = Index.create () in
  Hashtbl.iter
    (fun pd_id e ->
      Index.add_subject idx ~subject:e.subject ~pd_id;
      if not e.erased then begin
        let indexed = indexed_fields_of t e.type_name in
        (if indexed <> [] then
           match decode_record_at t e.record_blocks e.record_size with
           | Some record ->
               Index.add_entry idx ~pd_id ~type_name:e.type_name ~indexed record
           | None -> ());
        match decode_membrane_at t e.membrane_blocks e.membrane_size with
        | Some m -> Index.set_expiry idx ~pd_id (expiry_instant m)
        | None -> ()
      end)
    t.entries;
  idx

type repair_report = {
  rr_problems : string list;
  rr_actions : string list;
  rr_quarantined : (string * string) list;
  rr_scrubbed_blocks : int;
  rr_journal_truncated : string option;
  rr_clean : bool;
}

(* An entry is unrecoverable when either extent is unreadable, fails its
   checksum, or no longer decodes.  [None] means the entry is healthy. *)
let entry_damage t e =
  match try_read_extent t e.membrane_blocks e.membrane_size with
  | None -> Some "membrane extent unreadable"
  | Some raw when not (sum_matches e.membrane_sum raw) ->
      Some "membrane extent checksum mismatch"
  | Some raw -> (
      match Membrane.decode raw with
      | Error _ -> Some "membrane undecodable"
      | Ok _ -> (
          match try_read_extent t e.record_blocks e.record_size with
          | None -> Some "record extent unreadable"
          | Some raw when not (sum_matches e.record_sum raw) ->
              Some "record extent checksum mismatch"
          | Some raw ->
              if not e.erased then (
                match Record.decode raw with
                | Error _ -> Some "record undecodable"
                | Ok _ -> None)
              else None))

let fsck_repair t =
  let problems = fsck_check t in
  let actions = ref [] in
  let act fmt = Format.kasprintf (fun s -> actions := s :: !actions) fmt in
  let device_faults = ref false in
  let bs = block_size t in
  let zero_block b =
    try
      retrying t (fun () ->
          Block_device.write_vec t.dev [ (b, String.make bs '\000') ]);
      true
    with Block_device.Faulted _ ->
      device_faults := true;
      false
  in
  (* 1. quarantine entries whose payloads cannot be trusted: remove them
     from the trees and report them — repair never invents data *)
  let damaged =
    Hashtbl.fold
      (fun _ e acc ->
        match entry_damage t e with
        | Some reason -> (e, reason) :: acc
        | None -> acc)
      t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a.pd_id b.pd_id)
  in
  let quarantined =
    List.map
      (fun (e, reason) ->
        Hashtbl.remove t.entries e.pd_id;
        (match Hashtbl.find_opt t.tables e.type_name with
        | Some tbl ->
            tbl.pds_rev <- List.filter (( <> ) e.pd_id) tbl.pds_rev
        | None -> ());
        invalidate_caches t e.pd_id;
        (* the extents may hold damaged PD plaintext: zero best-effort,
           then release the blocks *)
        List.iter
          (fun b -> ignore (zero_block b))
          (e.record_blocks @ e.membrane_blocks);
        mark_free t e.record_blocks;
        mark_free t e.membrane_blocks;
        act "quarantined %s (%s)" e.pd_id reason;
        (e.pd_id, reason))
      damaged
  in
  (* 2. rebuild every secondary index from the surviving records *)
  t.index <- rebuild_index t;
  act "rebuilt secondary indexes from %d surviving entries"
    (Hashtbl.length t.entries);
  (* 3. release allocated blocks no surviving entry owns *)
  let owned = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ e ->
      List.iter
        (fun b -> Hashtbl.replace owned b ())
        (e.record_blocks @ e.membrane_blocks))
    t.entries;
  let leaked = ref 0 in
  Array.iteri
    (fun i is_free ->
      let b = t.data_start + i in
      if (not is_free) && not (Hashtbl.mem owned b) then begin
        t.free.(i) <- true;
        incr leaked
      end)
    t.free;
  if !leaked > 0 then act "released %d leaked block(s)" !leaked;
  (* 4. scrub free space: a free block must hold no bytes at all *)
  let scrubbed = ref 0 in
  Array.iteri
    (fun i is_free ->
      let b = t.data_start + i in
      if is_free && Block_device.is_written t.dev b then
        if zero_block b then incr scrubbed)
    t.free;
  if !scrubbed > 0 then act "scrubbed %d free block(s)" !scrubbed;
  (* 5. truncate the journal at the damage point: checkpoint the repaired
     metadata (making every journal record dead) and scrub the ring *)
  let journal_truncated =
    let damage =
      match (t.replay, t.replay_warning) with
      | _, Some w -> Some ("undecodable record (" ^ w ^ ")")
      | Some { stop_reason; _ }, None when stop_reason <> Journal_ring.Clean ->
          Some (Journal_ring.stop_reason_to_string stop_reason)
      | _ -> None
    in
    (try
       checkpoint t;
       Journal_ring.scrub t.ring
     with Block_device.Faulted _ -> device_faults := true);
    match damage with
    | Some reason ->
        act "journal truncated at first bad frame (%s)" reason;
        Some reason
    | None -> None
  in
  t.replay_warning <- None;
  Hashtbl.reset t.membrane_cache;
  Hashtbl.reset t.record_cache;
  (* 6. verify; leave degraded mode only on a clean bill of health *)
  let recheck = fsck_check t in
  let clean = recheck = [] && not !device_faults in
  if clean then begin
    if t.degraded <> None then act "left degraded read-only mode";
    t.degraded <- None
  end
  else if t.degraded = None then
    t.degraded <-
      Some
        (if !device_faults then "device faults during repair"
         else "fsck still reports problems after repair");
  {
    rr_problems = problems;
    rr_actions = List.rev !actions;
    rr_quarantined = quarantined;
    rr_scrubbed_blocks = !scrubbed;
    rr_journal_truncated = journal_truncated;
    rr_clean = clean;
  }

let fsck ?(repair = false) t =
  if not repair then
    match fsck_check t with [] -> Ok () | ps -> Error ps
  else
    let r = fsck_repair t in
    if r.rr_clean then Ok () else Error (r.rr_problems @ r.rr_actions)

let replay_report t = t.replay

let replay_warning t = t.replay_warning

let degraded t = t.degraded

(* ------------------------------------------------------------------ *)
(* index introspection (tests)                                        *)

let index_dump t = Index.dump t.index

(* From-scratch reference rebuild: re-derive every index fact from the
   live entries and their on-device payloads, dump canonically.  The
   crash-consistency tests compare this against [index_dump] after a
   remount. *)
let rebuilt_index_dump t = Index.dump (rebuild_index t)

let unsafe_tamper_index t pd_id = Index.unsafe_drop_posting t.index ~pd_id

let stats t = t.counters
