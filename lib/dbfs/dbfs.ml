module Block_device = Rgpdos_block.Block_device
module Journal_ring = Rgpdos_block.Journal_ring
module Clock = Rgpdos_util.Clock
module Codec = Rgpdos_util.Codec
module Fnv = Rgpdos_util.Fnv
module Pool = Rgpdos_util.Pool
module Stats = Rgpdos_util.Stats
module Membrane = Rgpdos_membrane.Membrane

open Rgpdos_util.Codec

type error =
  | Unknown_type of string
  | Type_exists of string
  | Unknown_pd of string
  | Membrane_mismatch of string
  | Invalid_record of string
  | Erased of string
  | No_space
  | Access_denied of string
  | Corrupt of string
  | Device_fault of string
  | Degraded of string

let pp_error fmt = function
  | Unknown_type n -> Format.fprintf fmt "unknown PD type: %s" n
  | Type_exists n -> Format.fprintf fmt "PD type already exists: %s" n
  | Unknown_pd id -> Format.fprintf fmt "unknown PD: %s" id
  | Membrane_mismatch m -> Format.fprintf fmt "membrane mismatch: %s" m
  | Invalid_record m -> Format.fprintf fmt "invalid record: %s" m
  | Erased id -> Format.fprintf fmt "PD %s has been erased" id
  | No_space -> Format.fprintf fmt "no space left in DBFS"
  | Access_denied m -> Format.fprintf fmt "access denied: %s" m
  | Corrupt m -> Format.fprintf fmt "DBFS corruption: %s" m
  | Device_fault m -> Format.fprintf fmt "device fault: %s" m
  | Degraded m -> Format.fprintf fmt "DBFS degraded (read-only): %s" m

let error_to_string e = Format.asprintf "%a" pp_error e

(* A PD entry: the pair of inodes (record + membrane) in the subject tree.
   [record_sum]/[membrane_sum] are FNV-64 checksums of the extent payload
   bytes (for an erased entry, of the sealed envelope), verified whenever
   the extent is read off the device. *)
type entry = {
  pd_id : string;
  type_name : string;
  subject : string;
  high : bool; (* allocated in the sensitive region *)
  mutable record_blocks : int list;
  mutable record_size : int;
  mutable record_sum : string;
  mutable membrane_blocks : int list;
  mutable membrane_size : int;
  mutable membrane_sum : string;
  mutable erased : bool;
}

type table = { schema : Schema.t }

(* One bounded LRU holds every decoded-object class: raw index/entry node
   pages ("p:<block>"), membranes ("m:<pd>") and records ("r:<pd>").  A
   single entry budget therefore bounds resident memory across all three,
   and they compete under one eviction policy.  The cache bounds host
   memory only — hits charge the identical simulated device cost as
   misses (warm == cold), so eviction is invisible to every stage_ns
   figure and shows up only in the hit/miss/eviction counters. *)
type cached =
  | C_page of string
  | C_membrane of Membrane.t
  | C_record of Record.t

(* The data-region allocation bitmap is hydrated on demand: a clean mount
   does not read it (keeping mount O(1)); the first allocation, free or
   fsck pulls it off the device.  [bm_present = false] means the store
   has never checkpointed a bitmap — every data block is free. *)
type free_state =
  | F_unloaded
  | F_loaded of bool array

type t = {
  dev : Block_device.t;
  ring : Journal_ring.t;
  journal_blocks : int;
  meta_start : int;
  meta_blocks : int;
  bitmap_blocks : int; (* capacity of the bitmap region *)
  heap_cap : int; (* blocks per metadata heap half *)
  data_start : int;
  high_start : int; (* first block of the sensitive region *)
  tables : (string, table) Hashtbl.t;
  entries : (string, entry) Hashtbl.t;
      (* dirty overlay over the checkpointed entries tree: every entry
         mutated (or inserted) since the last checkpoint.  Shadows the
         base; [deleted] tombstones suppress base entries. *)
  deleted : (string, unit) Hashtbl.t;
  mutable entries_base : Pagestore.root;
  mutable entry_count : int;
  mutable index : Index.t;
      (* secondary indexes: per-field postings, subject -> pd_ids, TTL
         expiry queue; paged on the device since PR 6, with an in-memory
         overlay.  Mutable so [fsck ~repair] can swap in a rebuild. *)
  mutable index_roots : Index.roots;
  mutable free_state : free_state;
  mutable bm_present : bool;
  mutable bm_bytes : int;
  hints : int array;
      (* per-zone allocation cursors, in free-array coordinates: every
         slot below [hints.(z)] inside zone [z] is allocated.  Keeps
         first-fit amortized O(1) over append-heavy workloads while
         returning bit-identical placements (frees move the hint back). *)
  mutable active_half : int; (* heap half holding the live trees *)
  mutable heap_used : int; (* blocks consumed in the active half *)
  mutable root_seq : int;
  mutable next_pd : int;
  mutable hook : (actor:string -> op:string -> bool) option;
  mutable degraded : string option;
  mutable replay : Journal_ring.replay_summary option;
  mutable replay_warning : string option;
  counters : Stats.Counter.t;
  cache : cached Cache.t;
  page_prefetch : (int, Block_device.ticket) Hashtbl.t;
      (* speculative index-page reads submitted ahead of the descent
         (async devices only), keyed by first block.  [read_page] consumes
         a pending ticket instead of re-reading; checkpoint settles and
         drops leftovers alongside the page-cache invalidation. *)
  (* log-structured mode: payload extents bump-allocate inside per-zone
     segments; superseded blocks stay dirty until a purge or compaction
     destroys them (see segstore.ml).  [None] = classic update-in-place
     first-fit, kept on the same build for A/B comparison. *)
  segmented : bool;
  seg_blocks : int;
  segstore : Segstore.t option;
  mutable compacting : bool; (* reentrancy guard for the compactor *)
  mutable pool : Pool.t option; (* optional checksum-verify fan-out *)
}

let superblock_magic = "RGPDBFS1"
let root_magic = "RGPDROOT"
let meta_blocks_default = 128
let root_slot_blocks = 8
let default_cache_budget = 65536
let default_seg_blocks = 64

(* Compaction / backpressure policy (segmented mode only).  All figures
   are deterministic: the stall is simulated-clock time charged to the op
   that rode over the threshold, not host sleep. *)
let compact_liveness_pct = 35.0
let compact_batch = 8
let dirty_trigger_pct = 10 (* dirty blocks as % of data region: compact *)
let backpressure_pct = 25 (* dirty still above this after compacting: stall *)
let backpressure_stall_ns = 200_000

(* Forward references, wired once the compactor is defined below:
   [maintain] runs at the end of every mutator (space-driven compaction +
   backpressure); [space_reclaim] is the allocator's compact-and-retry
   hook.  Both are no-ops until wired and in update-in-place mode. *)
let maintain : (t -> unit) ref = ref (fun _ -> ())
let space_reclaim : (t -> unit) ref = ref (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* guard                                                              *)

let guard t ~actor ~op =
  match t.hook with
  | None -> Ok ()
  | Some check ->
      if check ~actor ~op then Ok ()
      else begin
        Stats.Counter.incr t.counters "denials";
        Error
          (Access_denied
             (Printf.sprintf "actor %s may not perform %s on DBFS" actor op))
      end

let ( let** ) r f = match r with Error e -> Error e | Ok v -> f v

(* ------------------------------------------------------------------ *)
(* fault handling                                                     *)

let retry_limit = 3

let retry_backoff_ns = 50_000 (* 50us, doubling per attempt *)

let retrying t f =
  let rec go attempt =
    try f ()
    with Block_device.Faulted _ when attempt < retry_limit ->
      Stats.Counter.incr t.counters "fault_retries";
      Clock.advance (Block_device.clock t.dev) (retry_backoff_ns lsl attempt);
      go (attempt + 1)
  in
  go 0

let check_degraded t =
  match t.degraded with Some reason -> Error (Degraded reason) | None -> Ok ()

let enter_degraded t reason =
  if t.degraded = None then begin
    t.degraded <- Some reason;
    Stats.Counter.incr t.counters "degraded_entries"
  end;
  Error (Degraded reason)

let protect_write t thunk =
  try thunk ()
  with Block_device.Faulted b ->
    enter_degraded t (Printf.sprintf "unrecoverable device fault on block %d" b)

let protect_read thunk =
  try thunk ()
  with Block_device.Faulted b ->
    Error (Device_fault (Printf.sprintf "block %d failed after retries" b))

(* Read paths that may also descend on-device metadata trees: a page that
   fails its checksum surfaces as [Corrupt] rather than an exception. *)
let protect_pages thunk =
  try thunk () with
  | Block_device.Faulted b ->
      Error (Device_fault (Printf.sprintf "block %d failed after retries" b))
  | Pagestore.Corrupt_page b ->
      Error
        (Corrupt (Printf.sprintf "metadata page at block %d fails its checksum" b))

let charge_checksum t size =
  Clock.advance (Block_device.clock t.dev) (max 1 (size / 64))

(* ------------------------------------------------------------------ *)
(* geometry                                                           *)

let block_size t = (Block_device.config t.dev).Block_device.block_size

let total_blocks t = (Block_device.config t.dev).Block_device.block_count

let blocks_needed t len = if len = 0 then 0 else ((len - 1) / block_size t) + 1

(* Data-region layout (unchanged since the zoned-allocation PR):

   [data_start, rec_start)   membrane zone (one per entry, any sensitivity)
   [rec_start,  high_start)  ordinary records
   [high_start, block_count) High-sensitivity records (stored apart, §3(1)) *)
let compute_rec_start ~data_start ~block_count =
  data_start + ((block_count - data_start) / 4)

let compute_high_start ~data_start ~block_count =
  let rec_start = compute_rec_start ~data_start ~block_count in
  rec_start + ((block_count - rec_start) * 3 / 4)

let rec_start t =
  compute_rec_start ~data_start:t.data_start ~block_count:(total_blocks t)

(* Metadata region layout.  The region holds, in order: two root slots
   (A/B, written alternately so a torn root write can never lose both),
   the allocation bitmap, and two tree heap halves.  Each checkpoint
   bulk-writes the entries + index trees into the half the previous
   checkpoint did NOT use, then commits by writing the next root slot;
   the old half is zeroed only after the commit. *)
let bitmap_blocks_for ~block_count ~block_size =
  ((block_count + 7) / 8 + block_size - 1) / block_size

let heap_cap_for ~meta_blocks ~bitmap_blocks =
  (meta_blocks - (2 * root_slot_blocks) - bitmap_blocks) / 2

let root_slot_start t slot = t.meta_start + (slot * root_slot_blocks)
let bitmap_start t = t.meta_start + (2 * root_slot_blocks)

let heap_start t half =
  t.meta_start + (2 * root_slot_blocks) + t.bitmap_blocks + (half * t.heap_cap)

(* ------------------------------------------------------------------ *)
(* free map (lazy-hydrated allocation bitmap)                         *)

let free_map t =
  match t.free_state with
  | F_loaded a -> a
  | F_unloaded ->
      let n = total_blocks t - t.data_start in
      let a =
        if not t.bm_present then Array.make n true
        else begin
          let bs = block_size t in
          let nblocks = ((t.bm_bytes - 1) / bs) + 1 in
          let blocks = List.init nblocks (fun i -> bitmap_start t + i) in
          let got = retrying t (fun () -> Block_device.read_vec t.dev blocks) in
          let buf = Buffer.create (nblocks * bs) in
          List.iter (fun b -> Buffer.add_string buf (List.assoc b got)) blocks;
          let raw = Buffer.contents buf in
          Array.init n (fun i ->
              Char.code raw.[i lsr 3] land (1 lsl (i land 7)) <> 0)
        end
      in
      t.free_state <- F_loaded a;
      a

type zone = Z_membrane | Z_record of bool (* high? *)

let zone_idx = function
  | Z_membrane -> 0
  | Z_record false -> 1
  | Z_record true -> 2

(* Zone bounds in free-array coordinates (offset by data_start). *)
let zone_bounds t = function
  | Z_membrane -> (0, rec_start t - t.data_start)
  | Z_record false -> (rec_start t - t.data_start, t.high_start - t.data_start)
  | Z_record true -> (t.high_start - t.data_start, total_blocks t - t.data_start)

let zone_of_slot t i =
  if i < rec_start t - t.data_start then 0
  else if i < t.high_start - t.data_start then 1
  else 2

(* Rebuild the segment live table from the bitmap on first use after a
   mount (or an [Segstore.invalidate]).  Forcing [free_map] here is fine:
   callers only reach this once they are about to allocate or free. *)
let ensure_seg_hydrated t =
  match t.segstore with
  | Some ss when not (Segstore.hydrated ss) ->
      let free = free_map t in
      Segstore.hydrate ss
        ~is_free:(fun b -> free.(b - t.data_start))
        ~is_written:(fun b -> Block_device.is_written t.dev b)
  | _ -> ()

(* Bitmap transitions are idempotent (a no-op when the bit already holds
   the target value) so the segment live table can hang off them as pure
   write-through: replayed journal ops and live ops drive it through the
   exact same two functions.  [bytes], when known, is the payload size of
   the whole extent, attributed per block in extent order. *)
let extent_byte_at t ~bytes ~idx =
  match bytes with
  | None -> block_size t
  | Some total -> max 0 (min (block_size t) (total - (idx * block_size t)))

let mark_used ?bytes t blocks =
  let free = free_map t in
  ensure_seg_hydrated t;
  List.iteri
    (fun idx b ->
      let i = b - t.data_start in
      if free.(i) then begin
        free.(i) <- false;
        match t.segstore with
        | Some ss ->
            Segstore.note_alloc ss b ~bytes:(extent_byte_at t ~bytes ~idx)
        | None -> ()
      end)
    blocks

let mark_free ?bytes t blocks =
  let free = free_map t in
  ensure_seg_hydrated t;
  List.iteri
    (fun idx b ->
      let i = b - t.data_start in
      if not free.(i) then begin
        free.(i) <- true;
        let z = zone_of_slot t i in
        if i < t.hints.(z) then t.hints.(z) <- i;
        match t.segstore with
        | Some ss ->
            Segstore.note_free ss b
              ~bytes:(extent_byte_at t ~bytes ~idx)
              ~written:(Block_device.is_written t.dev b)
        | None -> ()
      end)
    blocks

(* Extent allocation: contiguous first-fit, falling back to scattered
   per-block first-fit when the zone is too fragmented to hold a single
   run.  Either way, failure rolls back every block taken.  The per-zone
   hint (every slot below it is allocated) lets the scan skip the densely
   packed prefix without changing which blocks first-fit would pick. *)
(* Segmented placement: bump-allocate at the zone's open segment.  The
   bitmap bits are NOT set here — they are set by [apply_op]'s
   [mark_used] once the op is journaled, so replay accounts identically.
   The bump pointer alone prevents double placement in the window
   between.  On exhaustion, compact once (wired below) and retry. *)
let alloc_seg t zone n =
  let ss = Option.get t.segstore in
  ensure_seg_hydrated t;
  let cls = zone_idx zone in
  match Segstore.alloc ss ~cls n with
  | Some blocks -> Some blocks
  | None ->
      !space_reclaim t;
      Segstore.alloc ss ~cls n

let alloc_zone t zone n =
  if n = 0 then Some []
  else if t.segmented then alloc_seg t zone n
  else begin
    let free = free_map t in
    let lo, hi = zone_bounds t zone in
    let z = zone_idx zone in
    let start_at = max lo t.hints.(z) in
    let result = ref None in
    let start = ref (-1) in
    let first_free = ref (-1) in
    let i = ref start_at in
    while !result = None && !i < hi do
      if free.(!i) then begin
        if !first_free < 0 then first_free := !i;
        if !start < 0 then start := !i;
        if !i - !start + 1 >= n then result := Some !start
      end
      else start := -1;
      incr i
    done;
    match !result with
    | Some s ->
        for j = s to s + n - 1 do
          free.(j) <- false
        done;
        (* the scan proved [start_at, first_free) is full; if the run began
           there too, everything below s + n is now allocated *)
        t.hints.(z) <- (if !first_free = s then s + n else !first_free);
        Some (List.init n (fun j -> t.data_start + s + j))
    | None ->
        let out = ref [] in
        let found = ref 0 in
        let j = ref start_at in
        while !found < n && !j < hi do
          if free.(!j) then begin
            free.(!j) <- false;
            out := (t.data_start + !j) :: !out;
            incr found
          end;
          incr j
        done;
        if !found < n then begin
          List.iter (fun b -> free.(b - t.data_start) <- true) !out;
          None
        end
        else begin
          (* every free slot below !j was just consumed *)
          t.hints.(z) <- !j;
          Some (List.rev !out)
        end
  end

let alloc_record_blocks t ~high n = alloc_zone t (Z_record high) n

let alloc_membrane_blocks t n = alloc_zone t Z_membrane n

let zero_and_free t blocks =
  let bs = block_size t in
  (match blocks with
  | [] -> ()
  | _ ->
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.map (fun b -> (b, String.make bs '\000')) blocks)));
  mark_free t blocks

(* Destroy every dirty (freed-but-unpurged) block on the store.  A fully
   dead sealed segment is reclaimed with per-block trims — the simulated
   erase-block discard: one command latency, zero bytes written, which is
   exactly the write-amplification win update-in-place cannot have (its
   scattered extents always share erase blocks with live neighbours).
   Segments still holding live data get their dead blocks forensically
   zeroed in one vectored write.

   Ordering rule (flush-before-destroy): the ring is flushed first so no
   buffered journal record can be rolled back by a crash while the blocks
   it references are already destroyed. *)
let purge_dirty t =
  match t.segstore with
  | None -> ()
  | Some ss ->
      ensure_seg_hydrated t;
      if Segstore.dirty_blocks ss > 0 then begin
        retrying t (fun () -> Journal_ring.flush t.ring);
        (* flush-before-destroy is a durability point: settle the flush
           before any referenced block is trimmed or zeroed *)
        Journal_ring.barrier t.ring;
        let bs = block_size t in
        let cfg = Block_device.config t.dev in
        Segstore.iter_segs ss (fun g ->
            match g.Segstore.g_state with
            | Segstore.S_sealed when g.Segstore.g_live = 0 ->
                let n = ref 0 in
                for b = g.Segstore.g_first to g.Segstore.g_first + g.Segstore.g_nblocks - 1 do
                  if Block_device.is_written t.dev b then begin
                    incr n;
                    Block_device.trim t.dev b
                  end
                done;
                if !n > 0 then begin
                  (* one discard command per segment *)
                  Clock.advance (Block_device.clock t.dev) cfg.Block_device.write_latency;
                  Stats.Counter.incr t.counters "segment_trims"
                end;
                Segstore.clear_dirty ss (Segstore.dirty_in ss g);
                Segstore.reclaim ss g;
                Stats.Counter.incr t.counters "segments_reclaimed"
            | _ -> ());
        (* whatever is still pending lives in segments that keep live
           data: forensically zero exactly those blocks, once each *)
        (match Segstore.take_dirty ss with
        | [] -> ()
        | dl ->
            retrying t (fun () ->
                Block_device.write_vec t.dev
                  (List.map (fun b -> (b, String.make bs '\000')) dl));
            Stats.Counter.incr t.counters ~by:(List.length dl)
              "purge_zeroed_blocks")
      end

let write_payload t payload blocks =
  let bs = block_size t in
  match blocks with
  | [] -> ()
  | _ ->
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.mapi
               (fun i b ->
                 ( b,
                   String.sub payload (i * bs)
                     (min bs (String.length payload - (i * bs))) ))
               blocks))

let read_payload t blocks size =
  let got = retrying t (fun () -> Block_device.read_vec t.dev blocks) in
  let buf = Buffer.create size in
  List.iter (fun b -> Buffer.add_string buf (List.assoc b got)) blocks;
  Buffer.sub buf 0 size

(* cache hit: simulated cost of the vectored read we did not perform *)
let charge_payload_read t blocks =
  retrying t (fun () -> Block_device.charge_read_vec t.dev blocks)

(* Channels the store's own async traffic queues on: negative so they can
   never collide with consumer-facing channels (DED shards use 0..n).
   [-1] is the journal ring's flush channel. *)
let compact_channel = -2
let prefetch_channel = -3

(* Async submission of [write_payload]'s vectored op: the bytes persist
   (and any write fault fires) at submit, the clock charge settles when
   the caller awaits the ticket at its durability barrier. *)
let submit_payload_write t payload blocks ~channel =
  let bs = block_size t in
  match blocks with
  | [] -> None
  | _ ->
      Some
        (retrying t (fun () ->
             Block_device.submit_write_vec t.dev ~channel
               (List.mapi
                  (fun i b ->
                    ( b,
                      String.sub payload (i * bs)
                        (min bs (String.length payload - (i * bs))) ))
                  blocks)))

(* ------------------------------------------------------------------ *)
(* shared LRU cache plumbing                                          *)

let cache_put t key v =
  let evicted = Cache.put t.cache key v in
  if evicted > 0 then Stats.Counter.incr t.counters ~by:evicted "cache_evictions"

let cache_find_membrane t pd_id =
  match Cache.find t.cache ("m:" ^ pd_id) with
  | Some (C_membrane m) -> Some m
  | _ -> None

let cache_find_record t pd_id =
  match Cache.find t.cache ("r:" ^ pd_id) with
  | Some (C_record r) -> Some r
  | _ -> None

let cache_mem_membrane t pd_id = Cache.mem t.cache ("m:" ^ pd_id)
let cache_mem_record t pd_id = Cache.mem t.cache ("r:" ^ pd_id)
let cache_put_membrane t pd_id m = cache_put t ("m:" ^ pd_id) (C_membrane m)
let cache_put_record t pd_id r = cache_put t ("r:" ^ pd_id) (C_record r)

(* Every path that changes an entry funnels through [apply_op], so this is
   the single invalidation point of the cache coherence rule. *)
let invalidate_caches t pd_id =
  Cache.remove t.cache ("m:" ^ pd_id);
  Cache.remove t.cache ("r:" ^ pd_id)

(* ------------------------------------------------------------------ *)
(* paged metadata I/O                                                 *)

(* The [Pagestore.io] DBFS hands to its trees.  Node pages are cached in
   the shared LRU under "p:<first block>"; a hit skips the host-side
   device read but charges the identical vectored-read cost, so warm and
   cold probes cost the same simulated time. *)
let page_io t =
  {
    Pagestore.page_size = block_size t;
    read_page =
      (fun first n ->
        Stats.Counter.incr t.counters "index_page_reads";
        let blocks = List.init n (fun i -> first + i) in
        let key = "p:" ^ string_of_int first in
        let assemble got =
          let buf = Buffer.create (n * block_size t) in
          List.iter (fun b -> Buffer.add_string buf (List.assoc b got)) blocks;
          let raw = Buffer.contents buf in
          cache_put t key (C_page raw);
          raw
        in
        match Cache.find t.cache key with
        | Some (C_page raw) ->
            Stats.Counter.incr t.counters "page_hits";
            (* a still-pending prefetch of this page has already charged
               its service; settle it rather than double-charging *)
            (match Hashtbl.find_opt t.page_prefetch first with
            | Some tk ->
                Hashtbl.remove t.page_prefetch first;
                ignore (Block_device.await t.dev tk)
            | None ->
                retrying t (fun () -> Block_device.charge_read_vec t.dev blocks));
            raw
        | _ -> (
            Stats.Counter.incr t.counters "page_misses";
            match Hashtbl.find_opt t.page_prefetch first with
            | Some tk ->
                (* prefetched earlier: the device service has been running
                   since submission, so awaiting here only charges what the
                   descent and decode did not already hide *)
                Hashtbl.remove t.page_prefetch first;
                assemble (Block_device.await t.dev tk)
            | None ->
                assemble
                  (retrying t (fun () -> Block_device.read_vec t.dev blocks))));
    prefetch_page =
      (fun first n ->
        if
          Block_device.async_enabled t.dev
          && (not (Cache.mem t.cache ("p:" ^ string_of_int first)))
          && not (Hashtbl.mem t.page_prefetch first)
        then
          let blocks = List.init n (fun i -> first + i) in
          let tk =
            retrying t (fun () ->
                Block_device.submit_read_vec t.dev ~channel:prefetch_channel
                  blocks)
          in
          Hashtbl.replace t.page_prefetch first tk);
    write_blocks =
      (fun ws -> retrying t (fun () -> Block_device.write_vec t.dev ws));
    alloc = (fun _ -> failwith "Dbfs: metadata page allocation outside checkpoint");
  }

(* Checkpoint-time io: same read/write path plus a bump allocator over the
   target heap half. *)
let ckpt_io t ~half used =
  let io = page_io t in
  {
    io with
    Pagestore.alloc =
      (fun n ->
        if !used + n > t.heap_cap then failwith "Dbfs: metadata heap overflow";
        let b = heap_start t half + !used in
        used := !used + n;
        b);
  }

(* ------------------------------------------------------------------ *)
(* journal ops (metadata only: no PD bytes ever enter the ring)       *)

type op =
  | J_create_type of string (* encoded schema: structure, not PD *)
  | J_insert of {
      pd_id : string;
      type_name : string;
      subject : string;
      high : bool;
      record_blocks : int list;
      record_size : int;
      record_sum : string;
      membrane_blocks : int list;
      membrane_size : int;
      membrane_sum : string;
    }
  | J_update_record of {
      pd_id : string;
      blocks : int list;
      size : int;
      sum : string;
    }
  | J_update_membrane of {
      pd_id : string;
      blocks : int list;
      size : int;
      sum : string;
    }
  | J_delete of string
  | J_erase of { pd_id : string; blocks : int list; size : int; sum : string }

let encode_op op =
  let w = Codec.Writer.create () in
  (match op with
  | J_create_type schema_bytes ->
      Codec.Writer.string w "ctype";
      Codec.Writer.string w schema_bytes
  | J_insert e ->
      Codec.Writer.string w "ins";
      Codec.Writer.string w e.pd_id;
      Codec.Writer.string w e.type_name;
      Codec.Writer.string w e.subject;
      Codec.Writer.bool w e.high;
      Codec.Writer.list w (Codec.Writer.int w) e.record_blocks;
      Codec.Writer.int w e.record_size;
      Codec.Writer.string w e.record_sum;
      Codec.Writer.list w (Codec.Writer.int w) e.membrane_blocks;
      Codec.Writer.int w e.membrane_size;
      Codec.Writer.string w e.membrane_sum
  | J_update_record { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "urec";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum
  | J_update_membrane { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "umbr";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum
  | J_delete pd_id ->
      Codec.Writer.string w "del";
      Codec.Writer.string w pd_id
  | J_erase { pd_id; blocks; size; sum } ->
      Codec.Writer.string w "ers";
      Codec.Writer.string w pd_id;
      Codec.Writer.list w (Codec.Writer.int w) blocks;
      Codec.Writer.int w size;
      Codec.Writer.string w sum);
  Codec.Writer.contents w

let decode_op s =
  let r = Codec.Reader.create s in
  let* tag = Codec.Reader.string r in
  match tag with
  | "ctype" ->
      let* schema_bytes = Codec.Reader.string r in
      Ok (J_create_type schema_bytes)
  | "ins" ->
      let* pd_id = Codec.Reader.string r in
      let* type_name = Codec.Reader.string r in
      let* subject = Codec.Reader.string r in
      let* high = Codec.Reader.bool r in
      let* record_blocks = Codec.Reader.list r Codec.Reader.int in
      let* record_size = Codec.Reader.int r in
      let* record_sum = Codec.Reader.string r in
      let* membrane_blocks = Codec.Reader.list r Codec.Reader.int in
      let* membrane_size = Codec.Reader.int r in
      let* membrane_sum = Codec.Reader.string r in
      Ok
        (J_insert
           {
             pd_id;
             type_name;
             subject;
             high;
             record_blocks;
             record_size;
             record_sum;
             membrane_blocks;
             membrane_size;
             membrane_sum;
           })
  | "urec" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_update_record { pd_id; blocks; size; sum })
  | "umbr" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_update_membrane { pd_id; blocks; size; sum })
  | "del" ->
      let* pd_id = Codec.Reader.string r in
      Ok (J_delete pd_id)
  | "ers" ->
      let* pd_id = Codec.Reader.string r in
      let* blocks = Codec.Reader.list r Codec.Reader.int in
      let* size = Codec.Reader.int r in
      let* sum = Codec.Reader.string r in
      Ok (J_erase { pd_id; blocks; size; sum })
  | other -> Error ("unknown DBFS journal op " ^ other)

(* ------------------------------------------------------------------ *)
(* entry codec + paged entry access                                   *)

let encode_entry w e =
  Codec.Writer.string w e.pd_id;
  Codec.Writer.string w e.type_name;
  Codec.Writer.string w e.subject;
  Codec.Writer.bool w e.high;
  Codec.Writer.list w (Codec.Writer.int w) e.record_blocks;
  Codec.Writer.int w e.record_size;
  Codec.Writer.string w e.record_sum;
  Codec.Writer.list w (Codec.Writer.int w) e.membrane_blocks;
  Codec.Writer.int w e.membrane_size;
  Codec.Writer.string w e.membrane_sum;
  Codec.Writer.bool w e.erased

let decode_entry r =
  let* pd_id = Codec.Reader.string r in
  let* type_name = Codec.Reader.string r in
  let* subject = Codec.Reader.string r in
  let* high = Codec.Reader.bool r in
  let* record_blocks = Codec.Reader.list r Codec.Reader.int in
  let* record_size = Codec.Reader.int r in
  let* record_sum = Codec.Reader.string r in
  let* membrane_blocks = Codec.Reader.list r Codec.Reader.int in
  let* membrane_size = Codec.Reader.int r in
  let* membrane_sum = Codec.Reader.string r in
  let* erased = Codec.Reader.bool r in
  Ok
    {
      pd_id;
      type_name;
      subject;
      high;
      record_blocks;
      record_size;
      record_sum;
      membrane_blocks;
      membrane_size;
      membrane_sum;
      erased;
    }

let decode_entry_raw raw = decode_entry (Codec.Reader.create raw)

(* Entry lookup: overlay first, then tombstones, then the checkpointed
   entries tree (O(height) cached page reads).  The returned entry is NOT
   installed in the overlay — reads never dirty it. *)
let find_entry t pd_id =
  match Hashtbl.find_opt t.entries pd_id with
  | Some e -> Ok e
  | None -> (
      if Hashtbl.mem t.deleted pd_id || Pagestore.is_empty t.entries_base then
        Error (Unknown_pd pd_id)
      else
        match Pagestore.lookup (page_io t) t.entries_base pd_id with
        | None -> Error (Unknown_pd pd_id)
        | Some raw -> (
            match decode_entry_raw raw with
            | Ok e -> Ok e
            | Error m -> Error (Corrupt ("entry " ^ pd_id ^ ": " ^ m)))
        | exception Block_device.Faulted b ->
            Error
              (Device_fault (Printf.sprintf "block %d failed after retries" b))
        | exception Pagestore.Corrupt_page b ->
            Error
              (Corrupt
                 (Printf.sprintf "entries tree page %d fails its checksum" b)))

(* Mutation-side lookup: pull the entry into the overlay so in-place field
   updates are remembered until the next checkpoint.  Raises [Not_found]
   for an unknown pd — journal replay turns that into a replay warning,
   exactly as the pre-paging code did. *)
let touch_entry t pd_id =
  match Hashtbl.find_opt t.entries pd_id with
  | Some e -> e
  | None -> (
      if Hashtbl.mem t.deleted pd_id || Pagestore.is_empty t.entries_base then
        raise Not_found
      else
        match Pagestore.lookup (page_io t) t.entries_base pd_id with
        | None -> raise Not_found
        | Some raw -> (
            match decode_entry_raw raw with
            | Ok e ->
                Hashtbl.replace t.entries pd_id e;
                e
            | Error _ -> raise Not_found))

(* Merged iteration in pd order (pd ids are zero-padded and monotone, so
   pd order IS insertion order): streams the base tree, shadowing by the
   overlay and suppressing tombstones.  With [on_corrupt], unreadable
   base pages are reported and skipped instead of raising. *)
let iter_entries ?on_corrupt t f =
  let mem =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> String.compare a.pd_id b.pd_id)
  in
  let rem = ref mem in
  let emit_below k =
    let continue_ = ref true in
    while !continue_ do
      match !rem with
      | e :: rest
        when match k with
             | None -> true
             | Some k -> String.compare e.pd_id k < 0 ->
          rem := rest;
          f e
      | _ -> continue_ := false
    done
  in
  if not (Pagestore.is_empty t.entries_base) then
    Pagestore.iter_from ?on_corrupt (page_io t) t.entries_base ~lo:""
      (fun k raw ->
        emit_below (Some k);
        (match !rem with
        | e :: rest when e.pd_id = k ->
            rem := rest;
            f e
        | _ ->
            if not (Hashtbl.mem t.deleted k) then (
              match decode_entry_raw raw with
              | Ok e -> f e
              | Error _ -> (
                  match on_corrupt with
                  | Some g -> g (-1)
                  | None ->
                      failwith ("Dbfs: undecodable entry " ^ k ^ " in tree"))));
        true);
  emit_below None

let collect_entries ?on_corrupt t =
  let acc = ref [] in
  iter_entries ?on_corrupt t (fun e -> acc := e :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* index write-through                                                *)

type hint = { h_record : Record.t option; h_membrane : Membrane.t option }

let no_hint = { h_record = None; h_membrane = None }

let indexed_fields_of t type_name =
  match Hashtbl.find_opt t.tables type_name with
  | Some tbl -> tbl.schema.Schema.indexed_fields
  | None -> []

(* Best-effort decode helpers (index maintenance, fsck): an extent that
   cannot be read even after retries yields [None] rather than raising —
   the callers treat it the same as an undecodable payload. *)
let decode_record_at t blocks size =
  match
    try Record.decode (read_payload t blocks size)
    with Block_device.Faulted b -> Error (Printf.sprintf "block %d faulted" b)
  with
  | Ok r -> Some r
  | Error _ -> None

let decode_membrane_at t blocks size =
  match
    try Membrane.decode (read_payload t blocks size)
    with Block_device.Faulted b -> Error (Printf.sprintf "block %d faulted" b)
  with
  | Ok m -> Some m
  | Error _ -> None

let expiry_instant m =
  match m.Membrane.ttl with
  | None -> None
  | Some ttl -> Some (m.Membrane.created_at + ttl)

let index_put_record t ~pd_id ~type_name ~hint ~blocks ~size =
  let indexed = indexed_fields_of t type_name in
  if indexed <> [] then
    let record =
      match hint.h_record with
      | Some r -> Some r
      | None -> decode_record_at t blocks size
    in
    match record with
    | Some record -> Index.add_entry t.index ~pd_id ~type_name ~indexed record
    | None -> ()

let index_put_membrane t ~pd_id ~hint ~blocks ~size =
  let membrane =
    match hint.h_membrane with
    | Some m -> Some m
    | None -> decode_membrane_at t blocks size
  in
  match membrane with
  | Some m -> Index.set_expiry t.index ~pd_id (expiry_instant m)
  | None -> ()

(* [freed_acc], passed by mount-time replay, collects every block an op
   frees.  Live mutators zero old blocks AFTER the journal record commits,
   so a crash in that window leaves plaintext on blocks the replayed
   metadata considers free; replay zeroes whichever of them are still free
   once the whole journal is applied. *)
let apply_op ?(hint = no_hint) ?freed_acc t op =
  let note_freed blocks =
    match freed_acc with
    | Some acc -> acc := List.rev_append blocks !acc
    | None -> ()
  in
  (match op with
  | J_create_type _ -> ()
  | J_insert { pd_id; _ }
  | J_update_record { pd_id; _ }
  | J_update_membrane { pd_id; _ }
  | J_delete pd_id
  | J_erase { pd_id; _ } ->
      invalidate_caches t pd_id);
  match op with
  | J_create_type schema_bytes -> (
      match Schema.decode schema_bytes with
      | Error e -> failwith ("DBFS: corrupt schema in journal: " ^ e)
      | Ok schema -> Hashtbl.replace t.tables schema.Schema.name { schema })
  | J_insert e ->
      let entry =
        {
          pd_id = e.pd_id;
          type_name = e.type_name;
          subject = e.subject;
          high = e.high;
          record_blocks = e.record_blocks;
          record_size = e.record_size;
          record_sum = e.record_sum;
          membrane_blocks = e.membrane_blocks;
          membrane_size = e.membrane_size;
          membrane_sum = e.membrane_sum;
          erased = false;
        }
      in
      if not (Hashtbl.mem t.tables e.type_name) then
        failwith "DBFS: insert into unknown table during apply";
      Hashtbl.replace t.entries e.pd_id entry;
      Hashtbl.remove t.deleted e.pd_id;
      t.entry_count <- t.entry_count + 1;
      mark_used t ~bytes:e.record_size e.record_blocks;
      mark_used t ~bytes:e.membrane_size e.membrane_blocks;
      Index.add_subject t.index ~subject:e.subject ~pd_id:e.pd_id;
      index_put_record t ~pd_id:e.pd_id ~type_name:e.type_name ~hint
        ~blocks:e.record_blocks ~size:e.record_size;
      index_put_membrane t ~pd_id:e.pd_id ~hint ~blocks:e.membrane_blocks
        ~size:e.membrane_size;
      (* keep pd counter ahead of any replayed id *)
      (match
         int_of_string_opt (String.sub e.pd_id 3 (String.length e.pd_id - 3))
       with
      | Some n when n >= t.next_pd -> t.next_pd <- n + 1
      | _ -> ())
  | J_update_record { pd_id; blocks; size; sum } ->
      let entry = touch_entry t pd_id in
      note_freed entry.record_blocks;
      mark_free t ~bytes:entry.record_size entry.record_blocks;
      mark_used t ~bytes:size blocks;
      entry.record_blocks <- blocks;
      entry.record_size <- size;
      entry.record_sum <- sum;
      index_put_record t ~pd_id ~type_name:entry.type_name ~hint ~blocks ~size
  | J_update_membrane { pd_id; blocks; size; sum } ->
      let entry = touch_entry t pd_id in
      note_freed entry.membrane_blocks;
      mark_free t ~bytes:entry.membrane_size entry.membrane_blocks;
      mark_used t ~bytes:size blocks;
      entry.membrane_blocks <- blocks;
      entry.membrane_size <- size;
      entry.membrane_sum <- sum;
      (* consent flips and TTL changes land here: re-key the expiry queue.
         An erased pd keeps its membrane (the subject link) but must never
         re-enter the expiry queue — its record is already gone. *)
      if entry.erased then Index.clear_expiry t.index ~pd_id
      else index_put_membrane t ~pd_id ~hint ~blocks ~size
  | J_delete pd_id ->
      let entry = touch_entry t pd_id in
      note_freed entry.record_blocks;
      note_freed entry.membrane_blocks;
      mark_free t ~bytes:entry.record_size entry.record_blocks;
      mark_free t ~bytes:entry.membrane_size entry.membrane_blocks;
      Hashtbl.remove t.entries pd_id;
      Hashtbl.replace t.deleted pd_id ();
      t.entry_count <- t.entry_count - 1;
      Index.remove_entry t.index ~pd_id;
      Index.remove_subject t.index ~subject:entry.subject ~pd_id;
      Index.clear_expiry t.index ~pd_id
  | J_erase { pd_id; blocks; size; sum } ->
      let entry = touch_entry t pd_id in
      note_freed entry.record_blocks;
      mark_free t ~bytes:entry.record_size entry.record_blocks;
      mark_used t ~bytes:size blocks;
      entry.record_blocks <- blocks;
      entry.record_size <- size;
      entry.record_sum <- sum;
      entry.erased <- true;
      (* sealed payload is not PD: no field keys, no expiry; the subject
         link stays (erasure seals the pd, it does not unlink it) *)
      Index.remove_entry t.index ~pd_id;
      Index.clear_expiry t.index ~pd_id

(* ------------------------------------------------------------------ *)
(* root slots                                                         *)

(* The root slot is the whole of the mount-time state: tree roots, journal
   position, schemas and a few counters.  Everything population-sized
   (entries, index facts, the bitmap) lives behind the roots and is read
   on demand — which is what makes a clean mount O(1) device reads. *)

let encode_root_payload t ~seq =
  let w = Codec.Writer.create () in
  Codec.Writer.string w root_magic;
  Codec.Writer.int w seq;
  Codec.Writer.int w t.next_pd;
  Codec.Writer.int w (Journal_ring.head t.ring);
  Codec.Writer.int w (Journal_ring.seq t.ring);
  let schemas =
    Hashtbl.fold (fun name tbl acc -> (name, Schema.encode tbl.schema) :: acc)
      t.tables []
    |> List.sort compare
  in
  Codec.Writer.list w (fun (_, enc) -> Codec.Writer.string w enc) schemas;
  Codec.Writer.int w t.active_half;
  Codec.Writer.int w t.heap_used;
  Codec.Writer.int w t.entry_count;
  Pagestore.encode_root w t.entries_base;
  Index.encode_roots w t.index_roots;
  Codec.Writer.bool w t.bm_present;
  Codec.Writer.int w t.bm_bytes;
  Codec.Writer.contents w

type root_state = {
  rs_seq : int;
  rs_next_pd : int;
  rs_jhead : int;
  rs_jseq : int;
  rs_schemas : Schema.t list;
  rs_active_half : int;
  rs_heap_used : int;
  rs_entry_count : int;
  rs_entries_base : Pagestore.root;
  rs_index_roots : Index.roots;
  rs_bm_present : bool;
  rs_bm_bytes : int;
}

let decode_root_payload payload =
  let r = Codec.Reader.create payload in
  let* magic = Codec.Reader.string r in
  if magic <> root_magic then Error "bad DBFS root magic"
  else
    let* rs_seq = Codec.Reader.int r in
    let* rs_next_pd = Codec.Reader.int r in
    let* rs_jhead = Codec.Reader.int r in
    let* rs_jseq = Codec.Reader.int r in
    let* rs_schemas =
      Codec.Reader.list r (fun r ->
          let* enc = Codec.Reader.string r in
          Schema.decode enc)
    in
    let* rs_active_half = Codec.Reader.int r in
    let* rs_heap_used = Codec.Reader.int r in
    let* rs_entry_count = Codec.Reader.int r in
    let* rs_entries_base = Pagestore.decode_root r in
    let* rs_index_roots = Index.decode_roots r in
    let* rs_bm_present = Codec.Reader.bool r in
    let* rs_bm_bytes = Codec.Reader.int r in
    Ok
      {
        rs_seq;
        rs_next_pd;
        rs_jhead;
        rs_jseq;
        rs_schemas;
        rs_active_half;
        rs_heap_used;
        rs_entry_count;
        rs_entries_base;
        rs_index_roots;
        rs_bm_present;
        rs_bm_bytes;
      }

(* A torn or unwritten slot reads as garbage/zeros and simply fails to
   parse or checksum; mount falls back to the other slot. *)
let read_root_slot dev ~start ~block_size:bs =
  match
    Block_device.read_vec dev (List.init root_slot_blocks (fun i -> start + i))
  with
  | exception Block_device.Faulted _ -> None
  | got -> (
      let buf = Buffer.create (root_slot_blocks * bs) in
      List.iter
        (fun i -> Buffer.add_string buf (List.assoc i got))
        (List.init root_slot_blocks (fun i -> start + i));
      let raw = Buffer.contents buf in
      let parse =
        let r = Codec.Reader.create raw in
        let* payload = Codec.Reader.string r in
        if String.length raw < 4 + String.length payload + 16 then
          Error "truncated DBFS root slot"
        else if
          String.sub raw (4 + String.length payload) 16
          <> Fnv.hash64_hex payload
        then Error "DBFS root checksum mismatch"
        else decode_root_payload payload
      in
      match parse with Ok rs -> Some rs | Error _ -> None)

(* Write the next root: slot alternates with the sequence number, so the
   previous root survives a torn write of this one.  This is the single
   commit point of a checkpoint. *)
let commit_root t =
  let bs = block_size t in
  let seq = t.root_seq + 1 in
  let payload = encode_root_payload t ~seq in
  let framed =
    let w = Codec.Writer.create () in
    Codec.Writer.string w payload;
    Codec.Writer.contents w ^ Fnv.hash64_hex payload
  in
  if String.length framed > root_slot_blocks * bs then
    failwith "Dbfs: root slot overflow";
  let nblocks = ((String.length framed - 1) / bs) + 1 in
  let start = root_slot_start t (seq land 1) in
  retrying t (fun () ->
      Block_device.write_vec t.dev
        (List.init nblocks (fun i ->
             ( start + i,
               String.sub framed (i * bs)
                 (min bs (String.length framed - (i * bs))) ))));
  t.root_seq <- seq

(* ------------------------------------------------------------------ *)
(* checkpoint                                                         *)

(* Checkpoint ordering rule (see DESIGN.md):

     1. bulk-write every tree into the inactive heap half;
     2. serialize the allocation bitmap (when hydrated);
     3. write the next root slot   <- the commit point;
     4. retire the journal prefix;
     5. zero the old heap half;
     6. drop cached node pages of the retired trees.

   The root is journalled (written) only after every node it references
   persists, so a crash at any step leaves either the old root (with the
   old half intact and the journal still replayable) or the new root
   (with the new half complete) — never a root pointing at missing
   pages. *)
let checkpoint t =
  let target = 1 - t.active_half in
  let used = ref 0 in
  let io = ckpt_io t ~half:target used in
  let items = ref [] in
  iter_entries t (fun e ->
      let w = Codec.Writer.create () in
      encode_entry w e;
      items := (e.pd_id, Codec.Writer.contents w) :: !items);
  let entries_root = Pagestore.write_tree io (List.rev !items) in
  let iroots = Index.checkpoint t.index ~io in
  (match t.free_state with
  | F_unloaded -> () (* no allocation since mount: device bitmap is current *)
  | F_loaded free ->
      let n = Array.length free in
      let bytes = Bytes.make ((n + 7) / 8) '\000' in
      Array.iteri
        (fun i is_free ->
          if is_free then
            Bytes.set bytes (i lsr 3)
              (Char.chr
                 (Char.code (Bytes.get bytes (i lsr 3)) lor (1 lsl (i land 7)))))
        free;
      let raw = Bytes.unsafe_to_string bytes in
      let bs = block_size t in
      let nblocks = ((String.length raw - 1) / bs) + 1 in
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.init nblocks (fun i ->
                 ( bitmap_start t + i,
                   String.sub raw (i * bs)
                     (min bs (String.length raw - (i * bs))) ))));
      t.bm_present <- true;
      t.bm_bytes <- String.length raw);
  let old_half = t.active_half in
  let old_used = t.heap_used in
  t.entries_base <- entries_root;
  t.index_roots <- iroots;
  t.active_half <- target;
  t.heap_used <- !used;
  commit_root t;
  (* durability barrier: settle async flush submissions (their bytes are
     already on the medium) before retiring the journal prefix *)
  Journal_ring.barrier t.ring;
  Journal_ring.mark_checkpointed t.ring;
  (* deallocation hygiene: the retired half held index facts (subjects,
     field values) — zero whatever was actually written there *)
  let bs = block_size t in
  let stale =
    List.init old_used (fun i -> heap_start t old_half + i)
    |> List.filter (Block_device.is_written t.dev)
  in
  (match stale with
  | [] -> ()
  | _ ->
      retrying t (fun () ->
          Block_device.write_vec t.dev
            (List.map (fun b -> (b, String.make bs '\000')) stale)));
  (* eviction-coherence: cached node pages name heap blocks the next
     checkpoint will reuse — drop them at the generation boundary.  Any
     speculative prefetch still in flight targets the dying generation
     too: settle its charge and forget the ticket. *)
  Hashtbl.iter
    (fun _ tk -> ignore (Block_device.await t.dev tk))
    t.page_prefetch;
  Hashtbl.reset t.page_prefetch;
  Cache.remove_where t.cache (fun k -> String.length k > 2 && k.[0] = 'p');
  Hashtbl.reset t.entries;
  Hashtbl.reset t.deleted

let log_and_apply ?hint t op =
  retrying t (fun () ->
      Journal_ring.append t.ring
        ~on_overflow:(fun () -> checkpoint t)
        (encode_op op));
  apply_op ?hint t op

(* ------------------------------------------------------------------ *)
(* construction                                                       *)

(* Segment store covering the three data zones, one class per zone. *)
let make_segstore ~segmented ~seg_blocks ~data_start ~block_count =
  if not segmented then None
  else begin
    let rs = compute_rec_start ~data_start ~block_count in
    let hs = compute_high_start ~data_start ~block_count in
    Some
      (Segstore.create ~seg_blocks
         ~zones:[ (data_start, rs); (rs, hs); (hs, block_count) ])
  end

let format ?(segmented = false) ?(seg_blocks = default_seg_blocks) dev
    ~journal_blocks =
  let cfg = Block_device.config dev in
  let block_count = cfg.Block_device.block_count in
  let bs = cfg.Block_device.block_size in
  (* The metadata region holds the root slots, the allocation bitmap and
     two tree-heap halves; a checkpoint rewrites one whole half, so the
     region scales with the device (1/4) rather than the old flat 1/16.
     [mount] reads the figure from the superblock, so the layout stays
     self-describing. *)
  let meta_blocks = max meta_blocks_default (block_count / 4) in
  let data_start = 1 + journal_blocks + meta_blocks in
  if data_start >= block_count then invalid_arg "Dbfs.format: device too small";
  let bitmap_blocks = bitmap_blocks_for ~block_count ~block_size:bs in
  let heap_cap = heap_cap_for ~meta_blocks ~bitmap_blocks in
  if heap_cap < 1 then invalid_arg "Dbfs.format: device too small";
  let w = Codec.Writer.create () in
  Codec.Writer.string w superblock_magic;
  Codec.Writer.int w journal_blocks;
  Codec.Writer.int w meta_blocks;
  Codec.Writer.bool w segmented;
  Codec.Writer.int w seg_blocks;
  Block_device.write dev 0 (Codec.Writer.contents w);
  let t =
    {
      dev;
      ring = Journal_ring.create dev ~start_block:1 ~num_blocks:journal_blocks;
      journal_blocks;
      meta_start = 1 + journal_blocks;
      meta_blocks;
      bitmap_blocks;
      heap_cap;
      data_start;
      high_start = compute_high_start ~data_start ~block_count;
      tables = Hashtbl.create 8;
      entries = Hashtbl.create 256;
      deleted = Hashtbl.create 64;
      entries_base = Pagestore.empty_root;
      entry_count = 0;
      index = Index.create ();
      index_roots = Index.empty_roots;
      free_state = F_loaded (Array.make (block_count - data_start) true);
      bm_present = false;
      bm_bytes = 0;
      hints = [| 0; 0; 0 |];
      active_half = 0;
      heap_used = 0;
      root_seq = 0;
      next_pd = 0;
      hook = None;
      degraded = None;
      replay = None;
      replay_warning = None;
      counters = Stats.Counter.create ();
      cache = Cache.create ~budget:default_cache_budget;
      page_prefetch = Hashtbl.create 16;
      segmented;
      seg_blocks;
      segstore = make_segstore ~segmented ~seg_blocks ~data_start ~block_count;
      compacting = false;
      pool = None;
    }
  in
  commit_root t;
  t

let mount dev =
  let raw = Block_device.read dev 0 in
  let r = Codec.Reader.create raw in
  let parse_super =
    let* magic = Codec.Reader.string r in
    if magic <> superblock_magic then Error "bad DBFS superblock magic"
    else
      let* journal_blocks = Codec.Reader.int r in
      let* meta_blocks = Codec.Reader.int r in
      (* segmented-mode fields; absent on stores formatted before them *)
      let segmented, seg_blocks =
        match Codec.Reader.bool r with
        | Ok s -> (
            match Codec.Reader.int r with
            | Ok n when n > 0 -> (s, n)
            | _ -> (false, default_seg_blocks))
        | Error _ -> (false, default_seg_blocks)
      in
      Ok (journal_blocks, meta_blocks, segmented, seg_blocks)
  in
  match parse_super with
  | Error e -> Error e
  | Ok (journal_blocks, meta_blocks, segmented, seg_blocks) -> (
      let cfg = Block_device.config dev in
      let block_count = cfg.Block_device.block_count in
      let bs = cfg.Block_device.block_size in
      let meta_start = 1 + journal_blocks in
      let slot_a = read_root_slot dev ~start:meta_start ~block_size:bs in
      let slot_b =
        read_root_slot dev ~start:(meta_start + root_slot_blocks) ~block_size:bs
      in
      let best =
        match (slot_a, slot_b) with
        | None, None -> None
        | Some a, None -> Some a
        | None, Some b -> Some b
        | Some a, Some b -> Some (if a.rs_seq >= b.rs_seq then a else b)
      in
      match best with
      | None -> Error "no valid DBFS root"
      | Some rs ->
          let data_start = 1 + journal_blocks + meta_blocks in
          let t =
            {
              dev;
              ring =
                Journal_ring.attach dev ~start_block:1
                  ~num_blocks:journal_blocks ~head:rs.rs_jhead ~seq:rs.rs_jseq;
              journal_blocks;
              meta_start;
              meta_blocks;
              bitmap_blocks = bitmap_blocks_for ~block_count ~block_size:bs;
              heap_cap =
                heap_cap_for ~meta_blocks
                  ~bitmap_blocks:(bitmap_blocks_for ~block_count ~block_size:bs);
              data_start;
              high_start = compute_high_start ~data_start ~block_count;
              tables = Hashtbl.create 8;
              entries = Hashtbl.create 256;
              deleted = Hashtbl.create 64;
              entries_base = rs.rs_entries_base;
              entry_count = rs.rs_entry_count;
              index = Index.create ();
              index_roots = rs.rs_index_roots;
              free_state = F_unloaded;
              bm_present = rs.rs_bm_present;
              bm_bytes = rs.rs_bm_bytes;
              hints = [| 0; 0; 0 |];
              active_half = rs.rs_active_half;
              heap_used = rs.rs_heap_used;
              root_seq = rs.rs_seq;
              next_pd = rs.rs_next_pd;
              hook = None;
              degraded = None;
              replay = None;
              replay_warning = None;
              counters = Stats.Counter.create ();
              cache = Cache.create ~budget:default_cache_budget;
              page_prefetch = Hashtbl.create 16;
              segmented;
              seg_blocks;
              segstore =
                make_segstore ~segmented ~seg_blocks ~data_start ~block_count;
              compacting = false;
              pool = None;
            }
          in
          (* attaching reads no pages — a clean mount touches only the
             superblock, the two root slots and the journal probe *)
          t.index <- Index.attach ~io:(page_io t) rs.rs_index_roots;
          List.iter
            (fun schema ->
              Hashtbl.replace t.tables schema.Schema.name { schema })
            rs.rs_schemas;
          (* exn-free replay: a record that frames correctly but fails to
             decode or apply stops further application and flips the store
             into degraded read-only mode instead of failing the mount *)
          let freed = ref [] in
          let summary =
            Journal_ring.replay t.ring (fun payload ->
                if t.replay_warning = None then
                  match decode_op payload with
                  | Ok op -> (
                      try apply_op t ~freed_acc:freed op with
                      | Failure m -> t.replay_warning <- Some m
                      | Not_found ->
                          t.replay_warning <-
                            Some "journal op references an unknown pd")
                  | Error e ->
                      t.replay_warning <- Some ("corrupt journal op: " ^ e))
          in
          t.replay <- Some summary;
          (match t.replay_warning with
          | Some m ->
              t.degraded <- Some ("journal replay: " ^ m);
              Stats.Counter.incr t.counters "degraded_entries"
          | None -> ());
          (* close the commit->zero crash window: any block a replayed op
             freed and nothing later reused must not keep its old
             plaintext.  A clean mount has no replayed ops and skips this
             (and the bitmap hydration it would force) entirely. *)
          (match !freed with
          | [] -> ()
          | freed_blocks ->
              let free = free_map t in
              let leftover =
                List.sort_uniq compare freed_blocks
                |> List.filter (fun b ->
                       free.(b - t.data_start)
                       && Block_device.is_written t.dev b)
              in
              match leftover with
              | [] -> ()
              | _ ->
                  Stats.Counter.incr t.counters
                    ~by:(List.length leftover)
                    "replay_zeroed_blocks";
                  retrying t (fun () ->
                      Block_device.write_vec t.dev
                        (List.map
                           (fun b -> (b, String.make bs '\000'))
                           leftover)));
          Ok t)

let device t = t.dev

type layout = {
  l_data_start : int;
  l_rec_start : int;
  l_high_start : int;
  l_block_count : int;
}

let layout t =
  {
    l_data_start = t.data_start;
    l_rec_start = rec_start t;
    l_high_start = t.high_start;
    l_block_count = total_blocks t;
  }

let set_access_hook t hook = t.hook <- Some hook

(* ------------------------------------------------------------------ *)
(* schema tree                                                        *)

let create_type t ~actor schema =
  let** () = guard t ~actor ~op:"create_type" in
  let** () = check_degraded t in
  let name = schema.Schema.name in
  if Hashtbl.mem t.tables name then Error (Type_exists name)
  else
    protect_write t (fun () ->
        Stats.Counter.incr t.counters "create_type";
        log_and_apply t (J_create_type (Schema.encode schema));
        Ok ())

let schema t ~actor name =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl.schema
  | None -> Error (Unknown_type name)

let list_types t ~actor =
  let** () = guard t ~actor ~op:"read" in
  Ok (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* PD entries                                                         *)

let entry_blocks t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Ok (e.record_blocks, e.membrane_blocks)

let insert t ~actor ~subject ~type_name ~record ~membrane_of =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl -> (
      match Schema.validate_record tbl.schema record with
      | Error e -> Error (Invalid_record e)
      | Ok () -> (
          let pd_id = Printf.sprintf "pd-%08d" t.next_pd in
          let membrane = membrane_of ~pd_id in
          (* enforcement rule 3: the membrane must wrap THIS pd *)
          if membrane.Membrane.pd_id <> pd_id then
            Error (Membrane_mismatch "membrane wraps a different pd_id")
          else if membrane.Membrane.type_name <> type_name then
            Error (Membrane_mismatch "membrane declares a different type")
          else if membrane.Membrane.subject_id <> subject then
            Error (Membrane_mismatch "membrane names a different subject")
          else
            let high = membrane.Membrane.sensitivity = Membrane.High in
            let record_bytes = Record.encode record in
            let membrane_bytes = Membrane.encode membrane in
            let rn = blocks_needed t (String.length record_bytes) in
            let mn = blocks_needed t (String.length membrane_bytes) in
            match alloc_record_blocks t ~high rn with
            | None -> Error No_space
            | Some record_blocks -> (
                match alloc_membrane_blocks t mn with
                | None ->
                    mark_free t record_blocks;
                    Error No_space
                | Some membrane_blocks ->
                    protect_write t (fun () ->
                        (* ordered mode: data in place first, then journal *)
                        write_payload t record_bytes record_blocks;
                        write_payload t membrane_bytes membrane_blocks;
                        t.next_pd <- t.next_pd + 1;
                        log_and_apply t
                          ~hint:
                            { h_record = Some record; h_membrane = Some membrane }
                          (J_insert
                             {
                               pd_id;
                               type_name;
                               subject;
                               high;
                               record_blocks;
                               record_size = String.length record_bytes;
                               record_sum = Fnv.hash64_hex record_bytes;
                               membrane_blocks;
                               membrane_size = String.length membrane_bytes;
                               membrane_sum = Fnv.hash64_hex membrane_bytes;
                             });
                        Stats.Counter.incr t.counters "inserts";
                        (* write-through: the values just validated and
                           encoded are exactly what a read would decode *)
                        cache_put_membrane t pd_id membrane;
                        cache_put_record t pd_id record;
                        !maintain t;
                        Ok pd_id))))

(* Verify an extent's checksum against the raw bytes just read.  An empty
   stored sum means "no checksum recorded" (never the case for entries
   written by this code, but kept permissive). *)
let verify_sum ~what ~pd_id ~stored raw =
  if stored <> "" && Fnv.hash64_hex raw <> stored then
    Error (Corrupt (what ^ " of " ^ pd_id ^ ": extent checksum mismatch"))
  else Ok raw

let get_membrane t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Stats.Counter.incr t.counters "membrane_reads";
  match cache_find_membrane t pd_id with
  | Some m ->
      Stats.Counter.incr t.counters "cache_hits";
      protect_read (fun () ->
          charge_payload_read t e.membrane_blocks;
          charge_checksum t e.membrane_size;
          Ok m)
  | None ->
      Stats.Counter.incr t.counters "cache_misses";
      protect_read (fun () ->
          let raw = read_payload t e.membrane_blocks e.membrane_size in
          charge_checksum t e.membrane_size;
          let** raw =
            verify_sum ~what:"membrane" ~pd_id ~stored:e.membrane_sum raw
          in
          match Membrane.decode raw with
          | Ok m ->
              cache_put_membrane t pd_id m;
              Ok m
          | Error msg -> Error (Corrupt ("membrane of " ^ pd_id ^ ": " ^ msg)))

let get_record t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else begin
    Stats.Counter.incr t.counters "record_reads";
    match cache_find_record t pd_id with
    | Some r ->
        Stats.Counter.incr t.counters "cache_hits";
        protect_read (fun () ->
            charge_payload_read t e.record_blocks;
            charge_checksum t e.record_size;
            Ok r)
    | None ->
        Stats.Counter.incr t.counters "cache_misses";
        protect_read (fun () ->
            let raw = read_payload t e.record_blocks e.record_size in
            charge_checksum t e.record_size;
            let** raw =
              verify_sum ~what:"record" ~pd_id ~stored:e.record_sum raw
            in
            match Record.decode raw with
            | Ok r ->
                cache_put_record t pd_id r;
                Ok r
            | Error msg -> Error (Corrupt ("record of " ^ pd_id ^ ": " ^ msg)))
  end

(* ---------- batched reads (the DED's vectored load path) ----------

   One vectored device request covers every pd in the selection, so the
   fixed seek latency is paid once per contiguous run of the union rather
   than once per pd.  Cost transparency is preserved: cached entries'
   blocks stay in the request (only the host-side decode is skipped), so
   a warm cache changes no stage_ns figure. *)

let resolve_entries t pd_ids =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | pd_id :: rest -> (
        match find_entry t pd_id with
        | Ok e -> go (e :: acc) rest
        | Error e -> Error e)
  in
  go [] pd_ids

(* Issue the batch request for [blocks]: a full [read_vec] when at least
   one entry needs bytes, a cost-only [charge_read_vec] when every entry
   is cached.  Returns an index->contents lookup. *)
let batch_read t ~any_miss blocks =
  if any_miss then begin
    let got = retrying t (fun () -> Block_device.read_vec t.dev blocks) in
    let h = Hashtbl.create (max 16 (2 * List.length got)) in
    List.iter (fun (i, s) -> Hashtbl.replace h i s) got;
    h
  end
  else begin
    retrying t (fun () -> Block_device.charge_read_vec t.dev blocks);
    Hashtbl.create 1
  end

let assemble h blocks size =
  let buf = Buffer.create size in
  List.iter (fun b -> Buffer.add_string buf (Hashtbl.find h b)) blocks;
  Buffer.sub buf 0 size

(* Split [entries] into at most [n] contiguous chunks, preserving order. *)
let chunk_entries entries n =
  let len = List.length entries in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let per = ((len + n - 1) / n) in
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | e :: rest ->
          if k = per then go (List.rev cur :: acc) [ e ] 1 rest
          else go acc (e :: cur) (k + 1) rest
    in
    go [] [] 0 entries
  end

(* Pipelined batch load (async devices): split the entry batch into
   [queue_depth] chunks, submit every chunk's vectored read up-front on
   [channel], then settle chunk k only when its entries decode — the
   checksum/decode compute of chunk k overlaps the in-flight service of
   chunks k+1..  Chunking depends only on the entry list, and cache-hit
   batches submit through the charge-only variant with the identical
   chunk shape, so warm==cold holds under async exactly as it does for
   the one-request synchronous batch.  [blocks_of] names each entry's
   extent; [decode] folds one chunk's entries against its block table. *)
let pipelined_read t ~channel ~any_miss ~blocks_of ~decode entries =
  let depth = (Block_device.config t.dev).Block_device.queue_depth in
  let submitted =
    List.map
      (fun ch ->
        let blocks = List.concat_map blocks_of ch in
        let tk =
          retrying t (fun () ->
              if any_miss then Block_device.submit_read_vec t.dev ~channel blocks
              else Block_device.submit_charge_read_vec t.dev ~channel blocks)
        in
        (ch, tk))
      (chunk_entries entries depth)
  in
  let rec settle acc = function
    | [] -> Ok (List.rev acc)
    | (ch, tk) :: rest ->
        let got = Block_device.await t.dev tk in
        let h = Hashtbl.create (max 16 (2 * List.length got)) in
        List.iter (fun (i, s) -> Hashtbl.replace h i s) got;
        let** acc = decode h acc ch in
        settle acc rest
  in
  settle [] submitted

let get_membranes t ~actor ?(channel = 0) pd_ids =
  let** () = guard t ~actor ~op:"read" in
  let** entries = resolve_entries t pd_ids in
  let any_miss =
    List.exists (fun e -> not (cache_mem_membrane t e.pd_id)) entries
  in
  let decode h acc entries =
    let rec go acc = function
      | [] -> Ok acc
      | e :: rest -> (
          Stats.Counter.incr t.counters "membrane_reads";
          charge_checksum t e.membrane_size;
          match cache_find_membrane t e.pd_id with
          | Some m ->
              Stats.Counter.incr t.counters "cache_hits";
              go ((e.pd_id, m) :: acc) rest
          | None -> (
              Stats.Counter.incr t.counters "cache_misses";
              let raw = assemble h e.membrane_blocks e.membrane_size in
              let** raw =
                verify_sum ~what:"membrane" ~pd_id:e.pd_id
                  ~stored:e.membrane_sum raw
              in
              match Membrane.decode raw with
              | Ok m ->
                  cache_put_membrane t e.pd_id m;
                  go ((e.pd_id, m) :: acc) rest
              | Error msg ->
                  Error (Corrupt ("membrane of " ^ e.pd_id ^ ": " ^ msg))))
    in
    go acc entries
  in
  protect_read (fun () ->
      if Block_device.async_enabled t.dev then
        pipelined_read t ~channel ~any_miss
          ~blocks_of:(fun e -> e.membrane_blocks)
          ~decode entries
      else begin
        let blocks = List.concat_map (fun e -> e.membrane_blocks) entries in
        let h = batch_read t ~any_miss blocks in
        let** acc = decode h [] entries in
        Ok (List.rev acc)
      end)

(* Erased pds yield [None] (their sealed payload is not PD and is not
   read), matching the DED's skip-erased semantics without forcing every
   caller to pre-filter the selection. *)
let get_records t ~actor ?(channel = 0) pd_ids =
  let** () = guard t ~actor ~op:"read" in
  let** entries = resolve_entries t pd_ids in
  let live = List.filter (fun e -> not e.erased) entries in
  let any_miss =
    List.exists (fun e -> not (cache_mem_record t e.pd_id)) live
  in
  let live_blocks e = if e.erased then [] else e.record_blocks in
  let decode h acc entries =
    let rec go acc = function
      | [] -> Ok acc
      | e :: rest ->
          if e.erased then go ((e.pd_id, None) :: acc) rest
          else begin
            Stats.Counter.incr t.counters "record_reads";
            charge_checksum t e.record_size;
            match cache_find_record t e.pd_id with
            | Some r ->
                Stats.Counter.incr t.counters "cache_hits";
                go ((e.pd_id, Some r) :: acc) rest
            | None -> (
                Stats.Counter.incr t.counters "cache_misses";
                let raw = assemble h e.record_blocks e.record_size in
                let** raw =
                  verify_sum ~what:"record" ~pd_id:e.pd_id
                    ~stored:e.record_sum raw
                in
                match Record.decode raw with
                | Ok r ->
                    cache_put_record t e.pd_id r;
                    go ((e.pd_id, Some r) :: acc) rest
                | Error msg ->
                    Error (Corrupt ("record of " ^ e.pd_id ^ ": " ^ msg)))
          end
    in
    go acc entries
  in
  protect_read (fun () ->
      if Block_device.async_enabled t.dev then
        pipelined_read t ~channel ~any_miss ~blocks_of:live_blocks ~decode
          entries
      else begin
        let blocks = List.concat_map live_blocks entries in
        let h = batch_read t ~any_miss blocks in
        let** acc = decode h [] entries in
        Ok (List.rev acc)
      end)

let update_record t ~actor pd_id record =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    match Hashtbl.find_opt t.tables e.type_name with
    | None -> Error (Unknown_type e.type_name)
    | Some tbl -> (
        match Schema.validate_record tbl.schema record with
        | Error msg -> Error (Invalid_record msg)
        | Ok () -> (
            let bytes = Record.encode record in
            let old_blocks = e.record_blocks in
            match
              alloc_record_blocks t ~high:e.high
                (blocks_needed t (String.length bytes))
            with
            | None -> Error No_space
            | Some blocks ->
                protect_write t (fun () ->
                    write_payload t bytes blocks;
                    log_and_apply t
                      ~hint:{ no_hint with h_record = Some record }
                      (J_update_record
                         {
                           pd_id;
                           blocks;
                           size = String.length bytes;
                           sum = Fnv.hash64_hex bytes;
                         });
                    (* zeroing deallocation: no stale PD on the medium.
                       Segmented mode defers the zeroing — the old blocks
                       sit dirty in their sealed segment until a purge or
                       the compactor destroys them wholesale. *)
                    if not t.segmented then zero_and_free t old_blocks;
                    Stats.Counter.incr t.counters "record_updates";
                    !maintain t;
                    Ok ())))

let update_membrane t ~actor pd_id membrane =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if membrane.Membrane.pd_id <> pd_id then
    Error (Membrane_mismatch "membrane wraps a different pd_id")
  else if membrane.Membrane.type_name <> e.type_name then
    Error (Membrane_mismatch "membrane declares a different type")
  else if membrane.Membrane.subject_id <> e.subject then
    Error (Membrane_mismatch "membrane names a different subject")
  else
    let bytes = Membrane.encode membrane in
    let old_blocks = e.membrane_blocks in
    match alloc_membrane_blocks t (blocks_needed t (String.length bytes)) with
    | None -> Error No_space
    | Some blocks ->
        protect_write t (fun () ->
            write_payload t bytes blocks;
            log_and_apply t
              ~hint:{ no_hint with h_membrane = Some membrane }
              (J_update_membrane
                 {
                   pd_id;
                   blocks;
                   size = String.length bytes;
                   sum = Fnv.hash64_hex bytes;
                 });
            if not t.segmented then zero_and_free t old_blocks;
            Stats.Counter.incr t.counters "membrane_updates";
            !maintain t;
            Ok ())

let update_membranes_by_lineage t ~actor ~lineage f =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** ids =
    protect_pages (fun () ->
        Ok (List.map (fun e -> e.pd_id) (collect_entries t)))
  in
  (* one batched membrane load to find the lineage, then point updates *)
  let** membranes = get_membranes t ~actor ids in
  let rec go updated = function
    | [] -> Ok updated
    | (pd_id, m) :: rest ->
        if Membrane.lineage_root m = lineage then
          match update_membrane t ~actor pd_id (f m) with
          | Error e -> Error e
          | Ok () -> go (updated + 1) rest
        else go updated rest
  in
  go 0 membranes

let copy_pd t ~actor pd_id =
  let** () = guard t ~actor ~op:"write" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    let** record = get_record t ~actor pd_id in
    let** membrane = get_membrane t ~actor pd_id in
    insert t ~actor ~subject:e.subject ~type_name:e.type_name ~record
      ~membrane_of:(fun ~pd_id -> Membrane.copy_for membrane ~new_pd_id:pd_id)

let delete t ~actor pd_id =
  let** () = guard t ~actor ~op:"delete" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  let record_blocks = e.record_blocks in
  let membrane_blocks = e.membrane_blocks in
  protect_write t (fun () ->
      log_and_apply t (J_delete pd_id);
      (* physical destruction after the metadata commit.  Segmented mode
         purges every dirty block on the store (this pd's extents
         included), trimming fully dead segments; update-in-place zeroes
         exactly this pd's extents in one vectored write. *)
      if t.segmented then purge_dirty t
      else begin
        let bs = block_size t in
        retrying t (fun () ->
            Block_device.write_vec t.dev
              (List.map
                 (fun b -> (b, String.make bs '\000'))
                 (record_blocks @ membrane_blocks)))
      end;
      Stats.Counter.incr t.counters "deletes";
      !maintain t;
      Ok ())

let erase_with t ~actor pd_id ~seal =
  let** () = guard t ~actor ~op:"erase" in
  let** () = check_degraded t in
  let** e = find_entry t pd_id in
  if e.erased then Error (Erased pd_id)
  else
    let** record = get_record t ~actor pd_id in
    let sealed = seal record in
    let old_blocks = e.record_blocks in
    match
      alloc_record_blocks t ~high:e.high
        (blocks_needed t (String.length sealed))
    with
    | None -> Error No_space
    | Some blocks ->
        protect_write t (fun () ->
            write_payload t sealed blocks;
            log_and_apply t
              (J_erase
                 {
                   pd_id;
                   blocks;
                   size = String.length sealed;
                   sum = Fnv.hash64_hex sealed;
                 });
            (* destruction obligation: erasure must leave no plaintext of
               the old record anywhere — segmented mode purges the whole
               dirty set (old extent included) synchronously *)
            if t.segmented then purge_dirty t else zero_and_free t old_blocks;
            Stats.Counter.incr t.counters "erasures";
            !maintain t;
            Ok ())

let erased_payload t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  if not e.erased then Error (Invalid_record (pd_id ^ " is not erased"))
  else
    protect_read (fun () ->
        let raw = read_payload t e.record_blocks e.record_size in
        charge_checksum t e.record_size;
        verify_sum ~what:"sealed payload" ~pd_id ~stored:e.record_sum raw)

(* ------------------------------------------------------------------ *)
(* compaction (segmented mode)                                        *)

(* Merge low-liveness sealed segments: relocate every surviving extent
   through the ordinary journaled write path (J_update_record /
   J_update_membrane / J_erase with identical size and checksum — so
   replay, secondary indexes, caches and the bitmap stay coherent with no
   compaction-specific recovery code), then destroy the victims: a trim
   per fully dead segment, a vectored zero over dead blocks of any
   segment whose survivors could not move.  Survivor checksums are
   verified before relocation (fanned out over [t.pool] when one is
   attached); an extent failing its checksum is left in place for fsck
   rather than propagated.

   Crash windows (both exercised by the fault campaign):
   - after a relocation is journaled, before the victim is destroyed:
     mount-time replay zeroes the superseded copy ([freed_acc]);
   - after a relocated payload is written, before its journal record is
     durable: the new blocks are free+written, which [fsck_repair]'s
     free-space scrub destroys; the old copy is still live. *)
let compact ?(max_victims = compact_batch) ?(liveness_pct = compact_liveness_pct)
    t =
  match t.segstore with
  | None -> 0
  | Some ss ->
      if t.compacting then 0
      else begin
        t.compacting <- true;
        Fun.protect
          ~finally:(fun () -> t.compacting <- false)
          (fun () ->
            ensure_seg_hydrated t;
            match Segstore.victims ss ~max_victims ~liveness_pct with
            | [] -> 0
            | victims ->
                (* flush-before-destroy: buffered records may reference
                   blocks this pass is about to destroy.  Only flushed on
                   actual work, so an idle tick cannot defeat group
                   commit. *)
                retrying t (fun () -> Journal_ring.flush t.ring);
                Stats.Counter.incr t.counters "compactions";
                let in_victim b =
                  List.exists
                    (fun g ->
                      b >= g.Segstore.g_first
                      && b < g.Segstore.g_first + g.Segstore.g_nblocks)
                    victims
                in
                (* one merged entry pass discovers every surviving extent *)
                let moves = ref [] in
                iter_entries t (fun e ->
                    (match e.record_blocks with
                    | b :: _ when in_victim b ->
                        moves := (e.pd_id, `Record) :: !moves
                    | _ -> ());
                    match e.membrane_blocks with
                    | b :: _ when in_victim b ->
                        moves := (e.pd_id, `Membrane) :: !moves
                    | _ -> ());
                let items =
                  List.rev !moves
                  |> List.filter_map (fun (pd_id, kind) ->
                         match find_entry t pd_id with
                         | Error _ -> None
                         | Ok e ->
                             let blocks, size, sum =
                               match kind with
                               | `Record ->
                                   (e.record_blocks, e.record_size, e.record_sum)
                               | `Membrane ->
                                   ( e.membrane_blocks,
                                     e.membrane_size,
                                     e.membrane_sum )
                             in
                             let raw = read_payload t blocks size in
                             charge_checksum t size;
                             Some (pd_id, kind, e, raw, sum))
                in
                let verify (_, _, _, raw, sum) =
                  sum = "" || Fnv.hash64_hex raw = sum
                in
                let checks =
                  match t.pool with
                  | Some pool -> Pool.map_list pool verify items
                  | None -> List.map verify items
                in
                let relocated = ref 0 in
                (* async devices: relocation payload writes are submitted
                   and settled in one batch at the durability barrier
                   below, overlapping their service with the decode and
                   journaling compute of later survivors *)
                let wtickets = ref [] in
                List.iter2
                  (fun (pd_id, kind, e, raw, sum) ok ->
                    if not ok then
                      Stats.Counter.incr t.counters "compact_verify_failures"
                    else begin
                      let size = String.length raw in
                      let sum = if sum = "" then Fnv.hash64_hex raw else sum in
                      let dest =
                        match kind with
                        | `Record ->
                            alloc_record_blocks t ~high:e.high
                              (blocks_needed t size)
                        | `Membrane ->
                            alloc_membrane_blocks t (blocks_needed t size)
                      in
                      match dest with
                      | None -> () (* no room: survivor stays put *)
                      | Some blocks ->
                          (if Block_device.async_enabled t.dev then
                             match
                               submit_payload_write t raw blocks
                                 ~channel:compact_channel
                             with
                             | Some tk -> wtickets := tk :: !wtickets
                             | None -> ()
                           else write_payload t raw blocks);
                          let hint, op =
                            match kind with
                            | `Membrane ->
                                ( (match Membrane.decode raw with
                                  | Ok m -> { no_hint with h_membrane = Some m }
                                  | Error _ -> no_hint),
                                  J_update_membrane { pd_id; blocks; size; sum }
                                )
                            | `Record when e.erased ->
                                (no_hint, J_erase { pd_id; blocks; size; sum })
                            | `Record ->
                                ( (match Record.decode raw with
                                  | Ok r -> { no_hint with h_record = Some r }
                                  | Error _ -> no_hint),
                                  J_update_record { pd_id; blocks; size; sum } )
                          in
                          log_and_apply t ~hint op;
                          incr relocated
                    end)
                  items checks;
                Stats.Counter.incr t.counters ~by:!relocated
                  "compact_relocations";
                (* make the relocations durable, then destroy the victims:
                   settle the submitted payload writes and every async
                   flush before any victim block is trimmed or zeroed *)
                List.iter
                  (fun tk -> ignore (Block_device.await t.dev tk))
                  (List.rev !wtickets);
                retrying t (fun () -> Journal_ring.flush t.ring);
                Journal_ring.barrier t.ring;
                let bs = block_size t in
                let cfg = Block_device.config t.dev in
                List.iter
                  (fun g ->
                    if g.Segstore.g_live = 0 then begin
                      let n = ref 0 in
                      for b = g.Segstore.g_first
                          to g.Segstore.g_first + g.Segstore.g_nblocks - 1 do
                        if Block_device.is_written t.dev b then begin
                          incr n;
                          Block_device.trim t.dev b
                        end
                      done;
                      if !n > 0 then begin
                        Clock.advance (Block_device.clock t.dev)
                          cfg.Block_device.write_latency;
                        Stats.Counter.incr t.counters "segment_trims"
                      end;
                      Segstore.clear_dirty ss (Segstore.dirty_in ss g);
                      Segstore.reclaim ss g;
                      Stats.Counter.incr t.counters "segments_reclaimed"
                    end
                    else begin
                      (* survivors could not move: zero the pending dead
                         blocks (once — the dirty set forgets them) *)
                      match Segstore.dirty_in ss g with
                      | [] -> ()
                      | dl ->
                          retrying t (fun () ->
                              Block_device.write_vec t.dev
                                (List.map
                                   (fun b -> (b, String.make bs '\000'))
                                   dl));
                          Segstore.clear_dirty ss dl;
                          Stats.Counter.incr t.counters ~by:(List.length dl)
                            "purge_zeroed_blocks"
                    end)
                  victims;
                List.length victims)
      end

(* Space-driven compaction (the allocator's retry hook) is more
   aggressive than the dirty-driven pass: relocating up to 75%-live
   segments frees whole segments for reuse. *)
let () =
  space_reclaim :=
    fun t -> ignore (compact t ~max_victims:(2 * compact_batch) ~liveness_pct:75.0)

(* Per-mutator maintenance: compact when the dirty backlog crosses the
   trigger; if it is STILL above the backpressure threshold afterwards
   (the compactor cannot keep up — the survivors are too live to evict),
   charge a deterministic stall to the op that rode over the limit. *)
let tick t =
  match t.segstore with
  | None -> ()
  | Some ss ->
      if not t.compacting then begin
        ensure_seg_hydrated t;
        let data_blocks = total_blocks t - t.data_start in
        if Segstore.dirty_blocks ss * 100 >= data_blocks * dirty_trigger_pct
        then ignore (compact t);
        if Segstore.dirty_blocks ss * 100 >= data_blocks * backpressure_pct
        then begin
          Stats.Counter.incr t.counters "backpressure_stalls";
          Stats.Counter.incr t.counters ~by:backpressure_stall_ns
            "backpressure_stall_ns";
          Clock.advance (Block_device.clock t.dev) backpressure_stall_ns
        end
      end

let () = maintain := tick

(* ------------------------------------------------------------------ *)
(* queries                                                            *)

let list_pds t ~actor type_name =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some _ ->
      protect_pages (fun () ->
          let acc = ref [] in
          iter_entries t (fun e ->
              if e.type_name = type_name then acc := e.pd_id :: !acc);
          Ok (List.rev !acc))

let pds_of_subject t ~actor subject =
  let** () = guard t ~actor ~op:"read" in
  protect_pages (fun () -> Ok (Index.subject_pds t.index subject))

let subjects t ~actor =
  let** () = guard t ~actor ~op:"read" in
  protect_pages (fun () -> Ok (Index.subject_list t.index))

(* ---------- predicate pushdown (Dbfs.select) ----------

   Plan the predicate against the type's secondary indexes, probe for a
   candidate set, batch-load only the candidates and run the original
   predicate as a residual filter.  Exact plans skip the record loads
   entirely.  Probe charging follows the warm==cold rule: base index
   pages charge their own vectored node reads through [page_io] whether
   cached or not, and overlay facts charge a synthetic metadata read of
   their byte footprint — the in-memory acceleration is host-side only
   and never changes a simulated figure. *)

module SS = Set.Make (String)

let charge_index_read t bytes =
  let bs = block_size t in
  let nblocks = min t.meta_blocks (max 1 (((bytes - 1) / bs) + 1)) in
  Block_device.charge_read_vec t.dev
    (List.init nblocks (fun i -> t.meta_start + i))

let run_probe t ~type_name probe =
  let rec go = function
    | Plan.Atom (Plan.Aeq (field, v)) ->
        let ids, bytes = Index.probe_eq t.index ~type_name ~field v in
        (SS.of_list ids, bytes)
    | Plan.Atom (Plan.Alt (field, v)) ->
        let ids, bytes = Index.probe_range t.index ~type_name ~field ~op:`Lt v in
        (SS.of_list ids, bytes)
    | Plan.Atom (Plan.Agt (field, v)) ->
        let ids, bytes = Index.probe_range t.index ~type_name ~field ~op:`Gt v in
        (SS.of_list ids, bytes)
    | Plan.Inter (x, y) ->
        let sx, bx = go x in
        let sy, by = go y in
        (SS.inter sx sy, bx + by)
    | Plan.Union (x, y) ->
        let sx, bx = go x in
        let sy, by = go y in
        (SS.union sx sy, bx + by)
  in
  go probe

let select t ~actor ?(use_indexes = true) ?(channel = 0) type_name pred =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl ->
      Stats.Counter.incr t.counters "selects";
      protect_pages (fun () ->
          (* full scans stream the merged entry sequence; indexed probes
             never touch it — candidate sets are filtered with point
             entry lookups, keeping an indexed select sublinear in the
             population *)
          let all_live () =
            let acc = ref [] in
            iter_entries t (fun e ->
                if e.type_name = type_name && not e.erased then
                  acc := e.pd_id :: !acc);
            List.rev !acc
          in
          let live_typed pd =
            match find_entry t pd with
            | Ok e -> e.type_name = type_name && not e.erased
            | Error _ -> false
          in
          let residual pd_ids =
            (* one batched vectored load, then the full predicate.  On an
               async device the probe's posting list is submitted as
               pipelined reads ahead of residual evaluation: chunk k's
               decode and predicate work overlaps the in-flight service
               of chunks k+1.. *)
            let** records = get_records t ~actor ~channel pd_ids in
            Ok
              (List.filter_map
                 (fun (pd, r) ->
                   match r with
                   | Some r when Query.eval pred r -> Some pd
                   | _ -> None)
                 records)
          in
          let plan =
            if use_indexes then
              Plan.compile pred
                ~indexed:(fun f -> List.mem f tbl.schema.Schema.indexed_fields)
            else
              Plan.Full_scan
                { trivial = (match pred with Query.True -> true | _ -> false) }
          in
          match plan with
          | Plan.Full_scan { trivial = true } -> Ok (all_live ())
          | Plan.Full_scan { trivial = false } -> residual (all_live ())
          | Plan.Indexed { probe; exact } ->
              Stats.Counter.incr t.counters "index_probes";
              let cand, bytes = run_probe t ~type_name probe in
              charge_index_read t bytes;
              (* probe sets are unordered; sorted pd ids ARE insertion
                 order (ids are zero-padded and monotone) *)
              let cand_list = List.filter live_typed (SS.elements cand) in
              if exact then Ok cand_list else residual cand_list)

let plan_for t ~actor type_name pred =
  let** () = guard t ~actor ~op:"read" in
  match Hashtbl.find_opt t.tables type_name with
  | None -> Error (Unknown_type type_name)
  | Some tbl ->
      Ok
        (Plan.compile pred
           ~indexed:(fun f -> List.mem f tbl.schema.Schema.indexed_fields))

let expired_pds t ~actor ~now =
  let** () = guard t ~actor ~op:"read" in
  Stats.Counter.incr t.counters "index_probes";
  protect_pages (fun () ->
      let ids = Index.expired t.index ~now in
      charge_index_read t (32 + (16 * List.length ids));
      Ok ids)

let expiry_queue_size t = Index.expiry_size t.index

let pd_count t = t.entry_count

let entry_info t ~actor pd_id =
  let** () = guard t ~actor ~op:"read" in
  let** e = find_entry t pd_id in
  Ok (e.type_name, e.subject, e.erased)

let export_subject t ~actor subject =
  let** () = guard t ~actor ~op:"export" in
  let** ids = pds_of_subject t ~actor subject in
  (* one vectored request for the whole subject subtree *)
  let** records = get_records t ~actor ids in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (_, None) :: rest -> go acc rest (* erased *)
    | (pd_id, Some record) :: rest ->
        let** e = find_entry t pd_id in
        go (Record.to_export ~type_name:e.type_name ~pd_id record :: acc) rest
  in
  let** items = go [] records in
  Stats.Counter.incr t.counters "exports";
  Ok ("[" ^ String.concat ", " items ^ "]")

let describe_trees t ~actor =
  let** () = guard t ~actor ~op:"read" in
  protect_pages (fun () ->
      let all = collect_entries t in
      let by_id = Hashtbl.create (max 16 (2 * List.length all)) in
      List.iter (fun e -> Hashtbl.replace by_id e.pd_id e) all;
      let buf = Buffer.create 1024 in
      let blocks_str blocks =
        String.concat "," (List.map string_of_int blocks)
      in
      Buffer.add_string buf
        "subject tree (one inode subtree per data subject)\n";
      let subjects =
        List.map
          (fun s -> (s, Index.subject_pds t.index s))
          (Index.subject_list t.index)
      in
      List.iter
        (fun (subject, ids) ->
          if ids <> [] then begin
            Buffer.add_string buf (Printf.sprintf "  %s\n" subject);
            List.iter
              (fun pd_id ->
                match Hashtbl.find_opt by_id pd_id with
                | None -> ()
                | Some e ->
                    Buffer.add_string buf
                      (Printf.sprintf
                         "    %s [%s]%s  record@{%s}  membrane@{%s}\n" pd_id
                         e.type_name
                         (if e.erased then " (erased)" else "")
                         (blocks_str e.record_blocks)
                         (blocks_str e.membrane_blocks)))
              ids
          end)
        subjects;
      Buffer.add_string buf "schema tree (database structure + row lists)\n";
      let tables =
        Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t.tables []
        |> List.sort compare
      in
      List.iter
        (fun (name, tbl) ->
          let rows = List.filter (fun e -> e.type_name = name) all in
          Buffer.add_string buf
            (Printf.sprintf "  table %s: %d row(s)\n" name (List.length rows));
          List.iter
            (fun f ->
              Buffer.add_string buf
                (Printf.sprintf "    field %s: %s%s\n" f.Schema.fname
                   (Value.ftype_to_string f.Schema.ftype)
                   (if f.Schema.required then "" else " (optional)")))
            tbl.schema.Schema.fields;
          let row_subjects =
            List.map (fun e -> e.subject) rows |> List.sort_uniq compare
          in
          Buffer.add_string buf
            (Printf.sprintf "    subject inodes: %s\n"
               (String.concat ", " row_subjects)))
        tables;
      Buffer.add_string buf
        "format descriptors (record layout used when returning data to the DED)\n";
      List.iter
        (fun (name, tbl) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s: REC1 <%s>\n" name
               (String.concat "|"
                  (List.map (fun f -> f.Schema.fname) tbl.schema.Schema.fields))))
        tables;
      Ok (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* durability & integrity                                             *)

let crash_and_remount t = mount t.dev

(* Extent read that reports an exhausted-retries device fault as [None]
   instead of raising — fsck must keep scanning past a dead block. *)
let try_read_extent t blocks size =
  try Some (read_payload t blocks size) with Block_device.Faulted _ -> None

let sum_matches stored raw = stored = "" || Fnv.hash64_hex raw = stored

(* Merged entry collection that survives damaged metadata: unreadable tree
   pages and device faults become notes instead of exceptions, and the
   entries gathered before the failure are kept. *)
let collect_entries_noted t note =
  let acc = ref [] in
  (try
     iter_entries
       ~on_corrupt:(fun b ->
         if b >= 0 then note (Printf.sprintf "entries tree page %d unreadable or corrupt" b)
         else note "entries tree holds an undecodable entry")
       t
       (fun e -> acc := e :: !acc)
   with Block_device.Faulted b ->
     note (Printf.sprintf "device fault on metadata block %d while scanning entries" b));
  List.rev !acc

(* The check pass: every invariant violation as a message, no mutation.
   [fsck ?repair] wraps this. *)
let fsck_check t =
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let all = collect_entries_noted t (fun s -> problems := s :: !problems) in
  let entries_h = Hashtbl.create (max 16 (2 * List.length all)) in
  List.iter (fun e -> Hashtbl.replace entries_h e.pd_id e) all;
  (* extent integrity + membrane invariant: every entry's extents are
     readable, their checksums match, and the membrane wraps this pd *)
  List.iter
    (fun e ->
      let pd_id = e.pd_id in
      (match try_read_extent t e.membrane_blocks e.membrane_size with
      | None -> note "entry %s: membrane extent unreadable (device fault)" pd_id
      | Some raw when not (sum_matches e.membrane_sum raw) ->
          note "entry %s: membrane extent checksum mismatch" pd_id
      | Some raw -> (
          match Membrane.decode raw with
          | Error msg -> note "entry %s: undecodable membrane (%s)" pd_id msg
          | Ok m ->
              if m.Membrane.pd_id <> pd_id then
                note "entry %s: membrane wraps %s" pd_id m.Membrane.pd_id;
              if m.Membrane.type_name <> e.type_name then
                note "entry %s: membrane type %s <> %s" pd_id
                  m.Membrane.type_name e.type_name;
              if m.Membrane.subject_id <> e.subject then
                note "entry %s: membrane subject %s <> %s" pd_id
                  m.Membrane.subject_id e.subject));
      match try_read_extent t e.record_blocks e.record_size with
      | None -> note "entry %s: record extent unreadable (device fault)" pd_id
      | Some raw when not (sum_matches e.record_sum raw) ->
          note "entry %s: record extent checksum mismatch" pd_id
      | Some raw ->
          if not e.erased then (
            match Record.decode raw with
            | Error msg -> note "entry %s: undecodable record (%s)" pd_id msg
            | Ok _ -> ()))
    all;
  (* block ownership: unique, allocated, correct zone *)
  let free = free_map t in
  let owners = Hashtbl.create 64 in
  let rs = rec_start t in
  let check_block pd_id b =
    if free.(b - t.data_start) then note "entry %s owns free block %d" pd_id b;
    match Hashtbl.find_opt owners b with
    | Some other -> note "block %d owned by %s and %s" b other pd_id
    | None -> Hashtbl.replace owners b pd_id
  in
  List.iter
    (fun e ->
      let pd_id = e.pd_id in
      List.iter
        (fun b ->
          if b < t.data_start then note "entry %s owns non-data block %d" pd_id b
          else begin
            if b < rs then
              note "entry %s stores record in membrane zone (block %d)" pd_id b;
            if e.high && b < t.high_start then
              note "sensitive entry %s stored in ordinary region (block %d)" pd_id b;
            if (not e.high) && b >= t.high_start then
              note "ordinary entry %s stored in sensitive region (block %d)" pd_id b;
            check_block pd_id b
          end)
        e.record_blocks;
      List.iter
        (fun b ->
          if b < t.data_start then note "entry %s owns non-data block %d" pd_id b
          else begin
            if b >= rs then
              note "entry %s stores membrane outside membrane zone (block %d)"
                pd_id b;
            check_block pd_id b
          end)
        e.membrane_blocks)
    all;
  (* schema membership + recorded entry count *)
  List.iter
    (fun e ->
      if not (Hashtbl.mem t.tables e.type_name) then
        note "entry %s has type %s with no schema" e.pd_id e.type_name)
    all;
  if List.length all <> t.entry_count then
    note "entry count mismatch: %d entries on device, root records %d"
      (List.length all) t.entry_count;
  (* metadata tree pages must live inside the metadata heap *)
  let heap_lo = heap_start t 0 in
  let heap_hi = heap_start t 0 + (2 * t.heap_cap) in
  (try
     let pages =
       Index.node_pages t.index
       @
       if Pagestore.is_empty t.entries_base then []
       else
         Pagestore.node_blocks
           ~on_corrupt:(fun b ->
             note "entries tree page %d unreadable or corrupt" b)
           (page_io t) t.entries_base
     in
     List.iter
       (fun (b, n) ->
         if b < heap_lo || b + n > heap_hi then
           note "metadata page %d outside the metadata heap" b)
       pages
   with
  | Pagestore.Corrupt_page b -> note "index page %d fails its checksum" b
  | Block_device.Faulted b -> note "device fault on metadata block %d" b);
  (* secondary indexes <-> entries, both directions *)
  (try
     Index.fold_pd_keys t.index
       (fun pd_id (type_name, kvs) () ->
         match Hashtbl.find_opt entries_h pd_id with
         | None -> note "index keys unknown pd %s" pd_id
         | Some e ->
             if e.erased then note "index keys erased pd %s" pd_id;
             if e.type_name <> type_name then
               note "index keys pd %s under type %s (entry says %s)" pd_id
                 type_name e.type_name;
             (* every claimed key must be posted, and must match the record *)
             let record = decode_record_at t e.record_blocks e.record_size in
             List.iter
               (fun (field, v) ->
                 if
                   not
                     (List.mem pd_id
                        (Index.eq_postings t.index ~type_name ~field v))
                 then
                   note "index: pd %s missing from posting list of %s.%s" pd_id
                     type_name field;
                 match record with
                 | None -> note "index: pd %s record undecodable" pd_id
                 | Some r -> (
                     match List.assoc_opt field r with
                     | Some v' when Value.equal v v' -> ()
                     | _ ->
                         note "index: stale key %s.%s for pd %s" type_name field
                           pd_id))
               kvs)
       ();
     List.iter
       (fun e ->
         let pd_id = e.pd_id in
         (* live pd of an indexed type must be keyed *)
         (if not e.erased then
            let indexed = indexed_fields_of t e.type_name in
            if indexed <> [] && Index.pd_key t.index pd_id = None then
              note "index: live pd %s of indexed type %s has no keys" pd_id
                e.type_name);
         (* subject index must link every pd (erased included) *)
         if not (List.mem pd_id (Index.subject_pds t.index e.subject)) then
           note "index: pd %s missing from subject %s" pd_id e.subject;
         (* expiry queue agrees with the membrane *)
         let expected =
           if e.erased then None
           else
             match decode_membrane_at t e.membrane_blocks e.membrane_size with
             | None -> None
             | Some m -> expiry_instant m
         in
         match (expected, Index.expiry_of t.index pd_id) with
         | None, Some ns ->
             note "index: pd %s spuriously queued to expire at %d" pd_id ns
         | Some ns, None ->
             note "index: pd %s missing from expiry queue (due %d)" pd_id ns
         | Some a, Some b when a <> b ->
             note "index: pd %s queued at %d, membrane says %d" pd_id b a
         | _ -> ())
       all
   with
  | Pagestore.Corrupt_page b -> note "index page %d fails its checksum" b
  | Block_device.Faulted b -> note "device fault on index block %d" b);
  (* allocation leaks: a data block marked in-use must have an owner *)
  Array.iteri
    (fun i is_free ->
      if (not is_free) && not (Hashtbl.mem owners (t.data_start + i)) then
        note "allocated block %d owned by no entry" (t.data_start + i))
    free;
  List.rev !problems

(* From-scratch index rebuild over the (surviving) entries — the repair
   path swaps this in wholesale, which heals any in-memory or persisted
   index damage in one move. *)
let rebuild_index t =
  let idx = Index.create () in
  iter_entries t (fun e ->
      let pd_id = e.pd_id in
      Index.add_subject idx ~subject:e.subject ~pd_id;
      if not e.erased then begin
        let indexed = indexed_fields_of t e.type_name in
        (if indexed <> [] then
           match decode_record_at t e.record_blocks e.record_size with
           | Some record ->
               Index.add_entry idx ~pd_id ~type_name:e.type_name ~indexed record
           | None -> ());
        match decode_membrane_at t e.membrane_blocks e.membrane_size with
        | Some m -> Index.set_expiry idx ~pd_id (expiry_instant m)
        | None -> ()
      end)
    ;
  idx

type repair_report = {
  rr_problems : string list;
  rr_actions : string list;
  rr_quarantined : (string * string) list;
  rr_scrubbed_blocks : int;
  rr_journal_truncated : string option;
  rr_clean : bool;
}

(* An entry is unrecoverable when either extent is unreadable, fails its
   checksum, or no longer decodes.  [None] means the entry is healthy. *)
let entry_damage t e =
  match try_read_extent t e.membrane_blocks e.membrane_size with
  | None -> Some "membrane extent unreadable"
  | Some raw when not (sum_matches e.membrane_sum raw) ->
      Some "membrane extent checksum mismatch"
  | Some raw -> (
      match Membrane.decode raw with
      | Error _ -> Some "membrane undecodable"
      | Ok _ -> (
          match try_read_extent t e.record_blocks e.record_size with
          | None -> Some "record extent unreadable"
          | Some raw when not (sum_matches e.record_sum raw) ->
              Some "record extent checksum mismatch"
          | Some raw ->
              if not e.erased then (
                match Record.decode raw with
                | Error _ -> Some "record undecodable"
                | Ok _ -> None)
              else None))

let fsck_repair t =
  let problems = fsck_check t in
  let actions = ref [] in
  let act fmt = Format.kasprintf (fun s -> actions := s :: !actions) fmt in
  let device_faults = ref false in
  let bs = block_size t in
  let zero_block b =
    try
      retrying t (fun () ->
          Block_device.write_vec t.dev [ (b, String.make bs '\000') ]);
      true
    with Block_device.Faulted _ ->
      device_faults := true;
      false
  in
  (* 0. pull every recoverable entry out of the (possibly damaged) paged
     tree: from here on the repair works against the in-memory overlay
     and rebuilds the on-device trees wholesale at the end *)
  let survivors = collect_entries_noted t (fun s -> act "%s" s) in
  (* 1. quarantine entries whose payloads cannot be trusted: remove them
     from the trees and report them — repair never invents data *)
  let damaged, healthy =
    List.partition_map
      (fun e ->
        match entry_damage t e with
        | Some reason -> Left (e, reason)
        | None -> Right e)
      survivors
  in
  let damaged =
    List.sort (fun (a, _) (b, _) -> compare a.pd_id b.pd_id) damaged
  in
  let quarantined =
    List.map
      (fun (e, reason) ->
        invalidate_caches t e.pd_id;
        (* the extents may hold damaged PD plaintext: zero best-effort,
           then release the blocks *)
        List.iter
          (fun b -> ignore (zero_block b))
          (e.record_blocks @ e.membrane_blocks);
        mark_free t e.record_blocks;
        mark_free t e.membrane_blocks;
        act "quarantined %s (%s)" e.pd_id reason;
        (e.pd_id, reason))
      damaged
  in
  (* re-base on the surviving entries alone; the checkpoint below writes
     them back as a fresh tree *)
  Hashtbl.reset t.entries;
  Hashtbl.reset t.deleted;
  List.iter (fun e -> Hashtbl.replace t.entries e.pd_id e) healthy;
  t.entries_base <- Pagestore.empty_root;
  t.entry_count <- List.length healthy;
  (* 2. rebuild every secondary index from the surviving records *)
  t.index <- rebuild_index t;
  t.index_roots <- Index.empty_roots;
  act "rebuilt secondary indexes from %d surviving entries"
    (List.length healthy);
  (* 3. release allocated blocks no surviving entry owns *)
  let owned = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ e ->
      List.iter
        (fun b -> Hashtbl.replace owned b ())
        (e.record_blocks @ e.membrane_blocks))
    t.entries;
  let free = free_map t in
  let leaked = ref [] in
  Array.iteri
    (fun i is_free ->
      let b = t.data_start + i in
      if (not is_free) && not (Hashtbl.mem owned b) then leaked := b :: !leaked)
    free;
  if !leaked <> [] then begin
    mark_free t !leaked;
    act "released %d leaked block(s)" (List.length !leaked)
  end;
  (* 4. scrub free space: a free block must hold no bytes at all *)
  let scrubbed = ref 0 in
  Array.iteri
    (fun i is_free ->
      let b = t.data_start + i in
      if is_free && Block_device.is_written t.dev b then
        if zero_block b then incr scrubbed)
    free;
  if !scrubbed > 0 then act "scrubbed %d free block(s)" !scrubbed;
  (* 5. truncate the journal at the damage point: checkpoint the repaired
     metadata (making every journal record dead) and scrub the ring *)
  let journal_truncated =
    let damage =
      match (t.replay, t.replay_warning) with
      | _, Some w -> Some ("undecodable record (" ^ w ^ ")")
      | Some { stop_reason; _ }, None when stop_reason <> Journal_ring.Clean ->
          Some (Journal_ring.stop_reason_to_string stop_reason)
      | _ -> None
    in
    (try
       checkpoint t;
       Journal_ring.scrub t.ring
     with Block_device.Faulted _ -> device_faults := true);
    match damage with
    | Some reason ->
        act "journal truncated at first bad frame (%s)" reason;
        Some reason
    | None -> None
  in
  (* 6. the old trees may still hold index facts on damaged or orphaned
     heap pages the checkpoint did not overwrite: zero every written heap
     block outside the newly written live range *)
  let stale_meta = ref 0 in
  for half = 0 to 1 do
    for i = 0 to t.heap_cap - 1 do
      let b = heap_start t half + i in
      let live = half = t.active_half && i < t.heap_used in
      if (not live) && Block_device.is_written t.dev b then
        if zero_block b then incr stale_meta
    done
  done;
  if !stale_meta > 0 then
    act "scrubbed %d stale metadata heap block(s)" !stale_meta;
  t.replay_warning <- None;
  Cache.clear t.cache;
  (* the repair rewrote the bitmap and scrubbed free space wholesale: the
     derived segment table is stale — rebuild it from the bitmap on next
     use *)
  (match t.segstore with Some ss -> Segstore.invalidate ss | None -> ());
  (* 7. verify; leave degraded mode only on a clean bill of health *)
  let recheck = fsck_check t in
  let clean = recheck = [] && not !device_faults in
  if clean then begin
    if t.degraded <> None then act "left degraded read-only mode";
    t.degraded <- None
  end
  else if t.degraded = None then
    t.degraded <-
      Some
        (if !device_faults then "device faults during repair"
         else "fsck still reports problems after repair");
  {
    rr_problems = problems;
    rr_actions = List.rev !actions;
    rr_quarantined = quarantined;
    rr_scrubbed_blocks = !scrubbed;
    rr_journal_truncated = journal_truncated;
    rr_clean = clean;
  }

let fsck ?(repair = false) t =
  if not repair then
    match fsck_check t with [] -> Ok () | ps -> Error ps
  else
    let r = fsck_repair t in
    if r.rr_clean then Ok () else Error (r.rr_problems @ r.rr_actions)

let replay_report t = t.replay

let replay_warning t = t.replay_warning

let degraded t = t.degraded

(* ------------------------------------------------------------------ *)
(* cache controls & index introspection (tools, tests)                *)

let set_cache_budget t n =
  let evicted = Cache.set_budget t.cache n in
  if evicted > 0 then
    Stats.Counter.incr t.counters ~by:evicted "cache_evictions"

let cache_resident t = Cache.resident t.cache

let cache_budget t = Cache.budget t.cache

let index_page_blocks t = Index.node_pages t.index

let index_dump t = Index.dump t.index

(* From-scratch reference rebuild: re-derive every index fact from the
   live entries and their on-device payloads, dump canonically.  The
   crash-consistency tests compare this against [index_dump] after a
   remount. *)
let rebuilt_index_dump t = Index.dump (rebuild_index t)

let unsafe_tamper_index t pd_id = Index.unsafe_drop_posting t.index ~pd_id

(* ------------------------------------------------------------------ *)
(* group commit & segment controls                                    *)

let segmented t = t.segmented

let set_group_commit t n =
  (* never reorder across a window change: drain the buffer first *)
  retrying t (fun () -> Journal_ring.flush t.ring);
  Journal_ring.barrier t.ring;
  Journal_ring.set_window t.ring n

let group_commit_window t = Journal_ring.window t.ring

(* The explicit durability call: flush AND settle. *)
let flush_journal t =
  retrying t (fun () -> Journal_ring.flush t.ring);
  Journal_ring.barrier t.ring

let pending_journal_ops t = Journal_ring.pending_ops t.ring

let set_compaction_pool t pool = t.pool <- Some pool

let segment_table t =
  match t.segstore with
  | None -> []
  | Some ss ->
      ensure_seg_hydrated t;
      Segstore.live_table ss

let segment_dirty_blocks t =
  match t.segstore with
  | None -> 0
  | Some ss ->
      ensure_seg_hydrated t;
      Segstore.dirty_blocks ss

let free_segments t =
  match t.segstore with
  | None -> 0
  | Some ss ->
      ensure_seg_hydrated t;
      Segstore.free_segs ss 0 + Segstore.free_segs ss 1 + Segstore.free_segs ss 2

let stats t =
  (* mirror the ring's group-commit tallies into the counter set so one
     [Stats.Counter.to_list] shows the whole store *)
  let sync name v =
    let cur = Stats.Counter.get t.counters name in
    if v > cur then Stats.Counter.incr t.counters ~by:(v - cur) name
  in
  sync "committed_batches" (Journal_ring.batches t.ring);
  sync "batched_ops" (Journal_ring.batched_ops t.ring);
  t.counters
