(** Bounded LRU cache with a configurable entry budget.

    A single instance backs every decoded-object class in DBFS (membranes,
    records, index node pages), so one budget bounds resident memory and all
    classes compete under the same eviction policy.  All operations are
    O(1).

    The cache bounds host memory only: callers charge the same simulated
    device cost on hit and miss (warm == cold), so eviction is invisible to
    the cost model and shows up only in the hit/miss/eviction counters. *)

type 'a t

val create : budget:int -> 'a t
(** Fresh cache holding at most [max 1 budget] entries. *)

val find : 'a t -> string -> 'a option
(** Lookup; promotes the entry to most-recently-used on a hit. *)

val mem : 'a t -> string -> bool
(** Presence test without promoting. *)

val put : 'a t -> string -> 'a -> int
(** Insert or replace (promoting to MRU), then evict from the LRU end until
    the budget holds again.  Returns the number of entries evicted. *)

val remove : 'a t -> string -> unit
(** Drop one entry (coherence invalidation); no-op when absent. *)

val remove_where : 'a t -> (string -> bool) -> unit
(** Drop every entry whose key satisfies the predicate. *)

val clear : 'a t -> unit
(** Drop everything (counters are preserved). *)

val set_budget : 'a t -> int -> int
(** Change the entry budget (clamped to >= 1), evicting immediately if the
    cache is over the new budget.  Returns the number evicted. *)

val resident : 'a t -> int
(** Number of entries currently held. *)

val budget : 'a t -> int

val evictions : 'a t -> int
(** Cumulative count of budget evictions (not explicit invalidations). *)
