(* Bounded LRU cache with a configurable entry budget.

   One cache instance backs every decoded-object class in DBFS (membranes,
   records, index node pages) so a single budget bounds resident memory and
   all classes compete under one eviction policy.  The implementation is a
   string-keyed hash table over an intrusive doubly-linked recency list:
   every operation is O(1).

   The cache is a pure memory bound: hits and misses are *charged* the same
   simulated device cost by the caller (warm == cold), so eviction decisions
   never show up in the cost model — only in host memory and in the
   hit/miss/eviction counters. *)

type 'a node = {
  n_key : string;
  mutable n_value : 'a;
  mutable n_prev : 'a node option; (* towards the MRU end *)
  mutable n_next : 'a node option; (* towards the LRU end *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  mutable mru : 'a node option;
  mutable lru : 'a node option;
  mutable budget : int;
  mutable evictions : int;
}

let create ~budget =
  {
    tbl = Hashtbl.create 256;
    mru = None;
    lru = None;
    budget = max 1 budget;
    evictions = 0;
  }

let resident t = Hashtbl.length t.tbl
let budget t = t.budget
let evictions t = t.evictions

let unlink t n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.mru <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> t.lru <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.mru;
  n.n_prev <- None;
  (match t.mru with Some m -> m.n_prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

(* Evict from the LRU end until the budget holds; returns how many entries
   were evicted so the caller can account for them. *)
let enforce_budget t =
  let count = ref 0 in
  while Hashtbl.length t.tbl > t.budget do
    match t.lru with
    | None -> failwith "Cache: recency list out of sync"
    | Some n ->
        unlink t n;
        Hashtbl.remove t.tbl n.n_key;
        t.evictions <- t.evictions + 1;
        incr count
  done;
  !count

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.n_value

let mem t key = Hashtbl.mem t.tbl key

let put t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.n_value <- value;
      unlink t n;
      push_front t n
  | None ->
      let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n);
  enforce_budget t

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl key

let remove_where t pred =
  let doomed =
    Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.tbl []
  in
  List.iter (remove t) doomed

let clear t =
  Hashtbl.reset t.tbl;
  t.mru <- None;
  t.lru <- None

let set_budget t b =
  t.budget <- max 1 b;
  enforce_budget t
