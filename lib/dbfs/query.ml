type t =
  | True
  | Eq of string * Value.t
  | Lt of string * Value.t
  | Gt of string * Value.t
  | Contains of string * string
  | Not of t
  | And of t * t
  | Or of t * t

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let numeric_cmp a b =
  match (a, b) with
  | Value.VInt x, Value.VInt y -> Some (compare x y)
  | Value.VFloat x, Value.VFloat y -> Some (compare x y)
  | Value.VInt x, Value.VFloat y -> Some (compare (float_of_int x) y)
  | Value.VFloat x, Value.VInt y -> Some (compare x (float_of_int y))
  | _ -> None

let rec eval pred record =
  match pred with
  | True -> true
  | Eq (field, v) -> (
      match Record.get record field with
      | Some v' -> Value.equal v v'
      | None -> false)
  | Lt (field, v) -> (
      match Record.get record field with
      | Some v' -> ( match numeric_cmp v' v with Some c -> c < 0 | None -> false)
      | None -> false)
  | Gt (field, v) -> (
      match Record.get record field with
      | Some v' -> ( match numeric_cmp v' v with Some c -> c > 0 | None -> false)
      | None -> false)
  | Contains (field, needle) -> (
      match Record.get record field with
      | Some (Value.VString s) -> contains_sub s needle
      | Some _ | None -> false)
  | Not p -> not (eval p record)
  | And (p, q) -> eval p record && eval q record
  | Or (p, q) -> eval p record || eval q record

let rec monotone = function
  | True | Eq _ | Lt _ | Gt _ | Contains _ -> true
  | Not _ -> false
  | And (p, q) | Or (p, q) -> monotone p && monotone q

let fields pred =
  let rec go acc = function
    | True -> acc
    | Eq (f, _) | Lt (f, _) | Gt (f, _) | Contains (f, _) -> f :: acc
    | Not p -> go acc p
    | And (p, q) | Or (p, q) -> go (go acc p) q
  in
  List.sort_uniq compare (go [] pred)

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Eq (f, v) -> Format.fprintf fmt "%s = %a" f Value.pp v
  | Lt (f, v) -> Format.fprintf fmt "%s < %a" f Value.pp v
  | Gt (f, v) -> Format.fprintf fmt "%s > %a" f Value.pp v
  | Contains (f, s) -> Format.fprintf fmt "%s contains %S" f s
  | Not p -> Format.fprintf fmt "not (%a)" pp p
  | And (p, q) -> Format.fprintf fmt "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf fmt "(%a or %a)" pp p pp q

let to_string p = Format.asprintf "%a" pp p
