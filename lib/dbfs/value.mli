(** Typed field values.

    DBFS works at the granularity of individual typed PD pieces (the
    paper's Idea 3): a record is a set of named, typed values, never an
    opaque byte string. *)

type ftype = TString | TInt | TBool | TFloat

type t =
  | VString of string
  | VInt of int
  | VBool of bool
  | VFloat of float

val type_of : t -> ftype

val ftype_to_string : ftype -> string
val ftype_of_string : string -> (ftype, string) result

val to_display : t -> string
(** Human-readable rendering, e.g. for exports. *)

val pp : Format.formatter -> t -> unit
val pp_ftype : Format.formatter -> ftype -> unit
val equal : t -> t -> bool

val encode : Rgpdos_util.Codec.Writer.t -> t -> unit
val decode : Rgpdos_util.Codec.Reader.t -> (t, string) result
