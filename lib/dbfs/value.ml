module Codec = Rgpdos_util.Codec

open Rgpdos_util.Codec

type ftype = TString | TInt | TBool | TFloat

type t =
  | VString of string
  | VInt of int
  | VBool of bool
  | VFloat of float

let type_of = function
  | VString _ -> TString
  | VInt _ -> TInt
  | VBool _ -> TBool
  | VFloat _ -> TFloat

let ftype_to_string = function
  | TString -> "string"
  | TInt -> "int"
  | TBool -> "bool"
  | TFloat -> "float"

let ftype_of_string = function
  | "string" -> Ok TString
  | "int" -> Ok TInt
  | "bool" -> Ok TBool
  | "float" -> Ok TFloat
  | other -> Error ("unknown field type " ^ other)

let to_display = function
  | VString s -> s
  | VInt i -> string_of_int i
  | VBool b -> string_of_bool b
  | VFloat f -> Printf.sprintf "%g" f

let pp fmt = function
  | VString s -> Format.fprintf fmt "%S" s
  | VInt i -> Format.pp_print_int fmt i
  | VBool b -> Format.pp_print_bool fmt b
  | VFloat f -> Format.fprintf fmt "%g" f

let pp_ftype fmt ft = Format.pp_print_string fmt (ftype_to_string ft)

let equal a b =
  match (a, b) with
  | VFloat x, VFloat y -> Float.equal x y
  | _ -> a = b

let encode w = function
  | VString s ->
      Codec.Writer.string w "s";
      Codec.Writer.string w s
  | VInt i ->
      Codec.Writer.string w "i";
      (* store sign separately: the codec only takes non-negative ints *)
      Codec.Writer.bool w (i < 0);
      Codec.Writer.int w (abs i)
  | VBool b ->
      Codec.Writer.string w "b";
      Codec.Writer.bool w b
  | VFloat f ->
      Codec.Writer.string w "f";
      Codec.Writer.string w (Printf.sprintf "%h" f)

let decode r =
  let* tag = Codec.Reader.string r in
  match tag with
  | "s" ->
      let* s = Codec.Reader.string r in
      Ok (VString s)
  | "i" ->
      let* neg = Codec.Reader.bool r in
      let* v = Codec.Reader.int r in
      Ok (VInt (if neg then -v else v))
  | "b" ->
      let* b = Codec.Reader.bool r in
      Ok (VBool b)
  | "f" -> (
      let* s = Codec.Reader.string r in
      match float_of_string_opt s with
      | Some f -> Ok (VFloat f)
      | None -> Error ("malformed float " ^ s))
  | other -> Error ("unknown value tag " ^ other)
