(** PD records: named typed field values conforming to a {!Schema}. *)

type t = (string * Value.t) list

val get : t -> string -> Value.t option

val project : t -> string list -> t
(** [project r fields] keeps only the listed fields, preserving record
    order.  This is how data minimisation materialises: a processing
    granted only a view receives the projected record. *)

val redact : t -> visible:string list -> t
(** Like [project] but total over the record: fields outside [visible] are
    replaced by [VString "<redacted>"] — used for exports that must show
    structure without content. *)

val encode : t -> string
val decode : string -> (t, string) result

val to_export : type_name:string -> pd_id:string -> t -> string
(** Structured, machine-readable rendering for GDPR right-of-access /
    portability exports (keys are meaningful, per the paper's §4
    discussion).  The format is a deterministic JSON object. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
