module Codec = Rgpdos_util.Codec

open Rgpdos_util.Codec

type t = (string * Value.t) list

let get r name = List.assoc_opt name r

let project r fields = List.filter (fun (name, _) -> List.mem name fields) r

let redact r ~visible =
  List.map
    (fun (name, v) ->
      if List.mem name visible then (name, v)
      else (name, Value.VString "<redacted>"))
    r

let encode r =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "REC1";
  Codec.Writer.list w
    (fun (name, v) ->
      Codec.Writer.string w name;
      Value.encode w v)
    r;
  Codec.Writer.contents w

let decode raw =
  let r = Codec.Reader.create raw in
  let* magic = Codec.Reader.string r in
  if magic <> "REC1" then Error "not a record: bad magic"
  else
    let* fields =
      Codec.Reader.list r (fun r ->
          let* name = Codec.Reader.string r in
          let* v = Value.decode r in
          Ok (name, v))
    in
    let* () = Codec.Reader.expect_end r in
    Ok fields

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Value.VString s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Value.VInt i -> string_of_int i
  | Value.VBool b -> string_of_bool b
  | Value.VFloat f -> Printf.sprintf "%g" f

let to_export ~type_name ~pd_id r =
  let fields =
    List.map
      (fun (name, v) -> Printf.sprintf "\"%s\": %s" (json_escape name) (value_to_json v))
      r
  in
  Printf.sprintf "{\"type\": \"%s\", \"id\": \"%s\", \"fields\": {%s}}"
    (json_escape type_name) (json_escape pd_id)
    (String.concat ", " fields)

let pp fmt r =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (name, v) -> Format.fprintf fmt "%s=%a" name Value.pp v))
    r

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Value.equal v1 v2)
       a b
