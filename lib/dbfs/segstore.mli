(** Log-structured record segments over the DBFS data region.

    In segmented mode the three data zones (membranes / ordinary records
    / sensitive records) are carved into fixed-size segments.  Payload
    extents are bump-allocated at the write pointer of the zone's open
    segment; full segments are sealed and only lose liveness afterwards,
    until the compactor relocates the survivors and reclaims the whole
    segment (with a segment-granular trim when it is fully dead).

    The per-segment live table (state, bump pointer, live blocks, live
    bytes) is derived state over the DBFS allocation bitmap: it is
    maintained write-through while mounted and rebuilt lazily from the
    hydrated bitmap after a remount, so it can never disagree with the
    persisted truth and clean mounts stay O(1). *)

type state = S_free | S_open | S_sealed

val state_to_string : state -> string

type seg = private {
  g_id : int;
  g_class : int;  (** 0 membrane, 1 ordinary record, 2 sensitive record *)
  g_first : int;  (** first device block *)
  g_nblocks : int;
  mutable g_state : state;
  mutable g_used : int;  (** bump pointer, in blocks *)
  mutable g_live : int;  (** live (allocated) blocks *)
  mutable g_live_bytes : int;  (** live payload bytes *)
}

type t

val create : seg_blocks:int -> zones:(int * int) list -> t
(** [create ~seg_blocks ~zones] carves each [(lo, hi)] zone (one per
    class, in class order) into [(hi-lo)/seg_blocks] segments.  Zone
    tails smaller than a segment are never allocated. *)

val hydrated : t -> bool

val hydrate : t -> is_free:(int -> bool) -> is_written:(int -> bool) -> unit
(** Rebuild the live table from the allocation bitmap: non-empty
    segments are sealed (appends resume in fresh segments), free+written
    blocks count as dirty. *)

val seg_count : t -> int
val seg_of_block : t -> int -> seg option

val alloc : t -> cls:int -> int -> int list option
(** Bump-allocate a contiguous extent in the class's open segment,
    opening the next free segment when needed; an extent larger than a
    segment takes a run of consecutive free segments.  Returns [None]
    when the class has no room — the caller should compact and retry.
    Placement only: liveness is accounted via {!note_alloc}. *)

val note_alloc : t -> int -> bytes:int -> unit
(** A block was marked used in the bitmap (write-through hook). *)

val note_free : t -> int -> bytes:int -> written:bool -> unit
(** A block was marked free in the bitmap; [written] blocks still hold
    their old payload and count as dirty until purged. *)

val dirty_blocks : t -> int
(** Freed-but-unpurged blocks: plaintext awaiting destruction. *)

val dirty_in : t -> seg -> int list
(** The dirty blocks inside one segment, sorted. *)

val clear_dirty : t -> int list -> unit
(** The given blocks were zeroed or trimmed; drop them from the dirty
    set.  Zeroed blocks stay [is_written] on the device, so this is what
    guarantees a block is scrubbed exactly once. *)

val take_dirty : t -> int list
(** All dirty blocks, sorted; the set is emptied. *)

val free_segs : t -> int -> int
(** Free segments remaining in a class. *)

val seal : t -> seg -> unit
val reclaim : t -> seg -> unit

val victims : t -> max_victims:int -> liveness_pct:float -> seg list
(** Sealed segments whose live/used ratio is at or below
    [liveness_pct], fully dead first then lowest liveness. *)

val iter_segs : t -> (seg -> unit) -> unit

val live_table : t -> (int * string * int * int * int) list
(** [(id, state, used, live_blocks, live_bytes)] for every non-free
    segment. *)

val invalidate : t -> unit
(** Drop the derived table (e.g. after fsck repair rewrote the bitmap);
    the next use re-hydrates from the bitmap. *)
