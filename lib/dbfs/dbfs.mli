(** DBFS: the database-oriented filesystem (the paper's Idea 3, §3(1)).

    DBFS stores typed personal data, never opaque files.  Following §3(1)
    it keeps two major inode trees on the device:

    - the {b subject tree}: one inode subtree per data subject gathering
      their PD entries, each entry holding the record {i and} its membrane
      in separate inodes;
    - the {b schema tree}: one descriptor inode per table (PD type) with
      the field structure and the list of subject inodes holding rows, so
      the filesystem can format data when returning it to the DED.

    Three properties distinguish DBFS from the conventional {!module:
    Rgpdos_journalfs.Journalfs} and carry the paper's compliance argument:

    - {b metadata-only journaling}: the write-ahead journal records block
      numbers and identifiers, never PD bytes (data blocks are written in
      place before the journal record commits, ext3 [data=ordered] style),
      so the journal cannot retain deleted PD;
    - {b zeroing deallocation}: deleting or rewriting a PD entry zeroes
      its old blocks on the device;
    - {b membrane invariant}: the API makes it impossible to store a
      record without a membrane (enforcement rule 3 of §2), and the
      attached membrane must agree with the entry's identity.

    Sensitive records ([High] sensitivity) are allocated in a separate
    device region from ordinary ones, implementing the GDPR's requirement
    that sensitive data be stored apart.

    Access control: DBFS "is not visible from the outside" (§2).  Every
    operation takes an [~actor] and consults a pluggable LSM-style hook
    (installed by the machine; fail-open only until one is installed).
    The rgpdOS machine configures the hook so only the DED (and the
    built-ins it hosts) pass. *)

type t

type error =
  | Unknown_type of string
  | Type_exists of string
  | Unknown_pd of string
  | Membrane_mismatch of string
  | Invalid_record of string
  | Erased of string        (** PD was crypto-erased; plaintext is gone *)
  | No_space
  | Access_denied of string
  | Corrupt of string
  | Device_fault of string
      (** a read path exhausted its retries against a faulted block *)
  | Degraded of string
      (** the store is in degraded read-only mode; mutations are refused
          until [fsck ~repair:true] clears it *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val format :
  ?segmented:bool ->
  ?seg_blocks:int ->
  Rgpdos_block.Block_device.t ->
  journal_blocks:int ->
  t
(** Write a fresh DBFS on the device.  [?segmented] (default [false])
    selects the log-structured allocator: payload extents bump-allocate
    into per-zone append-only segments of [?seg_blocks] (default 64)
    blocks, superseded extents stay in place until a purge or the
    compactor destroys them, and fully dead segments are reclaimed with
    segment-granular trims.  The flag persists in the superblock, so
    both allocators coexist on one build for A/B comparison. *)

val mount : Rgpdos_block.Block_device.t -> (t, string) result
(** Load the last checkpoint and replay the metadata journal.  Replay is
    exception-free: it stops at the first damaged frame (see
    {!replay_report}); a frame that decodes but cannot be applied flips
    the store into degraded read-only mode instead of failing the mount.
    Blocks freed by replayed operations that are still free once the
    whole journal is applied are re-zeroed, closing the
    commit-then-crash window in which stale PD plaintext could survive
    on the medium. *)

val device : t -> Rgpdos_block.Block_device.t

type layout = {
  l_data_start : int;   (** first data block *)
  l_rec_start : int;    (** first record block; membranes live below *)
  l_high_start : int;   (** first High-sensitivity record block *)
  l_block_count : int;
}

val layout : t -> layout
(** Data-region zone boundaries.  Membranes are allocated in
    [l_data_start, l_rec_start); ordinary records in
    [l_rec_start, l_high_start); High-sensitivity records in
    [l_high_start, l_block_count).  Separate membrane/record zones keep a
    whole-selection batch read of one kind contiguous (mergeable by the
    vectored device path); the High split implements storing sensitive
    data apart. *)

val entry_blocks :
  t -> actor:string -> string -> (int list * int list, error) result
(** [(record_blocks, membrane_blocks)] of a pd — placement introspection
    for allocator tests and forensic checks. *)

val set_access_hook : t -> (actor:string -> op:string -> bool) -> unit
(** Install the LSM-style mediation hook.  Ops are ["create_type"],
    ["read"], ["write"], ["delete"], ["erase"], ["export"], ["admin"]. *)

(** {1 Schema tree} *)

val create_type : t -> actor:string -> Schema.t -> (unit, error) result
val schema : t -> actor:string -> string -> (Schema.t, error) result
val list_types : t -> actor:string -> (string list, error) result

(** {1 PD entries} *)

val insert :
  t ->
  actor:string ->
  subject:string ->
  type_name:string ->
  record:Record.t ->
  membrane_of:(pd_id:string -> Rgpdos_membrane.Membrane.t) ->
  (string, error) result
(** Store a new PD entry.  DBFS assigns the pd_id, asks the caller to
    produce the membrane for it (the acquisition built-in does this from
    schema defaults + subject choices), validates both, and stores record
    and membrane in the subject's inode subtree.  Returns the pd_id. *)

val get_membrane :
  t -> actor:string -> string -> (Rgpdos_membrane.Membrane.t, error) result
(** Fetch only the membrane — the DED's first request (ded_load_membrane)
    never touches the data blocks. *)

val get_record : t -> actor:string -> string -> (Record.t, error) result
(** Fetch the record data (ded_load_data).  Fails with [Erased] after
    crypto-erasure. *)

val get_membranes :
  t ->
  actor:string ->
  ?channel:int ->
  string list ->
  ((string * Rgpdos_membrane.Membrane.t) list, error) result
(** Batched membrane load: one elevator-ordered vectored device request
    covers every pd in the selection, so the fixed seek cost is paid per
    contiguous run rather than per pd.  Results are in input order.  Any
    unknown pd fails the whole batch.  Cache hits skip only the host-side
    decode — their blocks stay in the request, so the simulated cost (and
    every stage_ns figure) is identical whether the cache is cold or
    warm.

    On an async device the batch is split into [queue_depth] contiguous
    chunks submitted up-front on [?channel] (default 0): chunk [k]'s
    decode overlaps the device service of chunks [k+1..], so the batch
    charges its critical path instead of the serial sum.  Bytes, results
    and all non-latency counters are identical to the synchronous path. *)

val get_records :
  t ->
  actor:string ->
  ?channel:int ->
  string list ->
  ((string * Record.t option) list, error) result
(** Batched record load, one vectored request for the selection (input
    order preserved).  Erased pds yield [None] — their sealed payload is
    neither read nor charged — matching the DED's skip-erased semantics.
    Any unknown pd fails the whole batch.  Pipelined on async devices
    exactly like {!get_membranes}. *)

val update_record :
  t -> actor:string -> string -> Record.t -> (unit, error) result
(** Replace the record (built-in [update]).  Old blocks are zeroed. *)

val update_membrane :
  t ->
  actor:string ->
  string ->
  Rgpdos_membrane.Membrane.t ->
  (unit, error) result
(** Replace the membrane (consent changes).  The new membrane must keep the
    entry's pd_id, type and subject. *)

val update_membranes_by_lineage :
  t ->
  actor:string ->
  lineage:string ->
  (Rgpdos_membrane.Membrane.t -> Rgpdos_membrane.Membrane.t) ->
  (int, error) result
(** Apply a membrane transformation to every copy sharing a lineage root —
    how the machine keeps membranes consistent across copies of the same
    PD.  Returns how many entries were updated. *)

val copy_pd : t -> actor:string -> string -> (string, error) result
(** Built-in [copy]: duplicate record and membrane under a fresh pd_id;
    the copy's membrane inherits every restriction and the lineage root. *)

val delete : t -> actor:string -> string -> (unit, error) result
(** Physical removal: record and membrane blocks are zeroed on the device
    before being freed. *)

val erase_with :
  t ->
  actor:string ->
  string ->
  seal:(Record.t -> string) ->
  (unit, error) result
(** Crypto-erasure (right to be forgotten, §4): the record is replaced by
    [seal record] — an authority-sealed envelope — and the plaintext blocks
    are zeroed.  The membrane remains (with its consents withdrawn by the
    caller) so the entry's existence stays accountable. *)

val erased_payload : t -> actor:string -> string -> (string, error) result
(** The sealed envelope bytes of an erased entry (what a supervisory
    authority would retrieve). *)

(** {1 Queries} *)

val list_pds : t -> actor:string -> string -> (string list, error) result
(** All pd_ids of a type, in insertion order. *)

val pds_of_subject : t -> actor:string -> string -> (string list, error) result
(** The subject's pd_ids in insertion order (oldest first) — backed by the
    persisted subject index, so exports and right-of-access output are
    deterministic and stable across remount. *)

val subjects : t -> actor:string -> (string list, error) result
val pd_count : t -> int

val select :
  t ->
  actor:string ->
  ?use_indexes:bool ->
  ?channel:int ->
  string ->
  Query.t ->
  (string list, error) result
(** [select t ~actor type_name pred]: the pd_ids of the type's live
    (non-erased) entries whose record satisfies [pred], in insertion
    order.  The predicate is pushed down into storage: a {!Plan.compile}d
    probe over the type's secondary indexes yields a candidate superset
    (Eq → hash-posting probe, Lt/Gt → ordered-index range scan, And →
    posting intersection, Or → union), one batched vectored load fetches
    only the candidates, and the original predicate runs as a residual
    filter — skipped entirely when the plan is exact.  [Not], [Contains]
    and unindexed atoms degrade soundly to today's full scan.

    Guaranteed equivalent to filtering {!list_pds} through {!get_records}
    + [Query.eval] (the qcheck planner-equivalence property).  Index
    probes charge simulated metadata-region reads proportional to the
    postings touched — warm and cold runs cost the same, like every other
    DBFS read path.  [?use_indexes:false] forces the full-scan path (for
    measurement; results are identical).

    On an async device the residual record fetch rides [?channel]
    (default 0): index probes submit the candidate loads so their device
    service overlaps residual evaluation, and interior B+-tree descents
    prefetch the next sibling page ahead of the current decode. *)

val plan_for :
  t -> actor:string -> string -> Query.t -> (Plan.t, error) result
(** The plan {!select} would run — introspection for tests and debug. *)

val expired_pds : t -> actor:string -> now:int -> (string list, error) result
(** Live pds whose membrane expiry instant ([created_at + ttl]) is
    [<= now], in expiry order — a non-destructive peek at the TTL expiry
    min-queue, charged as an index read.  Entries leave the queue when
    their pd is deleted, erased or re-membraned, so a sweeper that pops
    and erases pays O(expired), not O(population). *)

val expiry_queue_size : t -> int
(** How many pds currently carry a TTL (queue population). *)

val entry_info :
  t -> actor:string -> string -> (string * string * bool, error) result
(** [(type_name, subject, erased)] for a pd_id. *)

val export_subject : t -> actor:string -> string -> (string, error) result
(** Right-of-access export: every non-erased record of the subject, as it
    is stored in DBFS — structured, machine-readable, with meaningful
    keys (§4).  JSON array of record objects. *)

val describe_trees : t -> actor:string -> (string, error) result
(** Render the two major inode trees of §3(1): the subject tree (each
    subject's PD-entry inodes with their record/membrane block lists) and
    the schema tree (each table's field descriptors and the subject inodes
    holding rows), plus the format-descriptor inodes (the record layout
    the filesystem uses to format data returned to the DED). *)

(** {1 Durability & integrity} *)

val checkpoint : t -> unit
val crash_and_remount : t -> (t, string) result

val fsck : ?repair:bool -> t -> (unit, string list) result
(** Invariant check, including the membrane invariant (every stored
    entry's membrane must decode and match the entry identity), per-extent
    checksums (every record and membrane extent must read back with its
    stored FNV-64 sum), and index ↔ entry agreement in both directions:
    every index key names a live pd and matches its on-device record,
    every posting list contains its keyed pds, every live pd of an
    indexed type is keyed, the subject index links every entry, and the
    expiry queue agrees with each membrane's [created_at + ttl].

    With [~repair:true] the check is followed by {!fsck_repair};
    [Ok ()] then means the repaired store passes a re-check. *)

type repair_report = {
  rr_problems : string list;  (** what the initial check found *)
  rr_actions : string list;   (** repair actions taken, in order *)
  rr_quarantined : (string * string) list;
      (** unrecoverable pds removed from the store: [(pd_id, reason)] *)
  rr_scrubbed_blocks : int;   (** free blocks found non-zero and zeroed *)
  rr_journal_truncated : string option;
      (** why the journal was cut short, when replay stopped on damage *)
  rr_clean : bool;            (** post-repair re-check passed *)
}

val fsck_repair : t -> repair_report
(** Self-healing pass: quarantine entries whose extents are unreadable,
    fail their checksum, or no longer decode (reported, never silently
    dropped); rebuild every secondary index from the surviving records;
    release leaked blocks; zero any free block still holding bytes;
    truncate the journal at the first bad frame (checkpoint + scrub);
    and leave degraded read-only mode iff the re-check comes back clean.
    Repair never invents data — a quarantined pd is data loss and is
    reported as such. *)

val replay_report : t -> Rgpdos_block.Journal_ring.replay_summary option
(** The mount-time journal replay summary ([None] on a fresh format). *)

val replay_warning : t -> string option
(** Set when a well-framed journal record failed to decode or apply
    during mount; the store is then degraded. *)

val degraded : t -> string option
(** [Some reason] when the store is in degraded read-only mode: every
    mutation returns [Error (Degraded _)] while reads (including
    right-of-access exports) are still served. *)

val set_cache_budget : t -> int -> unit
(** Resize the shared LRU entry budget (clamped to >= 1), evicting down
    to the new size immediately.  The budget bounds RESIDENT HOST MEMORY
    only: simulated device costs follow the warm==cold rule, so shrinking
    the cache changes hit/miss/eviction counters but no [stage_ns]
    figure. *)

val cache_resident : t -> int
(** Entries currently resident in the shared LRU (node pages + decoded
    membranes + decoded records). *)

val cache_budget : t -> int

val index_page_blocks : t -> (int * int) list
(** Every on-device node page [(first_block, nblocks)] of the checkpointed
    index trees — fault-injection targets for [fsck --damage index-page].
    Empty before the first checkpoint. *)

val index_dump : t -> string
(** Canonical rendering of the secondary indexes (sorted, iteration-order
    independent) — crash-consistency tests compare this across remounts. *)

val rebuilt_index_dump : t -> string
(** What {!index_dump} would print for a from-scratch index rebuilt off
    the live entries and their on-device payloads — the reference for
    crash-consistency tests. *)

val unsafe_tamper_index : t -> string -> bool
(** Test hook: corrupt the index in place by dropping the pd from the
    posting list of its first indexed field (leaving the index's own
    bookkeeping claiming it is posted) — the kind of damage {!fsck} must
    flag.  Returns [false] when the pd carries no indexed fields. *)

(** {1 Group commit & log-structured segments} *)

val segmented : t -> bool
(** Whether the store was formatted with the log-structured allocator. *)

val set_group_commit : t -> int -> unit
(** Group-commit window for the metadata journal: [1] (the default)
    writes each record immediately — byte- and counter-identical to the
    pre-group-commit path; [n > 1] buffers up to [n] journal records and
    commits them in one vectored device write.  Any buffered records are
    flushed before the window changes. *)

val group_commit_window : t -> int

val flush_journal : t -> unit
(** Commit any buffered journal records now (no-op when none). *)

val pending_journal_ops : t -> int
(** Journal records buffered but not yet durable. *)

val compact : ?max_victims:int -> ?liveness_pct:float -> t -> int
(** Run one compaction pass: pick up to [max_victims] sealed segments at
    or below [liveness_pct] live, relocate their surviving extents
    through the ordinary journaled write path, then destroy the victims
    (trim when fully dead, vectored zero otherwise).  Returns the number
    of victim segments processed; [0] on an update-in-place store or
    when nothing qualifies. *)

val purge_dirty : t -> unit
(** Destroy every freed-but-unpurged block now (segmented mode; no-op
    otherwise).  Runs implicitly on every [delete] and [erase]. *)

val set_compaction_pool : t -> Rgpdos_util.Pool.t -> unit
(** Fan survivor checksum verification out over a domain pool during
    compaction.  Results are deterministic with or without a pool. *)

val segment_table : t -> (int * string * int * int * int) list
(** Per-segment live table [(id, state, used, live_blocks, live_bytes)]
    for every non-free segment; [[]] on an update-in-place store. *)

val segment_dirty_blocks : t -> int
(** Freed-but-unpurged blocks still holding superseded plaintext. *)

val free_segments : t -> int
(** Free segments remaining across all three zones. *)

val stats : t -> Rgpdos_util.Stats.Counter.t
(** Operation counters ("inserts", "membrane_reads", "record_reads",
    "deletes", "erasures", "denials", ...), plus group-commit
    ("committed_batches", "batched_ops") and segment bookkeeping
    ("compactions", "compact_relocations", "segments_reclaimed",
    "segment_trims", "purge_zeroed_blocks", "backpressure_stalls").

    "cache_hits" / "cache_misses" count lookups in the decoded
    membrane/record read cache.  A hit skips the host-side payload
    reassembly and decode but is charged the identical simulated device
    cost, so experiment [stage_ns] figures are unaffected.  Coherence
    rule: every journalled operation that touches a pd ([J_insert],
    [J_update_record], [J_update_membrane], [J_delete], [J_erase]) —
    whether live or replayed at mount — invalidates that pd's cached
    entries before it applies. *)
