(** DBFS: the database-oriented filesystem (the paper's Idea 3, §3(1)).

    DBFS stores typed personal data, never opaque files.  Following §3(1)
    it keeps two major inode trees on the device:

    - the {b subject tree}: one inode subtree per data subject gathering
      their PD entries, each entry holding the record {i and} its membrane
      in separate inodes;
    - the {b schema tree}: one descriptor inode per table (PD type) with
      the field structure and the list of subject inodes holding rows, so
      the filesystem can format data when returning it to the DED.

    Three properties distinguish DBFS from the conventional {!module:
    Rgpdos_journalfs.Journalfs} and carry the paper's compliance argument:

    - {b metadata-only journaling}: the write-ahead journal records block
      numbers and identifiers, never PD bytes (data blocks are written in
      place before the journal record commits, ext3 [data=ordered] style),
      so the journal cannot retain deleted PD;
    - {b zeroing deallocation}: deleting or rewriting a PD entry zeroes
      its old blocks on the device;
    - {b membrane invariant}: the API makes it impossible to store a
      record without a membrane (enforcement rule 3 of §2), and the
      attached membrane must agree with the entry's identity.

    Sensitive records ([High] sensitivity) are allocated in a separate
    device region from ordinary ones, implementing the GDPR's requirement
    that sensitive data be stored apart.

    Access control: DBFS "is not visible from the outside" (§2).  Every
    operation takes an [~actor] and consults a pluggable LSM-style hook
    (installed by the machine; fail-open only until one is installed).
    The rgpdOS machine configures the hook so only the DED (and the
    built-ins it hosts) pass. *)

type t

type error =
  | Unknown_type of string
  | Type_exists of string
  | Unknown_pd of string
  | Membrane_mismatch of string
  | Invalid_record of string
  | Erased of string        (** PD was crypto-erased; plaintext is gone *)
  | No_space
  | Access_denied of string
  | Corrupt of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val format :
  Rgpdos_block.Block_device.t -> journal_blocks:int -> t
(** Write a fresh DBFS on the device. *)

val mount : Rgpdos_block.Block_device.t -> (t, string) result
(** Load the last checkpoint and replay the metadata journal. *)

val device : t -> Rgpdos_block.Block_device.t

type layout = {
  l_data_start : int;   (** first data block *)
  l_rec_start : int;    (** first record block; membranes live below *)
  l_high_start : int;   (** first High-sensitivity record block *)
  l_block_count : int;
}

val layout : t -> layout
(** Data-region zone boundaries.  Membranes are allocated in
    [l_data_start, l_rec_start); ordinary records in
    [l_rec_start, l_high_start); High-sensitivity records in
    [l_high_start, l_block_count).  Separate membrane/record zones keep a
    whole-selection batch read of one kind contiguous (mergeable by the
    vectored device path); the High split implements storing sensitive
    data apart. *)

val entry_blocks :
  t -> actor:string -> string -> (int list * int list, error) result
(** [(record_blocks, membrane_blocks)] of a pd — placement introspection
    for allocator tests and forensic checks. *)

val set_access_hook : t -> (actor:string -> op:string -> bool) -> unit
(** Install the LSM-style mediation hook.  Ops are ["create_type"],
    ["read"], ["write"], ["delete"], ["erase"], ["export"], ["admin"]. *)

(** {1 Schema tree} *)

val create_type : t -> actor:string -> Schema.t -> (unit, error) result
val schema : t -> actor:string -> string -> (Schema.t, error) result
val list_types : t -> actor:string -> (string list, error) result

(** {1 PD entries} *)

val insert :
  t ->
  actor:string ->
  subject:string ->
  type_name:string ->
  record:Record.t ->
  membrane_of:(pd_id:string -> Rgpdos_membrane.Membrane.t) ->
  (string, error) result
(** Store a new PD entry.  DBFS assigns the pd_id, asks the caller to
    produce the membrane for it (the acquisition built-in does this from
    schema defaults + subject choices), validates both, and stores record
    and membrane in the subject's inode subtree.  Returns the pd_id. *)

val get_membrane :
  t -> actor:string -> string -> (Rgpdos_membrane.Membrane.t, error) result
(** Fetch only the membrane — the DED's first request (ded_load_membrane)
    never touches the data blocks. *)

val get_record : t -> actor:string -> string -> (Record.t, error) result
(** Fetch the record data (ded_load_data).  Fails with [Erased] after
    crypto-erasure. *)

val get_membranes :
  t ->
  actor:string ->
  string list ->
  ((string * Rgpdos_membrane.Membrane.t) list, error) result
(** Batched membrane load: one elevator-ordered vectored device request
    covers every pd in the selection, so the fixed seek cost is paid per
    contiguous run rather than per pd.  Results are in input order.  Any
    unknown pd fails the whole batch.  Cache hits skip only the host-side
    decode — their blocks stay in the request, so the simulated cost (and
    every stage_ns figure) is identical whether the cache is cold or
    warm. *)

val get_records :
  t ->
  actor:string ->
  string list ->
  ((string * Record.t option) list, error) result
(** Batched record load, one vectored request for the selection (input
    order preserved).  Erased pds yield [None] — their sealed payload is
    neither read nor charged — matching the DED's skip-erased semantics.
    Any unknown pd fails the whole batch. *)

val update_record :
  t -> actor:string -> string -> Record.t -> (unit, error) result
(** Replace the record (built-in [update]).  Old blocks are zeroed. *)

val update_membrane :
  t ->
  actor:string ->
  string ->
  Rgpdos_membrane.Membrane.t ->
  (unit, error) result
(** Replace the membrane (consent changes).  The new membrane must keep the
    entry's pd_id, type and subject. *)

val update_membranes_by_lineage :
  t ->
  actor:string ->
  lineage:string ->
  (Rgpdos_membrane.Membrane.t -> Rgpdos_membrane.Membrane.t) ->
  (int, error) result
(** Apply a membrane transformation to every copy sharing a lineage root —
    how the machine keeps membranes consistent across copies of the same
    PD.  Returns how many entries were updated. *)

val copy_pd : t -> actor:string -> string -> (string, error) result
(** Built-in [copy]: duplicate record and membrane under a fresh pd_id;
    the copy's membrane inherits every restriction and the lineage root. *)

val delete : t -> actor:string -> string -> (unit, error) result
(** Physical removal: record and membrane blocks are zeroed on the device
    before being freed. *)

val erase_with :
  t ->
  actor:string ->
  string ->
  seal:(Record.t -> string) ->
  (unit, error) result
(** Crypto-erasure (right to be forgotten, §4): the record is replaced by
    [seal record] — an authority-sealed envelope — and the plaintext blocks
    are zeroed.  The membrane remains (with its consents withdrawn by the
    caller) so the entry's existence stays accountable. *)

val erased_payload : t -> actor:string -> string -> (string, error) result
(** The sealed envelope bytes of an erased entry (what a supervisory
    authority would retrieve). *)

(** {1 Queries} *)

val list_pds : t -> actor:string -> string -> (string list, error) result
(** All pd_ids of a type, in insertion order. *)

val pds_of_subject : t -> actor:string -> string -> (string list, error) result
val subjects : t -> actor:string -> (string list, error) result
val pd_count : t -> int

val entry_info :
  t -> actor:string -> string -> (string * string * bool, error) result
(** [(type_name, subject, erased)] for a pd_id. *)

val export_subject : t -> actor:string -> string -> (string, error) result
(** Right-of-access export: every non-erased record of the subject, as it
    is stored in DBFS — structured, machine-readable, with meaningful
    keys (§4).  JSON array of record objects. *)

val describe_trees : t -> actor:string -> (string, error) result
(** Render the two major inode trees of §3(1): the subject tree (each
    subject's PD-entry inodes with their record/membrane block lists) and
    the schema tree (each table's field descriptors and the subject inodes
    holding rows), plus the format-descriptor inodes (the record layout
    the filesystem uses to format data returned to the DED). *)

(** {1 Durability & integrity} *)

val checkpoint : t -> unit
val crash_and_remount : t -> (t, string) result

val fsck : t -> (unit, string list) result
(** Invariant check, including the membrane invariant: every stored entry's
    membrane must decode and match the entry identity. *)

val stats : t -> Rgpdos_util.Stats.Counter.t
(** Operation counters ("inserts", "membrane_reads", "record_reads",
    "deletes", "erasures", "denials", ...).

    "cache_hits" / "cache_misses" count lookups in the decoded
    membrane/record read cache.  A hit skips the host-side payload
    reassembly and decode but is charged the identical simulated device
    cost, so experiment [stage_ns] figures are unaffected.  Coherence
    rule: every journalled operation that touches a pd ([J_insert],
    [J_update_record], [J_update_membrane], [J_delete], [J_erase]) —
    whether live or replayed at mount — invalidates that pd's cached
    entries before it applies. *)
