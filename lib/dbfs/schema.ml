module Codec = Rgpdos_util.Codec
module Clock = Rgpdos_util.Clock
module Membrane = Rgpdos_membrane.Membrane

open Rgpdos_util.Codec

type field = { fname : string; ftype : Value.ftype; required : bool }

type view = { vname : string; vfields : string list }

type t = {
  name : string;
  fields : field list;
  views : view list;
  default_consents : (string * Membrane.consent_scope) list;
  collection : (string * string) list;
  default_ttl : Clock.ns option;
  default_sensitivity : Membrane.sensitivity;
  default_origin : Membrane.origin;
  indexed_fields : string list;
}

let has_duplicates names = List.length (List.sort_uniq String.compare names) <> List.length names

let make ~name ~fields ?(views = []) ?(default_consents = []) ?(collection = [])
    ?default_ttl ?(default_sensitivity = Membrane.Low)
    ?(default_origin = Membrane.Subject) ?(indexed_fields = []) () =
  if name = "" then Error "schema: empty type name"
  else if fields = [] then Error "schema: a PD type needs at least one field"
  else if has_duplicates (List.map (fun f -> f.fname) fields) then
    Error "schema: duplicate field name"
  else if has_duplicates (List.map (fun v -> v.vname) views) then
    Error "schema: duplicate view name"
  else if has_duplicates (List.map fst default_consents) then
    Error "schema: duplicate purpose in default consents"
  else if has_duplicates indexed_fields then
    Error "schema: duplicate indexed field"
  else
    let field_set = List.map (fun f -> f.fname) fields in
    let bad_index =
      List.find_opt (fun f -> not (List.mem f field_set)) indexed_fields
    in
    match bad_index with
    | Some f -> Error (Printf.sprintf "schema: index on unknown field %s" f)
    | None -> (
    let bad_view =
      List.find_opt
        (fun v -> List.exists (fun f -> not (List.mem f field_set)) v.vfields)
        views
    in
    match bad_view with
    | Some v -> Error (Printf.sprintf "schema: view %s references unknown field" v.vname)
    | None -> (
        let view_set = List.map (fun v -> v.vname) views in
        let bad_consent =
          List.find_opt
            (fun (_, scope) ->
              match scope with
              | Membrane.View v -> not (List.mem v view_set)
              | Membrane.All | Membrane.Denied -> false)
            default_consents
        in
        match bad_consent with
        | Some (p, _) ->
            Error (Printf.sprintf "schema: consent for %s names unknown view" p)
        | None ->
            Ok
              {
                name;
                fields;
                views;
                default_consents;
                collection;
                default_ttl;
                default_sensitivity;
                default_origin;
                indexed_fields;
              }))

let field_names s = List.map (fun f -> f.fname) s.fields

let find_field s name = List.find_opt (fun f -> f.fname = name) s.fields

let find_view s name = List.find_opt (fun v -> v.vname = name) s.views

let view_fields s scope =
  match scope with
  | Membrane.All -> field_names s
  | Membrane.Denied -> []
  | Membrane.View v -> (
      match find_view s v with None -> [] | Some view -> view.vfields)

let validate_record s record =
  let rec check_fields = function
    | [] -> Ok ()
    | (name, value) :: rest -> (
        match find_field s name with
        | None -> Error (Printf.sprintf "unknown field %s for type %s" name s.name)
        | Some f ->
            if Value.type_of value <> f.ftype then
              Error
                (Printf.sprintf "field %s of type %s expects %s" name s.name
                   (Value.ftype_to_string f.ftype))
            else check_fields rest)
  in
  match check_fields record with
  | Error e -> Error e
  | Ok () -> (
      if has_duplicates (List.map fst record) then Error "duplicate field in record"
      else
        let missing =
          List.find_opt
            (fun f -> f.required && not (List.mem_assoc f.fname record))
            s.fields
        in
        match missing with
        | Some f -> Error (Printf.sprintf "missing required field %s" f.fname)
        | None -> Ok ())

(* ------------------------------------------------------------------ *)
(* serialization                                                      *)

let encode_scope w = function
  | Membrane.All -> Codec.Writer.string w "all"
  | Membrane.Denied -> Codec.Writer.string w "none"
  | Membrane.View v ->
      Codec.Writer.string w "view";
      Codec.Writer.string w v

let decode_scope r =
  let* tag = Codec.Reader.string r in
  match tag with
  | "all" -> Ok Membrane.All
  | "none" -> Ok Membrane.Denied
  | "view" ->
      let* v = Codec.Reader.string r in
      Ok (Membrane.View v)
  | other -> Error ("unknown scope " ^ other)

let encode s =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "SCH1";
  Codec.Writer.string w s.name;
  Codec.Writer.list w
    (fun f ->
      Codec.Writer.string w f.fname;
      Codec.Writer.string w (Value.ftype_to_string f.ftype);
      Codec.Writer.bool w f.required)
    s.fields;
  Codec.Writer.list w
    (fun v ->
      Codec.Writer.string w v.vname;
      Codec.Writer.list w (Codec.Writer.string w) v.vfields)
    s.views;
  Codec.Writer.list w
    (fun (p, scope) ->
      Codec.Writer.string w p;
      encode_scope w scope)
    s.default_consents;
  Codec.Writer.list w
    (fun (k, v) ->
      Codec.Writer.string w k;
      Codec.Writer.string w v)
    s.collection;
  (match s.default_ttl with
  | None -> Codec.Writer.bool w false
  | Some ttl ->
      Codec.Writer.bool w true;
      Codec.Writer.int w ttl);
  Codec.Writer.string w
    (match s.default_sensitivity with
    | Membrane.Low -> "low"
    | Membrane.Medium -> "medium"
    | Membrane.High -> "high");
  (match s.default_origin with
  | Membrane.Subject -> Codec.Writer.string w "subject"
  | Membrane.Sysadmin -> Codec.Writer.string w "sysadmin"
  | Membrane.Third_party op ->
      Codec.Writer.string w "third_party";
      Codec.Writer.string w op);
  Codec.Writer.list w (Codec.Writer.string w) s.indexed_fields;
  Codec.Writer.contents w

let decode raw =
  let r = Codec.Reader.create raw in
  let* magic = Codec.Reader.string r in
  if magic <> "SCH1" then Error "not a schema: bad magic"
  else
    let* name = Codec.Reader.string r in
    let* fields =
      Codec.Reader.list r (fun r ->
          let* fname = Codec.Reader.string r in
          let* ft_str = Codec.Reader.string r in
          let* ftype = Value.ftype_of_string ft_str in
          let* required = Codec.Reader.bool r in
          Ok { fname; ftype; required })
    in
    let* views =
      Codec.Reader.list r (fun r ->
          let* vname = Codec.Reader.string r in
          let* vfields = Codec.Reader.list r Codec.Reader.string in
          Ok { vname; vfields })
    in
    let* default_consents =
      Codec.Reader.list r (fun r ->
          let* p = Codec.Reader.string r in
          let* scope = decode_scope r in
          Ok (p, scope))
    in
    let* collection =
      Codec.Reader.list r (fun r ->
          let* k = Codec.Reader.string r in
          let* v = Codec.Reader.string r in
          Ok (k, v))
    in
    let* has_ttl = Codec.Reader.bool r in
    let* default_ttl =
      if has_ttl then
        let* v = Codec.Reader.int r in
        Ok (Some v)
      else Ok None
    in
    let* sens_str = Codec.Reader.string r in
    let* default_sensitivity =
      match sens_str with
      | "low" -> Ok Membrane.Low
      | "medium" -> Ok Membrane.Medium
      | "high" -> Ok Membrane.High
      | other -> Error ("unknown sensitivity " ^ other)
    in
    let* origin_tag = Codec.Reader.string r in
    let* default_origin =
      match origin_tag with
      | "subject" -> Ok Membrane.Subject
      | "sysadmin" -> Ok Membrane.Sysadmin
      | "third_party" ->
          let* op = Codec.Reader.string r in
          Ok (Membrane.Third_party op)
      | other -> Error ("unknown origin " ^ other)
    in
    let* indexed_fields = Codec.Reader.list r Codec.Reader.string in
    let* () = Codec.Reader.expect_end r in
    Ok
      {
        name;
        fields;
        views;
        default_consents;
        collection;
        default_ttl;
        default_sensitivity;
        default_origin;
        indexed_fields;
      }

let pp fmt s =
  Format.fprintf fmt "@[<v 2>type %s {@,fields: %a@,views: %a@]@,}" s.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun fmt f ->
         Format.fprintf fmt "%s:%a%s" f.fname Value.pp_ftype f.ftype
           (if f.required then "" else "?")))
    s.fields
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun fmt v ->
         Format.fprintf fmt "%s(%s)" v.vname (String.concat "," v.vfields)))
    s.views
