(* Paged secondary indexes.

   Three index families, all maintained write-through by DBFS:

   - per (type, indexed field): equality and range probes over a posting
     tree keyed "<ty>\x00<field>\x00<esc canonical>\x00<pd>";
   - a subject -> pd_ids index (right-of-access / erasure paths);
   - a TTL expiry min-queue keyed on membrane expiry instant
     (created_at + ttl), driving the incremental storage-limitation
     sweeper.

   Since PR 6 the durable form is a set of bulk-loaded B+-trees in the
   DBFS metadata heap ([Pagestore]), read on demand page by page — a
   mount no longer decodes the whole index.  Mutations never touch the
   trees: they land in the in-memory overlay (the same hash/ordered-map
   structures the index has always used), and each checkpoint rewrites
   the trees from the merged view.  The overlay is *authoritative per
   pd*: the first mutation touching a pd copies that pd's base facts
   into the overlay ("materialize"), marks the pd touched, and from then
   on base keys for that pd are skipped by every merged read.  A pd
   materializes through one [pdinfo] point lookup: pd -> (subject,
   indexed field values, expiry), the removal source of truth — never
   re-decoded payload bytes — so index maintenance stays correct during
   journal replay even when the device blocks behind an old operation
   have since been zeroed or reused (the final op for a pd always wins). *)

module Codec = Rgpdos_util.Codec

open Rgpdos_util.Codec

(* Total order over values, compatible with [Query.numeric_cmp] on the
   numeric fragment: whenever [numeric_cmp a b = Some c] with [c <> 0],
   [VKey.compare a b] has the same sign.  Cross-type numeric ties
   (VInt 5 vs VFloat 5.0) break by constructor so the map keeps them as
   distinct keys — range probes re-filter with [numeric_cmp], equality
   probes use the hash postings, so the tie-break is never observable. *)
module VKey = struct
  type t = Value.t

  let rank = function
    | Value.VString _ -> 0
    | Value.VBool _ -> 1
    | Value.VInt _ -> 2
    | Value.VFloat _ -> 3

  let compare a b =
    match (a, b) with
    | Value.VInt x, Value.VInt y -> compare x y
    | Value.VFloat x, Value.VFloat y -> compare x y
    | Value.VInt x, Value.VFloat y ->
        let c = compare (float_of_int x) y in
        if c <> 0 then c else -1
    | Value.VFloat x, Value.VInt y ->
        let c = compare x (float_of_int y) in
        if c <> 0 then c else 1
    | Value.VString x, Value.VString y -> String.compare x y
    | Value.VBool x, Value.VBool y -> compare x y
    | a, b -> compare (rank a) (rank b)
end

module VMap = Map.Make (VKey)
module IMap = Map.Make (Int)

type roots = {
  rt_postings : Pagestore.root;
  rt_pdinfo : Pagestore.root;
  rt_subjects : Pagestore.root;
  rt_expiry : Pagestore.root;
  rt_expiry_count : int;
  rt_max_pd : string;
}

let empty_roots =
  {
    rt_postings = Pagestore.empty_root;
    rt_pdinfo = Pagestore.empty_root;
    rt_subjects = Pagestore.empty_root;
    rt_expiry = Pagestore.empty_root;
    rt_expiry_count = 0;
    rt_max_pd = "";
  }

type base = { io : Pagestore.io; roots : roots }

type t = {
  eq : (string, string list ref) Hashtbl.t;
      (* "<ty>\x00<field>\x00<canonical value>" -> pd_ids, newest first *)
  ord : (string, string list ref VMap.t ref) Hashtbl.t;
      (* "<ty>\x00<field>" -> value -> pd_ids, newest first *)
  pd_keys : (string, string * (string * Value.t) list) Hashtbl.t;
      (* pd_id -> (type, indexed field values) — removal source of truth *)
  subjects : (string, string list ref) Hashtbl.t;
      (* subject -> pd_ids, newest first; keeps erased pds like the old
         subject_tree did (erasure seals, it does not unlink) *)
  mutable expiry : string list ref IMap.t; (* expiry ns -> pds, newest first *)
  expiry_of : (string, int) Hashtbl.t;
  touched : (string, unit) Hashtbl.t;
      (* pds whose overlay state overrides the base trees *)
  mutable base : base option;
  mutable expiry_count : int; (* merged queue size (base + overlay) *)
}

let create () =
  {
    eq = Hashtbl.create 64;
    ord = Hashtbl.create 16;
    pd_keys = Hashtbl.create 64;
    subjects = Hashtbl.create 64;
    expiry = IMap.empty;
    expiry_of = Hashtbl.create 64;
    touched = Hashtbl.create 64;
    base = None;
    expiry_count = 0;
  }

let attach ~io roots =
  let t = create () in
  t.base <- Some { io; roots };
  t.expiry_count <- roots.rt_expiry_count;
  t

(* ------------------------------------------------------------------ *)
(* canonical hash keys                                                *)

(* Must identify exactly the [Value.equal] equivalence classes: floats
   compare with [Float.equal] (nan = nan, -0. = 0.), everything else is
   structural and type-strict. *)
let canonical = function
  | Value.VString s -> "s:" ^ s
  | Value.VInt i -> "i:" ^ string_of_int i
  | Value.VBool b -> "b:" ^ string_of_bool b
  | Value.VFloat f ->
      if Float.is_nan f then "f:nan"
      else if f = 0.0 then "f:0" (* -0. = 0. under Float.equal *)
      else Printf.sprintf "f:%h" f

(* Inverse of [canonical]; "%h" hex floats round-trip exactly. *)
let of_canonical s =
  if String.length s < 2 || s.[1] <> ':' then None
  else
    let body = String.sub s 2 (String.length s - 2) in
    match s.[0] with
    | 's' -> Some (Value.VString body)
    | 'i' -> Option.map (fun i -> Value.VInt i) (int_of_string_opt body)
    | 'b' -> Option.map (fun b -> Value.VBool b) (bool_of_string_opt body)
    | 'f' ->
        if body = "nan" then Some (Value.VFloat Float.nan)
        else if body = "0" then Some (Value.VFloat 0.0)
        else Option.map (fun f -> Value.VFloat f) (float_of_string_opt body)
    | _ -> None

let eq_key ~type_name ~field v =
  String.concat "\x00" [ type_name; field; canonical v ]

let ord_key ~type_name ~field = type_name ^ "\x00" ^ field

(* ------------------------------------------------------------------ *)
(* on-device key encoding                                             *)

(* Tree keys embed NUL separators, so free-form components (canonical
   values, subject names) are escaped with an order-preserving map:
   0x00 -> 0x01 0x01 and 0x01 -> 0x01 0x02.  Type and field names come
   from schema declarations and contain neither byte. *)
let esc s =
  if String.exists (fun c -> c = '\x00' || c = '\x01') s then (
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        match c with
        | '\x00' -> Buffer.add_string b "\x01\x01"
        | '\x01' -> Buffer.add_string b "\x01\x02"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b)
  else s

let unesc s =
  if not (String.contains s '\x01') then s
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '\x01' && !i + 1 < n then begin
         Buffer.add_char b (if s.[!i + 1] = '\x01' then '\x00' else '\x01');
         incr i
       end
       else Buffer.add_char b s.[!i]);
      incr i
    done;
    Buffer.contents b
  end

let posting_key ~type_name ~field canon pd =
  String.concat "\x00" [ type_name; field; esc canon; pd ]

let subject_key subject pd = esc subject ^ "\x00" ^ pd
let expiry_ns_key ns = Printf.sprintf "%020d" ns
let expiry_key ns pd = expiry_ns_key ns ^ "\x00" ^ pd

let split2 k =
  match String.index_opt k '\x00' with
  | None -> None
  | Some i ->
      Some (String.sub k 0 i, String.sub k (i + 1) (String.length k - i - 1))

let split4 k =
  match String.split_on_char '\x00' k with
  | [ a; b; c; d ] -> Some (a, b, c, d)
  | _ -> None

let is_touched t pd = Hashtbl.mem t.touched pd

(* pdinfo value: (subject, indexed field values if live, expiry ns) *)
let encode_pdinfo ~subject ~keyed ~exp =
  let w = Writer.create () in
  Writer.string w subject;
  (match keyed with
  | None -> Writer.bool w false
  | Some (type_name, kvs) ->
      Writer.bool w true;
      Writer.string w type_name;
      Writer.list w
        (fun (f, v) ->
          Writer.string w f;
          Value.encode w v)
        kvs);
  (match exp with
  | None -> Writer.bool w false
  | Some ns ->
      Writer.bool w true;
      Writer.int w ns);
  Writer.contents w

let decode_pdinfo raw =
  let r = Reader.create raw in
  let* subject = Reader.string r in
  let* has_keys = Reader.bool r in
  let* keyed =
    if not has_keys then Ok None
    else
      let* type_name = Reader.string r in
      let* kvs =
        Reader.list r (fun r ->
            let* f = Reader.string r in
            let* v = Value.decode r in
            Ok (f, v))
      in
      Ok (Some (type_name, kvs))
  in
  let* has_exp = Reader.bool r in
  let* exp = if not has_exp then Ok None else Result.map Option.some (Reader.int r) in
  Ok (subject, keyed, exp)

(* ------------------------------------------------------------------ *)
(* posting-list helpers                                               *)

let table_add tbl key pd =
  match Hashtbl.find_opt tbl key with
  | Some ids -> ids := pd :: !ids
  | None -> Hashtbl.replace tbl key (ref [ pd ])

let table_remove tbl key pd =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some ids -> (
      ids := List.filter (fun p -> p <> pd) !ids;
      match !ids with [] -> Hashtbl.remove tbl key | _ -> ())

let ord_add t ~type_name ~field v pd =
  let okey = ord_key ~type_name ~field in
  let m =
    match Hashtbl.find_opt t.ord okey with
    | Some m -> m
    | None ->
        let m = ref VMap.empty in
        Hashtbl.replace t.ord okey m;
        m
  in
  match VMap.find_opt v !m with
  | Some ids -> ids := pd :: !ids
  | None -> m := VMap.add v (ref [ pd ]) !m

let ord_remove t ~type_name ~field v pd =
  let okey = ord_key ~type_name ~field in
  match Hashtbl.find_opt t.ord okey with
  | None -> ()
  | Some m -> (
      match VMap.find_opt v !m with
      | None -> ()
      | Some ids -> (
          ids := List.filter (fun p -> p <> pd) !ids;
          match !ids with [] -> m := VMap.remove v !m | _ -> ()))

(* ------------------------------------------------------------------ *)
(* materialization: overlay takes ownership of a pd                   *)

(* Copy a pd's base facts into the overlay before its first mutation.
   One pdinfo point lookup (O(height) cached page reads); pds beyond the
   base's largest key (fresh inserts) skip even that. *)
let materialize t pd_id =
  match t.base with
  | None -> ()
  | Some b ->
      if not (Hashtbl.mem t.touched pd_id) then begin
        Hashtbl.replace t.touched pd_id ();
        if String.compare pd_id b.roots.rt_max_pd <= 0 then
          match Pagestore.lookup b.io b.roots.rt_pdinfo pd_id with
          | None -> ()
          | Some raw -> (
              match decode_pdinfo raw with
              | Error e -> failwith ("Index: bad pdinfo for " ^ pd_id ^ ": " ^ e)
              | Ok (subject, keyed, exp) ->
                  table_add t.subjects subject pd_id;
                  (match keyed with
                  | None -> ()
                  | Some (type_name, kvs) ->
                      Hashtbl.replace t.pd_keys pd_id (type_name, kvs);
                      List.iter
                        (fun (field, v) ->
                          table_add t.eq (eq_key ~type_name ~field v) pd_id;
                          ord_add t ~type_name ~field v pd_id)
                        kvs);
                  (match exp with
                  | None -> ()
                  | Some ns -> (
                      Hashtbl.replace t.expiry_of pd_id ns;
                      match IMap.find_opt ns t.expiry with
                      | Some ids -> ids := pd_id :: !ids
                      | None -> t.expiry <- IMap.add ns (ref [ pd_id ]) t.expiry)))
      end

(* ------------------------------------------------------------------ *)
(* field-index maintenance                                            *)

let remove_entry t ~pd_id =
  materialize t pd_id;
  match Hashtbl.find_opt t.pd_keys pd_id with
  | None -> ()
  | Some (type_name, kvs) ->
      List.iter
        (fun (field, v) ->
          table_remove t.eq (eq_key ~type_name ~field v) pd_id;
          ord_remove t ~type_name ~field v pd_id)
        kvs;
      Hashtbl.remove t.pd_keys pd_id

let add_entry t ~pd_id ~type_name ~indexed record =
  remove_entry t ~pd_id;
  let kvs = List.filter (fun (f, _) -> List.mem f indexed) record in
  Hashtbl.replace t.pd_keys pd_id (type_name, kvs);
  List.iter
    (fun (field, v) ->
      table_add t.eq (eq_key ~type_name ~field v) pd_id;
      ord_add t ~type_name ~field v pd_id)
    kvs

(* ------------------------------------------------------------------ *)
(* subject index                                                      *)

let add_subject t ~subject ~pd_id =
  materialize t pd_id;
  table_add t.subjects subject pd_id

let remove_subject t ~subject ~pd_id =
  materialize t pd_id;
  table_remove t.subjects subject pd_id

let subject_pds t subject =
  let mem =
    match Hashtbl.find_opt t.subjects subject with
    | None -> []
    | Some ids -> List.rev !ids (* stored newest-first -> insertion order *)
  in
  match t.base with
  | None -> mem
  | Some b ->
      let acc = ref [] in
      let prefix = esc subject ^ "\x00" in
      Pagestore.iter_prefix b.io b.roots.rt_subjects ~prefix (fun k _ ->
          let pd = String.sub k (String.length prefix) (String.length k - String.length prefix) in
          if not (is_touched t pd) then acc := pd :: !acc);
      (* pd ids are zero-padded and assigned monotonically, so sorting by
         pd restores insertion order across the base/overlay split *)
      List.sort String.compare (List.rev_append !acc mem)

let subject_list t =
  let mem =
    Hashtbl.fold (fun s ids acc -> if !ids = [] then acc else s :: acc) t.subjects []
  in
  match t.base with
  | None -> List.sort String.compare mem
  | Some b ->
      let acc = ref mem in
      Pagestore.iter_from b.io b.roots.rt_subjects ~lo:"" (fun k _ ->
          (match split2 k with
          | Some (esc_s, pd) when not (is_touched t pd) -> acc := unesc esc_s :: !acc
          | _ -> ());
          true);
      List.sort_uniq String.compare !acc

(* ------------------------------------------------------------------ *)
(* expiry queue                                                       *)

let clear_expiry t ~pd_id =
  materialize t pd_id;
  match Hashtbl.find_opt t.expiry_of pd_id with
  | None -> ()
  | Some ns ->
      t.expiry_count <- t.expiry_count - 1;
      Hashtbl.remove t.expiry_of pd_id;
      (match IMap.find_opt ns t.expiry with
      | None -> ()
      | Some ids -> (
          ids := List.filter (fun p -> p <> pd_id) !ids;
          match !ids with
          | [] -> t.expiry <- IMap.remove ns t.expiry
          | _ -> ()))

let set_expiry t ~pd_id = function
  | None -> clear_expiry t ~pd_id
  | Some ns -> (
      clear_expiry t ~pd_id;
      t.expiry_count <- t.expiry_count + 1;
      Hashtbl.replace t.expiry_of pd_id ns;
      match IMap.find_opt ns t.expiry with
      | Some ids -> ids := pd_id :: !ids
      | None -> t.expiry <- IMap.add ns (ref [ pd_id ]) t.expiry)

(* Overlay-resident part of the due set, as (ns, pd) pairs in the
   historical order: ns ascending, insertion order within a bucket. *)
let expired_pairs_mem t ~now =
  (* non-destructive: entries leave the queue when their pd is deleted,
     erased or re-membraned, never as a side effect of looking *)
  let le, at, _ = IMap.split now t.expiry in
  let buckets =
    IMap.fold (fun ns ids acc -> (ns, List.rev !ids) :: acc) le [] |> List.rev
  in
  let buckets =
    match at with None -> buckets | Some ids -> buckets @ [ (now, List.rev !ids) ]
  in
  List.concat_map (fun (ns, pds) -> List.map (fun p -> (ns, p)) pds) buckets

let expired t ~now =
  let mem = expired_pairs_mem t ~now in
  match t.base with
  | None -> List.map snd mem
  | Some b ->
      let acc = ref [] in
      let stop = expiry_ns_key now in
      Pagestore.iter_from b.io b.roots.rt_expiry ~lo:"" (fun k _ ->
          match split2 k with
          | None -> true
          | Some (nss, pd) ->
              if String.compare nss stop > 0 then false
              else begin
                if not (is_touched t pd) then
                  acc := (int_of_string nss, pd) :: !acc;
                true
              end);
      (* merged order: (ns, pd) ascending — identical to what a full
         rebuild (which re-queues in pd order) would produce *)
      List.sort compare (List.rev_append !acc mem) |> List.map snd

let expiry_size t =
  match t.base with
  | None -> Hashtbl.length t.expiry_of
  | Some _ -> t.expiry_count

(* ------------------------------------------------------------------ *)
(* probes                                                             *)

(* Simulated on-device footprint of the overlay side of a probe: a bucket
   header plus one fixed-size slot per posting (pd ids are <= 16 bytes).
   DBFS turns bytes into device blocks and charges them read — warm ==
   cold.  Base-tree postings are charged as node-page reads instead (also
   warm == cold), inside the [Pagestore.io] DBFS provides. *)
let header_bytes = 32
let slot_bytes = 16

let base_eq_postings t ~type_name ~field v =
  match t.base with
  | None -> []
  | Some b ->
      let acc = ref [] in
      let prefix =
        String.concat "\x00" [ type_name; field; esc (canonical v) ] ^ "\x00"
      in
      Pagestore.iter_prefix b.io b.roots.rt_postings ~prefix (fun k _ ->
          let pd = String.sub k (String.length prefix) (String.length k - String.length prefix) in
          if not (is_touched t pd) then acc := pd :: !acc);
      List.rev !acc

let probe_eq t ~type_name ~field v =
  let ids =
    match Hashtbl.find_opt t.eq (eq_key ~type_name ~field v) with
    | None -> []
    | Some ids -> !ids
  in
  let bytes = header_bytes + (slot_bytes * List.length ids) in
  (base_eq_postings t ~type_name ~field v @ ids, bytes)

let probe_range t ~type_name ~field ~op v =
  let ids, bytes =
    match Hashtbl.find_opt t.ord (ord_key ~type_name ~field) with
    | None -> ([], header_bytes)
    | Some m ->
        let side, at, other = VMap.split v !m in
        let part = match op with `Lt -> side | `Gt -> other in
        ignore at;
        (* The ordered scan walks the half-open range; [numeric_cmp] is the
           final word so the probe matches [Query.eval] exactly (non-numeric
           keys and cross-type ties fall out here). *)
        let keys = ref 0 and ids = ref [] in
        VMap.iter
          (fun v' pds ->
            incr keys;
            let keep =
              match Query.numeric_cmp v' v with
              | Some c -> ( match op with `Lt -> c < 0 | `Gt -> c > 0)
              | None -> false
            in
            if keep then ids := List.rev_append !pds !ids)
          part;
        let bytes =
          header_bytes + (slot_bytes * !keys) + (slot_bytes * List.length !ids)
        in
        (!ids, bytes)
  in
  match t.base with
  | None -> (ids, bytes)
  | Some b ->
      let extra = ref [] in
      let prefix = ord_key ~type_name ~field ^ "\x00" in
      Pagestore.iter_prefix b.io b.roots.rt_postings ~prefix (fun k _ ->
          match split4 k with
          | Some (_, _, escanon, pd) when not (is_touched t pd) -> (
              match of_canonical (unesc escanon) with
              | None -> ()
              | Some v' -> (
                  match Query.numeric_cmp v' v with
                  | Some c when (match op with `Lt -> c < 0 | `Gt -> c > 0) ->
                      extra := pd :: !extra
                  | _ -> ()))
          | _ -> ());
      (List.rev_append !extra ids, bytes)

(* ------------------------------------------------------------------ *)
(* checkpoint: rewrite the base trees from the merged view            *)

let key_cmp (a, _) (b, _) = String.compare a b

(* Stream a base tree, dropping every key owned by a touched pd. *)
let base_items t root extract_pd =
  match t.base with
  | None -> []
  | Some b ->
      let acc = ref [] in
      Pagestore.iter_from b.io (root b.roots) ~lo:"" (fun k v ->
          (match extract_pd k with
          | Some pd when is_touched t pd -> ()
          | _ -> acc := (k, v) :: !acc);
          true);
      List.rev !acc

let checkpoint t ~io =
  let expiry_count = expiry_size t in
  (* overlay pd -> subject (covers every live-or-erased touched pd) *)
  let subj_of = Hashtbl.create 64 in
  Hashtbl.iter
    (fun s ids -> List.iter (fun pd -> Hashtbl.replace subj_of pd s) !ids)
    t.subjects;
  let postings =
    let mem =
      Hashtbl.fold
        (fun pd (type_name, kvs) acc ->
          List.fold_left
            (fun acc (field, v) ->
              (posting_key ~type_name ~field (canonical v) pd, "") :: acc)
            acc kvs)
        t.pd_keys []
      |> List.sort key_cmp
    in
    List.merge key_cmp
      (base_items t
         (fun r -> r.rt_postings)
         (fun k -> Option.map (fun (_, _, _, pd) -> pd) (split4 k)))
      mem
  in
  let pdinfo =
    let mem =
      Hashtbl.fold
        (fun pd subject acc ->
          let keyed = Hashtbl.find_opt t.pd_keys pd in
          let exp = Hashtbl.find_opt t.expiry_of pd in
          (pd, encode_pdinfo ~subject ~keyed ~exp) :: acc)
        subj_of []
      |> List.sort key_cmp
    in
    List.merge key_cmp (base_items t (fun r -> r.rt_pdinfo) Option.some) mem
  in
  let subjects =
    let mem =
      Hashtbl.fold
        (fun pd subject acc -> (subject_key subject pd, "") :: acc)
        subj_of []
      |> List.sort key_cmp
    in
    List.merge key_cmp
      (base_items t
         (fun r -> r.rt_subjects)
         (fun k -> Option.map snd (split2 k)))
      mem
  in
  let expiry =
    let mem =
      Hashtbl.fold (fun pd ns acc -> (expiry_key ns pd, "") :: acc) t.expiry_of []
      |> List.sort key_cmp
    in
    List.merge key_cmp
      (base_items t (fun r -> r.rt_expiry) (fun k -> Option.map snd (split2 k)))
      mem
  in
  let max_pd =
    match List.rev pdinfo with (pd, _) :: _ -> pd | [] -> ""
  in
  let roots =
    {
      rt_postings = Pagestore.write_tree io postings;
      rt_pdinfo = Pagestore.write_tree io pdinfo;
      rt_subjects = Pagestore.write_tree io subjects;
      rt_expiry = Pagestore.write_tree io expiry;
      rt_expiry_count = expiry_count;
      rt_max_pd = max_pd;
    }
  in
  (* the overlay stays: it remains authoritative for touched pds, and the
     new base holds exactly the same facts for them.  Every pd with
     overlay facts must now be marked touched — the new base duplicates
     its facts, and an unmarked pd would be counted from both sides (this
     matters for pds added while there was no base yet: [materialize] is a
     no-op then). *)
  t.base <- Some { io; roots };
  t.expiry_count <- expiry_count;
  Hashtbl.iter (fun pd _ -> Hashtbl.replace t.touched pd ()) subj_of;
  Hashtbl.iter (fun pd _ -> Hashtbl.replace t.touched pd ()) t.pd_keys;
  Hashtbl.iter (fun pd _ -> Hashtbl.replace t.touched pd ()) t.expiry_of;
  roots

let encode_roots w r =
  Pagestore.encode_root w r.rt_postings;
  Pagestore.encode_root w r.rt_pdinfo;
  Pagestore.encode_root w r.rt_subjects;
  Pagestore.encode_root w r.rt_expiry;
  Writer.int w r.rt_expiry_count;
  Writer.string w r.rt_max_pd

let decode_roots rd =
  let* rt_postings = Pagestore.decode_root rd in
  let* rt_pdinfo = Pagestore.decode_root rd in
  let* rt_subjects = Pagestore.decode_root rd in
  let* rt_expiry = Pagestore.decode_root rd in
  let* rt_expiry_count = Reader.int rd in
  let* rt_max_pd = Reader.string rd in
  Ok { rt_postings; rt_pdinfo; rt_subjects; rt_expiry; rt_expiry_count; rt_max_pd }

let node_pages t =
  match t.base with
  | None -> []
  | Some b ->
      List.concat_map
        (fun root -> Pagestore.node_blocks b.io root)
        [
          b.roots.rt_postings;
          b.roots.rt_pdinfo;
          b.roots.rt_subjects;
          b.roots.rt_expiry;
        ]

(* ------------------------------------------------------------------ *)
(* introspection (tests, fsck)                                        *)

(* fsck support: every indexed fact both ways *)
let fold_pd_keys t f acc =
  let acc = Hashtbl.fold (fun pd v acc -> f pd v acc) t.pd_keys acc in
  match t.base with
  | None -> acc
  | Some b ->
      let r = ref acc in
      Pagestore.iter_from b.io b.roots.rt_pdinfo ~lo:"" (fun pd raw ->
          (if not (is_touched t pd) then
             match decode_pdinfo raw with
             | Ok (_, Some keyed, _) -> r := f pd keyed !r
             | _ -> ());
          true);
      !r

let base_pdinfo t pd_id =
  match t.base with
  | Some b when not (is_touched t pd_id) -> (
      match Pagestore.lookup b.io b.roots.rt_pdinfo pd_id with
      | None -> None
      | Some raw -> (
          match decode_pdinfo raw with Ok info -> Some info | Error _ -> None))
  | _ -> None

let pd_key t pd_id =
  match t.base with
  | Some _ when not (is_touched t pd_id) ->
      Option.bind (base_pdinfo t pd_id) (fun (_, keyed, _) -> keyed)
  | _ -> Hashtbl.find_opt t.pd_keys pd_id

let expiry_of t pd_id =
  match t.base with
  | Some _ when not (is_touched t pd_id) ->
      Option.bind (base_pdinfo t pd_id) (fun (_, _, exp) -> exp)
  | _ -> Hashtbl.find_opt t.expiry_of pd_id

let eq_postings t ~type_name ~field v =
  let mem =
    match Hashtbl.find_opt t.eq (eq_key ~type_name ~field v) with
    | None -> []
    | Some ids -> !ids
  in
  base_eq_postings t ~type_name ~field v @ mem

(* Canonical rendering, independent of hashtable iteration order and of
   posting-list internal order — two indexes holding the same facts dump
   to the same string. *)
let dump_mem t =
  let b = Buffer.create 256 in
  let sorted_tbl tbl =
    Hashtbl.fold (fun k ids acc -> (k, List.sort String.compare !ids) :: acc) tbl []
    |> List.sort compare
  in
  Buffer.add_string b "eq:\n";
  List.iter
    (fun (k, ids) ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s\n"
           (String.concat "/" (String.split_on_char '\x00' k))
           (String.concat "," ids)))
    (sorted_tbl t.eq);
  Buffer.add_string b "subjects:\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s\n" s
           (String.concat ","
              (List.sort String.compare
                 (match Hashtbl.find_opt t.subjects s with
                 | None -> []
                 | Some ids -> !ids)))))
    (Hashtbl.fold
       (fun s ids acc -> if !ids = [] then acc else s :: acc)
       t.subjects []
    |> List.sort String.compare);
  Buffer.add_string b "expiry:\n";
  IMap.iter
    (fun ns ids ->
      Buffer.add_string b
        (Printf.sprintf "  %d -> %s\n" ns
           (String.concat "," (List.sort String.compare !ids))))
    t.expiry;
  Buffer.contents b

let dump t =
  match t.base with
  | None -> dump_mem t
  | Some b ->
      (* materialize a merged snapshot and render it like a plain index *)
      let s = create () in
      fold_pd_keys t
        (fun pd (type_name, kvs) () ->
          Hashtbl.replace s.pd_keys pd (type_name, kvs);
          List.iter
            (fun (field, v) -> table_add s.eq (eq_key ~type_name ~field v) pd)
            kvs)
        ();
      List.iter
        (fun subj ->
          Hashtbl.replace s.subjects subj (ref (List.rev (subject_pds t subj))))
        (subject_list t);
      Hashtbl.iter
        (fun pd ns ->
          Hashtbl.replace s.expiry_of pd ns;
          match IMap.find_opt ns s.expiry with
          | Some ids -> ids := pd :: !ids
          | None -> s.expiry <- IMap.add ns (ref [ pd ]) s.expiry)
        t.expiry_of;
      Pagestore.iter_from b.io b.roots.rt_expiry ~lo:"" (fun k _ ->
          (match split2 k with
          | Some (nss, pd) when not (is_touched t pd) -> (
              let ns = int_of_string nss in
              Hashtbl.replace s.expiry_of pd ns;
              match IMap.find_opt ns s.expiry with
              | Some ids -> ids := pd :: !ids
              | None -> s.expiry <- IMap.add ns (ref [ pd ]) s.expiry)
          | _ -> ());
          true);
      dump_mem s

(* test hook: damage one posting list in place (see Dbfs.unsafe_tamper_index) *)
let unsafe_drop_posting t ~pd_id =
  materialize t pd_id;
  match Hashtbl.find_opt t.pd_keys pd_id with
  | None -> false
  | Some (type_name, kvs) -> (
      match kvs with
      | [] -> false
      | (field, v) :: _ ->
          table_remove t.eq (eq_key ~type_name ~field v) pd_id;
          true)
