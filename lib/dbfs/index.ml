(* Persistent secondary indexes.

   Three index families, all maintained write-through by DBFS and
   persisted in the metadata region at checkpoint time:

   - per (type, indexed field): a hash posting-list index (equality
     probes) and an ordered value map (range probes);
   - a subject -> pd_ids index (right-of-access / erasure paths);
   - a TTL expiry min-queue keyed on membrane expiry instant
     (created_at + ttl), driving the incremental storage-limitation
     sweeper.

   The source of truth for the field indexes is [pd_keys]: pd_id ->
   (type, indexed field values at last write).  Removal always goes
   through [pd_keys] — never through re-decoding payload bytes — so
   index maintenance stays correct during journal replay even when the
   device blocks behind an old operation have since been zeroed or
   reused (the final op for a pd always wins).  Only [pd_keys], the
   subject lists and the expiry queue are serialized; the hash postings
   and ordered maps are derivable and rebuilt on decode. *)

module Codec = Rgpdos_util.Codec

open Rgpdos_util.Codec

(* Total order over values, compatible with [Query.numeric_cmp] on the
   numeric fragment: whenever [numeric_cmp a b = Some c] with [c <> 0],
   [VKey.compare a b] has the same sign.  Cross-type numeric ties
   (VInt 5 vs VFloat 5.0) break by constructor so the map keeps them as
   distinct keys — range probes re-filter with [numeric_cmp], equality
   probes use the hash postings, so the tie-break is never observable. *)
module VKey = struct
  type t = Value.t

  let rank = function
    | Value.VString _ -> 0
    | Value.VBool _ -> 1
    | Value.VInt _ -> 2
    | Value.VFloat _ -> 3

  let compare a b =
    match (a, b) with
    | Value.VInt x, Value.VInt y -> compare x y
    | Value.VFloat x, Value.VFloat y -> compare x y
    | Value.VInt x, Value.VFloat y ->
        let c = compare (float_of_int x) y in
        if c <> 0 then c else -1
    | Value.VFloat x, Value.VInt y ->
        let c = compare x (float_of_int y) in
        if c <> 0 then c else 1
    | Value.VString x, Value.VString y -> String.compare x y
    | Value.VBool x, Value.VBool y -> compare x y
    | a, b -> compare (rank a) (rank b)
end

module VMap = Map.Make (VKey)
module IMap = Map.Make (Int)

type t = {
  eq : (string, string list ref) Hashtbl.t;
      (* "<ty>\x00<field>\x00<canonical value>" -> pd_ids, newest first *)
  ord : (string, string list ref VMap.t ref) Hashtbl.t;
      (* "<ty>\x00<field>" -> value -> pd_ids, newest first *)
  pd_keys : (string, string * (string * Value.t) list) Hashtbl.t;
      (* pd_id -> (type, indexed field values) — removal source of truth *)
  subjects : (string, string list ref) Hashtbl.t;
      (* subject -> pd_ids, newest first; keeps erased pds like the old
         subject_tree did (erasure seals, it does not unlink) *)
  mutable expiry : string list ref IMap.t; (* expiry ns -> pds, newest first *)
  expiry_of : (string, int) Hashtbl.t;
}

let create () =
  {
    eq = Hashtbl.create 64;
    ord = Hashtbl.create 16;
    pd_keys = Hashtbl.create 64;
    subjects = Hashtbl.create 64;
    expiry = IMap.empty;
    expiry_of = Hashtbl.create 64;
  }

(* ------------------------------------------------------------------ *)
(* canonical hash keys                                                *)

(* Must identify exactly the [Value.equal] equivalence classes: floats
   compare with [Float.equal] (nan = nan, -0. = 0.), everything else is
   structural and type-strict. *)
let canonical = function
  | Value.VString s -> "s:" ^ s
  | Value.VInt i -> "i:" ^ string_of_int i
  | Value.VBool b -> "b:" ^ string_of_bool b
  | Value.VFloat f ->
      if Float.is_nan f then "f:nan"
      else if f = 0.0 then "f:0" (* -0. = 0. under Float.equal *)
      else Printf.sprintf "f:%h" f

let eq_key ~type_name ~field v =
  String.concat "\x00" [ type_name; field; canonical v ]

let ord_key ~type_name ~field = type_name ^ "\x00" ^ field

(* ------------------------------------------------------------------ *)
(* posting-list helpers                                               *)

let table_add tbl key pd =
  match Hashtbl.find_opt tbl key with
  | Some ids -> ids := pd :: !ids
  | None -> Hashtbl.replace tbl key (ref [ pd ])

let table_remove tbl key pd =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some ids -> (
      ids := List.filter (fun p -> p <> pd) !ids;
      match !ids with [] -> Hashtbl.remove tbl key | _ -> ())

let ord_add t ~type_name ~field v pd =
  let okey = ord_key ~type_name ~field in
  let m =
    match Hashtbl.find_opt t.ord okey with
    | Some m -> m
    | None ->
        let m = ref VMap.empty in
        Hashtbl.replace t.ord okey m;
        m
  in
  match VMap.find_opt v !m with
  | Some ids -> ids := pd :: !ids
  | None -> m := VMap.add v (ref [ pd ]) !m

let ord_remove t ~type_name ~field v pd =
  let okey = ord_key ~type_name ~field in
  match Hashtbl.find_opt t.ord okey with
  | None -> ()
  | Some m -> (
      match VMap.find_opt v !m with
      | None -> ()
      | Some ids -> (
          ids := List.filter (fun p -> p <> pd) !ids;
          match !ids with [] -> m := VMap.remove v !m | _ -> ()))

(* ------------------------------------------------------------------ *)
(* field-index maintenance                                            *)

let remove_entry t ~pd_id =
  match Hashtbl.find_opt t.pd_keys pd_id with
  | None -> ()
  | Some (type_name, kvs) ->
      List.iter
        (fun (field, v) ->
          table_remove t.eq (eq_key ~type_name ~field v) pd_id;
          ord_remove t ~type_name ~field v pd_id)
        kvs;
      Hashtbl.remove t.pd_keys pd_id

let add_entry t ~pd_id ~type_name ~indexed record =
  remove_entry t ~pd_id;
  let kvs =
    List.filter (fun (f, _) -> List.mem f indexed) record
  in
  Hashtbl.replace t.pd_keys pd_id (type_name, kvs);
  List.iter
    (fun (field, v) ->
      table_add t.eq (eq_key ~type_name ~field v) pd_id;
      ord_add t ~type_name ~field v pd_id)
    kvs

(* ------------------------------------------------------------------ *)
(* subject index                                                      *)

let add_subject t ~subject ~pd_id = table_add t.subjects subject pd_id
let remove_subject t ~subject ~pd_id = table_remove t.subjects subject pd_id

let subject_pds t subject =
  match Hashtbl.find_opt t.subjects subject with
  | None -> []
  | Some ids -> List.rev !ids (* stored newest-first -> insertion order *)

let subject_list t =
  Hashtbl.fold (fun s ids acc -> if !ids = [] then acc else s :: acc) t.subjects []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* expiry queue                                                       *)

let clear_expiry t ~pd_id =
  match Hashtbl.find_opt t.expiry_of pd_id with
  | None -> ()
  | Some ns ->
      Hashtbl.remove t.expiry_of pd_id;
      (match IMap.find_opt ns t.expiry with
      | None -> ()
      | Some ids -> (
          ids := List.filter (fun p -> p <> pd_id) !ids;
          match !ids with
          | [] -> t.expiry <- IMap.remove ns t.expiry
          | _ -> ()))

let set_expiry t ~pd_id = function
  | None -> clear_expiry t ~pd_id
  | Some ns -> (
      clear_expiry t ~pd_id;
      Hashtbl.replace t.expiry_of pd_id ns;
      match IMap.find_opt ns t.expiry with
      | Some ids -> ids := pd_id :: !ids
      | None -> t.expiry <- IMap.add ns (ref [ pd_id ]) t.expiry)

let expired t ~now =
  (* non-destructive: entries leave the queue when their pd is deleted,
     erased or re-membraned, never as a side effect of looking *)
  let le, at, _ = IMap.split now t.expiry in
  let buckets =
    IMap.fold (fun _ ids acc -> List.rev !ids :: acc) le []
    |> List.rev
  in
  let buckets =
    match at with None -> buckets | Some ids -> buckets @ [ List.rev !ids ]
  in
  List.concat buckets

let expiry_size t = Hashtbl.length t.expiry_of

(* ------------------------------------------------------------------ *)
(* probes                                                             *)

(* Simulated on-device footprint of a probe: a bucket header plus one
   fixed-size slot per posting (pd ids are <= 16 bytes).  DBFS turns
   bytes into device blocks and charges them read — warm == cold. *)
let header_bytes = 32
let slot_bytes = 16

let probe_eq t ~type_name ~field v =
  let ids =
    match Hashtbl.find_opt t.eq (eq_key ~type_name ~field v) with
    | None -> []
    | Some ids -> !ids
  in
  (ids, header_bytes + (slot_bytes * List.length ids))

let probe_range t ~type_name ~field ~op v =
  match Hashtbl.find_opt t.ord (ord_key ~type_name ~field) with
  | None -> ([], header_bytes)
  | Some m ->
      let side, at, other = VMap.split v !m in
      let part = match op with `Lt -> side | `Gt -> other in
      ignore at;
      (* The ordered scan walks the half-open range; [numeric_cmp] is the
         final word so the probe matches [Query.eval] exactly (non-numeric
         keys and cross-type ties fall out here). *)
      let keys = ref 0 and ids = ref [] in
      VMap.iter
        (fun v' pds ->
          incr keys;
          let keep =
            match Query.numeric_cmp v' v with
            | Some c -> ( match op with `Lt -> c < 0 | `Gt -> c > 0)
            | None -> false
          in
          if keep then ids := List.rev_append !pds !ids)
        part;
      let bytes =
        header_bytes + (slot_bytes * !keys) + (slot_bytes * List.length !ids)
      in
      (!ids, bytes)

(* ------------------------------------------------------------------ *)
(* persistence                                                        *)

(* Only the derivation roots are serialized: pd_keys (sorted by pd for a
   deterministic byte image), the subject lists (raw, order-preserving)
   and the expiry queue (in key order).  Postings and ordered maps are
   rebuilt on decode.  Index values thus live in the metadata region
   only — they never enter the journal. *)

let encode_into w t =
  let pds =
    Hashtbl.fold (fun pd v acc -> (pd, v) :: acc) t.pd_keys []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Codec.Writer.list w
    (fun (pd, (type_name, kvs)) ->
      Codec.Writer.string w pd;
      Codec.Writer.string w type_name;
      Codec.Writer.list w
        (fun (f, v) ->
          Codec.Writer.string w f;
          Value.encode w v)
        kvs)
    pds;
  let subjects =
    Hashtbl.fold (fun s ids acc -> (s, !ids) :: acc) t.subjects []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Codec.Writer.list w
    (fun (s, ids) ->
      Codec.Writer.string w s;
      Codec.Writer.list w (Codec.Writer.string w) ids)
    subjects;
  let expiry =
    IMap.fold (fun ns ids acc -> (ns, !ids) :: acc) t.expiry [] |> List.rev
  in
  Codec.Writer.list w
    (fun (ns, ids) ->
      Codec.Writer.int w ns;
      Codec.Writer.list w (Codec.Writer.string w) ids)
    expiry

let decode_from r =
  let t = create () in
  let* pds =
    Codec.Reader.list r (fun r ->
        let* pd = Codec.Reader.string r in
        let* type_name = Codec.Reader.string r in
        let* kvs =
          Codec.Reader.list r (fun r ->
              let* f = Codec.Reader.string r in
              let* v = Value.decode r in
              Ok (f, v))
        in
        Ok (pd, type_name, kvs))
  in
  List.iter
    (fun (pd_id, type_name, kvs) ->
      Hashtbl.replace t.pd_keys pd_id (type_name, kvs);
      List.iter
        (fun (field, v) ->
          table_add t.eq (eq_key ~type_name ~field v) pd_id;
          ord_add t ~type_name ~field v pd_id)
        kvs)
    pds;
  let* subjects =
    Codec.Reader.list r (fun r ->
        let* s = Codec.Reader.string r in
        let* ids = Codec.Reader.list r Codec.Reader.string in
        Ok (s, ids))
  in
  List.iter (fun (s, ids) -> Hashtbl.replace t.subjects s (ref ids)) subjects;
  let* expiry =
    Codec.Reader.list r (fun r ->
        let* ns = Codec.Reader.int r in
        let* ids = Codec.Reader.list r Codec.Reader.string in
        Ok (ns, ids))
  in
  List.iter
    (fun (ns, ids) ->
      t.expiry <- IMap.add ns (ref ids) t.expiry;
      List.iter (fun pd -> Hashtbl.replace t.expiry_of pd ns) ids)
    expiry;
  Ok t

(* ------------------------------------------------------------------ *)
(* introspection (tests, fsck)                                        *)

(* Canonical rendering, independent of hashtable iteration order and of
   posting-list internal order — two indexes holding the same facts dump
   to the same string. *)
let dump t =
  let b = Buffer.create 256 in
  let sorted_tbl tbl =
    Hashtbl.fold (fun k ids acc -> (k, List.sort String.compare !ids) :: acc) tbl []
    |> List.sort compare
  in
  Buffer.add_string b "eq:\n";
  List.iter
    (fun (k, ids) ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s\n"
           (String.concat "/" (String.split_on_char '\x00' k))
           (String.concat "," ids)))
    (sorted_tbl t.eq);
  Buffer.add_string b "subjects:\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s\n" s
           (String.concat "," (List.sort String.compare (subject_pds t s)))))
    (subject_list t);
  Buffer.add_string b "expiry:\n";
  IMap.iter
    (fun ns ids ->
      Buffer.add_string b
        (Printf.sprintf "  %d -> %s\n" ns
           (String.concat "," (List.sort String.compare !ids))))
    t.expiry;
  Buffer.contents b

(* fsck support: every indexed fact both ways *)
let fold_pd_keys t f acc =
  Hashtbl.fold (fun pd v acc -> f pd v acc) t.pd_keys acc

let pd_key t pd_id = Hashtbl.find_opt t.pd_keys pd_id
let expiry_of t pd_id = Hashtbl.find_opt t.expiry_of pd_id

let eq_postings t ~type_name ~field v =
  match Hashtbl.find_opt t.eq (eq_key ~type_name ~field v) with
  | None -> []
  | Some ids -> !ids

(* test hook: damage one posting list in place (see Dbfs.unsafe_tamper_index) *)
let unsafe_drop_posting t ~pd_id =
  match Hashtbl.find_opt t.pd_keys pd_id with
  | None -> false
  | Some (type_name, kvs) -> (
      match kvs with
      | [] -> false
      | (field, v) :: _ ->
          table_remove t.eq (eq_key ~type_name ~field v) pd_id;
          true)
