(** PD type declarations (Listing 1 of the paper).

    A schema is the in-kernel representation of a [type user { ... }]
    declaration: named typed fields, {i views} (named field subsets used to
    implement data minimisation), default consents applied at collection
    time, collection interfaces, and default TTL / sensitivity / origin.

    Schemas must be created in DBFS before any PD of that type can be
    stored ("data types must be created in DBFS prior to use"). *)

type field = { fname : string; ftype : Value.ftype; required : bool }

type view = { vname : string; vfields : string list }

type t = {
  name : string;
  fields : field list;
  views : view list;
  default_consents : (string * Rgpdos_membrane.Membrane.consent_scope) list;
  collection : (string * string) list;
  default_ttl : Rgpdos_util.Clock.ns option;
  default_sensitivity : Rgpdos_membrane.Membrane.sensitivity;
  default_origin : Rgpdos_membrane.Membrane.origin;
  indexed_fields : string list;
      (** Fields DBFS maintains persistent secondary indexes for: a hash
          posting-list index (equality probes) and an ordered index (range
          probes) per field.  See {!Index}. *)
}

val make :
  name:string ->
  fields:field list ->
  ?views:view list ->
  ?default_consents:(string * Rgpdos_membrane.Membrane.consent_scope) list ->
  ?collection:(string * string) list ->
  ?default_ttl:Rgpdos_util.Clock.ns ->
  ?default_sensitivity:Rgpdos_membrane.Membrane.sensitivity ->
  ?default_origin:Rgpdos_membrane.Membrane.origin ->
  ?indexed_fields:string list ->
  unit ->
  (t, string) result
(** Validates the declaration: non-empty name and fields, unique field and
    view names, every view field exists, every [View v] consent names a
    declared view, every indexed field names a declared field (no
    duplicates). *)

val field_names : t -> string list
val find_field : t -> string -> field option
val find_view : t -> string -> view option

val view_fields : t -> Rgpdos_membrane.Membrane.consent_scope -> string list
(** Fields visible under a consent scope: [All] -> every field, [View v] ->
    the view's fields, [Denied] -> none.  Unknown views resolve to none
    (fail closed). *)

val validate_record : t -> (string * Value.t) list -> (unit, string) result
(** Does the record conform?  Checks unknown fields, missing required
    fields, and type mismatches. *)

val encode : t -> string
val decode : string -> (t, string) result

val pp : Format.formatter -> t -> unit
