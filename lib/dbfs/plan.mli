(** Query planner: compile {!Query.t} predicates into index probes.

    [Dbfs.select] runs the plan to obtain candidate pd_ids, batch-loads
    the candidates' records in one vectored read (unless the plan is
    exact, in which case no record ever leaves the device), and applies
    the original predicate as a residual filter. *)

type atom =
  | Aeq of string * Value.t  (** hash-posting probe *)
  | Alt of string * Value.t  (** ordered-index range scan, strictly below *)
  | Agt of string * Value.t  (** ordered-index range scan, strictly above *)

type node = Atom of atom | Inter of node * node | Union of node * node

type t =
  | Full_scan of { trivial : bool }
      (** [trivial]: the predicate is [True] — every live pd matches and
          no records need loading.  Otherwise the indexes say nothing
          and the residual filter runs over every live record. *)
  | Indexed of { probe : node; exact : bool }
      (** Run the probe tree (Eq → hash probe, Lt/Gt → range scan,
          And → posting intersection, Or → union).  [exact] when the
          candidate set provably equals the matching set, so the
          residual evaluation (and its record loads) can be skipped. *)

val compile : indexed:(string -> bool) -> Query.t -> t
(** [indexed f] answers whether field [f] carries a secondary index for
    the type being selected.  The compiled plan always yields a sound
    candidate {i superset}: [Not], [Contains] and unindexed atoms map to
    full scans (or, under [And], drop exactness rather than candidates). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
