module Prng = Rgpdos_util.Prng

type t = {
  sealed_key : string;
  ciphertext : string;
  mac : string;
  key_fingerprint : string;
}

let magic = "RGPDENV1"

(* A 16-byte seed is what gets RSA-sealed (it fits small moduli); the
   ChaCha20 key and nonce are derived from it by hashing with distinct
   domain-separation labels. *)
let seed_size = 16

let derive seed =
  let key = Sha256.digest ("rgpdos-envelope-key|" ^ seed) in
  let nonce =
    String.sub (Sha256.digest ("rgpdos-envelope-nonce|" ^ seed)) 0
      Chacha20.nonce_size
  in
  (key, nonce)

let mac_input env = env.sealed_key ^ "|" ^ env.ciphertext ^ "|" ^ env.key_fingerprint

let seal prng pk payload =
  let seed = Prng.bytes prng seed_size in
  let key, nonce = derive seed in
  let ciphertext = Chacha20.encrypt ~key ~nonce payload in
  let sealed_key = Rsa.encrypt prng pk seed in
  let partial =
    { sealed_key; ciphertext; mac = ""; key_fingerprint = Rsa.fingerprint pk }
  in
  { partial with mac = Sha256.hmac ~key (mac_input partial) }

let open_ sk env =
  match Rsa.decrypt sk env.sealed_key with
  | Error e -> Error ("cannot unseal key: " ^ e)
  | Ok seed ->
      if String.length seed <> seed_size then
        Error "unsealed key material has wrong length"
      else
        let key, nonce = derive seed in
        let expected_mac = Sha256.hmac ~key (mac_input { env with mac = "" }) in
        if not (String.equal expected_mac env.mac) then
          Error "MAC mismatch: envelope corrupted or wrong key"
        else Ok (Chacha20.encrypt ~key ~nonce env.ciphertext)

(* length-prefixed fields after a magic header *)
let encode env =
  let buf = Buffer.create (64 + String.length env.ciphertext) in
  Buffer.add_string buf magic;
  let add_field s =
    Buffer.add_string buf (Printf.sprintf "%08x" (String.length s));
    Buffer.add_string buf s
  in
  add_field env.sealed_key;
  add_field env.ciphertext;
  add_field env.mac;
  add_field env.key_fingerprint;
  Buffer.contents buf

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen || String.sub s 0 mlen <> magic then
    Error "not an envelope: bad magic"
  else begin
    let pos = ref mlen in
    let read_field () =
      if String.length s - !pos < 8 then Error "truncated length"
      else
        match int_of_string_opt ("0x" ^ String.sub s !pos 8) with
        | None -> Error "malformed length"
        | Some len ->
            if String.length s - !pos - 8 < len then Error "truncated field"
            else begin
              let field = String.sub s (!pos + 8) len in
              pos := !pos + 8 + len;
              Ok field
            end
    in
    match read_field () with
    | Error e -> Error e
    | Ok sealed_key -> (
        match read_field () with
        | Error e -> Error e
        | Ok ciphertext -> (
            match read_field () with
            | Error e -> Error e
            | Ok mac -> (
                match read_field () with
                | Error e -> Error e
                | Ok key_fingerprint ->
                    if !pos <> String.length s then Error "trailing bytes"
                    else Ok { sealed_key; ciphertext; mac; key_fingerprint })))
  end

let is_envelope s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic
