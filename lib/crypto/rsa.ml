module Prng = Rgpdos_util.Prng

type public_key = { n : Bignum.t; e : Bignum.t }
type private_key = { n : Bignum.t; d : Bignum.t }
type keypair = { public : public_key; private_ : private_key }

let f4 = Bignum.of_int 65537

let generate ?(bits = 256) prng =
  if bits < 32 then invalid_arg "Rsa.generate: modulus too small";
  let half = bits / 2 in
  let rec go () =
    let p = Bignum.generate_prime prng ~bits:half in
    let q = Bignum.generate_prime prng ~bits:(bits - half) in
    if Bignum.equal p q then go ()
    else
      let n = Bignum.mul p q in
      let phi =
        Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one)
      in
      match Bignum.mod_inv f4 phi with
      | None -> go () (* gcd(e, phi) <> 1; rare, retry *)
      | Some d -> { public = { n; e = f4 }; private_ = { n; d } }
  in
  go ()

let modulus_bytes n = (Bignum.num_bits n + 7) / 8

(* Padding: 0x01 || random nonzero bytes || 0x00 || payload, always one byte
   shorter than the modulus so the padded integer is < n.  A simplified
   PKCS#1-v1.5 shape with an 8-byte minimum random run. *)
let pad_overhead = 1 + 8 + 1

let max_payload (pk : public_key) = modulus_bytes pk.n - 1 - pad_overhead

let encrypt prng (pk : public_key) payload =
  let k = modulus_bytes pk.n - 1 in
  let plen = String.length payload in
  if plen > k - pad_overhead then
    invalid_arg "Rsa.encrypt: payload too long for modulus";
  let random_len = k - plen - 2 in
  let random_run =
    String.init random_len (fun _ -> Char.chr (1 + Prng.int prng 255))
  in
  let padded = "\x01" ^ random_run ^ "\x00" ^ payload in
  let m = Bignum.of_bytes_be padded in
  let c = Bignum.mod_pow m pk.e pk.n in
  Bignum.to_bytes_be ~len:(modulus_bytes pk.n) c

let decrypt (sk : private_key) ciphertext =
  let c = Bignum.of_bytes_be ciphertext in
  if Bignum.compare c sk.n >= 0 then Error "ciphertext out of range"
  else
    let m = Bignum.mod_pow c sk.d sk.n in
    let k = modulus_bytes sk.n - 1 in
    if Bignum.num_bits m > k * 8 then Error "plaintext out of range"
    else
    let padded = Bignum.to_bytes_be ~len:k m in
    if String.length padded < pad_overhead then Error "short plaintext"
    else if padded.[0] <> '\x01' then Error "bad padding header"
    else
      match String.index_from_opt padded 1 '\x00' with
      | None -> Error "missing padding terminator"
      | Some sep when sep < 1 + 8 -> Error "random run too short"
      | Some sep -> Ok (String.sub padded (sep + 1) (String.length padded - sep - 1))

let fingerprint (pk : public_key) =
  let material = Bignum.to_string pk.n ^ ":" ^ Bignum.to_string pk.e in
  String.sub (Sha256.hexdigest material) 0 16
