(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for the tamper-evident audit chain (right of access, §4 of the
    paper) and for key fingerprints.  Verified against the official NIST
    test vectors in the test suite. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return a context to its freshly-initialised state.  Lets a hot caller
    (the audit chain hashes one small entry per append) reuse one context's
    buffers instead of allocating a new message schedule per hash. *)

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** 32-byte binary digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash: 32 raw bytes. *)

val hexdigest : string -> string
(** One-shot hash: 64 lowercase hex characters. *)

val hmac : key:string -> string -> string
(** HMAC-SHA256 (RFC 2104), 32 raw bytes. *)

type hmac_key
(** Precomputed HMAC pads: the ipad/opad midstates are hashed once, so
    repeated MACs under the same key (the audit chain's per-entry case)
    skip re-hashing [key ^ pad] every call. *)

val hmac_key : string -> hmac_key

val hmac_with : hmac_key -> string -> string
(** [hmac_with (hmac_key k) msg = hmac ~key:k msg]. *)
