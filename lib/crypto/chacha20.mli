(** ChaCha20 stream cipher (RFC 8439), implemented from scratch.

    Provides the symmetric half of the hybrid crypto-erasure envelope: bulk
    PD bytes are enciphered under a fresh ChaCha20 key, which is itself
    sealed under the supervisory authority's RSA public key.  Verified
    against the RFC 8439 test vector in the test suite. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the input with the ChaCha20 keystream.  Encryption and decryption
    are the same operation.
    @raise Invalid_argument on wrong key or nonce size. *)

val keystream : key:string -> nonce:string -> ?counter:int -> int -> string
(** Raw keystream bytes, for tests. *)
