let key_size = 32
let nonce_size = 12

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let quarter_round st a b c d =
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 16;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 12;
  st.(a) <- Int32.add st.(a) st.(b);
  st.(d) <- rotl (Int32.logxor st.(d) st.(a)) 8;
  st.(c) <- Int32.add st.(c) st.(d);
  st.(b) <- rotl (Int32.logxor st.(b) st.(c)) 7

let word32_le s off =
  Int32.logor
    (Int32.of_int (Char.code s.[off]))
    (Int32.logor
       (Int32.shift_left (Int32.of_int (Char.code s.[off + 1])) 8)
       (Int32.logor
          (Int32.shift_left (Int32.of_int (Char.code s.[off + 2])) 16)
          (Int32.shift_left (Int32.of_int (Char.code s.[off + 3])) 24)))

let block ~key ~nonce counter =
  let st = Array.make 16 0l in
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(8 + i - 4) <- word32_le key (i * 4)
  done;
  st.(12) <- Int32.of_int counter;
  for i = 0 to 2 do
    st.(13 + i) <- word32_le nonce (i * 4)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter_round working 0 4 8 12;
    quarter_round working 1 5 9 13;
    quarter_round working 2 6 10 14;
    quarter_round working 3 7 11 15;
    quarter_round working 0 5 10 15;
    quarter_round working 1 6 11 12;
    quarter_round working 2 7 8 13;
    quarter_round working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = Int32.add working.(i) st.(i) in
    for b = 0 to 3 do
      Bytes.set out ((i * 4) + b)
        (Char.chr
           (Int32.to_int (Int32.logand (Int32.shift_right_logical v (b * 8)) 0xffl)))
    done
  done;
  Bytes.to_string out

let check_sizes ~key ~nonce =
  if String.length key <> key_size then
    invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> nonce_size then
    invalid_arg "Chacha20: nonce must be 12 bytes"

let keystream ~key ~nonce ?(counter = 0) n =
  check_sizes ~key ~nonce;
  let buf = Buffer.create n in
  let blocks = (n + 63) / 64 in
  for i = 0 to blocks - 1 do
    Buffer.add_string buf (block ~key ~nonce (counter + i))
  done;
  Buffer.sub buf 0 n

let encrypt ~key ~nonce ?(counter = 0) plaintext =
  let ks = keystream ~key ~nonce ~counter (String.length plaintext) in
  String.init (String.length plaintext) (fun i ->
      Char.chr (Char.code plaintext.[i] lxor Char.code ks.[i]))
