(* RFC 8439 ChaCha20 with hot loops over unboxed native [int] words (masked
   to 32 bits).  The keystream for each block is produced directly from the
   working state into the output buffer — encryption XORs the plaintext in
   the same pass, so there is no intermediate keystream string. *)

let key_size = 32
let nonce_size = 12
let mask32 = 0xffffffff

let[@inline] qr x a b c d =
  let xa = (Array.unsafe_get x a + Array.unsafe_get x b) land mask32 in
  let xd = Array.unsafe_get x d lxor xa in
  let xd = ((xd lsl 16) lor (xd lsr 16)) land mask32 in
  let xc = (Array.unsafe_get x c + xd) land mask32 in
  let xb = Array.unsafe_get x b lxor xc in
  let xb = ((xb lsl 12) lor (xb lsr 20)) land mask32 in
  let xa = (xa + xb) land mask32 in
  let xd = xd lxor xa in
  let xd = ((xd lsl 8) lor (xd lsr 24)) land mask32 in
  let xc = (xc + xd) land mask32 in
  let xb = xb lxor xc in
  let xb = ((xb lsl 7) lor (xb lsr 25)) land mask32 in
  Array.unsafe_set x a xa;
  Array.unsafe_set x b xb;
  Array.unsafe_set x c xc;
  Array.unsafe_set x d xd

let[@inline] word32_le s off =
  Char.code (String.unsafe_get s off)
  lor (Char.code (String.unsafe_get s (off + 1)) lsl 8)
  lor (Char.code (String.unsafe_get s (off + 2)) lsl 16)
  lor (Char.code (String.unsafe_get s (off + 3)) lsl 24)

let init_state ~key ~nonce =
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- word32_le key (i * 4)
  done;
  (* st.(12) is the block counter, set per block *)
  for i = 0 to 2 do
    st.(13 + i) <- word32_le nonce (i * 4)
  done;
  st

(* 20 rounds of [st] (with the given block counter) into [x]: afterwards
   x.(i) holds the i-th little-endian keystream word of the block. *)
let core_block st x counter =
  st.(12) <- counter land mask32;
  Array.blit st 0 x 0 16;
  for _ = 1 to 10 do
    qr x 0 4 8 12;
    qr x 1 5 9 13;
    qr x 2 6 10 14;
    qr x 3 7 11 15;
    qr x 0 5 10 15;
    qr x 1 6 11 12;
    qr x 2 7 8 13;
    qr x 3 4 9 14
  done;
  for i = 0 to 15 do
    Array.unsafe_set x i
      ((Array.unsafe_get x i + Array.unsafe_get st i) land mask32)
  done

let check_sizes ~key ~nonce =
  if String.length key <> key_size then
    invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> nonce_size then
    invalid_arg "Chacha20: nonce must be 12 bytes"

(* the last (possibly partial) block, one byte at a time *)
let[@inline] keystream_byte x j = (Array.unsafe_get x (j lsr 2) lsr ((j land 3) * 8)) land 0xff

let keystream ~key ~nonce ?(counter = 0) n =
  check_sizes ~key ~nonce;
  let out = Bytes.create n in
  let st = init_state ~key ~nonce in
  let x = Array.make 16 0 in
  let full = n / 64 in
  for b = 0 to full - 1 do
    core_block st x (counter + b);
    let o = b * 64 in
    for i = 0 to 15 do
      let v = Array.unsafe_get x i in
      Bytes.unsafe_set out (o + (4 * i)) (Char.unsafe_chr (v land 0xff));
      Bytes.unsafe_set out (o + (4 * i) + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
      Bytes.unsafe_set out (o + (4 * i) + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
      Bytes.unsafe_set out (o + (4 * i) + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))
    done
  done;
  let rem = n - (full * 64) in
  if rem > 0 then begin
    core_block st x (counter + full);
    let o = full * 64 in
    for j = 0 to rem - 1 do
      Bytes.unsafe_set out (o + j) (Char.unsafe_chr (keystream_byte x j))
    done
  end;
  Bytes.unsafe_to_string out

let encrypt ~key ~nonce ?(counter = 0) plaintext =
  check_sizes ~key ~nonce;
  let n = String.length plaintext in
  let out = Bytes.create n in
  let st = init_state ~key ~nonce in
  let x = Array.make 16 0 in
  let full = n / 64 in
  for b = 0 to full - 1 do
    core_block st x (counter + b);
    let o = b * 64 in
    for i = 0 to 15 do
      let v = Array.unsafe_get x i in
      let p = o + (4 * i) in
      Bytes.unsafe_set out p
        (Char.unsafe_chr
           (Char.code (String.unsafe_get plaintext p) lxor (v land 0xff)));
      Bytes.unsafe_set out (p + 1)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get plaintext (p + 1))
           lxor ((v lsr 8) land 0xff)));
      Bytes.unsafe_set out (p + 2)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get plaintext (p + 2))
           lxor ((v lsr 16) land 0xff)));
      Bytes.unsafe_set out (p + 3)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get plaintext (p + 3))
           lxor ((v lsr 24) land 0xff)))
    done
  done;
  let rem = n - (full * 64) in
  if rem > 0 then begin
    core_block st x (counter + full);
    let o = full * 64 in
    for j = 0 to rem - 1 do
      Bytes.unsafe_set out (o + j)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get plaintext (o + j))
           lxor keystream_byte x j))
    done
  end;
  Bytes.unsafe_to_string out
