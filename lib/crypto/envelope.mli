(** Hybrid crypto-erasure envelope.

    Implements the paper's §4 right-to-be-forgotten mechanism: when PD must
    be "deleted but possibly retained for legal investigation", the plaintext
    is replaced by an envelope only the supervisory authority can open.

    Layout: a fresh ChaCha20 key+nonce encrypts the payload; the symmetric
    key material is sealed under the authority's RSA public key; an HMAC
    binds the whole envelope so corruption is detected at open time. *)

type t = {
  sealed_key : string;  (** RSA ciphertext of the 16-byte envelope seed *)
  ciphertext : string;  (** ChaCha20-encrypted payload *)
  mac : string;         (** HMAC-SHA256 over sealed_key || ciphertext *)
  key_fingerprint : string;  (** which authority key sealed this *)
}

val seal : Rgpdos_util.Prng.t -> Rsa.public_key -> string -> t
(** Seal a payload of arbitrary length under the authority's public key. *)

val open_ : Rsa.private_key -> t -> (string, string) result
(** Authority-side decryption.  [Error _] on MAC failure, padding failure,
    or key mismatch. *)

val encode : t -> string
(** Self-delimiting binary encoding (for storage in place of the erased
    PD). *)

val decode : string -> (t, string) result

val is_envelope : string -> bool
(** Cheap magic-number test: does this byte string look like an encoded
    envelope? *)
