(* FIPS 180-4, hot loops over unboxed native [int] (64-bit platforms keep
   every 32-bit word in a tagged immediate, so the compression function
   allocates nothing).  Words are kept masked to 32 bits; sums are allowed
   to carry into the high bits between masks because OCaml's int is wide
   enough for several 32-bit additions. *)

let mask32 = 0xffffffff

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
     0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
     0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
     0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
     0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
     0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
     0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
     0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
     0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 chaining words, always masked to 32 bits *)
  w : int array; (* 64-entry message schedule, reused across blocks *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    w = Array.make 64 0;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
  }

let reset ctx =
  let h = ctx.h in
  h.(0) <- 0x6a09e667;
  h.(1) <- 0xbb67ae85;
  h.(2) <- 0x3c6ef372;
  h.(3) <- 0xa54ff53a;
  h.(4) <- 0x510e527f;
  h.(5) <- 0x9b05688c;
  h.(6) <- 0x1f83d9ab;
  h.(7) <- 0x5be0cd19;
  ctx.buf_len <- 0;
  ctx.total <- 0

let copy ctx =
  {
    h = Array.copy ctx.h;
    w = Array.make 64 0;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
  }

let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let process_block ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let o = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block o) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (o + 3)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let w2 = Array.unsafe_get w (i - 2) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask32)
  done;
  let h = ctx.h in
  (* int arguments stay in registers: the round function allocates nothing *)
  let rec rounds a b c d e f g hh i =
    if i = 64 then begin
      h.(0) <- (h.(0) + a) land mask32;
      h.(1) <- (h.(1) + b) land mask32;
      h.(2) <- (h.(2) + c) land mask32;
      h.(3) <- (h.(3) + d) land mask32;
      h.(4) <- (h.(4) + e) land mask32;
      h.(5) <- (h.(5) + f) land mask32;
      h.(6) <- (h.(6) + g) land mask32;
      h.(7) <- (h.(7) + hh) land mask32
    end
    else begin
      let s1 = rotr e 6 lxor rotr e 11 lxor rotr e 25 in
      let ch = e land f lxor (lnot e land g) land mask32 in
      let temp1 =
        hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i
      in
      let s0 = rotr a 2 lxor rotr a 13 lxor rotr a 22 in
      let maj = a land b lxor (a land c) lxor (b land c) in
      let temp2 = s0 + maj in
      rounds ((temp1 + temp2) land mask32) a b c ((d + temp1) land mask32) e f
        g (i + 1)
    end
  in
  rounds h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7) 0

let feed ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  (* top up a partially filled buffer first *)
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      process_block ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* whole blocks straight from the input, no copy *)
  if ctx.buf_len = 0 then begin
    let sb = Bytes.unsafe_of_string s in
    while len - !pos >= 64 do
      process_block ctx sb !pos;
      pos := !pos + 64
    done
  end;
  (* stash the tail *)
  let rem = len - !pos in
  if rem > 0 then begin
    Bytes.blit_string s !pos ctx.buf ctx.buf_len rem;
    ctx.buf_len <- ctx.buf_len + rem
  end

let finalize ctx =
  let total_bits = ctx.total * 8 in
  (* padding: 0x80, zeros to 56 mod 64, 8-byte big-endian bit length —
     built as a single trailer so finalize feeds exactly once *)
  let zeros =
    if ctx.buf_len < 56 then 55 - ctx.buf_len else 119 - ctx.buf_len
  in
  let tail = Bytes.make (zeros + 9) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (zeros + 1 + i)
      (Char.chr ((total_bits lsr ((7 - i) * 8)) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string tail);
  assert (ctx.buf_len = 0);
  String.init 32 (fun i ->
      Char.chr ((ctx.h.(i / 4) lsr ((3 - (i mod 4)) * 8)) land 0xff))

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hexdigest s = Rgpdos_util.Hex.encode (digest s)

(* HMAC with precomputed pads: the ipad/opad midstates are hashed once per
   key, so each message costs two block-aligned continuations instead of
   two fresh hashes over [pad ^ msg]. *)

type hmac_key = { ictx : ctx; octx : ctx }

let hmac_key key =
  let key = if String.length key > 64 then digest key else key in
  let ipad = Bytes.make 64 '\x36' and opad = Bytes.make 64 '\x5c' in
  String.iteri
    (fun i c ->
      Bytes.set ipad i (Char.chr (Char.code c lxor 0x36));
      Bytes.set opad i (Char.chr (Char.code c lxor 0x5c)))
    key;
  let ictx = init () in
  feed ictx (Bytes.unsafe_to_string ipad);
  let octx = init () in
  feed octx (Bytes.unsafe_to_string opad);
  { ictx; octx }

let hmac_with hk msg =
  let inner = copy hk.ictx in
  feed inner msg;
  let digest_inner = finalize inner in
  let outer = copy hk.octx in
  feed outer digest_inner;
  finalize outer

let hmac ~key msg = hmac_with (hmac_key key) msg
