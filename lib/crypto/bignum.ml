(* Sign + magnitude representation.  Magnitude is a little-endian array of
   base-2^26 limbs with no leading (high-index) zero limb; zero is the empty
   array with sign 0.  26-bit limbs keep every intermediate product of the
   schoolbook multiplication below 2^52, far from native-int overflow. *)

module Prng = Rgpdos_util.Prng

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int i =
  if i = 0 then zero
  else
    let sign = if i < 0 then -1 else 1 in
    let v = abs i in
    let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
    { sign; mag = Array.of_list (limbs v) }

let one = of_int 1
let two = of_int 2

let sign a = a.sign
let is_zero a = a.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  assert (!carry = 0);
  out

(* precondition: a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

and sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let la = Array.length a.mag and lb = Array.length b.mag in
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.mag.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.mag.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    normalize (a.sign * b.sign) out
  end

let num_bits a =
  let n = Array.length a.mag in
  if n = 0 then 0
  else
    let top = a.mag.(n - 1) in
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * limb_bits) + width top

let to_int_opt a =
  if num_bits a > 62 then None
  else
    let v =
      Array.to_list a.mag |> List.rev
      |> List.fold_left (fun acc l -> (acc * limb_base) + l) 0
    in
    Some (if a.sign < 0 then -v else v)

let testbit a i =
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length a.mag && (a.mag.(limb) lsr bit) land 1 = 1

let shift_left a k =
  if a.sign = 0 || k = 0 then a
  else if k < 0 then invalid_arg "Bignum.shift_left: negative shift"
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a.mag in
    let out = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.mag.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      out.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize a.sign out
  end

let shift_right a k =
  if a.sign = 0 || k = 0 then a
  else if k < 0 then invalid_arg "Bignum.shift_right: negative shift"
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a.mag in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.mag.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift > 0 && i + limb_shift + 1 < la then
            (a.mag.(i + limb_shift + 1) lsl (limb_bits - bit_shift))
            land limb_mask
          else 0
        in
        out.(i) <- lo lor hi
      done;
      normalize a.sign out
    end
  end

(* Single-limb division fast path: classic short division. *)
let divmod_small mag d =
  let n = Array.length mag in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor mag.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Binary long division on magnitudes: returns (q, r) with a = q*b + r,
   0 <= r < b.  O(bits(a) * limbs(b)); the magnitudes involved in the
   simulation are small enough that this is never a bottleneck. *)
let divmod_mag a b =
  let bits = num_bits { sign = 1; mag = a } in
  let lb = Array.length b in
  let q = Array.make (Array.length a) 0 in
  (* r kept as a mutable buffer with one spare limb for the shift. *)
  let r = Array.make (lb + 1) 0 in
  let r_len = ref 0 in
  let r_ge_b () =
    if !r_len > lb then true
    else if !r_len < lb then false
    else
      let rec go i =
        if i < 0 then true
        else if r.(i) <> b.(i) then r.(i) > b.(i)
        else go (i - 1)
      in
      go (lb - 1)
  in
  let r_sub_b () =
    let borrow = ref 0 in
    for i = 0 to !r_len - 1 do
      let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + limb_base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    while !r_len > 0 && r.(!r_len - 1) = 0 do
      decr r_len
    done
  in
  for i = bits - 1 downto 0 do
    (* r := r << 1 | bit_i(a) *)
    let carry = ref ((a.(i / limb_bits) lsr (i mod limb_bits)) land 1) in
    for j = 0 to !r_len - 1 do
      let v = (r.(j) lsl 1) lor !carry in
      r.(j) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    if !carry <> 0 then begin
      r.(!r_len) <- !carry;
      incr r_len
    end;
    if r_ge_b () then begin
      r_sub_b ();
      q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    end
  done;
  (q, Array.sub r 0 !r_len)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if compare_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qm, rm =
      if Array.length b.mag = 1 then
        let q, r = divmod_small a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      else divmod_mag a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign < 0 then add r (abs b) else r

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let mod_inv a m =
  (* Extended Euclid on (a mod m, m). *)
  let m = abs m in
  if is_zero m then invalid_arg "Bignum.mod_inv: zero modulus";
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s)
    else
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s))
  in
  let g, x = go (erem a m) m one zero in
  if equal g one then Some (erem x m) else None

let mod_pow b e m =
  if m.sign <= 0 then invalid_arg "Bignum.mod_pow: modulus must be positive";
  if e.sign < 0 then invalid_arg "Bignum.mod_pow: negative exponent";
  let nbits = num_bits e in
  let result = ref (erem one m) in
  let base = ref (erem b m) in
  for i = 0 to nbits - 1 do
    if testbit e i then result := erem (mul !result !base) m;
    if i < nbits - 1 then base := erem (mul !base !base) m
  done;
  !result

let of_bytes_be s =
  let acc = ref zero in
  String.iter
    (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c)))
    s;
  !acc

let to_bytes_be ?len a =
  if a.sign < 0 then invalid_arg "Bignum.to_bytes_be: negative value";
  let nbytes = (num_bits a + 7) / 8 in
  let nbytes = max nbytes 1 in
  let body =
    String.init nbytes (fun i ->
        let byte_idx = nbytes - 1 - i in
        let v =
          (* extract byte [byte_idx] of the magnitude *)
          let bit = byte_idx * 8 in
          let limb = bit / limb_bits and off = bit mod limb_bits in
          let lo =
            if limb < Array.length a.mag then a.mag.(limb) lsr off else 0
          in
          let hi =
            if off > limb_bits - 8 && limb + 1 < Array.length a.mag then
              a.mag.(limb + 1) lsl (limb_bits - off)
            else 0
          in
          (lo lor hi) land 0xff
        in
        Char.chr v)
  in
  match len with
  | None -> body
  | Some l ->
      if l < String.length body then
        invalid_arg "Bignum.to_bytes_be: value too large for len"
      else String.make (l - String.length body) '\000' ^ body

let ten_pow_7 = of_int 10_000_000

let to_string a =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref (abs a) in
    while not (is_zero !cur) do
      let q, r = divmod !cur ten_pow_7 in
      chunks := Option.get (to_int_opt r) :: !chunks;
      cur := q
    done;
    let body =
      match !chunks with
      | [] -> assert false
      | first :: rest ->
          string_of_int first
          ^ String.concat "" (List.map (Printf.sprintf "%07d") rest)
    in
    if a.sign < 0 then "-" ^ body else body
  end

let of_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Bignum.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= String.length s then invalid_arg "Bignum.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to String.length s - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
        acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
    | c -> invalid_arg (Printf.sprintf "Bignum.of_string: bad digit %C" c)
  done;
  if negative then neg !acc else !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)

let random_bits prng bits =
  if bits <= 0 then zero
  else begin
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let mag = Array.init nlimbs (fun _ -> Prng.int prng limb_base) in
    let top_bits = bits - ((nlimbs - 1) * limb_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize 1 mag
  end

let random_below prng bound =
  if bound.sign <= 0 then invalid_arg "Bignum.random_below: bound <= 0";
  let bits = num_bits bound in
  let rec try_once () =
    let candidate = random_bits prng bits in
    if compare candidate bound < 0 then candidate else try_once ()
  in
  try_once ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139;
    149; 151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223;
    227; 229; 233; 239; 241; 251 ]

let is_probable_prime ?(rounds = 20) prng n =
  if n.sign <= 0 then false
  else
    match to_int_opt n with
    | Some v when v < 2 -> false
    | Some v when List.mem v small_primes -> true
    | _ ->
        let divisible_by_small =
          List.exists
            (fun p ->
              let r = rem n (of_int p) in
              is_zero r)
            small_primes
        in
        if divisible_by_small then false
        else begin
          (* Miller-Rabin: n - 1 = d * 2^s with d odd. *)
          let n1 = sub n one in
          let rec split d s =
            if testbit d 0 then (d, s) else split (shift_right d 1) (s + 1)
          in
          let d, s = split n1 0 in
          let witness_composite a =
            let x = ref (mod_pow a d n) in
            if equal !x one || equal !x n1 then false
            else begin
              let found = ref false in
              let i = ref 1 in
              while (not !found) && !i < s do
                x := erem (mul !x !x) n;
                if equal !x n1 then found := true;
                incr i
              done;
              not !found
            end
          in
          let rec trial k =
            if k = 0 then true
            else
              let a = add two (random_below prng (sub n (of_int 4))) in
              if witness_composite a then false else trial (k - 1)
          in
          trial rounds
        end

let generate_prime prng ~bits =
  if bits < 2 then invalid_arg "Bignum.generate_prime: bits < 2";
  let top = shift_left one (bits - 1) in
  let rec go () =
    (* force exact width (top bit set) and oddness *)
    let low = erem (random_bits prng bits) top in
    let candidate = add top low in
    let candidate =
      if testbit candidate 0 then candidate else add candidate one
    in
    if is_probable_prime ~rounds:12 prng candidate then candidate else go ()
  in
  go ()
