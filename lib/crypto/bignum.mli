(** Arbitrary-precision signed integers, implemented from scratch.

    The sealed build environment has no zarith, so the RSA key-escrow
    mechanism behind the paper's "right to be forgotten" (§4) is built on
    this module.  The representation is sign + magnitude in base 2^26 limbs;
    all algorithms are the simple quadratic ones, which is ample for the
    key sizes the simulation uses.

    Values are immutable. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], truncated (round-toward-zero)
    quotient, [sign r = sign a] (or zero).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: always in [\[0, |b|)]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val testbit : t -> int -> bool
(** Bit [i] of the magnitude. *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val gcd : t -> t -> t

val mod_inv : t -> t -> t option
(** [mod_inv a m] is the inverse of [a] modulo [m], if
    [gcd a m = 1]. Result is in [\[0, m)]. *)

val mod_pow : t -> t -> t -> t
(** [mod_pow b e m] = b^e mod m, with [e >= 0] and [m > 0] (square and
    multiply). *)

val of_bytes_be : string -> t
(** Big-endian unsigned interpretation. *)

val to_bytes_be : ?len:int -> t -> string
(** Minimal big-endian encoding of the magnitude, left-padded with zero
    bytes to [len] when given.
    @raise Invalid_argument if the value needs more than [len] bytes or is
    negative. *)

val of_string : string -> t
(** Decimal, with optional leading '-'.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val random_bits : Rgpdos_util.Prng.t -> int -> t
(** Uniform in [\[0, 2^bits)]. *)

val random_below : Rgpdos_util.Prng.t -> t -> t
(** Uniform in [\[0, bound)]; [bound] must be positive. *)

val is_probable_prime : ?rounds:int -> Rgpdos_util.Prng.t -> t -> bool
(** Miller-Rabin with [rounds] random bases (default 20), preceded by
    trial division by small primes. *)

val generate_prime : Rgpdos_util.Prng.t -> bits:int -> t
(** Random probable prime with the top bit set (exactly [bits] bits).
    @raise Invalid_argument if [bits < 2]. *)
