(** Textbook RSA over {!Bignum}, plus a simple randomized padding.

    This backs the paper's right-to-be-forgotten key-escrow model (§4): the
    supervisory authority generates a keypair, hands the public key to the
    data operator, and keeps the private key.  "Deleting" PD means sealing
    it under the authority's public key, after which the operator can no
    longer read it but the authority still can.

    Key sizes are configurable; the simulation defaults to small keys for
    speed.  This module is deliberately *not* hardened production
    cryptography (no constant-time guarantees) — the reproduction needs the
    escrow mechanism, not resistance to side channels. *)

type public_key = { n : Bignum.t; e : Bignum.t }
type private_key = { n : Bignum.t; d : Bignum.t }
type keypair = { public : public_key; private_ : private_key }

val generate : ?bits:int -> Rgpdos_util.Prng.t -> keypair
(** [generate ~bits prng] creates a keypair with a [bits]-bit modulus
    (default 256) and public exponent 65537. *)

val max_payload : public_key -> int
(** Maximum plaintext bytes a single [encrypt] accepts (modulus size minus
    padding overhead). *)

val encrypt : Rgpdos_util.Prng.t -> public_key -> string -> string
(** Randomized-padded encryption of a short payload.
    @raise Invalid_argument if the payload exceeds [max_payload]. *)

val decrypt : private_key -> string -> (string, string) result
(** Inverse of [encrypt]; [Error _] if padding is malformed (wrong key or
    corrupted ciphertext). *)

val fingerprint : public_key -> string
(** Short hex fingerprint identifying a public key. *)
