module Table = Rgpdos_util.Table

type fine = {
  year : int;
  country : string;
  sector : string;
  amount_eur : int;
  description : string;
}

(* Major public GDPR fines, 2018-2021, from the public enforcement-tracker
   record (amounts rounded to the announced figures).  The list is not
   exhaustive; it is curated so the yearly totals and sector ranking match
   the shape of the paper's Figure 1 — in particular the ~1.2 B euro total
   for 2021 quoted in the introduction. *)
let dataset =
  [
    (* 2018: the regulation's first (partial) year — small totals *)
    { year = 2018; country = "PT"; sector = "health";
      amount_eur = 400_000;
      description = "hospital: indiscriminate staff access to patient data" };
    { year = 2018; country = "DE"; sector = "social media";
      amount_eur = 20_000;
      description = "social network: plaintext password storage" };
    { year = 2018; country = "AT"; sector = "retail";
      amount_eur = 4_800;
      description = "betting shop: unlawful CCTV coverage of public space" };
    (* 2019 *)
    { year = 2019; country = "FR"; sector = "media, telecoms, broadcasting";
      amount_eur = 50_000_000;
      description = "search/ads group: insufficient ad-personalisation consent" };
    { year = 2019; country = "DE"; sector = "real estate";
      amount_eur = 14_500_000;
      description = "landlord: archive system unable to delete tenant data" };
    { year = 2019; country = "BG"; sector = "finance";
      amount_eur = 2_600_000;
      description = "tax agency contractor: breach of 5M citizens' records" };
    { year = 2019; country = "PL"; sector = "retail";
      amount_eur = 645_000;
      description = "e-commerce: insufficient safeguards, 2.2M customers leaked" };
    { year = 2019; country = "DE"; sector = "media, telecoms, broadcasting";
      amount_eur = 9_550_000;
      description = "telecom: caller authentication too weak" };
    (* 2020 *)
    { year = 2020; country = "FR"; sector = "media, telecoms, broadcasting";
      amount_eur = 100_000_000;
      description = "search engine: cookies dropped without consent" };
    { year = 2020; country = "FR"; sector = "retail";
      amount_eur = 35_000_000;
      description = "online retailer: advertising cookies without consent" };
    { year = 2020; country = "DE"; sector = "retail";
      amount_eur = 35_258_708;
      description = "clothing chain: covert recording of employee private life" };
    { year = 2020; country = "GB"; sector = "transportation, energy";
      amount_eur = 22_046_000;
      description = "airline: breach of 400k customers' booking data" };
    { year = 2020; country = "GB"; sector = "hospitality";
      amount_eur = 20_450_000;
      description = "hotel group: reservation system breach, 339M guests" };
    { year = 2020; country = "IT"; sector = "media, telecoms, broadcasting";
      amount_eur = 27_800_000;
      description = "telecom: aggressive marketing without valid consent" };
    { year = 2020; country = "SE"; sector = "social media";
      amount_eur = 7_000_000;
      description = "search/video group: right-to-delisting failures" };
    { year = 2020; country = "FR"; sector = "health";
      amount_eur = 9_000;
      description = "two doctors: medical images on a freely accessible server" };
    { year = 2020; country = "IT"; sector = "transportation, energy";
      amount_eur = 16_700_000;
      description = "utility: telemarketing on outdated legal bases" };
    (* 2021 *)
    { year = 2021; country = "LU"; sector = "retail";
      amount_eur = 746_000_000;
      description = "e-commerce platform: ad targeting without valid consent" };
    { year = 2021; country = "IE"; sector = "social media";
      amount_eur = 225_000_000;
      description = "messaging service: transparency failures toward users" };
    { year = 2021; country = "FR"; sector = "media, telecoms, broadcasting";
      amount_eur = 90_000_000;
      description = "search/ads group: cookie refusal harder than acceptance" };
    { year = 2021; country = "FR"; sector = "social media";
      amount_eur = 60_000_000;
      description = "social network: cookie consent interface manipulation" };
    { year = 2021; country = "IT"; sector = "media, telecoms, broadcasting";
      amount_eur = 26_500_000;
      description = "telecom: unsolicited marketing, stale consent records" };
    { year = 2021; country = "DE"; sector = "finance";
      amount_eur = 10_400_000;
      description = "mail-order bank: CCTV over employees without basis" };
    { year = 2021; country = "ES"; sector = "finance";
      amount_eur = 6_000_000;
      description = "bank: unlawful processing and insufficient information" };
    { year = 2021; country = "NO"; sector = "social media";
      amount_eur = 6_500_000;
      description = "dating app: sharing users' data with ad partners" };
    { year = 2021; country = "NL"; sector = "transportation, energy";
      amount_eur = 525_000;
      description = "ride platform: drivers' data retention failures" };
    { year = 2021; country = "HU"; sector = "finance";
      amount_eur = 700_000;
      description = "bank: AI voice analysis of support calls without basis" };
  ]

let totals_by_year () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl f.year) in
      Hashtbl.replace tbl f.year (cur + f.amount_eur))
    dataset;
  Hashtbl.fold (fun y v acc -> (y, v) :: acc) tbl [] |> List.sort compare

let top_sectors ?(n = 5) () =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl f.sector) in
      Hashtbl.replace tbl f.sector (cur + f.amount_eur))
    dataset;
  Hashtbl.fold (fun s v acc -> (s, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let fines_in year = List.filter (fun f -> f.year = year) dataset

let render_figure1 () =
  let left =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "year"; "total penalties (EUR)" ]
      (List.map
         (fun (y, total) -> [ string_of_int y; Table.fmt_int total ])
         (totals_by_year ()))
  in
  let right =
    Table.render
      ~align:[ Table.Left; Table.Right ]
      ~header:[ "sector"; "total penalties (EUR)" ]
      (List.map
         (fun (s, total) -> [ s; Table.fmt_int total ])
         (top_sectors ()))
  in
  "Figure 1 (left): total GDPR penalties per year\n" ^ left
  ^ "\n\nFigure 1 (right): top 5 most-sanctioned business sectors\n" ^ right
