(** GDPR enforcement statistics behind the paper's Figure 1.

    The paper's motivational figure plots (left) the total amount of GDPR
    penalties per year and (right) the five most-sanctioned business
    sectors, citing the public Data Legal Drive sanction map [2].  We
    embed a curated dataset of the major public fines 2018-2021 (from the
    public enforcement-tracker record; amounts in euros) and regenerate
    both aggregations.  The reproduction targets the {i shape}: totals
    growing every year and topping ~1.2 billion euros in 2021 (the
    number quoted in the paper's introduction), with sectors from media
    through retail to health all represented. *)

type fine = {
  year : int;
  country : string;
  sector : string;
  amount_eur : int;
  description : string;
}

val dataset : fine list
(** The embedded public fines, 2018-2021. *)

val totals_by_year : unit -> (int * int) list
(** Figure 1 (left): [(year, total euros)], ascending years. *)

val top_sectors : ?n:int -> unit -> (string * int) list
(** Figure 1 (right): the [n] (default 5) most-sanctioned sectors by total
    amount, descending. *)

val fines_in : int -> fine list
(** All dataset fines of a given year. *)

val render_figure1 : unit -> string
(** Both panels as text tables (the bench harness prints this). *)
