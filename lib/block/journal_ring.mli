(** Write-ahead journal ring over a {!Block_device} region.

    Shared by the two filesystems, which use it with opposite policies —
    the conventional FS journals full data payloads (and therefore retains
    deleted PD), DBFS journals metadata-only records.  The ring itself is
    policy-free: it stores framed byte payloads with sequence numbers and
    checksums, supports replay from a checkpointed position, and never
    zeroes lapped blocks unless {!scrub} is called (matching real journal
    behaviour). *)

type t

val create :
  Block_device.t -> start_block:int -> num_blocks:int -> t
(** Fresh ring: head, tail and sequence start at zero.  No device IO. *)

val attach :
  Block_device.t ->
  start_block:int ->
  num_blocks:int ->
  head:int ->
  seq:int ->
  t
(** Ring view positioned at a checkpointed (head, seq), ready to {!replay}
    whatever was appended after the checkpoint. *)

val append : t -> on_overflow:(unit -> unit) -> string -> unit
(** Frame and write a payload at the head.  If the ring would lap
    un-checkpointed records, [on_overflow] is called first; it must
    persist a checkpoint and call {!mark_checkpointed}, otherwise the
    append raises [Failure].  With a group-commit {!set_window} above 1
    the framed record is buffered instead and written by the next
    {!flush} (triggered automatically once the window fills).
    @raise Failure if a single record exceeds the ring capacity. *)

val set_window : t -> int -> unit
(** Group-commit window: [1] (the default) writes every record
    immediately, exactly like the pre-group-commit ring; [n > 1] buffers
    up to [n] framed records and commits them in one vectored device
    write.  A crash before the flush loses the buffered tail — replay
    rolls back to the durable prefix. *)

val window : t -> int

val flush : t -> unit
(** Write all buffered records at the head in one vectored device op.
    No-op when nothing is pending. *)

val barrier : t -> unit
(** Settle the clock charge of every asynchronously submitted flush (the
    ring's durability barrier).  Flushed bytes are always on the medium
    when {!flush} returns — on an async {!Block_device} only their
    simulated time is deferred, and callers settle it here at their
    durability points (checkpoint, purge, compaction).  No-op on a
    synchronous device. *)

val pending_ops : t -> int
(** Buffered records not yet durable. *)

val batches : t -> int
(** Vectored group-commit flushes issued so far. *)

val batched_ops : t -> int
(** Records committed through those flushes. *)

type stop_reason =
  | Clean  (** zeroed or stale (previous-lap) bytes: the journal's end *)
  | Torn_frame  (** partial header/garbage magic or an impossible length *)
  | Seq_gap  (** well-formed record whose sequence skips ahead *)
  | Bad_checksum  (** framed record whose FNV checksum does not match *)

val stop_reason_to_string : stop_reason -> string

type replay_summary = { records_replayed : int; stop_reason : stop_reason }

val replay : t -> (string -> unit) -> replay_summary
(** Parse records from the current head, calling the function on each
    payload and advancing head/seq.  Stops at the first invalid frame and
    reports how many records were applied and why parsing ended — [Clean]
    is the ordinary end of the journal, the other reasons say what kind of
    damage cut replay short.  Never raises on frame damage. *)

val mark_checkpointed : t -> unit
(** Move the tail to the head: all current records become dead. *)

val head : t -> int
(** Absolute byte offset of the next record (monotone). *)

val seq : t -> int
(** Next sequence number. *)

val live : t -> int * int
(** [(records, bytes)] appended since the last checkpoint. *)

val capacity : t -> int
(** Ring capacity in bytes. *)

val scrub : t -> unit
(** Zero every ring block holding no live bytes. *)
