module Codec = Rgpdos_util.Codec

type t = {
  dev : Block_device.t;
  start_block : int;
  num_blocks : int;
  mutable jhead : int; (* absolute byte offset of next durable record *)
  mutable jtail : int; (* absolute offset of oldest un-checkpointed record *)
  mutable jseq : int; (* next sequence number to assign (includes pending) *)
  mutable live_records : int;
  (* Group commit: with [window > 1], framed records are buffered in
     [pending] (newest first) and written in one vectored flush once the
     window fills.  [jhead] only ever points at durable bytes; a crash
     loses the pending tail, which replay rolls back to the durable
     prefix. *)
  mutable window : int;
  mutable pending : string list;
  mutable pending_bytes : int;
  mutable batches : int; (* vectored flushes issued *)
  mutable batched_ops : int; (* records that went through a vectored flush *)
  mutable inflight : Block_device.ticket list;
      (* async flush submissions not yet settled.  The bytes are durable
         at submission; only their clock charge is outstanding, settled
         by [barrier] at the caller's durability points. *)
}

(* Channel the ring's async flushes queue on: negative so it can never
   collide with the consumer-facing channels (DED shards use 0..n). *)
let flush_channel = -1

let record_magic = "JR"

let block_size ring = (Block_device.config ring.dev).Block_device.block_size

let capacity ring = ring.num_blocks * block_size ring

let create dev ~start_block ~num_blocks =
  if num_blocks <= 0 then invalid_arg "Journal_ring.create: empty ring";
  {
    dev;
    start_block;
    num_blocks;
    jhead = 0;
    jtail = 0;
    jseq = 0;
    live_records = 0;
    window = 1;
    pending = [];
    pending_bytes = 0;
    batches = 0;
    batched_ops = 0;
    inflight = [];
  }

let attach dev ~start_block ~num_blocks ~head ~seq =
  {
    dev;
    start_block;
    num_blocks;
    jhead = head;
    jtail = head;
    jseq = seq;
    live_records = 0;
    window = 1;
    pending = [];
    pending_bytes = 0;
    batches = 0;
    batched_ops = 0;
    inflight = [];
  }

let set_window ring w = ring.window <- max 1 w
let window ring = ring.window
let batches ring = ring.batches
let batched_ops ring = ring.batched_ops
let pending_ops ring = List.length ring.pending

let checksum = Rgpdos_util.Fnv.hash64_hex

let frame_record seq payload =
  let w = Codec.Writer.create () in
  Codec.Writer.int w seq;
  Codec.Writer.string w payload;
  let body = Codec.Writer.contents w in
  record_magic ^ body ^ checksum body

let ring_write ring abs bytes =
  let bs = block_size ring in
  let cap = capacity ring in
  let len = String.length bytes in
  let pos = ref 0 in
  while !pos < len do
    let ring_off = (abs + !pos) mod cap in
    let blk = ring.start_block + (ring_off / bs) in
    let off_in_blk = ring_off mod bs in
    let chunk = min (bs - off_in_blk) (len - !pos) in
    let current = Bytes.of_string (Block_device.read ring.dev blk) in
    Bytes.blit_string bytes !pos current off_in_blk chunk;
    Block_device.write ring.dev blk (Bytes.to_string current);
    pos := !pos + chunk
  done

let ring_read ring abs len =
  let bs = block_size ring in
  let cap = capacity ring in
  let buf = Buffer.create len in
  let pos = ref 0 in
  while !pos < len do
    let ring_off = (abs + !pos) mod cap in
    let blk = ring.start_block + (ring_off / bs) in
    let off_in_blk = ring_off mod bs in
    let chunk = min (bs - off_in_blk) (len - !pos) in
    Buffer.add_string buf
      (String.sub (Block_device.read ring.dev blk) off_in_blk chunk);
    pos := !pos + chunk
  done;
  Buffer.contents buf

(* A checkpoint makes every logged op durable through the trees, so any
   still-pending (buffered, unwritten) records are simply dropped: the
   root slot records the durable [jhead] and the post-pending [jseq], and
   stale bytes from a previous lap replay as Clean because their seq is
   below the attach seq. *)
let mark_checkpointed ring =
  ring.jtail <- ring.jhead;
  ring.live_records <- 0;
  ring.pending <- [];
  ring.pending_bytes <- 0

(* Write all pending frames at [jhead] in one vectored device op.  Blocks
   only partially covered by the new bytes (the head block, the tail
   block, and wrap boundaries) are read-modify-written; fully covered
   blocks are built in place. *)
let flush ring =
  match ring.pending with
  | [] -> ()
  | frames_rev ->
      let nrec = List.length frames_rev in
      let data = String.concat "" (List.rev frames_rev) in
      let bs = block_size ring in
      let cap = capacity ring in
      let len = String.length data in
      let tbl = Hashtbl.create 16 in
      let order = ref [] in
      let pos = ref 0 in
      while !pos < len do
        let ring_off = (ring.jhead + !pos) mod cap in
        let blk = ring.start_block + (ring_off / bs) in
        let off_in_blk = ring_off mod bs in
        let chunk = min (bs - off_in_blk) (len - !pos) in
        let buf =
          match Hashtbl.find_opt tbl blk with
          | Some b -> b
          | None ->
              let b =
                if off_in_blk = 0 && chunk = bs then Bytes.create bs
                else Bytes.of_string (Block_device.read ring.dev blk)
              in
              Hashtbl.add tbl blk b;
              order := blk :: !order;
              b
        in
        Bytes.blit_string data !pos buf off_in_blk chunk;
        pos := !pos + chunk
      done;
      let writes =
        List.rev_map (fun blk -> (blk, Bytes.to_string (Hashtbl.find tbl blk))) !order
      in
      (* Async devices take the flush as a submission: the framed bytes
         are on the medium when submit returns (replay/crash semantics
         unchanged), only the clock settlement waits for [barrier]. *)
      if Block_device.async_enabled ring.dev then
        ring.inflight <-
          Block_device.submit_write_vec ring.dev ~channel:flush_channel writes
          :: ring.inflight
      else Block_device.write_vec ring.dev writes;
      ring.jhead <- ring.jhead + len;
      ring.live_records <- ring.live_records + nrec;
      ring.batches <- ring.batches + 1;
      ring.batched_ops <- ring.batched_ops + nrec;
      ring.pending <- [];
      ring.pending_bytes <- 0

(* Settle every async flush submission: the ring's durability barrier.
   A no-op on synchronous devices and when nothing is in flight. *)
let barrier ring =
  (match ring.inflight with
  | [] -> ()
  | tks ->
      List.iter (fun tk -> ignore (Block_device.await ring.dev tk)) (List.rev tks));
  ring.inflight <- []

let append ring ~on_overflow payload =
  let framed = frame_record ring.jseq payload in
  let len = String.length framed in
  if len > capacity ring then failwith "Journal_ring: record larger than ring";
  if ring.jhead + ring.pending_bytes + len - ring.jtail > capacity ring then begin
    on_overflow ();
    if ring.jhead + ring.pending_bytes + len - ring.jtail > capacity ring then
      failwith "Journal_ring: overflow handler did not checkpoint"
  end;
  if ring.window <= 1 then begin
    ring_write ring ring.jhead framed;
    ring.jhead <- ring.jhead + len;
    ring.jseq <- ring.jseq + 1;
    ring.live_records <- ring.live_records + 1
  end
  else begin
    ring.pending <- framed :: ring.pending;
    ring.pending_bytes <- ring.pending_bytes + len;
    ring.jseq <- ring.jseq + 1;
    if List.length ring.pending >= ring.window then flush ring
  end

type stop_reason = Clean | Torn_frame | Seq_gap | Bad_checksum

let stop_reason_to_string = function
  | Clean -> "clean"
  | Torn_frame -> "torn_frame"
  | Seq_gap -> "seq_gap"
  | Bad_checksum -> "bad_checksum"

type replay_summary = { records_replayed : int; stop_reason : stop_reason }

let replay ring f =
  let mlen = String.length record_magic in
  let replayed = ref 0 in
  let stop = ref None in
  let finish reason = stop := Some reason in
  while !stop = None do
    let header = ring_read ring ring.jhead (mlen + 8 + 4) in
    if String.sub header 0 mlen <> record_magic then
      (* never-written tail reads as zeros: that is the clean end of the
         journal; any other garbage under the magic is a torn frame *)
      finish
        (if String.for_all (fun c -> c = '\000') (String.sub header 0 mlen)
         then Clean
         else Torn_frame)
    else begin
      let r = Codec.Reader.create (String.sub header mlen (8 + 4)) in
      match Codec.Reader.int r with
      | Error _ -> finish Torn_frame
      | Ok seq when seq < ring.jseq ->
          (* well-formed record from a previous lap: stale, clean end *)
          finish Clean
      | Ok seq when seq > ring.jseq -> finish Seq_gap
      | Ok seq ->
          let lenfield = String.sub header (mlen + 8) 4 in
          let plen = ref 0 in
          String.iter (fun c -> plen := (!plen lsl 8) lor Char.code c) lenfield;
          if !plen < 0 || !plen > capacity ring then finish Torn_frame
          else begin
            let total = mlen + 8 + 4 + !plen + 16 in
            let frame = ring_read ring ring.jhead total in
            let body = String.sub frame mlen (8 + 4 + !plen) in
            let sum = String.sub frame (mlen + 8 + 4 + !plen) 16 in
            if sum <> checksum body then finish Bad_checksum
            else begin
              let payload = String.sub frame (mlen + 8 + 4) !plen in
              f payload;
              ring.jhead <- ring.jhead + total;
              ring.jseq <- seq + 1;
              ring.live_records <- ring.live_records + 1;
              incr replayed
            end
          end
    end
  done;
  {
    records_replayed = !replayed;
    stop_reason = (match !stop with Some r -> r | None -> Clean);
  }

let head ring = ring.jhead

let seq ring = ring.jseq

let live ring =
  let bytes = ring.jhead - ring.jtail in
  (ring.live_records, bytes)

let scrub ring =
  let bs = block_size ring in
  let cap = capacity ring in
  let live_start = ring.jtail mod cap in
  let live_len = ring.jhead - ring.jtail in
  let is_live_block blk_idx =
    if live_len = 0 then false
    else if live_len >= cap then true
    else
      let blk_lo = blk_idx * bs and blk_hi = ((blk_idx + 1) * bs) - 1 in
      let live_end = (live_start + live_len - 1) mod cap in
      if live_start <= live_end then
        not (blk_hi < live_start || blk_lo > live_end)
      else blk_hi >= live_start || blk_lo <= live_end
  in
  for i = 0 to ring.num_blocks - 1 do
    if not (is_live_block i) then
      Block_device.write ring.dev (ring.start_block + i) (String.make bs '\000')
  done
