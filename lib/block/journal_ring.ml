module Codec = Rgpdos_util.Codec

type t = {
  dev : Block_device.t;
  start_block : int;
  num_blocks : int;
  mutable jhead : int; (* absolute byte offset of next record *)
  mutable jtail : int; (* absolute offset of oldest un-checkpointed record *)
  mutable jseq : int;
  mutable live_records : int;
}

let record_magic = "JR"

let block_size ring = (Block_device.config ring.dev).Block_device.block_size

let capacity ring = ring.num_blocks * block_size ring

let create dev ~start_block ~num_blocks =
  if num_blocks <= 0 then invalid_arg "Journal_ring.create: empty ring";
  { dev; start_block; num_blocks; jhead = 0; jtail = 0; jseq = 0; live_records = 0 }

let attach dev ~start_block ~num_blocks ~head ~seq =
  {
    dev;
    start_block;
    num_blocks;
    jhead = head;
    jtail = head;
    jseq = seq;
    live_records = 0;
  }

let checksum = Rgpdos_util.Fnv.hash64_hex

let frame_record seq payload =
  let w = Codec.Writer.create () in
  Codec.Writer.int w seq;
  Codec.Writer.string w payload;
  let body = Codec.Writer.contents w in
  record_magic ^ body ^ checksum body

let ring_write ring abs bytes =
  let bs = block_size ring in
  let cap = capacity ring in
  let len = String.length bytes in
  let pos = ref 0 in
  while !pos < len do
    let ring_off = (abs + !pos) mod cap in
    let blk = ring.start_block + (ring_off / bs) in
    let off_in_blk = ring_off mod bs in
    let chunk = min (bs - off_in_blk) (len - !pos) in
    let current = Bytes.of_string (Block_device.read ring.dev blk) in
    Bytes.blit_string bytes !pos current off_in_blk chunk;
    Block_device.write ring.dev blk (Bytes.to_string current);
    pos := !pos + chunk
  done

let ring_read ring abs len =
  let bs = block_size ring in
  let cap = capacity ring in
  let buf = Buffer.create len in
  let pos = ref 0 in
  while !pos < len do
    let ring_off = (abs + !pos) mod cap in
    let blk = ring.start_block + (ring_off / bs) in
    let off_in_blk = ring_off mod bs in
    let chunk = min (bs - off_in_blk) (len - !pos) in
    Buffer.add_string buf
      (String.sub (Block_device.read ring.dev blk) off_in_blk chunk);
    pos := !pos + chunk
  done;
  Buffer.contents buf

let mark_checkpointed ring =
  ring.jtail <- ring.jhead;
  ring.live_records <- 0

let append ring ~on_overflow payload =
  let framed = frame_record ring.jseq payload in
  let len = String.length framed in
  if len > capacity ring then failwith "Journal_ring: record larger than ring";
  if ring.jhead + len - ring.jtail > capacity ring then begin
    on_overflow ();
    if ring.jhead + len - ring.jtail > capacity ring then
      failwith "Journal_ring: overflow handler did not checkpoint"
  end;
  ring_write ring ring.jhead framed;
  ring.jhead <- ring.jhead + len;
  ring.jseq <- ring.jseq + 1;
  ring.live_records <- ring.live_records + 1

type stop_reason = Clean | Torn_frame | Seq_gap | Bad_checksum

let stop_reason_to_string = function
  | Clean -> "clean"
  | Torn_frame -> "torn_frame"
  | Seq_gap -> "seq_gap"
  | Bad_checksum -> "bad_checksum"

type replay_summary = { records_replayed : int; stop_reason : stop_reason }

let replay ring f =
  let mlen = String.length record_magic in
  let replayed = ref 0 in
  let stop = ref None in
  let finish reason = stop := Some reason in
  while !stop = None do
    let header = ring_read ring ring.jhead (mlen + 8 + 4) in
    if String.sub header 0 mlen <> record_magic then
      (* never-written tail reads as zeros: that is the clean end of the
         journal; any other garbage under the magic is a torn frame *)
      finish
        (if String.for_all (fun c -> c = '\000') (String.sub header 0 mlen)
         then Clean
         else Torn_frame)
    else begin
      let r = Codec.Reader.create (String.sub header mlen (8 + 4)) in
      match Codec.Reader.int r with
      | Error _ -> finish Torn_frame
      | Ok seq when seq < ring.jseq ->
          (* well-formed record from a previous lap: stale, clean end *)
          finish Clean
      | Ok seq when seq > ring.jseq -> finish Seq_gap
      | Ok seq ->
          let lenfield = String.sub header (mlen + 8) 4 in
          let plen = ref 0 in
          String.iter (fun c -> plen := (!plen lsl 8) lor Char.code c) lenfield;
          if !plen < 0 || !plen > capacity ring then finish Torn_frame
          else begin
            let total = mlen + 8 + 4 + !plen + 16 in
            let frame = ring_read ring ring.jhead total in
            let body = String.sub frame mlen (8 + 4 + !plen) in
            let sum = String.sub frame (mlen + 8 + 4 + !plen) 16 in
            if sum <> checksum body then finish Bad_checksum
            else begin
              let payload = String.sub frame (mlen + 8 + 4) !plen in
              f payload;
              ring.jhead <- ring.jhead + total;
              ring.jseq <- seq + 1;
              ring.live_records <- ring.live_records + 1;
              incr replayed
            end
          end
    end
  done;
  {
    records_replayed = !replayed;
    stop_reason = (match !stop with Some r -> r | None -> Clean);
  }

let head ring = ring.jhead

let seq ring = ring.jseq

let live ring =
  let bytes = ring.jhead - ring.jtail in
  (ring.live_records, bytes)

let scrub ring =
  let bs = block_size ring in
  let cap = capacity ring in
  let live_start = ring.jtail mod cap in
  let live_len = ring.jhead - ring.jtail in
  let is_live_block blk_idx =
    if live_len = 0 then false
    else if live_len >= cap then true
    else
      let blk_lo = blk_idx * bs and blk_hi = ((blk_idx + 1) * bs) - 1 in
      let live_end = (live_start + live_len - 1) mod cap in
      if live_start <= live_end then
        not (blk_hi < live_start || blk_lo > live_end)
      else blk_hi >= live_start || blk_lo <= live_end
  in
  for i = 0 to ring.num_blocks - 1 do
    if not (is_live_block i) then
      Block_device.write ring.dev (ring.start_block + i) (String.make bs '\000')
  done
