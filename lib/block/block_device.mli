(** Simulated block device.

    Both filesystems in the reproduction (the conventional journaling FS of
    the Fig-2 baseline and rgpdOS's DBFS) sit on instances of this device,
    so the forensic experiments (E3: does deleted PD survive on the medium?)
    can scan the raw bytes exactly as a disk-imaging tool would.

    The device charges simulated time to a {!Rgpdos_util.Clock.t} per
    operation (seek + per-byte transfer), keeps IO statistics, and supports
    fault injection and point-in-time snapshots for crash-recovery tests. *)

type t

type config = {
  block_size : int;      (** bytes per block *)
  block_count : int;     (** device capacity in blocks *)
  read_latency : Rgpdos_util.Clock.ns;   (** fixed cost per read *)
  write_latency : Rgpdos_util.Clock.ns;  (** fixed cost per write *)
  byte_latency : Rgpdos_util.Clock.ns;   (** additional cost per byte moved *)
  vectored : bool;
  (** when true (the default), vectored requests charge one fixed seek per
      merged contiguous run; when false they degrade to one seek per block
      (the scalar cost model), letting before/after comparisons run on the
      same build. *)
  async : bool;
  (** when true, {!submit_read_vec}/{!submit_write_vec} defer their clock
      charge to {!await} through per-channel service slots, so compute
      performed between submit and await hides device time; when false
      (the default) a submission charges synchronously — byte- and
      clock-identical to {!read_vec}/{!write_vec} — letting before/after
      comparisons run on the same build. *)
  queue_depth : int;
  (** service slots per channel under [async]: how many submissions one
      channel services concurrently before further requests queue behind
      the earliest free slot. *)
}

val default_config : config
(** 4 KiB blocks, 16 Ki blocks (64 MiB), NVMe-flash-like latencies. *)

val create : ?config:config -> clock:Rgpdos_util.Clock.t -> unit -> t

val config : t -> config

val clock : t -> Rgpdos_util.Clock.t
(** The virtual clock the device charges. *)

exception Out_of_range of int
(** Raised on access to a block index outside the device. *)

exception Faulted of int
(** Raised when fault injection has marked a block bad. *)

val read : t -> int -> string
(** [read dev i] returns the contents of block [i] (always [block_size]
    bytes; unwritten blocks read as zeros). *)

val charge_read : t -> int -> unit
(** Charge exactly the simulated cost (and IO statistics) of [read dev i]
    without transferring the block's bytes.  Used by read caches that hold
    a decoded copy in host memory: the host-side work disappears but the
    simulated device cost model — and therefore every experiment's
    [stage_ns] accounting — is unchanged. *)

val read_vec : t -> int list -> (int * string) list
(** [read_vec dev indices] reads all the named blocks in one vectored
    request.  The indices are sorted (elevator order), duplicates are
    collapsed, and contiguous indices are merged into runs: the request
    charges one [read_latency] seek per run plus the usual per-byte cost.
    Returns [(index, contents)] in ascending index order, one entry per
    distinct requested index. *)

val charge_read_vec : t -> int list -> unit
(** Charge exactly the simulated cost (and IO statistics) of
    [read_vec dev indices] without transferring any bytes.  The vectored
    analogue of {!charge_read}: read caches use it so a cache hit costs
    the same simulated device time as the vectored miss it replaces. *)

val write_vec : t -> (int * string) list -> unit
(** [write_vec dev writes] stores every [(index, data)] pair in one
    vectored request, charging one [write_latency] seek per contiguous
    run of distinct indices plus the per-byte cost.  Later pairs win on
    duplicate indices, and duplicates are resolved {i before} cost
    accounting: a request naming the same block twice seeks and transfers
    it once.  Data constraints are as for {!write}. *)

val write : t -> int -> string -> unit
(** [write dev i data] stores [data] as block [i].  [data] shorter than
    [block_size] is zero-padded; longer raises [Invalid_argument]. *)

(** {1 Asynchronous submission / completion}

    io_uring-style queue pairs on the simulated clock.  A submission
    moves bytes immediately — writes persist (and run the whole
    fault-plan dispatch, write-op ordinals and crash capture) at submit
    time, reads capture their payload at submit time — so on-device
    state, outcomes and IO counters are identical to the synchronous
    calls regardless of when completions settle.  Only TIME is deferred:
    each request occupies one of its channel's [queue_depth] service
    slots and {!await} advances the clock to the request's completion
    instant, charging zero when the caller's compute between submit and
    await already covered it (the hidden time is tallied in the
    ["overlap_ns_hidden"] counter).

    With [config.async = false] submissions charge synchronously and
    {!await} never advances the clock, making the async API byte- and
    clock-identical to the scalar model for same-build A/B runs. *)

type ticket
(** An in-flight submission.  Settle it with {!await} (idempotent). *)

val async_enabled : t -> bool
(** [config.async] — consumers branch on this to keep their synchronous
    batch shape (and therefore its exact charging) when async is off. *)

val submit_read_vec : t -> ?channel:int -> int list -> ticket
(** Enqueue the vectored read of {!read_vec} on [channel] (default 0).
    Payload bytes are captured and faults raised at submission; the
    clock charge settles at {!await}.  Same counters as {!read_vec}. *)

val submit_charge_read_vec : t -> ?channel:int -> int list -> ticket
(** Cost-and-accounting-only {!submit_read_vec} (the async analogue of
    {!charge_read_vec}): cache hits queue, cost and settle exactly like
    the cold read they replace, so warm==cold holds under async too.
    The ticket's payload is empty. *)

val submit_write_vec : t -> ?channel:int -> (int * string) list -> ticket
(** Enqueue the vectored write of {!write_vec} on [channel].  Bytes
    persist and the fault plan dispatches at submission (raising
    {!Faulted} exactly as {!write_vec} would); the clock charge settles
    at {!await} — callers needing a durability barrier await the ticket
    (or {!drain}) before depending on the op's time being charged. *)

val await : t -> ticket -> (int * string) list
(** Settle a completion: advance the clock to the request's completion
    instant (zero if compute already passed it) and return the payload
    captured at submission ([[]] for writes and charge-only reads).
    Idempotent — re-awaiting returns the payload without re-charging. *)

val drain : t -> unit
(** Settle every in-flight submission (the device-wide durability
    barrier).  After [drain] the clock covers all submitted device
    time. *)

val outstanding : t -> int
(** In-flight (submitted, not yet awaited) requests across all
    channels. *)

val trim : t -> int -> unit
(** Mark a block unallocated and zero it.  Unlike a real SSD TRIM this
    simulation zeroes eagerly, which is the *charitable* assumption for the
    baseline: its journal still leaks PD even with perfect TRIM. *)

val inject_fault : t -> int -> unit
(** Subsequent accesses to the block raise {!Faulted}. *)

val clear_fault : t -> int -> unit
(** Clears both permanent and transient faults on the block. *)

val inject_transient_fault : t -> int -> count:int -> unit
(** The next [count] accesses touching the block raise {!Faulted}, then the
    block recovers on its own — the model for a transient device error that
    a bounded retry loop is expected to ride out. *)

(** {1 Programmable fault plans}

    A fault plan is a deterministic schedule keyed on the device's write-op
    ordinal: scalar {!write} and vectored {!write_vec} each count as one
    write op, numbered from 1 as of plan installation.  A campaign harness
    installs a plan, runs a scripted workload, and every write op becomes an
    enumerable fault or crash point.  Determinism rule: the same seed and
    the same workload replay the exact same schedule and produce the same
    verdicts. *)

module Fault_plan : sig
  type action =
    | Fail_write of { transient : bool }
        (** the op charges the device but persists nothing and raises
            {!Faulted}; with [transient = false] the first target block is
            additionally marked permanently bad *)
    | Torn_write of { keep_runs : int }
        (** a vectored write persists only its first [keep_runs] contiguous
            runs, then raises {!Faulted}; a scalar write counts as one run
            (so [keep_runs = 0] persists nothing and [>= 1] persists the
            block but loses the acknowledgement) *)
    | Bit_flip of { block : int; byte : int; bit : int }
        (** the op succeeds normally, then one bit of the named block is
            silently flipped — medium bit rot, visible only to checksums *)

  type t

  val create : unit -> t
  (** Empty plan: no faults, no crash trigger.  Installing an empty plan is
      how a reference run counts its write ops ({!writes_seen}). *)

  val on_write : t -> nth:int -> action -> unit
  (** Schedule [action] to fire on the [nth] write op (1-based, counted
      from plan installation).  Each scheduled fault fires exactly once. *)

  val crash_after_writes : t -> int -> unit
  (** Snapshot the device image immediately after the [n]th write op's
      persistence completes (including a torn prefix), modelling power loss
      at that instant; retrieve it with {!crash_image}. *)

  val writes_seen : t -> int
  (** Write ops observed by the device since the plan was installed. *)

  val pp_action : Format.formatter -> action -> unit
  val action_to_string : action -> string

  val pp : Format.formatter -> t -> unit
  (** Render the plan's still-scheduled faults and crash trigger, e.g.
      [plan{@3:torn-write(keep=1) crash@17}].  Fired entries are removed
      from the plan, so diagnosable failure reports should capture
      {!to_string} at install time. *)

  val to_string : t -> string

  val random :
    prng:Rgpdos_util.Prng.t ->
    writes:int ->
    faults:int ->
    block_count:int ->
    unit ->
    t
  (** [faults] actions drawn from a seeded PRNG over the first [writes]
      write ops (uniform mix of transient/permanent failures, torn writes
      and bit flips). *)
end

val set_fault_plan : t -> Fault_plan.t option -> unit
(** Install (or with [None] remove) the device's fault plan. *)

val fault_plan : t -> Fault_plan.t option

val crash_image : t -> string array option
(** The snapshot captured by the plan's [crash_after_writes] trigger, once
    the trigger has fired; [restore] it into a fresh device to model
    remounting after the crash. *)

val clear_crash_image : t -> unit

val unsafe_flip : t -> block:int -> byte:int -> bit:int -> unit
(** Flip one bit of a block in place without charging the clock or touching
    counters — the direct bit-rot test hook ({!Fault_plan.Bit_flip} is the
    scheduled form).  Out-of-range [byte] offsets are ignored. *)

val is_written : t -> int -> bool
(** Whether the block currently holds bytes (written and not trimmed).
    Free introspection for repair tools choosing scrub candidates; reading
    the block's contents still charges normally. *)

val snapshot : t -> string array
(** Copy of all written blocks (unwritten slots are [""]), for crash tests:
    restore with [restore]. *)

val restore : t -> string array -> unit

val stats : t -> Rgpdos_util.Stats.Counter.t
(** Counters: "reads", "writes", "trims", "bytes_read", "bytes_written",
    plus vectored-IO observability: "vec_reads" / "vec_writes" (vectored
    requests issued) and "merged_runs" (contiguous runs charged across
    all vectored requests).  "reads"/"writes"/bytes stay per-block, so
    the merge ratio is [reads / merged_runs].  "write_ops" counts write
    requests (scalar or vectored) — the ordinal space fault plans schedule
    against.

    Async observability (all 0 until the async API is used):
    "async_submits" / "async_completions" (submissions issued / settled,
    counted in both async and sync-degraded mode), "async_service_ns"
    (total service time submitted), "overlap_ns_hidden" (service time
    hidden behind caller compute — the overlap ratio is
    [overlap_ns_hidden / async_service_ns]) and "queue_depth_highwater"
    (maximum simultaneously in-flight submissions). *)

val reset_stats : t -> unit

val scan : t -> string -> (int * int) list
(** [scan dev needle] searches every block (without charging simulated
    time — this is the forensic attacker, not a machine component) and
    returns [(block, offset)] of every occurrence of [needle].  Matches
    spanning two adjacent blocks are found as well. *)

val used_blocks : t -> int
(** Number of blocks that have been written and not trimmed. *)
