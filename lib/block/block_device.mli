(** Simulated block device.

    Both filesystems in the reproduction (the conventional journaling FS of
    the Fig-2 baseline and rgpdOS's DBFS) sit on instances of this device,
    so the forensic experiments (E3: does deleted PD survive on the medium?)
    can scan the raw bytes exactly as a disk-imaging tool would.

    The device charges simulated time to a {!Rgpdos_util.Clock.t} per
    operation (seek + per-byte transfer), keeps IO statistics, and supports
    fault injection and point-in-time snapshots for crash-recovery tests. *)

type t

type config = {
  block_size : int;      (** bytes per block *)
  block_count : int;     (** device capacity in blocks *)
  read_latency : Rgpdos_util.Clock.ns;   (** fixed cost per read *)
  write_latency : Rgpdos_util.Clock.ns;  (** fixed cost per write *)
  byte_latency : Rgpdos_util.Clock.ns;   (** additional cost per byte moved *)
  vectored : bool;
  (** when true (the default), vectored requests charge one fixed seek per
      merged contiguous run; when false they degrade to one seek per block
      (the scalar cost model), letting before/after comparisons run on the
      same build. *)
}

val default_config : config
(** 4 KiB blocks, 16 Ki blocks (64 MiB), NVMe-flash-like latencies. *)

val create : ?config:config -> clock:Rgpdos_util.Clock.t -> unit -> t

val config : t -> config

val clock : t -> Rgpdos_util.Clock.t
(** The virtual clock the device charges. *)

exception Out_of_range of int
(** Raised on access to a block index outside the device. *)

exception Faulted of int
(** Raised when fault injection has marked a block bad. *)

val read : t -> int -> string
(** [read dev i] returns the contents of block [i] (always [block_size]
    bytes; unwritten blocks read as zeros). *)

val charge_read : t -> int -> unit
(** Charge exactly the simulated cost (and IO statistics) of [read dev i]
    without transferring the block's bytes.  Used by read caches that hold
    a decoded copy in host memory: the host-side work disappears but the
    simulated device cost model — and therefore every experiment's
    [stage_ns] accounting — is unchanged. *)

val read_vec : t -> int list -> (int * string) list
(** [read_vec dev indices] reads all the named blocks in one vectored
    request.  The indices are sorted (elevator order), duplicates are
    collapsed, and contiguous indices are merged into runs: the request
    charges one [read_latency] seek per run plus the usual per-byte cost.
    Returns [(index, contents)] in ascending index order, one entry per
    distinct requested index. *)

val charge_read_vec : t -> int list -> unit
(** Charge exactly the simulated cost (and IO statistics) of
    [read_vec dev indices] without transferring any bytes.  The vectored
    analogue of {!charge_read}: read caches use it so a cache hit costs
    the same simulated device time as the vectored miss it replaces. *)

val write_vec : t -> (int * string) list -> unit
(** [write_vec dev writes] stores every [(index, data)] pair in one
    vectored request, charging one [write_latency] seek per contiguous
    run of distinct indices plus the per-byte cost.  Later pairs win on
    duplicate indices.  Data constraints are as for {!write}. *)

val write : t -> int -> string -> unit
(** [write dev i data] stores [data] as block [i].  [data] shorter than
    [block_size] is zero-padded; longer raises [Invalid_argument]. *)

val trim : t -> int -> unit
(** Mark a block unallocated and zero it.  Unlike a real SSD TRIM this
    simulation zeroes eagerly, which is the *charitable* assumption for the
    baseline: its journal still leaks PD even with perfect TRIM. *)

val inject_fault : t -> int -> unit
(** Subsequent accesses to the block raise {!Faulted}. *)

val clear_fault : t -> int -> unit

val snapshot : t -> string array
(** Copy of all written blocks (unwritten slots are [""]), for crash tests:
    restore with [restore]. *)

val restore : t -> string array -> unit

val stats : t -> Rgpdos_util.Stats.Counter.t
(** Counters: "reads", "writes", "trims", "bytes_read", "bytes_written",
    plus vectored-IO observability: "vec_reads" / "vec_writes" (vectored
    requests issued) and "merged_runs" (contiguous runs charged across
    all vectored requests).  "reads"/"writes"/bytes stay per-block, so
    the merge ratio is [reads / merged_runs]. *)

val reset_stats : t -> unit

val scan : t -> string -> (int * int) list
(** [scan dev needle] searches every block (without charging simulated
    time — this is the forensic attacker, not a machine component) and
    returns [(block, offset)] of every occurrence of [needle].  Matches
    spanning two adjacent blocks are found as well. *)

val used_blocks : t -> int
(** Number of blocks that have been written and not trimmed. *)
