module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Prng = Rgpdos_util.Prng

type config = {
  block_size : int;
  block_count : int;
  read_latency : Clock.ns;
  write_latency : Clock.ns;
  byte_latency : Clock.ns;
  vectored : bool;
  async : bool;
  queue_depth : int;
}

let default_config =
  {
    block_size = 4096;
    block_count = 16_384;
    read_latency = 10_000 (* 10us *);
    write_latency = 20_000 (* 20us *);
    byte_latency = 2 (* ~0.5 GB/s *);
    vectored = true;
    async = false;
    queue_depth = 8;
  }

(* ---------- fault plan ----------

   A fault plan is a deterministic schedule keyed on the device's write-op
   ordinal (scalar [write] and vectored [write_vec] each count as one op,
   numbered from 1 as of plan installation).  Campaign harnesses install a
   plan, run a scripted workload, and every write becomes an enumerable
   fault/crash point; the same seed and workload replay the exact same
   schedule. *)

module Fault_plan = struct
  type action =
    | Fail_write of { transient : bool }
        (** the op charges the device but persists nothing and raises
            [Faulted]; [transient = false] additionally marks the first
            target block permanently bad *)
    | Torn_write of { keep_runs : int }
        (** a vectored write persists only its first [keep_runs] contiguous
            runs before raising [Faulted] (a scalar write is one run) *)
    | Bit_flip of { block : int; byte : int; bit : int }
        (** the op succeeds normally, then one bit of the named block is
            silently flipped (medium bit rot) *)

  type t = {
    mutable entries : (int * action) list;  (* (nth write op, action) *)
    mutable crash_after : int option;
    mutable seen : int;  (* write ops observed since installation *)
  }

  let create () = { entries = []; crash_after = None; seen = 0 }

  let on_write plan ~nth action =
    if nth <= 0 then invalid_arg "Fault_plan.on_write: nth must be positive";
    plan.entries <- (nth, action) :: plan.entries

  let crash_after_writes plan n =
    if n <= 0 then invalid_arg "Fault_plan.crash_after_writes: n must be positive";
    plan.crash_after <- Some n

  let writes_seen plan = plan.seen

  let action_for plan nth =
    match List.assoc_opt nth plan.entries with
    | Some _ as a ->
        (* one-shot: an op's scheduled fault fires once *)
        plan.entries <- List.filter (fun (k, _) -> k <> nth) plan.entries;
        a
    | None -> None

  let pp_action ppf = function
    | Fail_write { transient } ->
        Format.fprintf ppf "fail-write(%s)"
          (if transient then "transient" else "permanent")
    | Torn_write { keep_runs } -> Format.fprintf ppf "torn-write(keep=%d)" keep_runs
    | Bit_flip { block; byte; bit } ->
        Format.fprintf ppf "bit-flip(block=%d,byte=%d,bit=%d)" block byte bit

  let action_to_string a = Format.asprintf "%a" pp_action a

  (* Render the plan as scheduled, not as consumed: a fired entry is
     removed from [entries], so failure reports should capture the
     string at install time. *)
  let pp ppf plan =
    let entries = List.sort compare plan.entries in
    Format.fprintf ppf "plan{";
    List.iteri
      (fun i (nth, a) ->
        Format.fprintf ppf "%s@@%d:%a" (if i = 0 then "" else " ") nth pp_action a)
      entries;
    (match plan.crash_after with
    | Some n ->
        Format.fprintf ppf "%scrash@@%d" (if entries = [] then "" else " ") n
    | None -> if entries = [] then Format.fprintf ppf "no-faults");
    Format.fprintf ppf "}"

  let to_string plan = Format.asprintf "%a" pp plan

  (* Draw [faults] scheduled faults over the first [writes] write ops from a
     seeded PRNG.  Same seed => same schedule, the campaign determinism
     rule. *)
  let random ~prng ~writes ~faults ~block_count () =
    if writes <= 0 then invalid_arg "Fault_plan.random: writes must be positive";
    let plan = create () in
    for _ = 1 to faults do
      let nth = Prng.int_in prng 1 writes in
      let action =
        match Prng.int prng 3 with
        | 0 -> Fail_write { transient = Prng.bool prng }
        | 1 -> Torn_write { keep_runs = Prng.int prng 3 }
        | _ ->
            Bit_flip
              {
                block = Prng.int prng block_count;
                byte = Prng.int prng 64;
                bit = Prng.int prng 8;
              }
      in
      on_write plan ~nth action
    done;
    plan
end

(* An in-flight async request: the bytes (for reads) were captured at
   submission, only the clock settlement is outstanding.  [tk_completion]
   is the absolute simulated time the channel finishes servicing the
   request; [tk_service] is the request's own service time, used to
   account how much of it the caller's compute hid. *)
type ticket = {
  tk_service : Clock.ns;
  tk_completion : Clock.ns;
  tk_payload : (int * string) list;
  mutable tk_settled : bool;
}

type t = {
  cfg : config;
  clock : Clock.t;
  blocks : string array; (* "" means never written / trimmed *)
  faults : (int, unit) Hashtbl.t;
  transients : (int, int) Hashtbl.t; (* block -> remaining transient failures *)
  counters : Stats.Counter.t;
  mutable used : int;
  mutable plan : Fault_plan.t option;
  mutable crash_image : string array option;
  channels : (int, Clock.ns array) Hashtbl.t;
      (* per-channel service slots: absolute time each of the
         [queue_depth] in-flight positions frees up *)
  mutable pending_tk : ticket list;
  mutable outstanding : int;
}

exception Out_of_range of int
exception Faulted of int

let create ?(config = default_config) ~clock () =
  if config.block_size <= 0 || config.block_count <= 0 then
    invalid_arg "Block_device.create: non-positive geometry";
  {
    cfg = config;
    clock;
    blocks = Array.make config.block_count "";
    faults = Hashtbl.create 4;
    transients = Hashtbl.create 4;
    counters = Stats.Counter.create ();
    used = 0;
    plan = None;
    crash_image = None;
    channels = Hashtbl.create 4;
    pending_tk = [];
    outstanding = 0;
  }

let config dev = dev.cfg

let clock dev = dev.clock

let check dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  (match Hashtbl.find_opt dev.transients i with
  | Some n ->
      if n <= 1 then Hashtbl.remove dev.transients i
      else Hashtbl.replace dev.transients i (n - 1);
      raise (Faulted i)
  | None -> ());
  if Hashtbl.mem dev.faults i then raise (Faulted i)

let charge dev base nbytes =
  Clock.advance dev.clock (base + (dev.cfg.byte_latency * nbytes))

let read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read";
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* Same simulated cost and accounting as [read], without moving the bytes:
   callers holding a decoded in-memory copy (the DBFS membrane cache) use
   this so the device-level cost model stays byte-identical. *)
let charge_read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read"

(* ---------- vectored IO ----------

   A vectored request names a set of blocks.  We sort the set (elevator
   order), merge contiguous indices into runs, and charge ONE fixed seek
   latency per run; the per-byte transfer cost is unchanged.  With
   [cfg.vectored = false] the device degrades to the scalar cost model
   (one seek per block) so before/after comparisons can run on the same
   build at the same scale. *)

(* Sorted, deduplicated copy of the requested indices. *)
let sorted_unique indices =
  let a = Array.of_list indices in
  Array.sort compare a;
  let n = Array.length a in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if i = n - 1 || a.(i) <> a.(i + 1) then out := a.(i) :: !out
  done;
  !out

(* [runs] splits a sorted unique index list into maximal contiguous runs,
   returned as (start, length) pairs in ascending order. *)
let runs sorted =
  let rec go acc start len = function
    | [] -> List.rev ((start, len) :: acc)
    | i :: rest when i = start + len -> go acc start (len + 1) rest
    | i :: rest -> go ((start, len) :: acc) i 1 rest
  in
  match sorted with [] -> [] | i :: rest -> go [] i 1 rest

(* Cost of a vectored access of [sorted] blocks: [(service_ns, nruns)].
   One [base] seek per contiguous run (per block when not vectored) plus
   the per-byte transfer.  Shared by the synchronous charge path and the
   async submission path so both bill the identical service time. *)
let vec_cost dev base sorted =
  match sorted with
  | [] -> (0, 0)
  | _ ->
      let nblocks = List.length sorted in
      let rs = if dev.cfg.vectored then runs sorted else
          List.map (fun i -> (i, 1)) sorted
      in
      let nruns = List.length rs in
      ( (base * nruns) + (dev.cfg.byte_latency * dev.cfg.block_size * nblocks),
        nruns )

(* Charge seeks + transfer for a vectored access of [sorted] blocks and
   bump the shared counters.  [base] is the fixed per-seek latency. *)
let charge_vec dev base sorted =
  let service, nruns = vec_cost dev base sorted in
  if nruns > 0 then begin
    Clock.advance dev.clock service;
    Stats.Counter.incr dev.counters ~by:nruns "merged_runs"
  end

let block_contents dev i =
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* [read_vec dev indices] reads all the named blocks in one request and
   returns an association list [(index, contents)] covering every
   requested index (duplicates collapsed).  Cost: one [read_latency] seek
   per contiguous run plus the usual per-byte charge. *)
let read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read";
  List.map (fun i -> (i, block_contents dev i)) sorted

(* Cost-and-accounting-only variant of [read_vec], for callers that hold
   decoded copies (read caches): identical clock charge and counters, no
   byte movement.  This keeps cache hits cost-transparent under the
   vectored model, exactly as [charge_read] does for scalar reads. *)
let charge_read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read"

let store dev i data =
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  if dev.blocks.(i) = "" then dev.used <- dev.used + 1;
  dev.blocks.(i) <-
    (if len = dev.cfg.block_size then data
     else data ^ String.make (dev.cfg.block_size - len) '\000')

(* ---------- write-path fault machinery ---------- *)

(* Count this write op against the installed plan (if any) and return the
   fault action scheduled for it. *)
let note_write_op dev =
  Stats.Counter.incr dev.counters "write_ops";
  match dev.plan with
  | None -> None
  | Some p ->
      p.Fault_plan.seen <- p.Fault_plan.seen + 1;
      Fault_plan.action_for p p.Fault_plan.seen

(* After a write op's persistence (including a torn prefix), capture the
   device image if this op is the plan's crash point.  The image is exactly
   "power lost after write op n": everything the op persisted, nothing the
   caller did afterwards. *)
let maybe_capture_crash dev =
  match dev.plan with
  | Some { Fault_plan.crash_after = Some n; seen; _ }
    when seen = n && dev.crash_image = None ->
      dev.crash_image <- Some (Array.copy dev.blocks)
  | _ -> ()

(* Silent medium corruption: flip one bit in place, without charging the
   clock or touching counters (the device does not know its bits rotted). *)
let flip_bit_raw dev ~block ~byte ~bit =
  if block >= 0 && block < dev.cfg.block_count && byte >= 0
     && byte < dev.cfg.block_size
  then begin
    let b = dev.blocks.(block) in
    let b = if b = "" then String.make dev.cfg.block_size '\000' else b in
    let by = Bytes.of_string b in
    let c = Char.code (Bytes.get by byte) in
    Bytes.set by byte (Char.chr (c lxor (1 lsl (bit land 7))));
    if dev.blocks.(block) = "" then dev.used <- dev.used + 1;
    dev.blocks.(block) <- Bytes.unsafe_to_string by
  end

(* Canonicalise a vectored write: one pair per index ("later pairs win"),
   in ascending index order.  Deduplication happens BEFORE any charging or
   run-merging so the cost accounting matches the documented model — a
   request naming the same block twice seeks and transfers it once. *)
let dedup_writes writes =
  let last = Hashtbl.create 16 in
  List.iter (fun (i, data) -> Hashtbl.replace last i data) writes;
  let sorted = sorted_unique (List.map fst writes) in
  List.map (fun i -> (i, Hashtbl.find last i)) sorted

(* Persist a deduplicated, checked vectored write and run its fault-plan
   dispatch.  This is the byte-and-fault half of [write_vec]; the async
   submission path calls it at submit time so on-device state, write-op
   ordinals and crash images never depend on when completions settle. *)
let persist_vec dev sorted writes =
  let first = List.hd sorted in
  match note_write_op dev with
  | None ->
      List.iter (fun (i, data) -> store dev i data) writes;
      maybe_capture_crash dev
  | Some (Fault_plan.Fail_write { transient }) ->
      if not transient then Hashtbl.replace dev.faults first ();
      maybe_capture_crash dev;
      raise (Faulted first)
  | Some (Fault_plan.Torn_write { keep_runs }) ->
      let rs =
        if dev.cfg.vectored then runs sorted
        else List.map (fun i -> (i, 1)) sorted
      in
      let kept = List.filteri (fun k _ -> k < keep_runs) rs in
      let in_kept i =
        List.exists (fun (s, l) -> i >= s && i < s + l) kept
      in
      List.iter (fun (i, data) -> if in_kept i then store dev i data) writes;
      maybe_capture_crash dev;
      let bad =
        match List.filteri (fun k _ -> k >= keep_runs) rs with
        | (s, _) :: _ -> s
        | [] -> first
      in
      raise (Faulted bad)
  | Some (Fault_plan.Bit_flip { block; byte; bit }) ->
      List.iter (fun (i, data) -> store dev i data) writes;
      flip_bit_raw dev ~block ~byte ~bit;
      maybe_capture_crash dev

(* [write_vec dev writes] stores every [(index, data)] pair in one
   request: one [write_latency] seek per contiguous run.  Later pairs win
   on duplicate indices, resolved before cost accounting: seeks and bytes
   are charged over the deduplicated index set only. *)
let write_vec dev writes =
  match dedup_writes writes with
  | [] -> ()
  | writes ->
      let sorted = List.map fst writes in
      List.iter (check dev) sorted;
      charge_vec dev dev.cfg.write_latency sorted;
      Stats.Counter.incr dev.counters "vec_writes";
      Stats.Counter.incr dev.counters ~by:(List.length sorted) "writes";
      Stats.Counter.incr dev.counters
        ~by:(dev.cfg.block_size * List.length sorted)
        "bytes_written";
      persist_vec dev sorted writes

let write dev i data =
  check dev i;
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  charge dev dev.cfg.write_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "writes";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_written";
  match note_write_op dev with
  | None ->
      store dev i data;
      maybe_capture_crash dev
  | Some (Fault_plan.Fail_write { transient }) ->
      if not transient then Hashtbl.replace dev.faults i ();
      maybe_capture_crash dev;
      raise (Faulted i)
  | Some (Fault_plan.Torn_write { keep_runs }) ->
      (* a scalar write is one run: keep_runs >= 1 persists it but the
         acknowledgement is lost; keep_runs = 0 persists nothing *)
      if keep_runs >= 1 then store dev i data;
      maybe_capture_crash dev;
      raise (Faulted i)
  | Some (Fault_plan.Bit_flip { block; byte; bit }) ->
      store dev i data;
      flip_bit_raw dev ~block ~byte ~bit;
      maybe_capture_crash dev

(* ---------- asynchronous submission / completion ----------

   io_uring-style queue pairs on the simulated clock.  A submission moves
   bytes (and runs the whole write-path fault machinery) immediately —
   on-device state, outcomes and counters can never depend on settlement
   order — but its TIME is deferred: the request occupies one of the
   channel's [queue_depth] service slots, starting no earlier than the
   submission instant and no earlier than the slot frees up, and [await]
   advances the clock only to the request's completion instant.  Whatever
   compute the caller performed between submit and await therefore hides
   an equal amount of device time, tallied in [overlap_ns_hidden].

   With [cfg.async = false] a submission degrades to the synchronous
   vectored call (identical clock charge, identical counters) and [await]
   is a no-op, so the same consumer code A/Bs the two models on one
   build. *)

let async_enabled dev = dev.cfg.async

let settled_ticket payload =
  { tk_service = 0; tk_completion = 0; tk_payload = payload; tk_settled = true }

let note_highwater dev =
  let cur = Stats.Counter.get dev.counters "queue_depth_highwater" in
  if dev.outstanding > cur then
    Stats.Counter.incr dev.counters ~by:(dev.outstanding - cur)
      "queue_depth_highwater"

let channel_slots dev ch =
  match Hashtbl.find_opt dev.channels ch with
  | Some s -> s
  | None ->
      let s = Array.make (max 1 dev.cfg.queue_depth) 0 in
      Hashtbl.add dev.channels ch s;
      s

(* Reserve the earliest-free slot of [channel] for a request of [service]
   ns and return its absolute completion time. *)
let enqueue dev ~channel service =
  let slots = channel_slots dev channel in
  let best = ref 0 in
  for i = 1 to Array.length slots - 1 do
    if slots.(i) < slots.(!best) then best := i
  done;
  let start = max (Clock.now dev.clock) slots.(!best) in
  let completion = start + service in
  slots.(!best) <- completion;
  completion

let track dev tk =
  dev.pending_tk <- tk :: dev.pending_tk;
  dev.outstanding <- dev.outstanding + 1;
  note_highwater dev;
  tk

let account_read dev sorted nruns =
  Stats.Counter.incr dev.counters ~by:nruns "merged_runs";
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read"

(* Shared by the real and charge-only read submissions: [move] controls
   whether payload bytes are captured, nothing else.  Cache hits submitted
   through the charge-only variant therefore queue, cost and settle
   exactly like cold reads — the warm==cold rule under the async model. *)
let submit_read_common dev ~channel ~move indices =
  let sorted = sorted_unique indices in
  match sorted with
  | [] -> settled_ticket []
  | _ ->
      List.iter (check dev) sorted;
      let service, nruns = vec_cost dev dev.cfg.read_latency sorted in
      let payload =
        if move then List.map (fun i -> (i, block_contents dev i)) sorted
        else []
      in
      Stats.Counter.incr dev.counters "async_submits";
      Stats.Counter.incr dev.counters ~by:service "async_service_ns";
      if not dev.cfg.async then begin
        (* synchronous degradation: exactly [read_vec]/[charge_read_vec] *)
        Clock.advance dev.clock service;
        Stats.Counter.incr dev.counters ~by:nruns "merged_runs";
        Stats.Counter.incr dev.counters "vec_reads";
        Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
        Stats.Counter.incr dev.counters
          ~by:(dev.cfg.block_size * List.length sorted)
          "bytes_read";
        Stats.Counter.incr dev.counters "async_completions";
        settled_ticket payload
      end
      else begin
        account_read dev sorted nruns;
        let completion = enqueue dev ~channel service in
        track dev
          {
            tk_service = service;
            tk_completion = completion;
            tk_payload = payload;
            tk_settled = false;
          }
      end

let submit_read_vec dev ?(channel = 0) indices =
  submit_read_common dev ~channel ~move:true indices

let submit_charge_read_vec dev ?(channel = 0) indices =
  submit_read_common dev ~channel ~move:false indices

(* Async vectored write: dedup/check/counters/persistence (including the
   fault plan and crash capture) all happen here at submission, in the
   same order as [write_vec]; only the clock settlement is deferred.  The
   channel slot is reserved BEFORE the fault dispatch so a faulted op
   still consumes its service time (as the synchronous path charges
   before raising) — the un-returned ticket settles at the next
   [drain]. *)
let submit_write_vec dev ?(channel = 0) writes =
  match dedup_writes writes with
  | [] -> settled_ticket []
  | writes ->
      let sorted = List.map fst writes in
      List.iter (check dev) sorted;
      let service, nruns = vec_cost dev dev.cfg.write_latency sorted in
      Stats.Counter.incr dev.counters "async_submits";
      Stats.Counter.incr dev.counters ~by:service "async_service_ns";
      if not dev.cfg.async then begin
        Clock.advance dev.clock service;
        Stats.Counter.incr dev.counters ~by:nruns "merged_runs";
        Stats.Counter.incr dev.counters "vec_writes";
        Stats.Counter.incr dev.counters ~by:(List.length sorted) "writes";
        Stats.Counter.incr dev.counters
          ~by:(dev.cfg.block_size * List.length sorted)
          "bytes_written";
        Stats.Counter.incr dev.counters "async_completions";
        persist_vec dev sorted writes;
        settled_ticket []
      end
      else begin
        Stats.Counter.incr dev.counters ~by:nruns "merged_runs";
        Stats.Counter.incr dev.counters "vec_writes";
        Stats.Counter.incr dev.counters ~by:(List.length sorted) "writes";
        Stats.Counter.incr dev.counters
          ~by:(dev.cfg.block_size * List.length sorted)
          "bytes_written";
        let completion = enqueue dev ~channel service in
        let tk =
          track dev
            {
              tk_service = service;
              tk_completion = completion;
              tk_payload = [];
              tk_settled = false;
            }
        in
        persist_vec dev sorted writes;
        tk
      end

(* Settle a completion: advance the clock to the request's completion
   instant (zero if the caller's compute already passed it) and account
   the hidden service time.  Idempotent — a settled ticket just returns
   its payload again. *)
let await dev tk =
  if not tk.tk_settled then begin
    tk.tk_settled <- true;
    dev.outstanding <- dev.outstanding - 1;
    dev.pending_tk <- List.filter (fun t -> not t.tk_settled) dev.pending_tk;
    let now = Clock.now dev.clock in
    let adv = if tk.tk_completion > now then tk.tk_completion - now else 0 in
    if adv > 0 then Clock.advance dev.clock adv;
    Stats.Counter.incr dev.counters "async_completions";
    let hidden = tk.tk_service - adv in
    if hidden > 0 then
      Stats.Counter.incr dev.counters ~by:hidden "overlap_ns_hidden"
  end;
  tk.tk_payload

let outstanding dev = dev.outstanding

(* The durability barrier: settle every in-flight submission.  After
   [drain] the clock covers all device time ever submitted. *)
let drain dev =
  let tks = dev.pending_tk in
  List.iter (fun tk -> ignore (await dev tk)) tks

let trim dev i =
  check dev i;
  Stats.Counter.incr dev.counters "trims";
  if dev.blocks.(i) <> "" then dev.used <- dev.used - 1;
  dev.blocks.(i) <- ""

let inject_fault dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  Hashtbl.replace dev.faults i ()

let clear_fault dev i =
  Hashtbl.remove dev.faults i;
  Hashtbl.remove dev.transients i

let inject_transient_fault dev i ~count =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  if count <= 0 then invalid_arg "inject_transient_fault: count must be positive";
  Hashtbl.replace dev.transients i count

let set_fault_plan dev plan = dev.plan <- plan

let fault_plan dev = dev.plan

let crash_image dev = dev.crash_image

let clear_crash_image dev = dev.crash_image <- None

let unsafe_flip dev ~block ~byte ~bit =
  if block < 0 || block >= dev.cfg.block_count then raise (Out_of_range block);
  flip_bit_raw dev ~block ~byte ~bit

let is_written dev i = i >= 0 && i < dev.cfg.block_count && dev.blocks.(i) <> ""

let snapshot dev = Array.copy dev.blocks

let restore dev saved =
  if Array.length saved <> dev.cfg.block_count then
    invalid_arg "Block_device.restore: geometry mismatch";
  Array.blit saved 0 dev.blocks 0 (Array.length saved);
  dev.used <- Array.fold_left (fun n b -> if b = "" then n else n + 1) 0 saved

let stats dev = dev.counters

let reset_stats dev = Stats.Counter.reset dev.counters

(* Forensic search: find [needle] anywhere on the medium, including matches
   straddling a block boundary.  We search each block plus a
   (len needle - 1)-byte tail of overlap into the next block. *)
let scan dev needle =
  let nlen = String.length needle in
  if nlen = 0 then []
  else begin
    let bs = dev.cfg.block_size in
    let contents i =
      let b = dev.blocks.(i) in
      if b = "" then String.make bs '\000' else b
    in
    let hits = ref [] in
    for i = dev.cfg.block_count - 1 downto 0 do
      let hay =
        if i + 1 < dev.cfg.block_count && nlen > 1 then
          contents i ^ String.sub (contents (i + 1)) 0 (min (nlen - 1) bs)
        else contents i
      in
      let rec find_from pos =
        if pos + nlen > String.length hay then ()
        else
          match String.index_from_opt hay pos needle.[0] with
          | None -> ()
          | Some j when j + nlen > String.length hay -> ()
          | Some j ->
              if String.sub hay j nlen = needle && j < bs then
                hits := (i, j) :: !hits;
              find_from (j + 1)
      in
      find_from 0
    done;
    !hits
  end

let used_blocks dev = dev.used
