module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats

type config = {
  block_size : int;
  block_count : int;
  read_latency : Clock.ns;
  write_latency : Clock.ns;
  byte_latency : Clock.ns;
  vectored : bool;
}

let default_config =
  {
    block_size = 4096;
    block_count = 16_384;
    read_latency = 10_000 (* 10us *);
    write_latency = 20_000 (* 20us *);
    byte_latency = 2 (* ~0.5 GB/s *);
    vectored = true;
  }

type t = {
  cfg : config;
  clock : Clock.t;
  blocks : string array; (* "" means never written / trimmed *)
  faults : (int, unit) Hashtbl.t;
  counters : Stats.Counter.t;
  mutable used : int;
}

exception Out_of_range of int
exception Faulted of int

let create ?(config = default_config) ~clock () =
  if config.block_size <= 0 || config.block_count <= 0 then
    invalid_arg "Block_device.create: non-positive geometry";
  {
    cfg = config;
    clock;
    blocks = Array.make config.block_count "";
    faults = Hashtbl.create 4;
    counters = Stats.Counter.create ();
    used = 0;
  }

let config dev = dev.cfg

let clock dev = dev.clock

let check dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  if Hashtbl.mem dev.faults i then raise (Faulted i)

let charge dev base nbytes =
  Clock.advance dev.clock (base + (dev.cfg.byte_latency * nbytes))

let read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read";
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* Same simulated cost and accounting as [read], without moving the bytes:
   callers holding a decoded in-memory copy (the DBFS membrane cache) use
   this so the device-level cost model stays byte-identical. *)
let charge_read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read"

(* ---------- vectored IO ----------

   A vectored request names a set of blocks.  We sort the set (elevator
   order), merge contiguous indices into runs, and charge ONE fixed seek
   latency per run; the per-byte transfer cost is unchanged.  With
   [cfg.vectored = false] the device degrades to the scalar cost model
   (one seek per block) so before/after comparisons can run on the same
   build at the same scale. *)

(* Sorted, deduplicated copy of the requested indices. *)
let sorted_unique indices =
  let a = Array.of_list indices in
  Array.sort compare a;
  let n = Array.length a in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if i = n - 1 || a.(i) <> a.(i + 1) then out := a.(i) :: !out
  done;
  !out

(* [runs] splits a sorted unique index list into maximal contiguous runs,
   returned as (start, length) pairs in ascending order. *)
let runs sorted =
  let rec go acc start len = function
    | [] -> List.rev ((start, len) :: acc)
    | i :: rest when i = start + len -> go acc start (len + 1) rest
    | i :: rest -> go ((start, len) :: acc) i 1 rest
  in
  match sorted with [] -> [] | i :: rest -> go [] i 1 rest

(* Charge seeks + transfer for a vectored access of [sorted] blocks and
   bump the shared counters.  [base] is the fixed per-seek latency. *)
let charge_vec dev base sorted =
  match sorted with
  | [] -> ()
  | _ ->
      let nblocks = List.length sorted in
      let rs = if dev.cfg.vectored then runs sorted else
          List.map (fun i -> (i, 1)) sorted
      in
      let nruns = List.length rs in
      charge dev (base * nruns) (dev.cfg.block_size * nblocks);
      Stats.Counter.incr dev.counters ~by:nruns "merged_runs"

let block_contents dev i =
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* [read_vec dev indices] reads all the named blocks in one request and
   returns an association list [(index, contents)] covering every
   requested index (duplicates collapsed).  Cost: one [read_latency] seek
   per contiguous run plus the usual per-byte charge. *)
let read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read";
  List.map (fun i -> (i, block_contents dev i)) sorted

(* Cost-and-accounting-only variant of [read_vec], for callers that hold
   decoded copies (read caches): identical clock charge and counters, no
   byte movement.  This keeps cache hits cost-transparent under the
   vectored model, exactly as [charge_read] does for scalar reads. *)
let charge_read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read"

let store dev i data =
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  if dev.blocks.(i) = "" then dev.used <- dev.used + 1;
  dev.blocks.(i) <-
    (if len = dev.cfg.block_size then data
     else data ^ String.make (dev.cfg.block_size - len) '\000')

(* [write_vec dev writes] stores every [(index, data)] pair in one
   request: one [write_latency] seek per contiguous run.  Later pairs win
   on duplicate indices.  Seek accounting uses the deduplicated index
   set; bytes are charged per block written. *)
let write_vec dev writes =
  let sorted = sorted_unique (List.map fst writes) in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.write_latency sorted;
  Stats.Counter.incr dev.counters "vec_writes";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "writes";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_written";
  List.iter (fun (i, data) -> store dev i data) writes

let write dev i data =
  check dev i;
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  charge dev dev.cfg.write_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "writes";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_written";
  if dev.blocks.(i) = "" then dev.used <- dev.used + 1;
  dev.blocks.(i) <-
    (if len = dev.cfg.block_size then data
     else data ^ String.make (dev.cfg.block_size - len) '\000')

let trim dev i =
  check dev i;
  Stats.Counter.incr dev.counters "trims";
  if dev.blocks.(i) <> "" then dev.used <- dev.used - 1;
  dev.blocks.(i) <- ""

let inject_fault dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  Hashtbl.replace dev.faults i ()

let clear_fault dev i = Hashtbl.remove dev.faults i

let snapshot dev = Array.copy dev.blocks

let restore dev saved =
  if Array.length saved <> dev.cfg.block_count then
    invalid_arg "Block_device.restore: geometry mismatch";
  Array.blit saved 0 dev.blocks 0 (Array.length saved);
  dev.used <- Array.fold_left (fun n b -> if b = "" then n else n + 1) 0 saved

let stats dev = dev.counters

let reset_stats dev = Stats.Counter.reset dev.counters

(* Forensic search: find [needle] anywhere on the medium, including matches
   straddling a block boundary.  We search each block plus a
   (len needle - 1)-byte tail of overlap into the next block. *)
let scan dev needle =
  let nlen = String.length needle in
  if nlen = 0 then []
  else begin
    let bs = dev.cfg.block_size in
    let contents i =
      let b = dev.blocks.(i) in
      if b = "" then String.make bs '\000' else b
    in
    let hits = ref [] in
    for i = dev.cfg.block_count - 1 downto 0 do
      let hay =
        if i + 1 < dev.cfg.block_count && nlen > 1 then
          contents i ^ String.sub (contents (i + 1)) 0 (min (nlen - 1) bs)
        else contents i
      in
      let rec find_from pos =
        if pos + nlen > String.length hay then ()
        else
          match String.index_from_opt hay pos needle.[0] with
          | None -> ()
          | Some j when j + nlen > String.length hay -> ()
          | Some j ->
              if String.sub hay j nlen = needle && j < bs then
                hits := (i, j) :: !hits;
              find_from (j + 1)
      in
      find_from 0
    done;
    !hits
  end

let used_blocks dev = dev.used
