module Clock = Rgpdos_util.Clock
module Stats = Rgpdos_util.Stats
module Prng = Rgpdos_util.Prng

type config = {
  block_size : int;
  block_count : int;
  read_latency : Clock.ns;
  write_latency : Clock.ns;
  byte_latency : Clock.ns;
  vectored : bool;
}

let default_config =
  {
    block_size = 4096;
    block_count = 16_384;
    read_latency = 10_000 (* 10us *);
    write_latency = 20_000 (* 20us *);
    byte_latency = 2 (* ~0.5 GB/s *);
    vectored = true;
  }

(* ---------- fault plan ----------

   A fault plan is a deterministic schedule keyed on the device's write-op
   ordinal (scalar [write] and vectored [write_vec] each count as one op,
   numbered from 1 as of plan installation).  Campaign harnesses install a
   plan, run a scripted workload, and every write becomes an enumerable
   fault/crash point; the same seed and workload replay the exact same
   schedule. *)

module Fault_plan = struct
  type action =
    | Fail_write of { transient : bool }
        (** the op charges the device but persists nothing and raises
            [Faulted]; [transient = false] additionally marks the first
            target block permanently bad *)
    | Torn_write of { keep_runs : int }
        (** a vectored write persists only its first [keep_runs] contiguous
            runs before raising [Faulted] (a scalar write is one run) *)
    | Bit_flip of { block : int; byte : int; bit : int }
        (** the op succeeds normally, then one bit of the named block is
            silently flipped (medium bit rot) *)

  type t = {
    mutable entries : (int * action) list;  (* (nth write op, action) *)
    mutable crash_after : int option;
    mutable seen : int;  (* write ops observed since installation *)
  }

  let create () = { entries = []; crash_after = None; seen = 0 }

  let on_write plan ~nth action =
    if nth <= 0 then invalid_arg "Fault_plan.on_write: nth must be positive";
    plan.entries <- (nth, action) :: plan.entries

  let crash_after_writes plan n =
    if n <= 0 then invalid_arg "Fault_plan.crash_after_writes: n must be positive";
    plan.crash_after <- Some n

  let writes_seen plan = plan.seen

  let action_for plan nth =
    match List.assoc_opt nth plan.entries with
    | Some _ as a ->
        (* one-shot: an op's scheduled fault fires once *)
        plan.entries <- List.filter (fun (k, _) -> k <> nth) plan.entries;
        a
    | None -> None

  (* Draw [faults] scheduled faults over the first [writes] write ops from a
     seeded PRNG.  Same seed => same schedule, the campaign determinism
     rule. *)
  let random ~prng ~writes ~faults ~block_count () =
    if writes <= 0 then invalid_arg "Fault_plan.random: writes must be positive";
    let plan = create () in
    for _ = 1 to faults do
      let nth = Prng.int_in prng 1 writes in
      let action =
        match Prng.int prng 3 with
        | 0 -> Fail_write { transient = Prng.bool prng }
        | 1 -> Torn_write { keep_runs = Prng.int prng 3 }
        | _ ->
            Bit_flip
              {
                block = Prng.int prng block_count;
                byte = Prng.int prng 64;
                bit = Prng.int prng 8;
              }
      in
      on_write plan ~nth action
    done;
    plan
end

type t = {
  cfg : config;
  clock : Clock.t;
  blocks : string array; (* "" means never written / trimmed *)
  faults : (int, unit) Hashtbl.t;
  transients : (int, int) Hashtbl.t; (* block -> remaining transient failures *)
  counters : Stats.Counter.t;
  mutable used : int;
  mutable plan : Fault_plan.t option;
  mutable crash_image : string array option;
}

exception Out_of_range of int
exception Faulted of int

let create ?(config = default_config) ~clock () =
  if config.block_size <= 0 || config.block_count <= 0 then
    invalid_arg "Block_device.create: non-positive geometry";
  {
    cfg = config;
    clock;
    blocks = Array.make config.block_count "";
    faults = Hashtbl.create 4;
    transients = Hashtbl.create 4;
    counters = Stats.Counter.create ();
    used = 0;
    plan = None;
    crash_image = None;
  }

let config dev = dev.cfg

let clock dev = dev.clock

let check dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  (match Hashtbl.find_opt dev.transients i with
  | Some n ->
      if n <= 1 then Hashtbl.remove dev.transients i
      else Hashtbl.replace dev.transients i (n - 1);
      raise (Faulted i)
  | None -> ());
  if Hashtbl.mem dev.faults i then raise (Faulted i)

let charge dev base nbytes =
  Clock.advance dev.clock (base + (dev.cfg.byte_latency * nbytes))

let read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read";
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* Same simulated cost and accounting as [read], without moving the bytes:
   callers holding a decoded in-memory copy (the DBFS membrane cache) use
   this so the device-level cost model stays byte-identical. *)
let charge_read dev i =
  check dev i;
  charge dev dev.cfg.read_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "reads";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_read"

(* ---------- vectored IO ----------

   A vectored request names a set of blocks.  We sort the set (elevator
   order), merge contiguous indices into runs, and charge ONE fixed seek
   latency per run; the per-byte transfer cost is unchanged.  With
   [cfg.vectored = false] the device degrades to the scalar cost model
   (one seek per block) so before/after comparisons can run on the same
   build at the same scale. *)

(* Sorted, deduplicated copy of the requested indices. *)
let sorted_unique indices =
  let a = Array.of_list indices in
  Array.sort compare a;
  let n = Array.length a in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if i = n - 1 || a.(i) <> a.(i + 1) then out := a.(i) :: !out
  done;
  !out

(* [runs] splits a sorted unique index list into maximal contiguous runs,
   returned as (start, length) pairs in ascending order. *)
let runs sorted =
  let rec go acc start len = function
    | [] -> List.rev ((start, len) :: acc)
    | i :: rest when i = start + len -> go acc start (len + 1) rest
    | i :: rest -> go ((start, len) :: acc) i 1 rest
  in
  match sorted with [] -> [] | i :: rest -> go [] i 1 rest

(* Charge seeks + transfer for a vectored access of [sorted] blocks and
   bump the shared counters.  [base] is the fixed per-seek latency. *)
let charge_vec dev base sorted =
  match sorted with
  | [] -> ()
  | _ ->
      let nblocks = List.length sorted in
      let rs = if dev.cfg.vectored then runs sorted else
          List.map (fun i -> (i, 1)) sorted
      in
      let nruns = List.length rs in
      charge dev (base * nruns) (dev.cfg.block_size * nblocks);
      Stats.Counter.incr dev.counters ~by:nruns "merged_runs"

let block_contents dev i =
  let b = dev.blocks.(i) in
  if b = "" then String.make dev.cfg.block_size '\000' else b

(* [read_vec dev indices] reads all the named blocks in one request and
   returns an association list [(index, contents)] covering every
   requested index (duplicates collapsed).  Cost: one [read_latency] seek
   per contiguous run plus the usual per-byte charge. *)
let read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read";
  List.map (fun i -> (i, block_contents dev i)) sorted

(* Cost-and-accounting-only variant of [read_vec], for callers that hold
   decoded copies (read caches): identical clock charge and counters, no
   byte movement.  This keeps cache hits cost-transparent under the
   vectored model, exactly as [charge_read] does for scalar reads. *)
let charge_read_vec dev indices =
  let sorted = sorted_unique indices in
  List.iter (check dev) sorted;
  charge_vec dev dev.cfg.read_latency sorted;
  Stats.Counter.incr dev.counters "vec_reads";
  Stats.Counter.incr dev.counters ~by:(List.length sorted) "reads";
  Stats.Counter.incr dev.counters
    ~by:(dev.cfg.block_size * List.length sorted)
    "bytes_read"

let store dev i data =
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  if dev.blocks.(i) = "" then dev.used <- dev.used + 1;
  dev.blocks.(i) <-
    (if len = dev.cfg.block_size then data
     else data ^ String.make (dev.cfg.block_size - len) '\000')

(* ---------- write-path fault machinery ---------- *)

(* Count this write op against the installed plan (if any) and return the
   fault action scheduled for it. *)
let note_write_op dev =
  Stats.Counter.incr dev.counters "write_ops";
  match dev.plan with
  | None -> None
  | Some p ->
      p.Fault_plan.seen <- p.Fault_plan.seen + 1;
      Fault_plan.action_for p p.Fault_plan.seen

(* After a write op's persistence (including a torn prefix), capture the
   device image if this op is the plan's crash point.  The image is exactly
   "power lost after write op n": everything the op persisted, nothing the
   caller did afterwards. *)
let maybe_capture_crash dev =
  match dev.plan with
  | Some { Fault_plan.crash_after = Some n; seen; _ }
    when seen = n && dev.crash_image = None ->
      dev.crash_image <- Some (Array.copy dev.blocks)
  | _ -> ()

(* Silent medium corruption: flip one bit in place, without charging the
   clock or touching counters (the device does not know its bits rotted). *)
let flip_bit_raw dev ~block ~byte ~bit =
  if block >= 0 && block < dev.cfg.block_count && byte >= 0
     && byte < dev.cfg.block_size
  then begin
    let b = dev.blocks.(block) in
    let b = if b = "" then String.make dev.cfg.block_size '\000' else b in
    let by = Bytes.of_string b in
    let c = Char.code (Bytes.get by byte) in
    Bytes.set by byte (Char.chr (c lxor (1 lsl (bit land 7))));
    if dev.blocks.(block) = "" then dev.used <- dev.used + 1;
    dev.blocks.(block) <- Bytes.unsafe_to_string by
  end

(* Canonicalise a vectored write: one pair per index ("later pairs win"),
   in ascending index order.  Deduplication happens BEFORE any charging or
   run-merging so the cost accounting matches the documented model — a
   request naming the same block twice seeks and transfers it once. *)
let dedup_writes writes =
  let last = Hashtbl.create 16 in
  List.iter (fun (i, data) -> Hashtbl.replace last i data) writes;
  let sorted = sorted_unique (List.map fst writes) in
  List.map (fun i -> (i, Hashtbl.find last i)) sorted

(* [write_vec dev writes] stores every [(index, data)] pair in one
   request: one [write_latency] seek per contiguous run.  Later pairs win
   on duplicate indices, resolved before cost accounting: seeks and bytes
   are charged over the deduplicated index set only. *)
let write_vec dev writes =
  match dedup_writes writes with
  | [] -> ()
  | writes ->
      let sorted = List.map fst writes in
      List.iter (check dev) sorted;
      charge_vec dev dev.cfg.write_latency sorted;
      Stats.Counter.incr dev.counters "vec_writes";
      Stats.Counter.incr dev.counters ~by:(List.length sorted) "writes";
      Stats.Counter.incr dev.counters
        ~by:(dev.cfg.block_size * List.length sorted)
        "bytes_written";
      let first = List.hd sorted in
      (match note_write_op dev with
      | None ->
          List.iter (fun (i, data) -> store dev i data) writes;
          maybe_capture_crash dev
      | Some (Fault_plan.Fail_write { transient }) ->
          if not transient then Hashtbl.replace dev.faults first ();
          maybe_capture_crash dev;
          raise (Faulted first)
      | Some (Fault_plan.Torn_write { keep_runs }) ->
          let rs =
            if dev.cfg.vectored then runs sorted
            else List.map (fun i -> (i, 1)) sorted
          in
          let kept = List.filteri (fun k _ -> k < keep_runs) rs in
          let in_kept i =
            List.exists (fun (s, l) -> i >= s && i < s + l) kept
          in
          List.iter (fun (i, data) -> if in_kept i then store dev i data) writes;
          maybe_capture_crash dev;
          let bad =
            match List.filteri (fun k _ -> k >= keep_runs) rs with
            | (s, _) :: _ -> s
            | [] -> first
          in
          raise (Faulted bad)
      | Some (Fault_plan.Bit_flip { block; byte; bit }) ->
          List.iter (fun (i, data) -> store dev i data) writes;
          flip_bit_raw dev ~block ~byte ~bit;
          maybe_capture_crash dev)

let write dev i data =
  check dev i;
  let len = String.length data in
  if len > dev.cfg.block_size then
    invalid_arg "Block_device.write: data larger than block";
  charge dev dev.cfg.write_latency dev.cfg.block_size;
  Stats.Counter.incr dev.counters "writes";
  Stats.Counter.incr dev.counters ~by:dev.cfg.block_size "bytes_written";
  match note_write_op dev with
  | None ->
      store dev i data;
      maybe_capture_crash dev
  | Some (Fault_plan.Fail_write { transient }) ->
      if not transient then Hashtbl.replace dev.faults i ();
      maybe_capture_crash dev;
      raise (Faulted i)
  | Some (Fault_plan.Torn_write { keep_runs }) ->
      (* a scalar write is one run: keep_runs >= 1 persists it but the
         acknowledgement is lost; keep_runs = 0 persists nothing *)
      if keep_runs >= 1 then store dev i data;
      maybe_capture_crash dev;
      raise (Faulted i)
  | Some (Fault_plan.Bit_flip { block; byte; bit }) ->
      store dev i data;
      flip_bit_raw dev ~block ~byte ~bit;
      maybe_capture_crash dev

let trim dev i =
  check dev i;
  Stats.Counter.incr dev.counters "trims";
  if dev.blocks.(i) <> "" then dev.used <- dev.used - 1;
  dev.blocks.(i) <- ""

let inject_fault dev i =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  Hashtbl.replace dev.faults i ()

let clear_fault dev i =
  Hashtbl.remove dev.faults i;
  Hashtbl.remove dev.transients i

let inject_transient_fault dev i ~count =
  if i < 0 || i >= dev.cfg.block_count then raise (Out_of_range i);
  if count <= 0 then invalid_arg "inject_transient_fault: count must be positive";
  Hashtbl.replace dev.transients i count

let set_fault_plan dev plan = dev.plan <- plan

let fault_plan dev = dev.plan

let crash_image dev = dev.crash_image

let clear_crash_image dev = dev.crash_image <- None

let unsafe_flip dev ~block ~byte ~bit =
  if block < 0 || block >= dev.cfg.block_count then raise (Out_of_range block);
  flip_bit_raw dev ~block ~byte ~bit

let is_written dev i = i >= 0 && i < dev.cfg.block_count && dev.blocks.(i) <> ""

let snapshot dev = Array.copy dev.blocks

let restore dev saved =
  if Array.length saved <> dev.cfg.block_count then
    invalid_arg "Block_device.restore: geometry mismatch";
  Array.blit saved 0 dev.blocks 0 (Array.length saved);
  dev.used <- Array.fold_left (fun n b -> if b = "" then n else n + 1) 0 saved

let stats dev = dev.counters

let reset_stats dev = Stats.Counter.reset dev.counters

(* Forensic search: find [needle] anywhere on the medium, including matches
   straddling a block boundary.  We search each block plus a
   (len needle - 1)-byte tail of overlap into the next block. *)
let scan dev needle =
  let nlen = String.length needle in
  if nlen = 0 then []
  else begin
    let bs = dev.cfg.block_size in
    let contents i =
      let b = dev.blocks.(i) in
      if b = "" then String.make bs '\000' else b
    in
    let hits = ref [] in
    for i = dev.cfg.block_count - 1 downto 0 do
      let hay =
        if i + 1 < dev.cfg.block_count && nlen > 1 then
          contents i ^ String.sub (contents (i + 1)) 0 (min (nlen - 1) bs)
        else contents i
      in
      let rec find_from pos =
        if pos + nlen > String.length hay then ()
        else
          match String.index_from_opt hay pos needle.[0] with
          | None -> ()
          | Some j when j + nlen > String.length hay -> ()
          | Some j ->
              if String.sub hay j nlen = needle && j < bs then
                hits := (i, j) :: !hits;
              find_from (j + 1)
      in
      find_from 0
    done;
    !hits
  end

let used_blocks dev = dev.used
