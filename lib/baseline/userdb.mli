(** The Fig-2 baseline: GDPR retrofitted at the DB-engine level, in
    userspace, over a conventional journaling filesystem.

    This reproduces the architecture of the prior work the paper contrasts
    itself with (Shastri et al., Schwarzkopf et al.): the DB engine keeps
    per-row GDPR metadata (allowed purposes, expiry, owner) and filters at
    query time — but it runs {i above} a general-purpose OS, so:

    - rows travel through the filesystem's data journal, where they
      survive deletion (the §1 right-to-be-forgotten hazard, experiment
      E3);
    - nothing stops another process (or a buggy function in the same
      process, see {!Process_model}) from bypassing the engine and reading
      the DB files directly;
    - in [`Vanilla] mode the same engine with the GDPR layer switched off
      gives the no-compliance performance bound for experiment E2.

    Rows are stored one file per row ([/db/<table>/<row-id>]) so deletes
    map to file deletes, as in the embedded-KV designs GDPRBench
    studied. *)

type mode = Vanilla | Gdpr

type row = {
  subject : string;
  fields : (string * string) list;
  allowed_purposes : string list;  (** ignored in [Vanilla] mode *)
  expires_at : Rgpdos_util.Clock.ns option;
}

type t

type error = Db_error of string

val error_to_string : error -> string

val create : Rgpdos_journalfs.Journalfs.t -> mode:mode -> (t, error) result
(** Initialise the engine's directory tree on the filesystem. *)

val mode : t -> mode

val create_table : t -> string -> (unit, error) result

val insert : t -> table:string -> row -> (int, error) result
(** Returns the new row id. *)

val get : t -> table:string -> int -> (row option, error) result

val update : t -> table:string -> int -> row -> (unit, error) result

val delete : ?secure:bool -> t -> table:string -> int -> (unit, error) result
(** [secure] asks the FS to zero data blocks — the best a userspace engine
    can do; the journal remains beyond its reach. *)

val query_purpose :
  t -> table:string -> purpose:string -> now:Rgpdos_util.Clock.ns ->
  ((int * row) list, error) result
(** In [Gdpr] mode: rows whose metadata allows the purpose and which have
    not expired.  In [Vanilla] mode: every row (no enforcement). *)

val rows_of_subject :
  t -> table:string -> string -> ((int * row) list, error) result

val delete_subject :
  ?secure:bool -> t -> table:string -> string -> (int, error) result
(** The baseline's "right to be forgotten": delete every row of the
    subject.  Returns how many rows were deleted.  The journal retains
    their bytes regardless. *)

val export_subject : t -> table:string -> string -> (string, error) result
(** The baseline's art. 15/20 export.  Key-value pairs are emitted
    {i positionally} ([{"Chiraz": "Benamor"}]-style, per the paper's §4
    critique) — structured but with meaningless keys. *)

val expire_rows :
  ?secure:bool -> t -> table:string -> now:Rgpdos_util.Clock.ns ->
  (int, error) result
(** Storage-limitation pass in userspace: delete expired rows. *)

val row_count : t -> table:string -> (int, error) result

val fs : t -> Rgpdos_journalfs.Journalfs.t
