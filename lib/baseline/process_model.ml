type slot = { mutable occupant : (string * string) option (* owner, data *) }

type heap = {
  slots : slot array;
  mutable free_list : int list;
  mutable leaks : int;
}

type ptr = { slot_idx : int; believed_owner : string }

let create ~slots =
  {
    slots = Array.init slots (fun _ -> { occupant = None });
    free_list = List.init slots Fun.id;
    leaks = 0;
  }

let alloc heap ~owner ~data =
  match heap.free_list with
  | [] -> failwith "Process_model.alloc: out of memory"
  | idx :: rest ->
      heap.free_list <- rest;
      heap.slots.(idx).occupant <- Some (owner, data);
      { slot_idx = idx; believed_owner = owner }

let free heap ptr =
  match heap.slots.(ptr.slot_idx).occupant with
  | None -> ()
  | Some _ ->
      heap.slots.(ptr.slot_idx).occupant <- None;
      heap.free_list <- ptr.slot_idx :: heap.free_list

let read heap ptr =
  match heap.slots.(ptr.slot_idx).occupant with
  | None -> None
  | Some (owner, data) ->
      if owner <> ptr.believed_owner then heap.leaks <- heap.leaks + 1;
      Some (owner, data)

let owner_of ptr = ptr.believed_owner

let cross_owner_reads heap = heap.leaks

let live_slots heap =
  Array.fold_left
    (fun acc s -> match s.occupant with Some _ -> acc + 1 | None -> acc)
    0 heap.slots
