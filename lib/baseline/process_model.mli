(** The process-centric memory model of Fig. 2, and its failure mode.

    In a conventional OS the process "brings data to its domain": every
    function of the application shares one address space, so a function
    that should not see some PD can still reach it — the paper's example
    is a use-after-free where f2 accidentally reads pd2.  This module is a
    miniature allocator that reproduces exactly that: freeing returns the
    slot to a free list, a later allocation reuses it, and a stale pointer
    dereference observes the {i new} owner's data.  Experiment E7 counts
    these cross-purpose leaks and contrasts them with rgpdOS, whose DED
    hands each processing only its own consented inputs. *)

type heap

type ptr

val create : slots:int -> heap

val alloc : heap -> owner:string -> data:string -> ptr
(** @raise Failure when the heap is full. *)

val free : heap -> ptr -> unit
(** Idempotent; the slot becomes reusable immediately (no quarantine —
    that is the bug class MineSweeper-style defences patch). *)

val read : heap -> ptr -> (string * string) option
(** Dereference, valid or not: returns [(current_owner, data)] of whatever
    occupies the slot now, or [None] if the slot is unallocated.  No
    generation check — this is the unsafe semantics of a raw pointer. *)

val owner_of : ptr -> string
(** Who allocated through this pointer (the {i believed} owner). *)

val cross_owner_reads : heap -> int
(** How many [read]s observed data belonging to a different owner than
    the pointer's — the leak counter. *)

val live_slots : heap -> int
