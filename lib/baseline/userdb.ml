module Jfs = Rgpdos_journalfs.Journalfs
module Codec = Rgpdos_util.Codec
module Clock = Rgpdos_util.Clock

open Rgpdos_util.Codec

type mode = Vanilla | Gdpr

type row = {
  subject : string;
  fields : (string * string) list;
  allowed_purposes : string list;
  expires_at : Clock.ns option;
}

type table_state = { mutable next_id : int; mutable ids : int list (* desc *) }

type t = {
  fs : Jfs.t;
  mode : mode;
  tables : (string, table_state) Hashtbl.t;
}

type error = Db_error of string

let error_to_string (Db_error m) = m

let db_err fmt = Format.kasprintf (fun m -> Error (Db_error m)) fmt

let lift_fs = function
  | Ok v -> Ok v
  | Error e -> Error (Db_error (Jfs.error_to_string e))

let ( let** ) r f = match r with Error e -> Error e | Ok v -> f v

let root = "/db"

let create fs ~mode =
  let** () =
    match Jfs.mkdir fs root with
    | Ok () -> Ok ()
    | Error (Jfs.Already_exists _) -> Ok ()
    | Error e -> Error (Db_error (Jfs.error_to_string e))
  in
  Ok { fs; mode; tables = Hashtbl.create 8 }

let mode t = t.mode

let table_dir name = root ^ "/" ^ name

let row_path table id = Printf.sprintf "%s/%d" (table_dir table) id

let create_table t name =
  if Hashtbl.mem t.tables name then db_err "table %s exists" name
  else
    let** () = lift_fs (Jfs.mkdir t.fs (table_dir name)) in
    Hashtbl.replace t.tables name { next_id = 0; ids = [] };
    Ok ()

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some st -> Ok st
  | None -> db_err "unknown table %s" name

let encode_row row =
  let w = Codec.Writer.create () in
  Codec.Writer.string w row.subject;
  Codec.Writer.list w
    (fun (k, v) ->
      Codec.Writer.string w k;
      Codec.Writer.string w v)
    row.fields;
  Codec.Writer.list w (Codec.Writer.string w) row.allowed_purposes;
  (match row.expires_at with
  | None -> Codec.Writer.bool w false
  | Some e ->
      Codec.Writer.bool w true;
      Codec.Writer.int w e);
  Codec.Writer.contents w

let decode_row raw =
  let r = Codec.Reader.create raw in
  let* subject = Codec.Reader.string r in
  let* fields =
    Codec.Reader.list r (fun r ->
        let* k = Codec.Reader.string r in
        let* v = Codec.Reader.string r in
        Ok (k, v))
  in
  let* allowed_purposes = Codec.Reader.list r Codec.Reader.string in
  let* has_exp = Codec.Reader.bool r in
  let* expires_at =
    if has_exp then
      let* e = Codec.Reader.int r in
      Ok (Some e)
    else Ok None
  in
  Ok { subject; fields; allowed_purposes; expires_at }

let insert t ~table row =
  let** st = find_table t table in
  let id = st.next_id in
  let** () = lift_fs (Jfs.write_file t.fs (row_path table id) (encode_row row)) in
  st.next_id <- id + 1;
  st.ids <- id :: st.ids;
  Ok id

let get t ~table id =
  let** _ = find_table t table in
  match Jfs.read_file t.fs (row_path table id) with
  | Error (Jfs.Not_found _) -> Ok None
  | Error e -> Error (Db_error (Jfs.error_to_string e))
  | Ok raw -> (
      match decode_row raw with
      | Ok row -> Ok (Some row)
      | Error e -> db_err "corrupt row %s/%d: %s" table id e)

let update t ~table id row =
  let** _ = find_table t table in
  if not (Jfs.exists t.fs (row_path table id)) then
    db_err "row %s/%d not found" table id
  else lift_fs (Jfs.write_file t.fs (row_path table id) (encode_row row))

let delete ?(secure = false) t ~table id =
  let** st = find_table t table in
  let** () = lift_fs (Jfs.delete ~secure t.fs (row_path table id)) in
  st.ids <- List.filter (( <> ) id) st.ids;
  Ok ()

let iter_rows t ~table f =
  let** st = find_table t table in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest -> (
        match get t ~table id with
        | Error e -> Error e
        | Ok None -> go acc rest
        | Ok (Some row) -> (
            match f id row with
            | None -> go acc rest
            | Some v -> go (v :: acc) rest))
  in
  go [] (List.rev st.ids)

(* per-row cost of evaluating GDPR metadata in userspace; GDPRBench found
   this check to be a first-order overhead of DB-level compliance *)
let metadata_check_cost = 500

let row_visible t ~purpose ~now row =
  match t.mode with
  | Vanilla -> true (* no enforcement at all *)
  | Gdpr ->
      Clock.advance
        (Rgpdos_block.Block_device.clock (Jfs.device t.fs))
        metadata_check_cost;
      List.mem purpose row.allowed_purposes
      && (match row.expires_at with None -> true | Some e -> now < e)

let query_purpose t ~table ~purpose ~now =
  iter_rows t ~table (fun id row ->
      if row_visible t ~purpose ~now row then Some (id, row) else None)

let rows_of_subject t ~table subject =
  iter_rows t ~table (fun id row ->
      if row.subject = subject then Some (id, row) else None)

let delete_subject ?(secure = false) t ~table subject =
  let** victims = rows_of_subject t ~table subject in
  let rec go n = function
    | [] -> Ok n
    | (id, _) :: rest -> (
        match delete ~secure t ~table id with
        | Ok () -> go (n + 1) rest
        | Error e -> Error e)
  in
  go 0 victims

(* The paper's §4 critique in code: positional keys — structured and
   machine-readable in the letter, useless in spirit. *)
let export_subject t ~table subject =
  let** rows = rows_of_subject t ~table subject in
  let render (_, row) =
    let values = List.map snd row.fields in
    let rec pairs = function
      | a :: b :: rest -> Printf.sprintf "\"%s\": \"%s\"" a b :: pairs rest
      | [ a ] -> [ Printf.sprintf "\"%s\": \"\"" a ]
      | [] -> []
    in
    "{" ^ String.concat ", " (pairs values) ^ "}"
  in
  Ok ("[" ^ String.concat ", " (List.map render rows) ^ "]")

let expire_rows ?(secure = false) t ~table ~now =
  let** expired =
    iter_rows t ~table (fun id row ->
        match row.expires_at with
        | Some e when now >= e -> Some id
        | _ -> None)
  in
  let rec go n = function
    | [] -> Ok n
    | id :: rest -> (
        match delete ~secure t ~table id with
        | Ok () -> go (n + 1) rest
        | Error e -> Error e)
  in
  go 0 expired

let row_count t ~table =
  let** st = find_table t table in
  Ok (List.length st.ids)

let fs t = t.fs
