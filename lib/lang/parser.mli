(** Recursive-descent parser for the rgpdOS declaration languages.

    A source file is a sequence of [type] and [purpose] declarations, in
    the concrete syntax of the paper's Listing 1:

    {v
    type user {
      fields {
        name: string,
        pwd: string,
        year_of_birthdate: int
      };
      view v_name { name };
      view v_ano { year_of_birthdate };
      consent {
        purpose1: all,
        purpose2: none,
        purpose3: v_ano
      };
      collection {
        web_form: "user_form.html",
        third_party: "fetch_data.py"
      };
      origin: subject;
      age: 1Y;
      sensitivity: high;
    }

    purpose purpose3 {
      description: "compute the age of the input user";
      reads: user.v_ano;
      produces: age_result;
      legal_basis: consent;
    }
    v} *)

val parse : string -> (Ast.decl list, string) result
(** Parse a full source text.  Errors carry line/column and an explanation
    of what was expected. *)

val parse_types : string -> (Ast.type_decl list, string) result
val parse_purposes : string -> (Ast.purpose_decl list, string) result
(** Convenience filters over {!parse}. *)

val parse_predicate : string -> (Rgpdos_dbfs.Query.t, string) result
(** Parse a selection predicate for DED targets, e.g.
    [{v year_of_birthdate > 1987 and not (name contains "test") v}].
    Grammar: atoms are [field = literal], [field < int], [field > int],
    [field contains "substring"]; combine with [and], [or], [not] and
    parentheses; [true] is the empty predicate.  Literals are integers,
    quoted strings, or [true]/[false]. *)
