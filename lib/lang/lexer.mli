(** Lexer for the rgpdOS declaration languages (PD types and purposes).

    The surface syntax follows Listing 1 of the paper: braces, colons,
    commas and semicolons, identifiers, integer literals with optional
    duration suffix ([1Y], [30D], [12H]), and double-quoted strings.
    Comments run from [#] or [//] to end of line. *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | DURATION of int  (** nanoseconds *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | COMMA
  | SEMI
  | DOT
  | LT
  | GT
  | EQUAL
  | EOF

type located = { token : token; line : int; col : int }

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> (located list, string) result
(** Full-input tokenization; the error message carries line/column. *)
