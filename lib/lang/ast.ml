module Membrane = Rgpdos_membrane.Membrane
module Schema = Rgpdos_dbfs.Schema
module Value = Rgpdos_dbfs.Value

type legal_basis =
  | Consent
  | Contract
  | Legal_obligation
  | Vital_interest
  | Public_interest
  | Legitimate_interest

let legal_basis_to_string = function
  | Consent -> "consent"
  | Contract -> "contract"
  | Legal_obligation -> "legal_obligation"
  | Vital_interest -> "vital_interest"
  | Public_interest -> "public_interest"
  | Legitimate_interest -> "legitimate_interest"

let legal_basis_of_string = function
  | "consent" -> Ok Consent
  | "contract" -> Ok Contract
  | "legal_obligation" -> Ok Legal_obligation
  | "vital_interest" -> Ok Vital_interest
  | "public_interest" -> Ok Public_interest
  | "legitimate_interest" -> Ok Legitimate_interest
  | other -> Error ("unknown legal basis " ^ other)

type consent_expr = C_all | C_none | C_view of string

type type_decl = {
  t_name : string;
  t_fields : (string * string) list;
  t_views : (string * string list) list;
  t_consents : (string * consent_expr) list;
  t_collection : (string * string) list;
  t_origin : string option;
  t_age : int option;
  t_sensitivity : string option;
  t_indexed : string list;
}

type purpose_decl = {
  p_name : string;
  p_description : string;
  p_reads : (string * string option) list;
  p_produces : string option;
  p_legal_basis : legal_basis;
}

type decl = Type_decl of type_decl | Purpose_decl of purpose_decl

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let to_schema d =
  let* fields =
    map_result
      (fun (fname, tname) ->
        let* ftype = Value.ftype_of_string tname in
        Ok { Schema.fname; ftype; required = true })
      d.t_fields
  in
  let views =
    List.map (fun (vname, vfields) -> { Schema.vname; vfields }) d.t_views
  in
  let default_consents =
    List.map
      (fun (purpose, ce) ->
        ( purpose,
          match ce with
          | C_all -> Membrane.All
          | C_none -> Membrane.Denied
          | C_view v -> Membrane.View v ))
      d.t_consents
  in
  let* default_sensitivity =
    match d.t_sensitivity with
    | None -> Ok Membrane.Low
    | Some "low" -> Ok Membrane.Low
    | Some "medium" -> Ok Membrane.Medium
    | Some ("high" | "hight") -> Ok Membrane.High
      (* "hight" appears verbatim in the paper's Listing 1; accept it *)
    | Some other -> Error ("unknown sensitivity " ^ other)
  in
  let* default_origin =
    match d.t_origin with
    | None | Some "subject" -> Ok Membrane.Subject
    | Some "sysadmin" -> Ok Membrane.Sysadmin
    | Some other when String.length other > 12
                      && String.sub other 0 12 = "third_party:" ->
        Ok (Membrane.Third_party (String.sub other 12 (String.length other - 12)))
    | Some "third_party" -> Ok (Membrane.Third_party "unnamed")
    | Some other -> Error ("unknown origin " ^ other)
  in
  Schema.make ~name:d.t_name ~fields ~views ~default_consents
    ~collection:d.t_collection ?default_ttl:d.t_age ~default_sensitivity
    ~default_origin ~indexed_fields:d.t_indexed ()

let pp_type_decl fmt d =
  Format.fprintf fmt "@[<v 2>type %s {@,fields { %s }@,%a%a%a}@]" d.t_name
    (String.concat ", "
       (List.map (fun (f, ty) -> Printf.sprintf "%s: %s" f ty) d.t_fields))
    (Format.pp_print_list (fun fmt (v, fs) ->
         Format.fprintf fmt "view %s { %s };@," v (String.concat ", " fs)))
    d.t_views
    (fun fmt -> function
      | [] -> ()
      | consents ->
          Format.fprintf fmt "consent { %s };@,"
            (String.concat ", "
               (List.map
                  (fun (p, ce) ->
                    Printf.sprintf "%s: %s" p
                      (match ce with
                      | C_all -> "all"
                      | C_none -> "none"
                      | C_view v -> v))
                  consents)))
    d.t_consents
    (fun fmt -> function
      | [] -> ()
      | indexed ->
          Format.fprintf fmt "index { %s };@," (String.concat ", " indexed))
    d.t_indexed

let pp_purpose_decl fmt d =
  Format.fprintf fmt
    "@[<v 2>purpose %s {@,description: %S;@,reads: %s;@,legal_basis: %s;@]@,}"
    d.p_name d.p_description
    (String.concat ", "
       (List.map
          (fun (ty, view) ->
            match view with None -> ty | Some v -> ty ^ "." ^ v)
          d.p_reads))
    (legal_basis_to_string d.p_legal_basis)
