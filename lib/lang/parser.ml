open Lexer

type state = { toks : located array; mutable pos : int }

exception Parse_error of string

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.token <> EOF then st.pos <- st.pos + 1;
  t

let fail_at (t : located) fmt =
  Format.kasprintf
    (fun msg ->
      raise
        (Parse_error
           (Printf.sprintf "line %d, column %d: %s" t.line t.col msg)))
    fmt

let expect st tok =
  let t = next st in
  if t.token <> tok then
    fail_at t "expected %a but found %a" pp_token tok pp_token t.token

let ident st =
  let t = next st in
  match t.token with
  | IDENT s -> s
  | other -> fail_at t "expected an identifier, found %a" pp_token other

(* a "value": quoted string, or dotted identifier like user_form.html *)
let value st =
  let t = next st in
  match t.token with
  | STRING s -> s
  | IDENT first ->
      let buf = Buffer.create 16 in
      Buffer.add_string buf first;
      let rec dots () =
        match (peek st).token with
        | DOT ->
            ignore (next st);
            Buffer.add_char buf '.';
            Buffer.add_string buf (ident st);
            dots ()
        | _ -> ()
      in
      dots ();
      Buffer.contents buf
  | other -> fail_at t "expected a value, found %a" pp_token other

(* comma-separated items inside braces; trailing comma tolerated *)
let braced_list st item =
  expect st LBRACE;
  let items = ref [] in
  let rec go () =
    match (peek st).token with
    | RBRACE -> ignore (next st)
    | _ ->
        items := item st :: !items;
        (match (peek st).token with
        | COMMA ->
            ignore (next st);
            go ()
        | RBRACE -> ignore (next st)
        | _ ->
            let t = peek st in
            fail_at t "expected ',' or '}', found %a" pp_token t.token)
  in
  go ();
  List.rev !items

let optional_semi st =
  match (peek st).token with SEMI -> ignore (next st) | _ -> ()

(* ------------------------------------------------------------------ *)
(* type declarations                                                  *)

let parse_field st =
  let name = ident st in
  expect st COLON;
  let ty = ident st in
  (name, ty)

let parse_consent_item st =
  let purpose = ident st in
  expect st COLON;
  let t = next st in
  match t.token with
  | IDENT "all" -> (purpose, Ast.C_all)
  | IDENT "none" -> (purpose, Ast.C_none)
  | IDENT view -> (purpose, Ast.C_view view)
  | other -> fail_at t "expected all, none or a view name, found %a" pp_token other

let parse_collection_item st =
  let kind = ident st in
  expect st COLON;
  let v = value st in
  (kind, v)

let parse_type_decl st =
  let t_name = ident st in
  expect st LBRACE;
  let fields = ref None in
  let views = ref [] in
  let consents = ref None in
  let collection = ref None in
  let origin = ref None in
  let age = ref None in
  let sensitivity = ref None in
  let indexed = ref None in
  let once name slot v =
    match !slot with
    | Some _ -> fail_at (peek st) "duplicate %s clause in type declaration" name
    | None -> slot := Some v
  in
  let rec items () =
    let t = peek st in
    match t.token with
    | RBRACE -> ignore (next st)
    | IDENT "fields" ->
        ignore (next st);
        once "fields" fields (braced_list st parse_field);
        optional_semi st;
        items ()
    | IDENT "view" ->
        ignore (next st);
        let vname = ident st in
        let vfields = braced_list st ident in
        views := (vname, vfields) :: !views;
        optional_semi st;
        items ()
    | IDENT "consent" ->
        ignore (next st);
        once "consent" consents (braced_list st parse_consent_item);
        optional_semi st;
        items ()
    | IDENT "collection" ->
        ignore (next st);
        once "collection" collection (braced_list st parse_collection_item);
        optional_semi st;
        items ()
    | IDENT "origin" ->
        ignore (next st);
        expect st COLON;
        let o = ident st in
        let o =
          if o = "third_party" && (peek st).token = LPAREN then begin
            ignore (next st);
            let who = value st in
            expect st RPAREN;
            "third_party:" ^ who
          end
          else o
        in
        once "origin" origin o;
        optional_semi st;
        items ()
    | IDENT "age" ->
        ignore (next st);
        expect st COLON;
        let t = next st in
        (match t.token with
        | DURATION d -> once "age" age d
        | INT _ -> fail_at t "age needs a duration unit (e.g. 1Y, 30D)"
        | other -> fail_at t "expected a duration, found %a" pp_token other);
        optional_semi st;
        items ()
    | IDENT "sensitivity" ->
        ignore (next st);
        expect st COLON;
        once "sensitivity" sensitivity (ident st);
        optional_semi st;
        items ()
    | IDENT "index" ->
        ignore (next st);
        once "index" indexed (braced_list st ident);
        optional_semi st;
        items ()
    | other ->
        fail_at t
          "expected fields, view, consent, collection, origin, age, \
           sensitivity, index or '}', found %a"
          pp_token other
  in
  items ();
  match !fields with
  | None -> fail_at (peek st) "type %s has no fields clause" t_name
  | Some t_fields ->
      {
        Ast.t_name;
        t_fields;
        t_views = List.rev !views;
        t_consents = Option.value ~default:[] !consents;
        t_collection = Option.value ~default:[] !collection;
        t_origin = !origin;
        t_age = !age;
        t_sensitivity = !sensitivity;
        t_indexed = Option.value ~default:[] !indexed;
      }

(* ------------------------------------------------------------------ *)
(* purpose declarations                                               *)

let parse_read_item st =
  let ty = ident st in
  match (peek st).token with
  | DOT ->
      ignore (next st);
      let view = ident st in
      (ty, Some view)
  | _ -> (ty, None)

let parse_purpose_decl st =
  let p_name = ident st in
  expect st LBRACE;
  let description = ref None in
  let reads = ref None in
  let produces = ref None in
  let basis = ref None in
  let once name slot v =
    match !slot with
    | Some _ -> fail_at (peek st) "duplicate %s clause in purpose declaration" name
    | None -> slot := Some v
  in
  let comma_list item =
    let items = ref [ item st ] in
    let rec go () =
      match (peek st).token with
      | COMMA ->
          ignore (next st);
          items := item st :: !items;
          go ()
      | _ -> ()
    in
    go ();
    List.rev !items
  in
  let rec items () =
    let t = peek st in
    match t.token with
    | RBRACE -> ignore (next st)
    | IDENT "description" ->
        ignore (next st);
        expect st COLON;
        let t = next st in
        (match t.token with
        | STRING s -> once "description" description s
        | other -> fail_at t "expected a string, found %a" pp_token other);
        optional_semi st;
        items ()
    | IDENT "reads" ->
        ignore (next st);
        expect st COLON;
        once "reads" reads (comma_list parse_read_item);
        optional_semi st;
        items ()
    | IDENT "produces" ->
        ignore (next st);
        expect st COLON;
        once "produces" produces (ident st);
        optional_semi st;
        items ()
    | IDENT "legal_basis" ->
        ignore (next st);
        expect st COLON;
        let b = ident st in
        (match Ast.legal_basis_of_string b with
        | Ok basis_v -> once "legal_basis" basis basis_v
        | Error e -> fail_at t "%s" e);
        optional_semi st;
        items ()
    | other ->
        fail_at t
          "expected description, reads, produces, legal_basis or '}', found %a"
          pp_token other
  in
  items ();
  match !description with
  | None -> fail_at (peek st) "purpose %s has no description" p_name
  | Some p_description ->
      {
        Ast.p_name;
        p_description;
        p_reads = Option.value ~default:[] !reads;
        p_produces = !produces;
        p_legal_basis = Option.value ~default:Ast.Consent !basis;
      }

(* ------------------------------------------------------------------ *)
(* entry points                                                       *)

let parse_decls st =
  let decls = ref [] in
  let rec go () =
    let t = peek st in
    match t.token with
    | EOF -> ()
    | IDENT "type" ->
        ignore (next st);
        decls := Ast.Type_decl (parse_type_decl st) :: !decls;
        go ()
    | IDENT "purpose" ->
        ignore (next st);
        decls := Ast.Purpose_decl (parse_purpose_decl st) :: !decls;
        go ()
    | other -> fail_at t "expected 'type' or 'purpose', found %a" pp_token other
  in
  go ();
  List.rev !decls

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0 } in
      try Ok (parse_decls st) with Parse_error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* selection predicates                                               *)

module Query = Rgpdos_dbfs.Query
module Value = Rgpdos_dbfs.Value

let parse_literal st =
  let t = next st in
  match t.token with
  | INT i -> Value.VInt i
  | STRING s -> Value.VString s
  | IDENT "true" -> Value.VBool true
  | IDENT "false" -> Value.VBool false
  | other -> fail_at t "expected a literal, found %a" pp_token other

let rec parse_pred st =
  let left = parse_conj st in
  match (peek st).token with
  | IDENT "or" ->
      ignore (next st);
      Query.Or (left, parse_pred st)
  | _ -> left

and parse_conj st =
  let left = parse_unary st in
  match (peek st).token with
  | IDENT "and" ->
      ignore (next st);
      Query.And (left, parse_conj st)
  | _ -> left

and parse_unary st =
  let t = peek st in
  match t.token with
  | IDENT "not" ->
      ignore (next st);
      Query.Not (parse_unary st)
  | LPAREN ->
      ignore (next st);
      let p = parse_pred st in
      expect st RPAREN;
      p
  | IDENT "true" ->
      ignore (next st);
      Query.True
  | IDENT field -> (
      ignore (next st);
      let op = next st in
      match op.token with
      | EQUAL -> Query.Eq (field, parse_literal st)
      | LT -> Query.Lt (field, parse_literal st)
      | GT -> Query.Gt (field, parse_literal st)
      | IDENT "contains" -> (
          let lit = next st in
          match lit.token with
          | STRING s -> Query.Contains (field, s)
          | other -> fail_at lit "contains needs a quoted string, found %a" pp_token other)
      | other -> fail_at op "expected =, <, > or contains, found %a" pp_token other)
  | other -> fail_at t "expected a predicate, found %a" pp_token other

let parse_predicate input =
  match Lexer.tokenize input with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0 } in
      try
        let p = parse_pred st in
        let t = peek st in
        if t.token <> EOF then
          fail_at t "trailing input after predicate: %a" pp_token t.token
        else Ok p
      with Parse_error msg -> Error msg)

let parse_types input =
  match parse input with
  | Error e -> Error e
  | Ok decls ->
      Ok
        (List.filter_map
           (function Ast.Type_decl d -> Some d | Ast.Purpose_decl _ -> None)
           decls)

let parse_purposes input =
  match parse input with
  | Error e -> Error e
  | Ok decls ->
      Ok
        (List.filter_map
           (function Ast.Purpose_decl d -> Some d | Ast.Type_decl _ -> None)
           decls)
