(** Abstract syntax for the two rgpdOS declaration languages.

    [type_decl] corresponds to the paper's Listing 1 (a PD type with
    fields, views, default consents, collection interfaces, origin, age
    i.e. TTL, sensitivity).  [purpose_decl] is our concrete realisation of
    the paper's "very high level language" for purposes (§2, programming
    model): it names the purpose, documents it, and declares the data it
    is allowed to read (type, optionally restricted to a view), what it
    produces, and its GDPR legal basis (art. 6). *)

type legal_basis =
  | Consent
  | Contract
  | Legal_obligation
  | Vital_interest
  | Public_interest
  | Legitimate_interest

val legal_basis_to_string : legal_basis -> string
val legal_basis_of_string : string -> (legal_basis, string) result

type consent_expr = C_all | C_none | C_view of string

type type_decl = {
  t_name : string;
  t_fields : (string * string) list;  (** field name, type name *)
  t_views : (string * string list) list;
  t_consents : (string * consent_expr) list;
  t_collection : (string * string) list;
  t_origin : string option;  (** "subject" | "sysadmin" | "third_party" *)
  t_age : int option;        (** TTL in nanoseconds *)
  t_sensitivity : string option;
  t_indexed : string list;   (** fields carrying secondary indexes *)
}

type purpose_decl = {
  p_name : string;
  p_description : string;
  p_reads : (string * string option) list;  (** type, optional view *)
  p_produces : string option;               (** output PD type, if any *)
  p_legal_basis : legal_basis;
}

type decl = Type_decl of type_decl | Purpose_decl of purpose_decl

val to_schema : type_decl -> (Rgpdos_dbfs.Schema.t, string) result
(** Elaborate a parsed type declaration into a validated DBFS schema. *)

val pp_type_decl : Format.formatter -> type_decl -> unit
val pp_purpose_decl : Format.formatter -> purpose_decl -> unit
