module Clock = Rgpdos_util.Clock

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | DURATION of int
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COLON
  | COMMA
  | SEMI
  | DOT
  | LT
  | GT
  | EQUAL
  | EOF

type located = { token : token; line : int; col : int }

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "identifier %s" s
  | STRING s -> Format.fprintf fmt "string %S" s
  | INT i -> Format.fprintf fmt "integer %d" i
  | DURATION d -> Format.fprintf fmt "duration %a" Clock.pp_duration d
  | LBRACE -> Format.pp_print_string fmt "'{'"
  | RBRACE -> Format.pp_print_string fmt "'}'"
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | COLON -> Format.pp_print_string fmt "':'"
  | COMMA -> Format.pp_print_string fmt "','"
  | SEMI -> Format.pp_print_string fmt "';'"
  | DOT -> Format.pp_print_string fmt "'.'"
  | LT -> Format.pp_print_string fmt "'<'"
  | GT -> Format.pp_print_string fmt "'>'"
  | EQUAL -> Format.pp_print_string fmt "'='"
  | EOF -> Format.pp_print_string fmt "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

let duration_unit = function
  | 'Y' | 'y' -> Some Clock.year
  | 'D' | 'd' -> Some Clock.day
  | 'H' | 'h' -> Some Clock.hour
  | 'M' | 'm' -> Some Clock.minute
  | 'S' | 's' -> Some Clock.second
  | _ -> None

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 in
  let pos = ref 0 in
  let toks = ref [] in
  let err = ref None in
  let advance () =
    (if input.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let emit tok l c = toks := { token = tok; line = l; col = c } :: !toks in
  let fail msg =
    err := Some (Printf.sprintf "line %d, column %d: %s" !line !col msg)
  in
  while !err = None && !pos < n do
    let c = input.[!pos] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' || (c = '/' && !pos + 1 < n && input.[!pos + 1] = '/') then begin
      while !pos < n && input.[!pos] <> '\n' do
        advance ()
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char input.[!pos] do
        advance ()
      done;
      emit (IDENT (String.sub input start (!pos - start))) l0 c0
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit input.[!pos] do
        advance ()
      done;
      let value = int_of_string (String.sub input start (!pos - start)) in
      if !pos < n && duration_unit input.[!pos] <> None then begin
        let unit = Option.get (duration_unit input.[!pos]) in
        advance ();
        emit (DURATION (value * unit)) l0 c0
      end
      else emit (INT value) l0 c0
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !err = None && !pos < n do
        let d = input.[!pos] in
        if d = '"' then begin
          advance ();
          closed := true
        end
        else if d = '\\' && !pos + 1 < n then begin
          advance ();
          (match input.[!pos] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | d -> Buffer.add_char buf d);
          advance ()
        end
        else if d = '\n' then fail "unterminated string literal"
        else begin
          Buffer.add_char buf d;
          advance ()
        end
      done;
      if (not !closed) && !err = None then fail "unterminated string literal";
      if !err = None then emit (STRING (Buffer.contents buf)) l0 c0
    end
    else begin
      (match c with
      | '{' -> emit LBRACE l0 c0
      | '}' -> emit RBRACE l0 c0
      | '(' -> emit LPAREN l0 c0
      | ')' -> emit RPAREN l0 c0
      | ':' -> emit COLON l0 c0
      | ',' -> emit COMMA l0 c0
      | ';' -> emit SEMI l0 c0
      | '.' -> emit DOT l0 c0
      | '<' -> emit LT l0 c0
      | '>' -> emit GT l0 c0
      | '=' -> emit EQUAL l0 c0
      | c -> fail (Printf.sprintf "unexpected character %C" c));
      if !err = None then advance ()
    end
  done;
  match !err with
  | Some e -> Error e
  | None ->
      emit EOF !line !col;
      Ok (List.rev !toks)
