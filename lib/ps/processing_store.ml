module Clock = Rgpdos_util.Clock
module Dbfs = Rgpdos_dbfs.Dbfs
module Schema = Rgpdos_dbfs.Schema
module Audit_log = Rgpdos_audit.Audit_log
module Ded = Rgpdos_ded.Ded
module Processing = Rgpdos_ded.Processing
module Ast = Rgpdos_lang.Ast

type register_outcome = Registered | Registered_with_alert of string

type error =
  | No_purpose of string
  | Already_registered of string
  | Unknown_processing of string
  | Awaiting_approval of string
  | Invoke_error of Ded.error
  | Collection_error of string

let pp_error fmt = function
  | No_purpose n ->
      Format.fprintf fmt "ps_register rejected %s: no purpose specified" n
  | Already_registered n -> Format.fprintf fmt "processing %s already registered" n
  | Unknown_processing n -> Format.fprintf fmt "unknown processing %s" n
  | Awaiting_approval n ->
      Format.fprintf fmt "processing %s awaits sysadmin approval" n
  | Invoke_error e -> Ded.pp_error fmt e
  | Collection_error m -> Format.fprintf fmt "collection failed: %s" m

let error_to_string e = Format.asprintf "%a" pp_error e

type registered = { spec : Processing.spec; mutable approved : bool; alert : string option }

type t = {
  clock : Clock.t;
  dbfs : Dbfs.t;
  audit : Audit_log.t;
  ded : Ded.t;
  store : (string, registered) Hashtbl.t;
}

let actor = "ps"

let create ~clock ~dbfs ~audit () =
  {
    clock;
    dbfs;
    audit;
    ded = Ded.create ~clock ~dbfs ~audit ();
    store = Hashtbl.create 16;
  }

(* The purpose/implementation match heuristic: every (type, field) the
   implementation touches must be covered by the purpose's declared reads,
   with view restrictions resolved through the DBFS schemas. *)
let footprint_mismatch t (purpose : Ast.purpose_decl) touches =
  let check_one (type_name, fields) =
    match List.assoc_opt type_name purpose.Ast.p_reads with
    | None ->
        Some
          (Printf.sprintf "implementation touches type %s not declared in purpose %s"
             type_name purpose.Ast.p_name)
    | Some None -> None (* whole type declared *)
    | Some (Some view) -> (
        match Dbfs.schema t.dbfs ~actor type_name with
        | Error _ ->
            Some (Printf.sprintf "purpose %s reads unknown type %s"
                    purpose.Ast.p_name type_name)
        | Ok schema -> (
            let allowed =
              Schema.view_fields schema (Rgpdos_membrane.Membrane.View view)
            in
            match List.find_opt (fun f -> not (List.mem f allowed)) fields with
            | Some f ->
                Some
                  (Printf.sprintf
                     "implementation reads %s.%s outside declared view %s.%s"
                     type_name f type_name view)
            | None -> None))
  in
  List.find_map check_one touches

let register t spec =
  let name = spec.Processing.name in
  if Hashtbl.mem t.store name then Error (Already_registered name)
  else
    match spec.Processing.purpose with
    | None ->
        ignore
          (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
             (Audit_log.Denied
                { actor = name; reason = "registration without purpose" }));
        Error (No_purpose name)
    | Some purpose -> (
        match footprint_mismatch t purpose spec.Processing.touches with
        | Some reason ->
            Hashtbl.replace t.store name
              { spec; approved = false; alert = Some reason };
            ignore
              (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
                 (Audit_log.Registered { processing = name; alert = true }));
            Ok (Registered_with_alert reason)
        | None ->
            Hashtbl.replace t.store name { spec; approved = true; alert = None };
            ignore
              (Audit_log.append t.audit ~now:(Clock.now t.clock) ~actor
                 (Audit_log.Registered { processing = name; alert = false }));
            Ok Registered)

let approve t name =
  match Hashtbl.find_opt t.store name with
  | None -> Error (Unknown_processing name)
  | Some r ->
      r.approved <- true;
      Ok ()

let is_registered t name = Hashtbl.mem t.store name

let is_approved t name =
  match Hashtbl.find_opt t.store name with
  | Some r -> r.approved
  | None -> false

let pending_alerts t =
  Hashtbl.fold
    (fun name r acc ->
      match r.alert with
      | Some reason when not r.approved -> (name, reason) :: acc
      | _ -> acc)
    t.store []
  |> List.sort compare

let list_processings t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.store [] |> List.sort compare

type init = {
  init_type : string;
  init_interface : string;
  init_rows : (string * Rgpdos_dbfs.Record.t) list;
}

let run_init t init =
  let rec go = function
    | [] -> Ok ()
    | (subject, record) :: rest -> (
        match
          Ded.builtin_acquire t.ded ~type_name:init.init_type ~subject
            ~interface:init.init_interface ~record ()
        with
        | Ok _ -> go rest
        | Error e -> Error (Collection_error (Ded.error_to_string e)))
  in
  go init.init_rows

let invoke t ?fetch_mode ?location ?cores ?pool ?grain ?yield ~name ~target
    ?init () =
  match Hashtbl.find_opt t.store name with
  | None -> Error (Unknown_processing name)
  | Some r ->
      if not r.approved then Error (Awaiting_approval name)
      else
        let collect =
          match init with None -> Ok () | Some spec -> run_init t spec
        in
        (match collect with
        | Error e -> Error e
        | Ok () -> (
            match
              Ded.execute t.ded ?fetch_mode ?location ?cores ?pool ?grain
                ?yield ~processing:r.spec ~target ()
            with
            | Ok outcome -> Ok outcome
            | Error e -> Error (Invoke_error e)))
