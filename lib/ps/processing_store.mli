(** The Processing Store (PS): rgpdOS's only entry point (§2).

    Its public interface is exactly the paper's two calls:

    - {!register} ([ps_register]): a function with no purpose is rejected
      outright; a function whose purpose does not match its implementation
      raises an alert that requires explicit sysadmin {!approve}al before
      it can run.  The purpose/implementation match is the declared-
      capability check described in DESIGN.md §4 (the paper leaves the
      general problem open, §3(4)): the implementation's static access
      footprint must be covered by the views its purpose declares.

    - {!invoke} ([ps_invoke]): takes the reference of a registered data
      processing, a target (a PD type or explicit PD references), an
      optional data-collection step to initialise DBFS first, and runs the
      processing in a fresh {!Rgpdos_ded.Ded} instance.

    Enforcement rules 1 and 2 of §2 are structural here: stored
    processings are private to this module, and invoking one is only
    possible through {!invoke}. *)

type t

type register_outcome =
  | Registered
      (** purpose present and consistent with the implementation *)
  | Registered_with_alert of string
      (** stored, but flagged: the mismatch reason; sysadmin approval
          required before invocation *)

type error =
  | No_purpose of string      (** rejected at registration (paper rule) *)
  | Already_registered of string
  | Unknown_processing of string
  | Awaiting_approval of string
  | Invoke_error of Rgpdos_ded.Ded.error
  | Collection_error of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val create :
  clock:Rgpdos_util.Clock.t ->
  dbfs:Rgpdos_dbfs.Dbfs.t ->
  audit:Rgpdos_audit.Audit_log.t ->
  unit ->
  t

val actor : string
(** The actor string DBFS sees for PS schema lookups: ["ps"]. *)

val register :
  t -> Rgpdos_ded.Processing.spec -> (register_outcome, error) result

val approve : t -> string -> (unit, error) result
(** Sysadmin approval of an alerted processing. *)

val is_registered : t -> string -> bool
val is_approved : t -> string -> bool

val pending_alerts : t -> (string * string) list
(** [(processing, reason)] of registrations awaiting approval. *)

val list_processings : t -> string list

type init = {
  init_type : string;
  init_interface : string;  (** e.g. "web_form:user_form.html" *)
  init_rows : (string * Rgpdos_dbfs.Record.t) list;  (** (subject, record) *)
}

val invoke :
  t ->
  ?fetch_mode:Rgpdos_ded.Ded.fetch_mode ->
  ?location:Rgpdos_ded.Ded.location ->
  ?cores:int ->
  ?pool:Rgpdos_util.Pool.t ->
  ?grain:int ->
  ?yield:(unit -> unit) ->
  name:string ->
  target:Rgpdos_ded.Ded.target ->
  ?init:init ->
  unit ->
  (Rgpdos_ded.Ded.outcome, error) result
(** [ps_invoke].  When [init] is given, the acquisition built-in first
    collects the rows into DBFS (each wrapped in a membrane from the
    schema's defaults), then the processing runs. *)
