(** The refinement harness: drives the real {!Rgpdos_dbfs.Dbfs} and the
    pure {!Model} in lockstep over generated op scripts and asserts
    observational equivalence, in four modes:

    - {b lockstep} — every op's result is compared as it executes, then
      the full state is audited (records, membranes, erasure envelopes,
      selections under both planner paths, expiry, exports) and the
      audit is repeated at each cache budget in {!budgets} (the
      index/cache-coherence mode);
    - {b crash-refinement} — the same script replayed under a generated
      fault plan (torn/failed writes, data-region bit flips,
      crash-after-write-N) for every config in {!all_cfgs}; the crash
      image is remounted + [fsck_repair]ed and must land byte-equal to
      the model at {i some} micro-op prefix boundary (quarantined pds
      excluded on both sides), residue-free for every destroyed
      sentinel, and out of degraded mode;
    - {b linearizability} — disjoint per-shard scripts executed on 1/2/4
      domains must produce exactly the observables of their sequential
      execution (each shard is additionally lockstep-checked inside its
      domain);
    - {b degraded} ({!check_degraded}) — after unrecoverable device
      damage every mutation must return [Error (Degraded _)] while
      Art. 15 reads still answer from surviving data, matching the
      model's pre-damage answers.

    Counterexamples shrink (greedy op removal to fixpoint, then fault
    plans reduced to crash-only) and carry the seed, the rendered fault
    plan and the full script dump, so every failure replays without
    re-running the campaign. *)

(** One scripted operation.  Integer fields are interpreted modulo the
    relevant pool size, so any int is a valid op (shrinking stays
    type-correct).  [pick] selects a target pd from the model's current
    view ([pick mod population]); an empty population makes the op a
    no-op on both sides. *)
type op =
  | Collect of { subj : int; ki : int; ks : int; ttl : int }
      (** insert a fresh PD for subject [subj mod 6]; [ttl mod 3]:
          0 = none, 1 = short, 2 = long *)
  | Update of { pick : int; ki : int; ks : int }
      (** rewrite a live pd's record (fresh forensic sentinel) *)
  | Flip of { pick : int; grant : bool }
      (** consent flip on the "analytics" purpose of any pd *)
  | Erase_subject of { subj : int }  (** Art. 17 over the subject *)
  | Delete_pd of { pick : int }      (** physical removal *)
  | Ttl_sweep  (** erase every expired pd, in expiry-queue order *)
  | Advance of { ns : int }          (** advance the virtual clock *)
  | Access of { subj : int }         (** Art. 15 export comparison *)
  | Select_q of { q : int }
      (** run query [q mod pool] under both planner paths *)

type script = op list

type cfg = { segmented : bool; gc_window : int; async_depth : int }
(** One point of the crash-refinement config matrix. *)

val base_cfg : cfg
(** Heap allocator, group-commit window 1, synchronous device. *)

val all_cfgs : cfg list
(** Both allocators x group-commit windows {1,4,64} x async depths
    {0,4,64} — 18 configs. *)

val budgets : int list
(** Cache budgets the coherence audit runs at: [1; 7; 65536]. *)

val cfg_to_string : cfg -> string
val op_to_string : op -> string
val script_to_string : script -> string

val gen_script : Rgpdos_util.Prng.t -> script
(** 4–16 ops, starting with two collects so scripts are never vacuous. *)

(** Deliberately-injected semantic bugs, for validating that the harness
    actually catches divergence with a shrunk, replayable
    counterexample. *)
type bug =
  | Drop_consent_flip
      (** the real side silently loses consent-flip writes *)

val run_script : ?bug:bug -> cfg -> script -> (int, string) result
(** Lockstep + full-state audit + coherence budgets + clean-mode residue
    scan.  [Ok n] is the number of observable comparisons performed. *)

val plan_for_script : spec_seed:int -> cfg -> script -> string
(** The rendered fault plan {!run_crash} derives for this
    (seed, cfg, script) — captured at install time, for reports. *)

val run_crash : spec_seed:int -> cfg -> script -> (int, string) result
(** One crash-refinement run: derive a fault plan deterministically from
    [spec_seed] and the script's reference write count, replay under it,
    crash, remount, repair, and check the prefix/residue/degraded rules.
    [Ok n] is the number of fault points exercised; [Error] details
    include the plan. *)

val check_degraded : script -> (unit, string) result
(** The degraded-mode law (satellite of the crash mode): run the script
    clean, damage every unowned data-region block permanently, then
    assert the store degrades on the next mutation, every further
    mutation returns [Error (Degraded _)], and Art. 15 access over the
    surviving subjects still equals the model's pre-damage answers. *)

(** {1 Campaign} *)

type failure = {
  f_mode : string;  (** "lockstep" | "crash" | "linearizability" | ... *)
  f_cfg : string;
  f_plan : string;  (** rendered fault plan, [""] outside crash mode *)
  f_seed : int;
  f_spec_seed : int;  (** fault-plan derivation seed, 0 outside crash *)
  f_script : script;  (** shrunk *)
  f_detail : string;
  f_shrunk_from : int;  (** op count before shrinking *)
}

val failure_to_string : failure -> string

type report = {
  r_seed : int;
  r_scripts : int;
  r_ops_checked : int;
  r_fault_points : int;
  r_crash_runs : int;
  r_lin_domains : int list;
  r_failures : failure list;
}

val run : ?seed:int -> ?scripts:int -> unit -> report
(** The full campaign: [scripts] generated scripts (default: the
    [QCHECK_COUNT] environment variable, else 4), each run in lockstep +
    coherence mode and in crash mode across {!all_cfgs}, plus one
    linearizability pass at 1/2/4 domains.  Deterministic in [seed]. *)

val find_counterexample :
  ?bug:bug -> seed:int -> max_scripts:int -> cfg -> failure option
(** Generate scripts until [run_script ?bug] fails, then shrink — the
    injected-bug demonstration entry point. *)

val conformance_pct : report -> float
val all_pass : report -> bool

val schema_id : string
(** ["rgpdos-model-check/1"]. *)

val to_json : ?wall_ms:float -> report -> Rgpdos_util.Json.t
(** The BENCH_model_check.json payload.  Deterministic modulo
    [wall_ms]. *)

val render : report -> string
