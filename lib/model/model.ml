(* Pure-functional model of the DBFS GDPR observables.  See model.mli
   for the observational contract.  The representation is a plain list
   in insertion order — population sizes in the refinement harness are
   tiny, clarity beats asymptotics here. *)

module Record = Rgpdos_dbfs.Record
module Query = Rgpdos_dbfs.Query
module Membrane = Rgpdos_membrane.Membrane

type pd_state = Live | Erased of string

type pd = {
  p_id : string;
  p_type : string;
  p_subject : string;
  p_record : Record.t;
  p_membrane : Membrane.t;
  p_state : pd_state;
}

type t = pd list  (* insertion order, oldest first *)

type error = Unknown_pd of string | Already_erased of string

let empty = []
let pds t = t

let insert t ~pd_id ~type_name ~subject ~record ~membrane =
  t
  @ [
      {
        p_id = pd_id;
        p_type = type_name;
        p_subject = subject;
        p_record = record;
        p_membrane = membrane;
        p_state = Live;
      };
    ]

let find t id = List.find_opt (fun p -> p.p_id = id) t

let modify t id f =
  match find t id with
  | None -> Error (Unknown_pd id)
  | Some _ ->
      let out = ref (Ok ()) in
      let t' =
        List.filter_map
          (fun p ->
            if p.p_id <> id then Some p
            else
              match f p with
              | Ok r -> r
              | Error e ->
                  out := Error e;
                  Some p)
          t
      in
      Result.map (fun () -> t') !out

let update_record t id record =
  modify t id (fun p ->
      match p.p_state with
      | Erased _ -> Error (Already_erased id)
      | Live -> Ok (Some { p with p_record = record }))

let update_membrane t id membrane =
  modify t id (fun p -> Ok (Some { p with p_membrane = membrane }))

let erase t id ~sealed =
  modify t id (fun p ->
      match p.p_state with
      | Erased _ -> Error (Already_erased id)
      | Live -> Ok (Some { p with p_state = Erased sealed; p_record = [] }))

let delete t id = modify t id (fun _ -> Ok None)

let live p = p.p_state = Live

let pds_of_subject t subject =
  List.filter_map (fun p -> if p.p_subject = subject then Some p.p_id else None) t

let list_pds t type_name =
  List.filter_map (fun p -> if p.p_type = type_name then Some p.p_id else None) t

let subjects t =
  List.fold_left
    (fun acc p -> if List.mem p.p_subject acc then acc else p.p_subject :: acc)
    [] t
  |> List.sort compare

let select t type_name pred =
  List.filter_map
    (fun p ->
      if p.p_type = type_name && live p && Query.eval pred p.p_record then
        Some p.p_id
      else None)
    t

(* Live pds whose expiry instant has passed, in expiry-queue order:
   (created_at + ttl, pd_id) ascending — matching Dbfs.expired_pds. *)
let expired t ~now =
  List.filter_map
    (fun p ->
      if not (live p) then None
      else
        match p.p_membrane.Membrane.ttl with
        | Some ttl when p.p_membrane.Membrane.created_at + ttl <= now ->
            Some (p.p_membrane.Membrane.created_at + ttl, p.p_id)
        | _ -> None)
    t
  |> List.sort compare |> List.map snd

(* Byte-identical to Dbfs.export_subject: live records of the subject in
   insertion order, rendered by Record.to_export, one JSON array. *)
let export t subject =
  let items =
    List.filter_map
      (fun p ->
        if p.p_subject = subject && live p then
          Some (Record.to_export ~type_name:p.p_type ~pd_id:p.p_id p.p_record)
        else None)
      t
  in
  "[" ^ String.concat ", " items ^ "]"

let live_count t = List.length (List.filter live t)

let dump_pd p =
  Printf.sprintf "%s|%s|%s|%s|%s" p.p_id p.p_type p.p_subject
    (match p.p_state with
    | Live -> "live:" ^ Record.encode p.p_record
    | Erased sealed -> "erased:" ^ sealed)
    (Membrane.encode p.p_membrane)

let dump_excluding t ~exclude =
  List.filter (fun p -> not (List.mem p.p_id exclude)) t
  |> List.sort (fun a b -> compare a.p_id b.p_id)
  |> List.map dump_pd |> String.concat "\n"

let dump t = dump_excluding t ~exclude:[]
let equal a b = dump a = dump b
