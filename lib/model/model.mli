(** The executable GDPR model: a pure-functional specification of the
    DBFS observables the paper's guarantees rest on.

    The model is a persistent value — a list of PD entries in insertion
    order, each wrapping a record and its membrane — with none of the
    storage machinery (no device, no journal, no indexes, no cache).
    Each operation returns a new model; nothing is mutated.  The
    refinement harness ({!Refine}) drives the real {!Rgpdos_dbfs.Dbfs}
    and this model in lockstep and asserts that every observable —
    operation results, Art. 15 exports, Art. 17 erasure effects, query
    selections, TTL expiry — is equal on both sides, under arbitrary
    generated op scripts, fault plans and shard schedules.

    Observational contract (what "equivalent" means per op):
    - [insert]: DBFS assigns the pd_id; the driver feeds the assigned id
      into the model, so both sides name PDs identically;
    - [pds_of_subject] / [list_pds]: insertion order, erased entries
      included (an erased PD's existence stays accountable);
    - [select]: live (non-erased) entries of the type whose record
      satisfies the predicate, in insertion order — the model evaluates
      {!Rgpdos_dbfs.Query.eval} directly, which pins the planner's
      index-pushdown paths to the brute-force semantics;
    - [expired ~now]: live PDs with [created_at + ttl <= now], sorted by
      [(expiry instant, pd_id)] — the expiry-queue order;
    - [export]: byte-identical to [Dbfs.export_subject] (a JSON array of
      {!Rgpdos_dbfs.Record.to_export} objects over the subject's live
      PDs in insertion order);
    - [erase]: the record is replaced by the caller-supplied sealed
      envelope, the membrane remains; reads return [`Erased];
    - [delete]: the entry is gone from every observable. *)

type pd_state = Live | Erased of string  (** sealed envelope bytes *)

type pd = {
  p_id : string;
  p_type : string;
  p_subject : string;
  p_record : Rgpdos_dbfs.Record.t;  (** meaningless once [Erased] *)
  p_membrane : Rgpdos_membrane.Membrane.t;
  p_state : pd_state;
}

type t
(** Persistent model state. *)

val empty : t

val pds : t -> pd list
(** All entries, insertion order (oldest first). *)

(** {1 Mutations} — each returns a new model *)

type error = Unknown_pd of string | Already_erased of string

val insert :
  t ->
  pd_id:string ->
  type_name:string ->
  subject:string ->
  record:Rgpdos_dbfs.Record.t ->
  membrane:Rgpdos_membrane.Membrane.t ->
  t

val update_record :
  t -> string -> Rgpdos_dbfs.Record.t -> (t, error) result
(** Fails on unknown or erased PDs, like [Dbfs.update_record]. *)

val update_membrane :
  t -> string -> Rgpdos_membrane.Membrane.t -> (t, error) result

val erase : t -> string -> sealed:string -> (t, error) result
(** Crypto-erasure: record replaced by [sealed], membrane kept. *)

val delete : t -> string -> (t, error) result

(** {1 Observables} *)

val find : t -> string -> pd option
val pds_of_subject : t -> string -> string list
val list_pds : t -> string -> string list
val subjects : t -> string list
(** Sorted, like [Dbfs.subjects]. *)

val select : t -> string -> Rgpdos_dbfs.Query.t -> string list
val expired : t -> now:int -> string list
val export : t -> string -> string
val live_count : t -> int

val dump : t -> string
(** Canonical rendering of the whole state, sorted by pd_id: the
    refinement harness compares recovered stores against model states
    with this.  [exclude] drops the named pd_ids (quarantined entries)
    before rendering. *)

val dump_excluding : t -> exclude:string list -> string

val equal : t -> t -> bool
